#include "core/grtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>

#include "storage/layout.h"

namespace grtdb {

namespace {

constexpr uint32_t kAnchorMagic = 0x47525452;  // "GRTR"
constexpr size_t kNodeHeaderSize = 8;          // level u32 + count u32
constexpr size_t kEntrySize = BoundSpec::kBinarySize + 8;  // bound + payload

size_t MaxEntriesForPage() {
  return (kPageSize - kNodeHeaderSize) / kEntrySize;
}

// Encoding of an empty region (used for drained-but-kept nodes under the
// kPostponeReinsert policy): resolves to Region::Empty at every time.
BoundSpec EmptyBound() {
  BoundSpec spec;
  spec.tt_begin = Timestamp::FromChronon(1);
  spec.tt_end = Timestamp::FromChronon(0);
  spec.vt_begin = Timestamp::FromChronon(1);
  spec.vt_end = Timestamp::FromChronon(0);
  spec.rectangle = true;
  spec.hidden = false;
  return spec;
}

TimeExtent ExtentFromBound(const BoundSpec& bound) {
  return TimeExtent(bound.tt_begin, bound.tt_end, bound.vt_begin,
                    bound.vt_end);
}

double CenterDistance2(const Region& a, const Region& b) {
  if (a.IsEmpty() || b.IsEmpty()) return 0.0;
  const double dx = 0.5 * (static_cast<double>(a.tt1() + a.tt2()) -
                           static_cast<double>(b.tt1() + b.tt2()));
  const double dy = 0.5 * (static_cast<double>(a.vt1() + a.vt2()) -
                           static_cast<double>(b.vt1() + b.vt2()));
  return dx * dx + dy * dy;
}

}  // namespace

bool GRTree::InternalTest(PredicateOp op, const Region& bound,
                          const Region& query) {
  switch (op) {
    case PredicateOp::kOverlaps:
    case PredicateOp::kContainedIn:
      return bound.Overlaps(query);
    case PredicateOp::kContains:
    case PredicateOp::kEqual:
      return bound.Contains(query);
  }
  return false;
}

bool GRTree::LeafTest(PredicateOp op, const Region& data,
                      const Region& query) {
  switch (op) {
    case PredicateOp::kOverlaps:
      return data.Overlaps(query);
    case PredicateOp::kContains:
      return data.Contains(query);
    case PredicateOp::kContainedIn:
      return query.Contains(data);
    case PredicateOp::kEqual:
      return data.Equals(query);
  }
  return false;
}

// ------------------------------------------------------------ lifecycle ---

StatusOr<std::unique_ptr<GRTree>> GRTree::Create(NodeStore* store,
                                                 const Options& options,
                                                 NodeId* anchor) {
  std::unique_ptr<GRTree> tree(new GRTree(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  if (tree->max_entries_ > MaxEntriesForPage()) {
    return Status::InvalidArgument("max_entries exceeds page capacity");
  }
  if (tree->max_entries_ < 4) {
    return Status::InvalidArgument("max_entries must be >= 4");
  }
  tree->min_entries_ = std::max<size_t>(
      1, static_cast<size_t>(options.min_fill *
                             static_cast<double>(tree->max_entries_)));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->anchor_));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->root_));
  Node root;
  root.level = 0;
  GRTDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, root));
  GRTDB_RETURN_IF_ERROR(tree->SaveAnchor());
  *anchor = tree->anchor_;
  return tree;
}

StatusOr<std::unique_ptr<GRTree>> GRTree::Open(NodeStore* store,
                                               NodeId anchor,
                                               const Options& options) {
  std::unique_ptr<GRTree> tree(new GRTree(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  tree->min_entries_ = std::max<size_t>(
      1, static_cast<size_t>(options.min_fill *
                             static_cast<double>(tree->max_entries_)));
  tree->anchor_ = anchor;
  GRTDB_RETURN_IF_ERROR(tree->LoadAnchor());
  return tree;
}

Status GRTree::LoadAnchor() {
  NodeView view;
  GRTDB_RETURN_IF_ERROR(store_->ViewNode(anchor_, &view));
  const uint8_t* page = view.data();
  if (LoadU32(page) != kAnchorMagic) {
    return Status::Corruption("bad GR-tree anchor magic");
  }
  root_ = LoadU64(page + 4);
  height_ = LoadU32(page + 12);
  size_ = LoadU64(page + 16);
  condense_epoch_ = LoadU64(page + 24);
  has_pending_condense_ = page[32] != 0;
  return Status::OK();
}

Status GRTree::SaveAnchor() {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, kAnchorMagic);
  StoreU64(page + 4, root_);
  StoreU32(page + 12, height_);
  StoreU64(page + 16, size_);
  StoreU64(page + 24, condense_epoch_);
  page[32] = has_pending_condense_ ? 1 : 0;
  return store_->WriteNode(anchor_, page);
}

Status GRTree::ReadNode(NodeId id, Node* node) const {
  // Zero-copy on cached stores: decode straight out of the pinned frame.
  // The view (and the cache's read latch) is released on return, before
  // any write can happen on this store from this thread.
  NodeView view;
  GRTDB_RETURN_IF_ERROR(store_->ViewNode(id, &view));
  const uint8_t* page = view.data();
  node->level = LoadU32(page);
  const uint32_t count = LoadU32(page + 4);
  if (count > MaxEntriesForPage()) {
    return Status::Corruption("GR-tree node entry count out of range");
  }
  node->entries.clear();
  node->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* p = page + kNodeHeaderSize + i * kEntrySize;
    NodeEntry entry;
    entry.bound = BoundSpec::DecodeFrom(p);
    entry.payload = LoadU64(p + BoundSpec::kBinarySize);
    node->entries.push_back(entry);
  }
  return Status::OK();
}

Status GRTree::WriteNode(NodeId id, const Node& node) {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, node.level);
  StoreU32(page + 4, static_cast<uint32_t>(node.entries.size()));
  for (size_t i = 0; i < node.entries.size(); ++i) {
    uint8_t* p = page + kNodeHeaderSize + i * kEntrySize;
    node.entries[i].bound.EncodeTo(p);
    StoreU64(p + BoundSpec::kBinarySize, node.entries[i].payload);
  }
  return store_->WriteNode(id, page);
}

BoundSpec GRTree::NodeBound(const Node& node, int64_t ct) const {
  if (node.entries.empty()) return EmptyBound();
  std::vector<BoundSpec> bounds;
  bounds.reserve(node.entries.size());
  for (const NodeEntry& entry : node.entries) bounds.push_back(entry.bound);
  BoundSpec bound = BoundSpec::Enclose(bounds, ct);
  if (!options_.stair_bounds && !bound.rectangle) {
    // Ablation: degrade the stair to its bounding rectangle (top at the
    // resolved TTend, i.e. VTend = NOW when growing, = TTend when frozen).
    bound.rectangle = true;
    bound.vt_end =
        bound.tt_end.is_uc() ? Timestamp::NOW() : bound.tt_end;
  }
  return bound;
}

// --------------------------------------------------------------- insert ---

size_t GRTree::ChooseSubtree(const Node& node, const BoundSpec& bound,
                             int64_t ct) const {
  const int64_t eval = ct + options_.horizon;
  const bool children_are_leaves = node.level == 1;

  size_t best_index = 0;
  double best_primary = 0.0;
  double best_secondary = 0.0;
  int best_temporal = 0;
  double best_area = 0.0;

  std::vector<Region> resolved(node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    resolved[i] = node.entries[i].bound.Resolve(eval);
  }

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const BoundSpec pair[2] = {node.entries[i].bound, bound};
    const Region enlarged = BoundSpec::Enclose(pair, ct).Resolve(eval);
    const double area = resolved[i].Area();
    const double area_delta = enlarged.Area() - area;
    double primary;
    if (children_are_leaves) {
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += resolved[i].IntersectionArea(resolved[j]);
        overlap_after += enlarged.IntersectionArea(resolved[j]);
      }
      primary = overlap_after - overlap_before;
    } else {
      primary = area_delta;
    }
    const double secondary = children_are_leaves ? area_delta : area;
    // Temporal tie-break: prefer subtrees whose growth behaviour matches
    // the incoming entry (growing entries go to growing subtrees).
    const int temporal =
        node.entries[i].bound.Grows() == bound.Grows() ? 0 : 1;
    if (i == 0 || primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary &&
         temporal < best_temporal) ||
        (primary == best_primary && secondary == best_secondary &&
         temporal == best_temporal && area < best_area)) {
      best_index = i;
      best_primary = primary;
      best_secondary = secondary;
      best_temporal = temporal;
      best_area = area;
    }
  }
  return best_index;
}

Status GRTree::Insert(const TimeExtent& extent, uint64_t payload,
                      int64_t ct) {
  GRTDB_RETURN_IF_ERROR(extent.Validate());
  NodeEntry entry;
  entry.bound = BoundSpec::FromExtent(extent);
  entry.payload = payload;
  std::vector<bool> reinsert_done(height_, false);
  GRTDB_RETURN_IF_ERROR(InsertAtLevel(entry, 0, ct, &reinsert_done));
  ++size_;
  return SaveAnchor();
}

Status GRTree::InsertAtLevel(const NodeEntry& entry, uint32_t level,
                             int64_t ct, std::vector<bool>* reinsert_done) {
  struct Pending {
    NodeEntry entry;
    uint32_t level;
  };
  std::deque<Pending> work;
  work.push_back(Pending{entry, level});
  while (!work.empty()) {
    Pending item = work.front();
    work.pop_front();
    bool split = false;
    NodeEntry split_entry;
    BoundSpec new_bound;
    std::vector<std::pair<NodeEntry, uint32_t>> evicted;
    GRTDB_RETURN_IF_ERROR(InsertRecursive(root_, item.entry, item.level, ct,
                                          reinsert_done, &split, &split_entry,
                                          &new_bound, &evicted));
    for (auto& [evicted_entry, evicted_level] : evicted) {
      work.push_back(Pending{evicted_entry, evicted_level});
    }
    if (split) {
      Node probe;
      GRTDB_RETURN_IF_ERROR(ReadNode(root_, &probe));
      Node new_root;
      new_root.level = probe.level + 1;
      new_root.entries.push_back(NodeEntry{new_bound, root_});
      new_root.entries.push_back(split_entry);
      NodeId new_root_id;
      GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&new_root_id));
      GRTDB_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
      root_ = new_root_id;
      ++height_;
      ++condense_epoch_;
      reinsert_done->resize(height_, false);
      GRTDB_RETURN_IF_ERROR(SaveAnchor());
    }
  }
  return Status::OK();
}

Status GRTree::InsertRecursive(
    NodeId node_id, const NodeEntry& entry, uint32_t level, int64_t ct,
    std::vector<bool>* reinsert_done, bool* split, NodeEntry* split_entry,
    BoundSpec* new_bound,
    std::vector<std::pair<NodeEntry, uint32_t>>* evicted) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *split = false;
  if (node.level == level) {
    node.entries.push_back(entry);
    if (node.entries.size() > max_entries_) {
      return HandleOverflow(node_id, &node, ct, reinsert_done, split,
                            split_entry, new_bound, evicted);
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *new_bound = NodeBound(node, ct);
    return Status::OK();
  }

  const size_t child_index = ChooseSubtree(node, entry.bound, ct);
  const NodeId child_id = node.entries[child_index].payload;
  bool child_split = false;
  NodeEntry child_split_entry;
  BoundSpec child_bound;
  GRTDB_RETURN_IF_ERROR(InsertRecursive(child_id, entry, level, ct,
                                        reinsert_done, &child_split,
                                        &child_split_entry, &child_bound,
                                        evicted));
  node.entries[child_index].bound = child_bound;
  if (child_split) {
    node.entries.push_back(child_split_entry);
    if (node.entries.size() > max_entries_) {
      return HandleOverflow(node_id, &node, ct, reinsert_done, split,
                            split_entry, new_bound, evicted);
    }
  }
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
  *new_bound = NodeBound(node, ct);
  return Status::OK();
}

Status GRTree::HandleOverflow(
    NodeId node_id, Node* node, int64_t ct, std::vector<bool>* reinsert_done,
    bool* split, NodeEntry* split_entry, BoundSpec* new_bound,
    std::vector<std::pair<NodeEntry, uint32_t>>* evicted) {
  const bool is_root = node_id == root_;
  const int64_t eval = ct + options_.horizon;
  if (options_.forced_reinsert && !is_root &&
      node->level < reinsert_done->size() &&
      !(*reinsert_done)[node->level]) {
    (*reinsert_done)[node->level] = true;
    const Region bound_region = NodeBound(*node, ct).Resolve(eval);
    std::vector<size_t> order(node->entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<double> distance(node->entries.size());
    for (size_t i = 0; i < node->entries.size(); ++i) {
      distance[i] =
          CenterDistance2(node->entries[i].bound.Resolve(eval), bound_region);
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return distance[a] < distance[b]; });
    const size_t evict_count = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction *
                               static_cast<double>(node->entries.size())));
    const size_t keep = node->entries.size() - evict_count;
    std::vector<NodeEntry> kept;
    kept.reserve(keep);
    for (size_t i = 0; i < keep; ++i) kept.push_back(node->entries[order[i]]);
    for (size_t i = keep; i < order.size(); ++i) {
      evicted->emplace_back(node->entries[order[i]], node->level);
    }
    node->entries = std::move(kept);
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, *node));
    *split = false;
    *new_bound = NodeBound(*node, ct);
    return Status::OK();
  }

  std::vector<NodeEntry> left;
  std::vector<NodeEntry> right;
  SplitEntries(node->entries, ct, &left, &right);
  Node right_node;
  right_node.level = node->level;
  right_node.entries = std::move(right);
  NodeId right_id;
  GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&right_id));
  GRTDB_RETURN_IF_ERROR(WriteNode(right_id, right_node));
  node->entries = std::move(left);
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, *node));
  ++condense_epoch_;
  *split = true;
  *split_entry = NodeEntry{NodeBound(right_node, ct), right_id};
  *new_bound = NodeBound(*node, ct);
  return Status::OK();
}

void GRTree::SplitEntries(const std::vector<NodeEntry>& entries, int64_t ct,
                          std::vector<NodeEntry>* left,
                          std::vector<NodeEntry>* right) const {
  const size_t total = entries.size();
  const size_t m = min_entries_;
  const int64_t eval = ct + options_.horizon;

  std::vector<Region> resolved(total);
  for (size_t i = 0; i < total; ++i) {
    resolved[i] = entries[i].bound.Resolve(eval);
  }

  struct Candidate {
    std::vector<size_t> order;
    size_t split_at = 0;
    double overlap = 0.0;
    double area = 0.0;
  };

  auto evaluate_axis = [&](bool tt_axis, double* margin_sum,
                           Candidate* best) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<size_t> order(total);
      for (size_t i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Region& ra = resolved[a];
        const Region& rb = resolved[b];
        const int64_t ka = tt_axis ? (by_upper ? ra.tt2() : ra.tt1())
                                   : (by_upper ? ra.vt2() : ra.vt1());
        const int64_t kb = tt_axis ? (by_upper ? rb.tt2() : rb.tt1())
                                   : (by_upper ? rb.vt2() : rb.vt1());
        return ka < kb;
      });
      // Cumulative encoded bounds, resolved for metric evaluation.
      std::vector<BoundSpec> prefix(total);
      std::vector<BoundSpec> suffix(total);
      for (size_t i = 0; i < total; ++i) {
        const BoundSpec& b = entries[order[i]].bound;
        if (i == 0) {
          prefix[i] = b;
        } else {
          const BoundSpec pair[2] = {prefix[i - 1], b};
          prefix[i] = BoundSpec::Enclose(pair, ct);
        }
      }
      for (size_t i = total; i-- > 0;) {
        const BoundSpec& b = entries[order[i]].bound;
        if (i + 1 == total) {
          suffix[i] = b;
        } else {
          const BoundSpec pair[2] = {suffix[i + 1], b};
          suffix[i] = BoundSpec::Enclose(pair, ct);
        }
      }
      for (size_t k = m; k + m <= total; ++k) {
        const Region lb = prefix[k - 1].Resolve(eval);
        const Region rb = suffix[k].Resolve(eval);
        *margin_sum += lb.Margin() + rb.Margin();
        const double overlap = lb.IntersectionArea(rb);
        const double area = lb.Area() + rb.Area();
        if (best->order.empty() || overlap < best->overlap ||
            (overlap == best->overlap && area < best->area)) {
          best->order = order;
          best->split_at = k;
          best->overlap = overlap;
          best->area = area;
        }
      }
    }
  };

  double tt_margin = 0.0;
  double vt_margin = 0.0;
  Candidate tt_best;
  Candidate vt_best;
  evaluate_axis(true, &tt_margin, &tt_best);
  evaluate_axis(false, &vt_margin, &vt_best);
  const Candidate& chosen = (tt_margin <= vt_margin) ? tt_best : vt_best;

  left->clear();
  right->clear();
  for (size_t i = 0; i < chosen.split_at; ++i) {
    left->push_back(entries[chosen.order[i]]);
  }
  for (size_t i = chosen.split_at; i < total; ++i) {
    right->push_back(entries[chosen.order[i]]);
  }
}

// --------------------------------------------------------------- delete ---

Status GRTree::Delete(const TimeExtent& extent, uint64_t payload, int64_t ct,
                      bool* found) {
  const BoundSpec target = BoundSpec::FromExtent(extent);
  *found = false;
  bool removed_node = false;
  bool structure_changed = false;
  std::vector<std::pair<NodeEntry, uint32_t>> orphans;
  BoundSpec new_bound;
  GRTDB_RETURN_IF_ERROR(DeleteRecursive(root_, target, payload, ct, found,
                                        &removed_node, &orphans, &new_bound,
                                        &structure_changed));
  if (!*found) return Status::OK();
  --size_;
  if (removed_node) {
    return Status::Internal("root unexpectedly removed");
  }
  if (structure_changed) {
    ++condense_epoch_;
    std::stable_sort(
        orphans.begin(), orphans.end(),
        [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<bool> reinsert_done(height_, true);
    for (auto& [entry, level] : orphans) {
      GRTDB_RETURN_IF_ERROR(InsertAtLevel(entry, level, ct, &reinsert_done));
    }
    GRTDB_RETURN_IF_ERROR(ShrinkRoot());
  }
  return SaveAnchor();
}

Status GRTree::DeleteRecursive(
    NodeId node_id, const BoundSpec& target, uint64_t payload, int64_t ct,
    bool* found, bool* removed_node,
    std::vector<std::pair<NodeEntry, uint32_t>>* orphans,
    BoundSpec* new_bound, bool* structure_changed) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *removed_node = false;
  const bool postpone =
      options_.deletion_policy == DeletionPolicy::kPostponeReinsert;

  auto handle_underfull = [&](uint32_t entry_level) -> Status {
    if (node_id != root_ && node.entries.size() < min_entries_) {
      if (postpone) {
        has_pending_condense_ = true;
        GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
        *new_bound = NodeBound(node, ct);
        return Status::OK();
      }
      for (const NodeEntry& entry : node.entries) {
        orphans->emplace_back(entry, entry_level);
      }
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(node_id));
      *removed_node = true;
      *structure_changed = true;
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *new_bound = NodeBound(node, ct);
    return Status::OK();
  };

  if (node.level == 0) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].payload == payload &&
          node.entries[i].bound == target) {
        node.entries.erase(node.entries.begin() + i);
        *found = true;
        break;
      }
    }
    if (!*found) return Status::OK();
    return handle_underfull(0);
  }

  const Region target_region = target.Resolve(ct);
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].bound.Resolve(ct).Contains(target_region)) continue;
    bool child_removed = false;
    BoundSpec child_bound;
    GRTDB_RETURN_IF_ERROR(DeleteRecursive(
        node.entries[i].payload, target, payload, ct, found, &child_removed,
        orphans, &child_bound, structure_changed));
    if (!*found) continue;
    if (child_removed) {
      node.entries.erase(node.entries.begin() + i);
    } else {
      node.entries[i].bound = child_bound;
    }
    return handle_underfull(node.level);
  }
  return Status::OK();
}

Status GRTree::ShrinkRoot() {
  while (true) {
    Node root_node;
    GRTDB_RETURN_IF_ERROR(ReadNode(root_, &root_node));
    if (root_node.level == 0) break;
    if (root_node.entries.empty()) {
      root_node.level = 0;
      GRTDB_RETURN_IF_ERROR(WriteNode(root_, root_node));
      height_ = 1;
      break;
    }
    if (root_node.entries.size() != 1) break;
    const NodeId child = root_node.entries[0].payload;
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(root_));
    root_ = child;
    --height_;
    ++condense_epoch_;
  }
  return Status::OK();
}

Status GRTree::FlushPending(int64_t ct) {
  if (!has_pending_condense_) return Status::OK();

  std::vector<std::pair<NodeEntry, uint32_t>> orphans;
  // Post-order condense: collect entries of underfull non-root nodes.
  std::function<Status(NodeId, bool, bool*, BoundSpec*)> condense =
      [&](NodeId node_id, bool is_root, bool* removed,
          BoundSpec* bound) -> Status {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
    *removed = false;
    if (node.level > 0) {
      for (size_t i = 0; i < node.entries.size();) {
        bool child_removed = false;
        BoundSpec child_bound;
        GRTDB_RETURN_IF_ERROR(condense(node.entries[i].payload, false,
                                       &child_removed, &child_bound));
        if (child_removed) {
          node.entries.erase(node.entries.begin() + i);
        } else {
          node.entries[i].bound = child_bound;
          ++i;
        }
      }
    }
    if (!is_root && node.entries.size() < min_entries_) {
      for (const NodeEntry& entry : node.entries) {
        orphans.emplace_back(entry, node.level);
      }
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(node_id));
      *removed = true;
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *bound = NodeBound(node, ct);
    return Status::OK();
  };

  bool removed = false;
  BoundSpec bound;
  GRTDB_RETURN_IF_ERROR(condense(root_, /*is_root=*/true, &removed, &bound));
  ++condense_epoch_;
  has_pending_condense_ = false;

  std::stable_sort(
      orphans.begin(), orphans.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<bool> reinsert_done(height_, true);
  for (auto& [entry, level] : orphans) {
    GRTDB_RETURN_IF_ERROR(InsertAtLevel(entry, level, ct, &reinsert_done));
  }
  GRTDB_RETURN_IF_ERROR(ShrinkRoot());
  return SaveAnchor();
}

// --------------------------------------------------------------- search ---

GRTree::Cursor::Cursor(GRTree* tree, PredicateOp op, TimeExtent query,
                       int64_t ct)
    : tree_(tree),
      op_(op),
      query_extent_(query),
      query_(ResolveExtent(query, ct)),
      ct_(ct),
      epoch_(tree->condense_epoch()) {}

bool GRTree::Cursor::InternalMatches(const BoundSpec& bound) const {
  return GRTree::InternalTest(op_, bound.Resolve(ct_), query_);
}

bool GRTree::Cursor::LeafMatches(const BoundSpec& bound) const {
  return GRTree::LeafTest(op_, bound.Resolve(ct_), query_);
}

Status GRTree::Cursor::PushNode(NodeId id) {
  Node node;
  GRTDB_RETURN_IF_ERROR(tree_->ReadNode(id, &node));
  Frame frame;
  frame.id = id;
  frame.level = node.level;
  frame.entries.reserve(node.entries.size());
  for (const NodeEntry& entry : node.entries) {
    frame.entries.emplace_back(entry.bound, entry.payload);
  }
  frame.next = 0;
  stack_.push_back(std::move(frame));
  return Status::OK();
}

void GRTree::Cursor::Reset() {
  stack_.clear();
  epoch_ = tree_->condense_epoch();
  needs_prime_ = true;
  ++restarts_;
}

Status GRTree::Cursor::Next(bool* has, Entry* out) {
  *has = false;
  if (tree_->condense_epoch() != epoch_) {
    // The tree condensed under us (paper §5.5): restart from the root.
    // Entries already returned stay in returned_ and are skipped.
    Reset();
  }
  if (needs_prime_) {
    needs_prime_ = false;
    GRTDB_RETURN_IF_ERROR(PushNode(tree_->root_));
  }
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    if (frame.next >= frame.entries.size()) {
      stack_.pop_back();
      continue;
    }
    const auto& [bound, payload] = frame.entries[frame.next];
    ++frame.next;
    if (frame.level == 0) {
      if (LeafMatches(bound) && returned_.find(payload) == returned_.end()) {
        returned_.insert(payload);
        out->extent = ExtentFromBound(bound);
        out->payload = payload;
        *has = true;
        return Status::OK();
      }
    } else if (InternalMatches(bound)) {
      GRTDB_RETURN_IF_ERROR(PushNode(payload));
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<GRTree::Cursor>> GRTree::Search(
    PredicateOp op, const TimeExtent& query, int64_t ct) {
  return std::unique_ptr<Cursor>(new Cursor(this, op, query, ct));
}

Status GRTree::SearchAll(PredicateOp op, const TimeExtent& query, int64_t ct,
                         std::vector<Entry>* out) {
  out->clear();
  auto cursor_or = Search(op, query, ct);
  if (!cursor_or.ok()) return cursor_or.status();
  std::unique_ptr<Cursor> cursor = std::move(cursor_or).value();
  while (true) {
    bool has = false;
    Entry entry;
    GRTDB_RETURN_IF_ERROR(cursor->Next(&has, &entry));
    if (!has) break;
    out->push_back(entry);
  }
  return Status::OK();
}

StatusOr<double> GRTree::EstimateScanCost(PredicateOp op,
                                          const TimeExtent& query,
                                          int64_t ct) const {
  const Region query_region = ResolveExtent(query, ct);
  double cost = 1.0;
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    uint64_t overlapping = 0;
    bool children_are_leaves = false;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      if (node.level == 0) return cost;
      children_are_leaves = node.level == 1;
      for (const NodeEntry& entry : node.entries) {
        if (InternalTest(op, entry.bound.Resolve(ct), query_region)) {
          ++overlapping;
          if (!children_are_leaves) next.push_back(entry.payload);
        }
      }
    }
    cost += static_cast<double>(overlapping);
    if (children_are_leaves) break;
    frontier = std::move(next);
  }
  return cost;
}

// ---------------------------------------------------------------- check ---

Status GRTree::CheckConsistency(int64_t ct) const {
  uint64_t leaf_entries = 0;
  GRTDB_RETURN_IF_ERROR(
      CheckRecursive(root_, height_ - 1, nullptr, ct, &leaf_entries));
  if (leaf_entries != size_) {
    return Status::Corruption("size mismatch: anchor says " +
                              std::to_string(size_) + ", tree holds " +
                              std::to_string(leaf_entries));
  }
  return Status::OK();
}

Status GRTree::CheckRecursive(NodeId node_id, uint32_t expected_level,
                              const BoundSpec* parent_bound, int64_t ct,
                              uint64_t* leaf_entries) const {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node_id != root_ && node.entries.size() < min_entries_ &&
      !has_pending_condense_) {
    return Status::Corruption("underfull node");
  }
  if (node.entries.size() > max_entries_) {
    return Status::Corruption("overfull node");
  }
  if (parent_bound != nullptr) {
    // The minimum bounding region must contain each entry now and at every
    // later time; sample the future (growing regions are monotone, so
    // violations show up at sampled horizons).
    const int64_t samples[4] = {ct, ct + 1, ct + options_.horizon,
                                ct + 10 * options_.horizon};
    for (const NodeEntry& entry : node.entries) {
      for (int64_t t : samples) {
        if (!parent_bound->ContainsAt(entry.bound, t)) {
          return Status::Corruption(
              "bound " + parent_bound->ToString() + " does not contain " +
              entry.bound.ToString() + " at t=" + std::to_string(t));
        }
      }
    }
  }
  if (node.level == 0) {
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const NodeEntry& entry : node.entries) {
    GRTDB_RETURN_IF_ERROR(CheckRecursive(entry.payload, node.level - 1,
                                         &entry.bound, ct, leaf_entries));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- stats ---

Status GRTree::ComputeStats(int64_t ct, uint64_t dead_space_samples,
                            GRTreeStats* out) const {
  out->size = size_;
  out->height = height_;
  out->nodes = 0;
  out->levels.assign(height_, GRTreeLevelStats{});
  for (uint32_t i = 0; i < height_; ++i) out->levels[i].level = i;

  uint64_t seed = 0x9d2c5680;
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      GRTreeLevelStats& stats = out->levels[node.level];
      ++out->nodes;
      ++stats.nodes;
      stats.entries += node.entries.size();
      std::vector<Region> resolved(node.entries.size());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const BoundSpec& bound = node.entries[i].bound;
        resolved[i] = bound.Resolve(ct);
        if (node.level > 0) {
          if (bound.rectangle) {
            ++stats.rect_bounds;
          } else {
            ++stats.stair_bounds;
          }
          if (bound.hidden) {
            ++stats.hidden_bounds;
            if (bound.vt_end.IsGround() && bound.vt_end.chronon() < ct) {
              ++stats.hidden_escaped;
            }
          }
          if (bound.Grows()) ++stats.growing_bounds;
        } else if (bound.Grows()) {
          ++stats.growing_entries;
          stats.growing_area += resolved[i].Area();
        } else {
          ++stats.dead_entries;
        }
        stats.total_area += resolved[i].Area();
        for (size_t j = 0; j < i; ++j) {
          stats.overlap_area += resolved[i].IntersectionArea(resolved[j]);
        }
      }
      if (node.level > 0) {
        // Dead space of each child bound w.r.t. the grandchild regions.
        for (const NodeEntry& entry : node.entries) {
          next.push_back(entry.payload);
          if (dead_space_samples > 0) {
            Node child;
            GRTDB_RETURN_IF_ERROR(ReadNode(entry.payload, &child));
            std::vector<Region> child_regions;
            child_regions.reserve(child.entries.size());
            for (const NodeEntry& child_entry : child.entries) {
              child_regions.push_back(child_entry.bound.Resolve(ct));
            }
            stats.dead_space += Region::DeadSpaceSampled(
                entry.bound.Resolve(ct), child_regions, dead_space_samples,
                ++seed);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

// ------------------------------------------------------------- bulkload ---

Status GRTree::BulkLoad(std::vector<Entry> entries, int64_t ct) {
  if (size_ != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (entries.empty()) return Status::OK();
  const size_t fill = std::max<size_t>(
      2, static_cast<size_t>(0.7 * static_cast<double>(max_entries_)));
  size_ = entries.size();

  std::vector<NodeEntry> current;
  current.reserve(entries.size());
  for (const Entry& entry : entries) {
    current.push_back(
        NodeEntry{BoundSpec::FromExtent(entry.extent), entry.payload});
  }

  auto center_tt = [&](const NodeEntry& entry) {
    const Region r = entry.bound.Resolve(ct);
    return r.tt1() + r.tt2();
  };
  auto center_vt = [&](const NodeEntry& entry) {
    const Region r = entry.bound.Resolve(ct);
    return r.vt1() + r.vt2();
  };

  uint32_t level = 0;
  NodeId last_node = kInvalidNodeId;
  while (true) {
    const size_t node_count = (current.size() + fill - 1) / fill;
    const size_t slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    const size_t slab_size = slabs * fill;
    std::sort(current.begin(), current.end(),
              [&](const NodeEntry& a, const NodeEntry& b) {
                return center_tt(a) < center_tt(b);
              });
    std::vector<std::vector<NodeEntry>> groups;
    for (size_t s = 0; s * slab_size < current.size(); ++s) {
      const size_t begin = s * slab_size;
      const size_t end = std::min(current.size(), begin + slab_size);
      std::sort(current.begin() + begin, current.begin() + end,
                [&](const NodeEntry& a, const NodeEntry& b) {
                  return center_vt(a) < center_vt(b);
                });
      for (size_t i = begin; i < end; i += fill) {
        groups.emplace_back(current.begin() + i,
                            current.begin() + std::min(end, i + fill));
      }
    }
    // STR remainders can leave underfull tail groups; rebalance them with a
    // neighbour so the min-fill invariant holds for every non-root node.
    for (size_t i = 0; groups.size() > 1 && i < groups.size();) {
      if (groups[i].size() >= min_entries_) {
        ++i;
        continue;
      }
      const size_t neighbor = i > 0 ? i - 1 : i + 1;
      std::vector<NodeEntry> merged = std::move(groups[std::min(i, neighbor)]);
      std::vector<NodeEntry>& other = groups[std::max(i, neighbor)];
      merged.insert(merged.end(), other.begin(), other.end());
      groups.erase(groups.begin() + std::max(i, neighbor));
      if (merged.size() <= max_entries_) {
        groups[std::min(i, neighbor)] = std::move(merged);
      } else {
        const size_t half = merged.size() / 2;
        groups[std::min(i, neighbor)].assign(merged.begin(),
                                             merged.begin() + half);
        groups.insert(groups.begin() + std::min(i, neighbor) + 1,
                      std::vector<NodeEntry>(merged.begin() + half,
                                             merged.end()));
      }
      i = std::min(i, neighbor);
    }
    std::vector<NodeEntry> next_level;
    for (std::vector<NodeEntry>& group : groups) {
      Node node;
      node.level = level;
      node.entries = std::move(group);
      NodeId id;
      GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&id));
      GRTDB_RETURN_IF_ERROR(WriteNode(id, node));
      next_level.push_back(NodeEntry{NodeBound(node, ct), id});
      last_node = id;
    }
    if (next_level.size() == 1) {
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(root_));
      root_ = last_node;
      height_ = level + 1;
      ++condense_epoch_;
      return SaveAnchor();
    }
    current = std::move(next_level);
    ++level;
  }
}

Status GRTree::Drop() {
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
    if (node.level > 0) {
      for (const NodeEntry& entry : node.entries) {
        frontier.push_back(entry.payload);
      }
    }
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(id));
  }
  GRTDB_RETURN_IF_ERROR(store_->FreeNode(anchor_));
  root_ = kInvalidNodeId;
  anchor_ = kInvalidNodeId;
  size_ = 0;
  height_ = 1;
  return Status::OK();
}

}  // namespace grtdb
