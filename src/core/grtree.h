#ifndef GRTDB_CORE_GRTREE_H_
#define GRTDB_CORE_GRTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/status.h"
#include "storage/node_store.h"
#include "temporal/extent.h"
#include "temporal/region.h"

namespace grtdb {

// The bitemporal predicates an index scan can evaluate — the operator
// class's strategy functions (paper §5.2). For each, the tree knows both
// the leaf-exact test and the internal-node pruning test (the hard-coded
// "...Internal()" functions of §5.2).
enum class PredicateOp {
  kOverlaps,
  kContains,     // data region contains the query region
  kContainedIn,  // data region contained in the query region
  kEqual,
};

// How deletions interact with open scans (paper §5.5).
enum class DeletionPolicy {
  // Restart the scan from the root after every deletion.
  kRestartAlways,
  // Restart only when the deletion actually condensed the tree (the
  // compromise the paper's prototype chose).
  kRestartOnCondense,
  // Never condense during the scan: underfull nodes are tolerated until
  // FlushPending() re-balances, so scans keep their position.
  kPostponeReinsert,
};

struct GRTreeLevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;
  uint64_t stair_bounds = 0;
  uint64_t rect_bounds = 0;
  uint64_t hidden_bounds = 0;
  // Hidden bounds whose fixed valid-time top the current time has already
  // passed (§3's adjustment resolves their VTend as NOW).
  uint64_t hidden_escaped = 0;
  uint64_t growing_bounds = 0;  // TTend = UC
  double total_area = 0.0;      // at the stats call's current time
  double overlap_area = 0.0;    // pairwise within-node overlap
  double dead_space = 0.0;      // Monte-Carlo sampled, internal levels only
  // Leaf level only: current versions whose region still grows with time
  // (TTend = UC) vs. logically deleted entries whose transaction time
  // closed — the paper keeps both in the same tree, so their ratio is the
  // index-health signal UPDATE STATISTICS surfaces.
  uint64_t growing_entries = 0;
  uint64_t dead_entries = 0;
  double growing_area = 0.0;  // resolved area of the still-growing entries
};

struct GRTreeStats {
  uint64_t size = 0;
  uint32_t height = 0;
  uint64_t nodes = 0;
  std::vector<GRTreeLevelStats> levels;
};

// The GR-tree [BJSS98, paper §3]: an R*-tree-derived disk index for
// now-relative bitemporal data. Node entries carry four timestamps that may
// include the variables UC and NOW plus the "Rectangle" and "Hidden" flags,
// so minimum bounding regions can be growing rectangles or growing
// stair-shapes; all penalty metrics are evaluated at `ct + horizon`, the
// time parameter capturing the development of entries over time.
//
// Every operation takes the current time `ct` explicitly: the DataBlade
// decides whether that is per-statement or per-transaction time (§5.4).
class GRTree {
 public:
  struct Options {
    size_t max_entries = 0;  // 0 = derive from the page size
    double min_fill = 0.4;
    double reinsert_fraction = 0.3;
    bool forced_reinsert = true;
    // The time parameter: penalties are evaluated this many chronons past
    // the operation's current time.
    int64_t horizon = 30;
    // Ablation switch (bench T4): false forces every internal bounding
    // region to be a rectangle, as a plain R*-tree would.
    bool stair_bounds = true;
    DeletionPolicy deletion_policy = DeletionPolicy::kRestartOnCondense;
  };

  struct Entry {
    TimeExtent extent;
    uint64_t payload = 0;
  };

  // A scan over qualifying leaf entries (the Cursor object of Table 5:
  // query predicate + tree-traversal state). Created by Search(); stays
  // valid across deletions according to the tree's DeletionPolicy — it
  // restarts itself when the tree's condense epoch moved, skipping entries
  // it already returned.
  class Cursor {
   public:
    // Fetches the next qualifying entry; *has = false at end of scan.
    Status Next(bool* has, Entry* out);

    // Restarts from the root; already-returned entries stay skipped.
    void Reset();

    uint64_t restarts() const { return restarts_; }

   private:
    friend class GRTree;

    struct Frame {
      NodeId id = kInvalidNodeId;
      uint32_t level = 0;
      std::vector<std::pair<BoundSpec, uint64_t>> entries;
      size_t next = 0;
    };

    Cursor(GRTree* tree, PredicateOp op, TimeExtent query, int64_t ct);

    Status PushNode(NodeId id);
    bool InternalMatches(const BoundSpec& bound) const;
    bool LeafMatches(const BoundSpec& bound) const;

    GRTree* tree_;
    PredicateOp op_;
    TimeExtent query_extent_;
    Region query_;
    int64_t ct_;
    uint64_t epoch_;
    uint64_t restarts_ = 0;
    bool needs_prime_ = true;
    std::vector<Frame> stack_;
    std::set<uint64_t> returned_;
  };

  static StatusOr<std::unique_ptr<GRTree>> Create(NodeStore* store,
                                                  const Options& options,
                                                  NodeId* anchor);
  static StatusOr<std::unique_ptr<GRTree>> Open(NodeStore* store,
                                                NodeId anchor,
                                                const Options& options);

  GRTree(const GRTree&) = delete;
  GRTree& operator=(const GRTree&) = delete;

  // Inserts a (validated) extent. `ct` is the operation's current time.
  Status Insert(const TimeExtent& extent, uint64_t payload, int64_t ct);

  // Removes one entry matching (extent, payload) exactly.
  Status Delete(const TimeExtent& extent, uint64_t payload, int64_t ct,
                bool* found);

  // Opens a scan for `op`(data, query) evaluated at current time `ct`.
  StatusOr<std::unique_ptr<Cursor>> Search(PredicateOp op,
                                           const TimeExtent& query,
                                           int64_t ct);

  // Convenience: drains a full scan.
  Status SearchAll(PredicateOp op, const TimeExtent& query, int64_t ct,
                   std::vector<Entry>* out);

  // Estimated node reads for a scan (am_scancost).
  StatusOr<double> EstimateScanCost(PredicateOp op, const TimeExtent& query,
                                    int64_t ct) const;

  // Re-balances nodes left underfull by kPostponeReinsert deletions.
  Status FlushPending(int64_t ct);

  // Structural invariants (am_check): levels, fill, bound containment at
  // `ct` and at sampled future times (growing bounds must stay valid).
  Status CheckConsistency(int64_t ct) const;

  // Structure statistics (am_stats / benches T4, T5). Dead space is
  // sampled with `dead_space_samples` Monte-Carlo points per node (0
  // disables).
  Status ComputeStats(int64_t ct, uint64_t dead_space_samples,
                      GRTreeStats* out) const;

  // Bulk-loads an empty tree bottom-up (vacuum rebuild path, bench T9).
  Status BulkLoad(std::vector<Entry> entries, int64_t ct);

  // Frees every node including the anchor.
  Status Drop();

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  NodeId anchor() const { return anchor_; }
  size_t max_entries() const { return max_entries_; }
  uint64_t condense_epoch() const { return condense_epoch_; }
  const Options& options() const { return options_; }

  // Internal-node pruning test for `op` — the hard-coded counterpart of a
  // strategy function (OverlapsInternal() etc., §5.2). Exposed for tests.
  static bool InternalTest(PredicateOp op, const Region& bound,
                           const Region& query);
  // Exact leaf test for `op`.
  static bool LeafTest(PredicateOp op, const Region& data,
                       const Region& query);

 private:
  struct NodeEntry {
    BoundSpec bound;
    uint64_t payload = 0;
  };
  struct Node {
    uint32_t level = 0;
    std::vector<NodeEntry> entries;
  };

  GRTree(NodeStore* store, const Options& options)
      : store_(store), options_(options) {}

  Status LoadAnchor();
  Status SaveAnchor();
  Status ReadNode(NodeId id, Node* node) const;
  Status WriteNode(NodeId id, const Node& node);

  // Minimum bounding region of a node's entries, honoring the stair_bounds
  // ablation option.
  BoundSpec NodeBound(const Node& node, int64_t ct) const;

  size_t ChooseSubtree(const Node& node, const BoundSpec& bound,
                       int64_t ct) const;

  Status InsertAtLevel(const NodeEntry& entry, uint32_t level, int64_t ct,
                       std::vector<bool>* reinsert_done);
  Status InsertRecursive(
      NodeId node_id, const NodeEntry& entry, uint32_t level, int64_t ct,
      std::vector<bool>* reinsert_done, bool* split, NodeEntry* split_entry,
      BoundSpec* new_bound,
      std::vector<std::pair<NodeEntry, uint32_t>>* evicted);
  Status HandleOverflow(
      NodeId node_id, Node* node, int64_t ct,
      std::vector<bool>* reinsert_done, bool* split, NodeEntry* split_entry,
      BoundSpec* new_bound,
      std::vector<std::pair<NodeEntry, uint32_t>>* evicted);
  void SplitEntries(const std::vector<NodeEntry>& entries, int64_t ct,
                    std::vector<NodeEntry>* left,
                    std::vector<NodeEntry>* right) const;

  Status DeleteRecursive(
      NodeId node_id, const BoundSpec& target, uint64_t payload, int64_t ct,
      bool* found, bool* removed_node,
      std::vector<std::pair<NodeEntry, uint32_t>>* orphans,
      BoundSpec* new_bound, bool* structure_changed);
  Status ShrinkRoot();

  Status CheckRecursive(NodeId node_id, uint32_t expected_level,
                        const BoundSpec* parent_bound, int64_t ct,
                        uint64_t* leaf_entries) const;

  NodeStore* store_;
  Options options_;
  size_t max_entries_ = 0;
  size_t min_entries_ = 0;
  NodeId anchor_ = kInvalidNodeId;
  NodeId root_ = kInvalidNodeId;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
  uint64_t condense_epoch_ = 0;
  bool has_pending_condense_ = false;
};

}  // namespace grtdb

#endif  // GRTDB_CORE_GRTREE_H_
