#include "common/status.h"

namespace grtdb {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kLockTimeout:
      return "LockTimeout";
    case Status::Code::kDeadlock:
      return "Deadlock";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace grtdb
