#ifndef GRTDB_COMMON_RANDOM_H_
#define GRTDB_COMMON_RANDOM_H_

#include <cstdint>

namespace grtdb {

// Deterministic xorshift128+ generator for workloads and tests. We avoid
// std::mt19937 in hot paths: this is smaller, faster, and its sequences are
// stable across standard-library versions so benchmark workloads are
// reproducible everywhere.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace grtdb

#endif  // GRTDB_COMMON_RANDOM_H_
