#ifndef GRTDB_COMMON_STRINGS_H_
#define GRTDB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace grtdb {

// Returns `s` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view s);

// ASCII upper/lower-casing (SQL identifiers are case-insensitive).
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits `s` on `sep`, trimming whitespace from each piece. Empty pieces are
// kept so callers can detect malformed input.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace grtdb

#endif  // GRTDB_COMMON_STRINGS_H_
