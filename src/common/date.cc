#include "common/date.h"

#include <cstdio>
#include <cstdlib>

namespace grtdb {

namespace {

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

int64_t DayNumberFromCivil(const CivilDate& date) {
  int64_t y = date.year;
  unsigned m = static_cast<unsigned>(date.month);
  unsigned d = static_cast<unsigned>(date.day);
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate CivilFromDayNumber(int64_t day_number) {
  int64_t z = day_number + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  CivilDate out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  return out;
}

bool IsValidCivil(const CivilDate& date) {
  if (date.month < 1 || date.month > 12) return false;
  if (date.day < 1 || date.day > DaysInMonth(date.year, date.month)) {
    return false;
  }
  return true;
}

Status ParseDate(const std::string& text, int64_t* day_number) {
  int month = 0;
  int day = 0;
  int year = 0;
  char trailing = '\0';
  int fields =
      std::sscanf(text.c_str(), "%d/%d/%d%c", &month, &day, &year, &trailing);
  if (fields != 3) {
    return Status::InvalidArgument("expected mm/dd/yyyy date, got '" + text +
                                   "'");
  }
  if (year < 100) year += (year < 50) ? 2000 : 1900;
  CivilDate date{year, month, day};
  if (!IsValidCivil(date)) {
    return Status::InvalidArgument("invalid calendar date '" + text + "'");
  }
  *day_number = DayNumberFromCivil(date);
  return Status::OK();
}

std::string FormatDate(int64_t day_number) {
  CivilDate date = CivilFromDayNumber(day_number);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", date.month, date.day,
                date.year);
  return buf;
}

}  // namespace grtdb
