#ifndef GRTDB_COMMON_STATUS_H_
#define GRTDB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace grtdb {

// Status reports the outcome of an operation that can fail. Library code in
// this project does not throw; every fallible operation returns a Status (or
// a StatusOr<T>). Modeled on the RocksDB/Abseil idiom.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNotSupported,
    kAlreadyExists,
    kLockTimeout,
    kDeadlock,
    kAborted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(Code::kLockTimeout, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsLockTimeout() const { return code_ == Code::kLockTimeout; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Human-readable "CODE: message" string for logs and test diagnostics.
  std::string ToString() const;

  // Copy of this status with `note` appended to the message — for
  // surfacing a secondary failure (a cleanup or close that also went
  // wrong) without masking the primary error. No-op when this status is
  // OK or the note is empty.
  Status WithNote(const std::string& note) const {
    if (ok() || note.empty()) return *this;
    return Status(code_, msg_.empty() ? note : msg_ + "; " + note);
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// StatusOr<T> holds either a value or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error Status is the idiom.
      : status_(std::move(status)) {
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT: implicit from value is the idiom.
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK Status out of the enclosing function.
#define GRTDB_RETURN_IF_ERROR(expr)       \
  do {                                    \
    ::grtdb::Status _st = (expr);         \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace grtdb

#endif  // GRTDB_COMMON_STATUS_H_
