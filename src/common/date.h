#ifndef GRTDB_COMMON_DATE_H_
#define GRTDB_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace grtdb {

// Proleptic-Gregorian civil date. The GR-tree prototype uses a granularity of
// days (paper §5.1); chronons throughout this project are day numbers with
// day 0 = 1970-01-01 (negative values reach back before the epoch).
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

// Days since 1970-01-01 for the given civil date (Howard Hinnant's
// days_from_civil algorithm).
int64_t DayNumberFromCivil(const CivilDate& date);

// Inverse of DayNumberFromCivil.
CivilDate CivilFromDayNumber(int64_t day_number);

// True when `date` names a real calendar day (accounting for leap years).
bool IsValidCivil(const CivilDate& date);

// Parses "mm/dd/yyyy" (the DATE text format used in the paper's SQL
// examples, e.g. "12/10/95"; two-digit years are interpreted in 1950-2049).
Status ParseDate(const std::string& text, int64_t* day_number);

// Formats a day number as "mm/dd/yyyy".
std::string FormatDate(int64_t day_number);

}  // namespace grtdb

#endif  // GRTDB_COMMON_DATE_H_
