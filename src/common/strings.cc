#include "common/strings.h"

#include <cctype>

namespace grtdb {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    out.emplace_back(StripWhitespace(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace grtdb
