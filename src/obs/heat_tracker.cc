#include "obs/heat_tracker.h"

#include <algorithm>

namespace grtdb {
namespace obs {

HeatTracker::HeatTracker(size_t max_nodes)
    : max_nodes_(max_nodes == 0 ? 1 : max_nodes) {}

uint32_t HeatTracker::RegisterStore(const std::string& label) {
  std::lock_guard<std::mutex> lock(stores_mu_);
  auto it = store_ids_.find(label);
  if (it != store_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(store_labels_.size());
  store_labels_.push_back(label);
  store_ids_[label] = id;
  return id;
}

double HeatTracker::Decayed(const NodeHeat& entry, uint64_t epoch) {
  double heat = entry.heat;
  // Halve once per elapsed epoch; past ~60 halvings any double is dust.
  for (uint64_t e = entry.epoch; e < epoch && heat > 0.0; ++e) {
    heat *= 0.5;
    if (e - entry.epoch > 64) return 0.0;
  }
  return heat;
}

void HeatTracker::RecordAccess(uint32_t store, uint64_t node,
                               HeatAccess access, uint64_t pin_wait_ns) {
  // The epoch clock ticks on recorded traffic, not wall time: an idle
  // server's heat map stays put, a busy one forgets at a rate proportional
  // to its own throughput.
  const uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
  if ((op + 1) % kOpsPerEpoch == 0) {
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const uint64_t key = KeyFor(store, node);
  Shard& shard = shards_[key % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.nodes.find(key);
  if (it == shard.nodes.end()) {
    if (admitted_.load(std::memory_order_relaxed) >= max_nodes_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    it = shard.nodes.emplace(key, NodeHeat{}).first;
    it->second.epoch = epoch;
  }
  NodeHeat& entry = it->second;
  entry.heat = Decayed(entry, epoch);
  entry.epoch = epoch;
  switch (access) {
    case HeatAccess::kRead:
      ++entry.reads;
      entry.heat += 1.0;
      break;
    case HeatAccess::kWrite:
      ++entry.writes;
      entry.heat += kWriteWeight;
      break;
  }
  entry.pin_wait_ns += pin_wait_ns;
}

std::vector<HotNode> HeatTracker::Snapshot() const {
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::vector<std::string> labels;
  {
    std::lock_guard<std::mutex> lock(stores_mu_);
    labels = store_labels_;
  }
  std::vector<HotNode> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.nodes) {
      HotNode row;
      const uint32_t store = static_cast<uint32_t>(key >> 48);
      row.store = store < labels.size() ? labels[store]
                                        : "store_" + std::to_string(store);
      row.node = key & ((1ull << 48) - 1);
      row.heat = Decayed(entry, epoch);
      row.reads = entry.reads;
      row.writes = entry.writes;
      row.pin_wait_ns = entry.pin_wait_ns;
      out.push_back(std::move(row));
    }
  }
  std::sort(out.begin(), out.end(), [](const HotNode& a, const HotNode& b) {
    if (a.heat != b.heat) return a.heat > b.heat;
    if (a.store != b.store) return a.store < b.store;
    return a.node < b.node;
  });
  return out;
}

void HeatTracker::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.nodes.clear();
  }
  admitted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace grtdb
