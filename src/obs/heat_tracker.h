#ifndef GRTDB_OBS_HEAT_TRACKER_H_
#define GRTDB_OBS_HEAT_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace grtdb {
namespace obs {

// The access vocabulary for per-node heat accounting. Like FlightEvent and
// SpanName, recording sites must pass an enumerator, never a raw number
// (grtdb_analyze's heat-access rule rejects numeric access codes fed to
// RecordAccess).
enum class HeatAccess : uint8_t {
  kRead = 0,   // node image served to a traversal (ReadNode/ViewNode)
  kWrite = 1,  // node image replaced (WriteNode)
};

// One ranked row of a heat snapshot: a (store, node) pair with its decayed
// heat score and raw tallies. `store` is the label the owning layer chose
// at registration — blades register the index name, so sys_hot_nodes joins
// sys_index_stats on it.
struct HotNode {
  std::string store;
  uint64_t node = 0;
  double heat = 0.0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t pin_wait_ns = 0;
};

// Server-wide per-node access-heat tracker, fed by every NodeCache wired to
// it. Disabled by default: the gate is one relaxed atomic load, so dormant
// instrumentation costs a branch per node access and nothing else — no
// clock reads, no locks, no allocation. When armed (SET HEAT_TRACK = 1)
// each access takes one of kShards striped mutexes and bumps a decaying
// counter keyed by (store, node).
//
// Decay: a global epoch advances every kOpsPerEpoch recorded accesses, and
// a counter touched in epoch E after last being touched in epoch E0 is
// first halved (E - E0) times. Heat therefore ranks *recent* traffic — an
// old bulk load cannot outshout the current hot path — while the raw
// read/write/pin-wait tallies stay cumulative for the bench's assertions.
//
// Bounded: at most max_nodes distinct (store, node) keys are retained
// across all shards; accesses to new keys beyond the cap are counted in
// dropped() instead of admitted, so a scan over an arbitrarily large index
// cannot balloon the tracker.
class HeatTracker {
 public:
  static constexpr size_t kDefaultMaxNodes = 4096;
  // Read weight 1, write weight kWriteWeight: a written node is hotter
  // than a read node at equal frequency (writers exclude readers).
  static constexpr double kWriteWeight = 4.0;
  static constexpr uint64_t kOpsPerEpoch = 8192;

  explicit HeatTracker(size_t max_nodes = kDefaultMaxNodes);

  HeatTracker(const HeatTracker&) = delete;
  HeatTracker& operator=(const HeatTracker&) = delete;

  // The ~0-cost dormant gate. Recording sites check this themselves before
  // doing any timing work (the pin-wait clock reads are gated too).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Registers a store label (typically the index name) and returns the id
  // RecordAccess wants. Re-registering an existing label returns the same
  // id, so every cache of a reopened index aggregates into one store.
  uint32_t RegisterStore(const std::string& label);

  // Records one node access. `pin_wait_ns` is the time the caller spent
  // blocked acquiring the frame latch (0 when it was free). Safe from any
  // thread; when the tracker is disabled this still works but recording
  // sites skip the call entirely to keep the dormant path free.
  void RecordAccess(uint32_t store, uint64_t node, HeatAccess access,
                    uint64_t pin_wait_ns = 0);

  // Every retained node, decayed to the current epoch and ranked by heat
  // descending (ties broken by store/node for determinism).
  std::vector<HotNode> Snapshot() const;

  // Drops all retained counters (store registrations survive).
  void Clear();

  // Accesses not admitted because the node cap was reached.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  size_t max_nodes() const { return max_nodes_; }

 private:
  static constexpr size_t kShards = 16;

  struct NodeHeat {
    double heat = 0.0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t pin_wait_ns = 0;
    uint64_t epoch = 0;  // epoch `heat` was last decayed to
  };

  struct Shard {
    mutable std::mutex mu;
    // Key packs (store, node); see KeyFor.
    std::unordered_map<uint64_t, NodeHeat> nodes;
  };

  static uint64_t KeyFor(uint32_t store, uint64_t node) {
    // 16 bits of store id over 48 bits of node id: node ids are frame/page
    // ordinals, nowhere near 2^48, and a server has nowhere near 2^16
    // indexes.
    return (static_cast<uint64_t>(store) << 48) | (node & ((1ull << 48) - 1));
  }

  static double Decayed(const NodeHeat& entry, uint64_t epoch);

  const size_t max_nodes_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> dropped_{0};
  Shard shards_[kShards];

  mutable std::mutex stores_mu_;
  std::vector<std::string> store_labels_;
  std::unordered_map<std::string, uint32_t> store_ids_;
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_HEAT_TRACKER_H_
