#ifndef GRTDB_OBS_METRICS_H_
#define GRTDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace grtdb {
namespace obs {

// Server-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms. The hot path is pure relaxed atomics on handles the caller
// obtained once from the registry; the registry mutex is taken only at
// registration and Snapshot() time, never per increment. Handles are
// stable for the registry's lifetime (values are heap-allocated and never
// erased), so subsystems cache the pointer at wiring time.

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Power-of-two bucketed histogram: bucket i counts values v with
// bit_width(v) == i (bucket 0 holds v == 0), so bucket i covers
// [2^(i-1), 2^i). The last bucket absorbs everything at or above
// 2^(kBuckets-2). Units are the caller's (commit latencies record
// microseconds, batch-size histograms record counts).
class Histogram {
 public:
  static constexpr size_t kBuckets = 22;

  void Record(uint64_t v) {
    size_t b = 0;
    while (b + 1 < kBuckets && (v >> b) != 0) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Exclusive upper bound of bucket i (the last bucket has none).
  static uint64_t BucketBound(size_t i) { return 1ull << i; }

  // Estimated q-quantile (0 < q <= 1) from the bucket counts, linearly
  // interpolated inside the winning power-of-two bucket. An empty
  // histogram reports 0; the open-ended overflow bucket reports its lower
  // bound. Relaxed reads make this an estimate under concurrent
  // recording — the usual monitoring contract, same as Snapshot().
  uint64_t Quantile(double q) const {
    uint64_t counts[kBuckets];
    uint64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0;
    // The 1-based rank of the sample the quantile lands on.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      if (seen + counts[i] < rank) {
        seen += counts[i];
        continue;
      }
      if (i == 0) return 0;  // bucket 0 holds v == 0 exactly
      const uint64_t lo = 1ull << (i - 1);  // bucket i covers [2^(i-1), 2^i)
      if (i + 1 == kBuckets) return lo;
      const double into = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return lo + static_cast<uint64_t>(into * static_cast<double>(lo));
    }
    return 0;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One metric at Snapshot() time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;    // counter/gauge value; histograms report count/sum
  uint64_t count = 0;   // histogram sample count
  uint64_t sum = 0;     // histogram value sum
  // Non-empty histogram buckets rendered "lt<bound>:<count>", space
  // separated; the overflow bucket renders "inf:<count>".
  std::string buckets;

  const char* KindName() const {
    switch (kind) {
      case Kind::kCounter: return "counter";
      case Kind::kGauge: return "gauge";
      case Kind::kHistogram: return "histogram";
    }
    return "?";
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. The returned pointer is stable for the
  // registry's lifetime; callers cache it and update through it without
  // further registry involvement.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Consistent-enough snapshot of every registered metric, sorted by
  // (name, kind). Values are read with relaxed loads; concurrent updates
  // may or may not be visible, which is the usual monitoring contract.
  std::vector<MetricSample> Snapshot() const;

  // Zeroes every metric (benchmark epochs); handles stay valid.
  void ResetAll();

  // Prometheus text exposition format (EXPORT METRICS, tools/grtdb_metrics):
  // names are prefixed "grtdb_" with '.' mapped to '_', each metric gets a
  // "# TYPE" line, and histograms render as cumulative _bucket{le="..."}
  // series (inclusive upper bounds, so le="N" counts v <= N) plus the
  // mandatory le="+Inf", _sum, and _count series and precomputed _p50 /
  // _p99 quantile gauges (Quantile() estimates).
  std::string ExportText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_METRICS_H_
