#ifndef GRTDB_OBS_FLIGHT_RECORDER_H_
#define GRTDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace grtdb {
namespace obs {

// The flight recorder's entire event vocabulary. Every event ID lives in
// this one enum and renders through FlightEventName(); emission sites must
// pass an enumerator, never a raw number (grtdb_lint's flight-event rule
// rejects numeric first arguments to RecordEvent).
enum class FlightEvent : uint8_t {
  kTxnBegin = 0,     // a = txn id
  kTxnCommit,        // a = txn id
  kTxnAbort,         // a = txn id
  kCheckpoint,       // a = log bytes dropped
  kRecoveryBegin,    // (no operands; emitted before the log scan)
  kRecoveryEnd,      // a = txns replayed, b = txns discarded
  kLockTimeout,      // a = resource id, b = txn id
  kLockDeadlock,     // a = resource id, b = txn id
  kCacheEviction,    // a = node id, b = 1 when the victim was dirty
  kSlowPurposeCall,  // a = PurposeFn index, b = call duration (ns)
};
inline constexpr size_t kFlightEventCount = 10;

// Generic event name, e.g. "txn_begin". Async-signal-safe (static table);
// out-of-range values render as "event_unknown".
const char* FlightEventName(FlightEvent event);

// One stitched event as returned by Dump().
struct FlightEventRecord {
  uint64_t ticks = 0;   // obs::Ticks() at emission
  uint64_t thread = 0;  // hashed id of the emitting thread
  uint64_t index = 0;   // per-thread emission number (ring position)
  FlightEvent event = FlightEvent::kTxnBegin;
  uint64_t a = 0;
  uint64_t b = 0;
};

// Always-on black box: the last kSlotsPerThread structured events of every
// thread, kept in per-thread single-writer rings so the record path is
// lock-free and wait-free (two relaxed atomic ring-cursor ops plus a
// seqlock publish, ~15 ns). Readers (DUMP FLIGHT, the fatal-signal handler)
// stitch the rings without stopping writers: each slot carries a seqlock
// generation, odd while a write is in flight, so a torn slot is skipped
// rather than mis-read. All slot fields are relaxed atomics, which keeps
// concurrent dump-during-write TSan-clean by construction.
//
// Unlike the MetricsRegistry/TraceFacility (per-Server, gated on
// ServerOptions.observability), the recorder is process-global and enabled
// by default: its purpose is the seconds *before* a crash, when nobody had
// observability turned on yet.
class FlightRecorder {
 public:
  static constexpr size_t kSlotsPerThread = 256;
  static constexpr size_t kMaxThreads = 64;
  static constexpr uint64_t kDefaultSlowPurposeNs = 10'000'000;  // 10 ms

  // The process-wide recorder. Intentionally leaked so it outlives every
  // thread and remains valid inside the signal handler during shutdown.
  static FlightRecorder& Global();

  // Appends one event to the calling thread's ring. Lock-free; safe from
  // any thread at any time. If more than kMaxThreads threads are live at
  // once the overflow threads' events are counted in lost() and dropped.
  void RecordEvent(FlightEvent event, uint64_t a = 0, uint64_t b = 0);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Purpose calls slower than this are recorded as kSlowPurposeCall by
  // PurposeCallScope. 0 disables the check.
  uint64_t slow_purpose_ns() const {
    return slow_purpose_ns_.load(std::memory_order_relaxed);
  }
  void set_slow_purpose_ns(uint64_t ns) {
    slow_purpose_ns_.store(ns, std::memory_order_relaxed);
  }

  // Stitches every thread's ring into one list sorted by emission tick.
  // Slots being concurrently written are skipped, not blocked on.
  std::vector<FlightEventRecord> Dump() const;

  // Async-signal-safe dump: writes "FLIGHT ..." lines straight to `fd`
  // via write(2) — no locks, no allocation, no stdio. Used by the fatal
  // signal handler with fd 2; callable from tests against a pipe.
  void DumpToFd(int fd) const;

  // Installs the fatal-signal handler (SIGABRT/SIGSEGV/SIGBUS/SIGFPE/
  // SIGILL) that dumps the recorder to stderr and re-raises with the
  // default disposition (SA_RESETHAND). Idempotent; first caller wins.
  static void InstallSignalHandler();

  // Events dropped because more than kMaxThreads threads were live.
  uint64_t lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  // One event slot. seq is the seqlock generation: odd while the writer is
  // between its two stores, even when the payload is stable.
  struct Slot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint8_t> event{0};
  };

  // A single-writer ring. `next` counts emissions forever (position =
  // next % kSlotsPerThread); `thread` is the hashed owner id; `in_use`
  // gates reuse after the owning thread exits — the slots themselves are
  // kept, so a post-mortem dump still shows exited threads' last events.
  struct ThreadBuffer {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> thread{0};
    std::atomic<bool> in_use{false};
    Slot slots[kSlotsPerThread];
  };

  // Releases the thread's buffer for reuse on thread exit.
  struct ThreadHandle {
    ThreadBuffer* buffer = nullptr;
    ~ThreadHandle();
  };

  FlightRecorder() = default;

  // The calling thread's ring, registering (or reusing a released) buffer
  // on first use. nullptr when kMaxThreads rings are all live.
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> slow_purpose_ns_{kDefaultSlowPurposeNs};
  std::atomic<uint64_t> lost_{0};

  // Buffers are published append-only with a release store and never
  // freed, so the signal handler can walk [0, buffer_count_) without
  // synchronization.
  std::atomic<ThreadBuffer*> buffers_[kMaxThreads] = {};
  std::atomic<size_t> buffer_count_{0};
  std::mutex register_mu_;  // serializes registration/reuse only
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_FLIGHT_RECORDER_H_
