#include "obs/fast_clock.h"

namespace grtdb {
namespace obs {

namespace {

// Spins for ~200 us measuring ticks against steady_clock. Run once at
// first use; every later NsPerTick() is a guarded static read.
double Calibrate() {
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t k0 = Ticks();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (elapsed >= 200000) {
      const uint64_t k1 = Ticks();
      if (k1 == k0) return 1.0;  // tick source stuck; degrade gracefully
      return static_cast<double>(elapsed) / static_cast<double>(k1 - k0);
    }
  }
}

}  // namespace

double NsPerTick() {
  static const double ns_per_tick = Calibrate();
  return ns_per_tick;
}

}  // namespace obs
}  // namespace grtdb
