#include "obs/flight_recorder.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>

#include "obs/fast_clock.h"

namespace grtdb {
namespace obs {

namespace {

// Writes the decimal rendering of `v` into `buf` (which must hold at least
// 21 bytes) and returns the digit count. Async-signal-safe.
size_t U64ToDec(uint64_t v, char* buf) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

// write(2) wrapper that retries short writes; best-effort (a failing fd
// during a crash dump has no recovery).
void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t put = ::write(fd, data, len);
    if (put <= 0) return;
    data += static_cast<size_t>(put);
    len -= static_cast<size_t>(put);
  }
}

extern "C" void FlightSignalHandler(int sig) {
  // SA_RESETHAND already restored the default disposition, so re-raising
  // after the dump terminates the process with the original signal.
  FlightRecorder::Global().DumpToFd(STDERR_FILENO);
  ::raise(sig);
}

}  // namespace

const char* FlightEventName(FlightEvent event) {
  // The single registry of event names; kept in enum order and sized by
  // kFlightEventCount so a skew fails the static_assert, not the dump.
  static const char* const kNames[kFlightEventCount] = {
      "txn_begin",    "txn_commit",    "txn_abort",
      "checkpoint",   "recovery_begin", "recovery_end",
      "lock_timeout", "lock_deadlock", "cache_eviction",
      "slow_purpose_call",
  };
  const auto i = static_cast<size_t>(event);
  return i < kFlightEventCount ? kNames[i] : "event_unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::ThreadHandle::~ThreadHandle() {
  if (buffer != nullptr) {
    buffer->in_use.store(false, std::memory_order_release);
  }
}

FlightRecorder::ThreadBuffer* FlightRecorder::BufferForThisThread() {
  thread_local ThreadHandle handle;
  if (handle.buffer != nullptr) return handle.buffer;

  std::lock_guard<std::mutex> lock(register_mu_);
  const size_t count = buffer_count_.load(std::memory_order_relaxed);
  ThreadBuffer* buffer = nullptr;
  // Prefer reusing a ring released by an exited thread: each slot's events
  // stay attributed to their original thread via the per-buffer thread id
  // overwritten below, and the old slots age out of the ring naturally.
  for (size_t i = 0; i < count; ++i) {
    ThreadBuffer* candidate = buffers_[i].load(std::memory_order_relaxed);
    if (!candidate->in_use.load(std::memory_order_acquire)) {
      buffer = candidate;
      break;
    }
  }
  if (buffer == nullptr) {
    if (count == kMaxThreads) return nullptr;
    buffer = new ThreadBuffer();  // immortal: published below, never freed
    buffers_[count].store(buffer, std::memory_order_release);
    buffer_count_.store(count + 1, std::memory_order_release);
  }
  buffer->in_use.store(true, std::memory_order_relaxed);
  buffer->thread.store(
      std::hash<std::thread::id>{}(std::this_thread::get_id()),
      std::memory_order_relaxed);
  handle.buffer = buffer;
  return buffer;
}

void FlightRecorder::RecordEvent(FlightEvent event, uint64_t a, uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer == nullptr) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t n = buffer->next.load(std::memory_order_relaxed);
  Slot& slot = buffer->slots[n % kSlotsPerThread];
  // Seqlock publish: odd generation marks the write in flight so a
  // concurrent dump skips the slot instead of reading a torn record.
  const uint32_t gen = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(gen + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ticks.store(Ticks(), std::memory_order_relaxed);
  slot.event.store(static_cast<uint8_t>(event), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(gen + 2, std::memory_order_release);
  buffer->next.store(n + 1, std::memory_order_release);
}

std::vector<FlightEventRecord> FlightRecorder::Dump() const {
  std::vector<FlightEventRecord> records;
  const size_t count = buffer_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    const ThreadBuffer* buffer = buffers_[i].load(std::memory_order_acquire);
    const uint64_t next = buffer->next.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(next, kSlotsPerThread);
    for (uint64_t pos = next - n; pos < next; ++pos) {
      const Slot& slot = buffer->slots[pos % kSlotsPerThread];
      const uint32_t gen = slot.seq.load(std::memory_order_acquire);
      if (gen & 1) continue;  // write in flight
      FlightEventRecord record;
      record.ticks = slot.ticks.load(std::memory_order_relaxed);
      record.event =
          static_cast<FlightEvent>(slot.event.load(std::memory_order_relaxed));
      record.a = slot.a.load(std::memory_order_relaxed);
      record.b = slot.b.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != gen) continue;  // torn
      record.thread = buffer->thread.load(std::memory_order_relaxed);
      record.index = pos;
      records.push_back(record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const FlightEventRecord& x, const FlightEventRecord& y) {
              if (x.ticks != y.ticks) return x.ticks < y.ticks;
              if (x.thread != y.thread) return x.thread < y.thread;
              return x.index < y.index;
            });
  return records;
}

void FlightRecorder::DumpToFd(int fd) const {
  WriteAll(fd, "FLIGHT DUMP BEGIN\n", 18);
  const size_t count = buffer_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    const ThreadBuffer* buffer = buffers_[i].load(std::memory_order_acquire);
    const uint64_t next = buffer->next.load(std::memory_order_acquire);
    const uint64_t n = next < kSlotsPerThread ? next : kSlotsPerThread;
    const uint64_t thread = buffer->thread.load(std::memory_order_relaxed);
    for (uint64_t pos = next - n; pos < next; ++pos) {
      const Slot& slot = buffer->slots[pos % kSlotsPerThread];
      const uint32_t gen = slot.seq.load(std::memory_order_acquire);
      if (gen & 1) continue;
      const uint64_t ticks = slot.ticks.load(std::memory_order_relaxed);
      const uint8_t event = slot.event.load(std::memory_order_relaxed);
      const uint64_t a = slot.a.load(std::memory_order_relaxed);
      const uint64_t b = slot.b.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != gen) continue;
      // "FLIGHT t=<thread> ticks=<ticks> <event> a=<a> b=<b>\n", composed
      // with only stack buffers and write(2).
      char line[160];
      size_t len = 0;
      const auto append = [&](const char* s) {
        const size_t l = std::strlen(s);
        std::memcpy(line + len, s, l);
        len += l;
      };
      append("FLIGHT t=");
      len += U64ToDec(thread, line + len);
      append(" ticks=");
      len += U64ToDec(ticks, line + len);
      append(" ");
      append(FlightEventName(static_cast<FlightEvent>(event)));
      append(" a=");
      len += U64ToDec(a, line + len);
      append(" b=");
      len += U64ToDec(b, line + len);
      line[len++] = '\n';
      WriteAll(fd, line, len);
    }
  }
  WriteAll(fd, "FLIGHT DUMP END\n", 16);
}

void FlightRecorder::InstallSignalHandler() {
  static std::once_flag installed;
  std::call_once(installed, [] {
    Global();  // force construction before any signal can arrive
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &FlightSignalHandler;
    sigemptyset(&action.sa_mask);
    // One shot: the handler runs with the default disposition restored, so
    // its re-raise terminates instead of recursing on a crashing dump.
    action.sa_flags = SA_RESETHAND;
    const int signals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};
    for (const int sig : signals) {
      ::sigaction(sig, &action, nullptr);
    }
  });
}

}  // namespace obs
}  // namespace grtdb
