#ifndef GRTDB_OBS_FAST_CLOCK_H_
#define GRTDB_OBS_FAST_CLOCK_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace grtdb {
namespace obs {

// Raw tick source for hot-path interval timing. steady_clock::now() is a
// vDSO call (~20-25 ns); two of them per purpose-function invocation is
// the single largest cost of per-call profiling. The hardware counters
// below are ~5-10 ns and monotonic on every platform we build for
// (constant_tsc x86, the generic timer on aarch64); elsewhere the
// steady_clock fallback keeps the code correct.
inline uint64_t Ticks() {
#if defined(__x86_64__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Nanoseconds per tick, calibrated once per process against steady_clock.
double NsPerTick();

// Converts a tick interval (not an absolute tick) to nanoseconds.
inline uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NsPerTick());
}

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_FAST_CLOCK_H_
