#include "obs/slow_query_log.h"

namespace grtdb {
namespace obs {

void SlowQueryLog::MaybeRecord(const std::string& sql, uint64_t total_ns,
                               const QueryProfile& profile,
                               uint64_t session_id, uint64_t trace_id) {
  const uint64_t threshold = threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == 0 || total_ns < threshold) return;

  SlowQueryEntry entry;
  entry.sql = sql;
  entry.session_id = session_id;
  entry.trace_id = trace_id;
  entry.total_ns = total_ns;
  for (size_t i = 0; i < kPurposeFnCount; ++i) {
    const auto fn = static_cast<PurposeFn>(i);
    entry.calls[i] = profile.calls(fn);
    entry.ns[i] = profile.call_ns(fn);
  }
  entry.rows_scanned = profile.rows_scanned;
  entry.rows_returned = profile.rows_returned;
  entry.node_reads = profile.node_reads;
  entry.cache_hits = profile.cache_hits;
  entry.lock_waits = profile.lock_waits;
  entry.lock_wait_ns = profile.lock_wait_ns;

  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    // Full: overwrite the oldest slot and advance the logical start.
    ring_[first_] = std::move(entry);
    first_ = (first_ + 1) % capacity_;
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  first_ = 0;
}

}  // namespace obs
}  // namespace grtdb
