#include "obs/query_profile.h"

namespace grtdb {
namespace obs {

namespace {
thread_local QueryProfile* g_current_profile = nullptr;
}  // namespace

const char* PurposeFnName(PurposeFn fn) {
  switch (fn) {
    case PurposeFn::kAmCreate: return "am_create";
    case PurposeFn::kAmDrop: return "am_drop";
    case PurposeFn::kAmOpen: return "am_open";
    case PurposeFn::kAmClose: return "am_close";
    case PurposeFn::kAmBeginScan: return "am_beginscan";
    case PurposeFn::kAmEndScan: return "am_endscan";
    case PurposeFn::kAmRescan: return "am_rescan";
    case PurposeFn::kAmGetNext: return "am_getnext";
    case PurposeFn::kAmInsert: return "am_insert";
    case PurposeFn::kAmDelete: return "am_delete";
    case PurposeFn::kAmUpdate: return "am_update";
    case PurposeFn::kAmScanCost: return "am_scancost";
    case PurposeFn::kAmStats: return "am_stats";
    case PurposeFn::kAmCheck: return "am_check";
  }
  return "purpose_unknown";
}

void QueryProfile::Reset() {
  for (size_t i = 0; i < kPurposeFnCount; ++i) {
    calls_[i] = 0;
    ns_[i] = 0;
  }
  sequence_.clear();
  sequence_dropped_ = 0;
  rows_scanned = 0;
  rows_returned = 0;
  node_reads = 0;
  cache_hits = 0;
  lock_waits = 0;
  lock_wait_ns = 0;
}

void QueryProfile::CountCall(PurposeFn fn) {
  ++calls_[static_cast<size_t>(fn)];
  if (sequence_.size() < kMaxSequence) {
    sequence_.push_back(fn);
  } else {
    ++sequence_dropped_;
  }
}

void QueryProfile::AddCallTime(PurposeFn fn, uint64_t ns) {
  ns_[static_cast<size_t>(fn)] += ns;
}

uint64_t QueryProfile::total_calls() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kPurposeFnCount; ++i) total += calls_[i];
  return total;
}

std::vector<std::string> QueryProfile::Report() const {
  std::vector<std::string> lines;
  for (size_t i = 0; i < kPurposeFnCount; ++i) {
    if (calls_[i] == 0) continue;
    lines.push_back("PROFILE " +
                    std::string(PurposeFnName(static_cast<PurposeFn>(i))) +
                    " calls=" + std::to_string(calls_[i]) +
                    " total_us=" + std::to_string(ns_[i] / 1000));
  }
  if (!sequence_.empty()) {
    // Run-length compress the call sequence: "am_open am_beginscan
    // am_getnext x61 am_endscan am_close".
    std::string seq = "PROFILE sequence:";
    size_t i = 0;
    while (i < sequence_.size()) {
      size_t run = 1;
      while (i + run < sequence_.size() && sequence_[i + run] == sequence_[i]) {
        ++run;
      }
      seq += ' ';
      seq += PurposeFnName(sequence_[i]);
      if (run > 1) seq += " x" + std::to_string(run);
      i += run;
    }
    if (sequence_dropped_ > 0) {
      seq += " ... +" + std::to_string(sequence_dropped_) + " dropped";
    }
    lines.push_back(std::move(seq));
  }
  lines.push_back("PROFILE rows_scanned=" + std::to_string(rows_scanned) +
                  " rows_returned=" + std::to_string(rows_returned));
  lines.push_back("PROFILE node_reads=" + std::to_string(node_reads) +
                  " cache_hits=" + std::to_string(cache_hits) +
                  " lock_waits=" + std::to_string(lock_waits) +
                  " lock_wait_us=" + std::to_string(lock_wait_ns / 1000));
  return lines;
}

QueryProfile* CurrentProfile() { return g_current_profile; }

ScopedProfile::ScopedProfile(QueryProfile* profile)
    : prev_(g_current_profile) {
  g_current_profile = profile;
}

ScopedProfile::~ScopedProfile() { g_current_profile = prev_; }

}  // namespace obs
}  // namespace grtdb
