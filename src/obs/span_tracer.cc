#include "obs/span_tracer.h"

#include <thread>

namespace grtdb {
namespace obs {

namespace {

const char* const kSpanNames[kSpanNameCount] = {
    "request",     // kRequest
    "queue_wait",  // kQueueWait
    "decode",      // kWireDecode
    "respond",     // kRespond
    "gate_wait",   // kGateWait
    "parse",       // kParse
    "plan",        // kPlan
    "exec",        // kExec
    "lock_wait",   // kLockWait
    "node_io",     // kNodeIo
    "purpose",     // kPurpose
    "wal_wait",    // kWalWait
};

uint64_t HashedThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

const char* SpanNameString(SpanName name) {
  const auto i = static_cast<size_t>(name);
  if (i >= kSpanNameCount) return "span_unknown";
  return kSpanNames[i];
}

TraceHandle SpanTracer::StartTrace(uint64_t wire_trace_id) {
  if (wire_trace_id != 0) {
    // Client asked for this request to be traced; honor it regardless of
    // the sampling rate so wire ids are always joinable against sys_spans.
    return TraceHandle{this, wire_trace_id, 0};
  }
  const uint32_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0) return TraceHandle{};
  if (n > 1 &&
      sample_counter_.fetch_add(1, std::memory_order_relaxed) % n != 0) {
    return TraceHandle{};
  }
  return TraceHandle{
      this, next_trace_id_.fetch_add(1, std::memory_order_relaxed), 0};
}

TraceHandle SpanTracer::StartTraceForced() {
  return TraceHandle{
      this, next_trace_id_.fetch_add(1, std::memory_order_relaxed), 0};
}

void SpanTracer::EmitSpan(const TraceHandle& handle, SpanName name,
                          uint64_t start_ticks, uint64_t end_ticks,
                          uint64_t a, uint64_t b) {
  if (!handle.active()) return;
  SpanRecord r;
  r.trace_id = handle.trace_id;
  r.span_id = handle.tracer->NextSpanId();
  r.parent_id = handle.parent_span;
  r.start_ticks = start_ticks;
  r.end_ticks = end_ticks;
  r.a = a;
  r.b = b;
  r.name = name;
  handle.tracer->Record(r);
}

void SpanTracer::Record(const SpanRecord& record) {
  SpanRecord entry = record;
  entry.thread = HashedThreadId();
  admitted_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(entry);
  } else {
    // Full: overwrite the oldest slot and advance the logical start.
    ring_[first_] = entry;
    first_ = (first_ + 1) % capacity_;
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> SpanTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> SpanTracer::SnapshotTrace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const SpanRecord& r = ring_[(first_ + i) % ring_.size()];
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  first_ = 0;
}

}  // namespace obs
}  // namespace grtdb
