#ifndef GRTDB_OBS_SLOW_QUERY_LOG_H_
#define GRTDB_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_profile.h"

namespace grtdb {
namespace obs {

// One retained slow statement: the SQL text plus a frozen copy of its
// QueryProfile (full Fig. 6 purpose-call breakdown and the row/IO/lock
// counters), as surfaced by the sys_slow_queries view.
struct SlowQueryEntry {
  uint64_t seq = 0;  // monotone admission number (never reused)
  std::string sql;
  uint64_t session_id = 0;  // which session ran it (0 = unknown)
  uint64_t trace_id = 0;    // cross-link into sys_spans (0 = not sampled)
  uint64_t total_ns = 0;
  uint64_t calls[kPurposeFnCount] = {};
  uint64_t ns[kPurposeFnCount] = {};
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t node_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_ns = 0;
};

// Bounded ring of finished statements that ran longer than the SQL-settable
// threshold (SET SLOW_QUERY_NS = N; 0, the default, disables retention).
// The threshold check is a single relaxed atomic load, so statements under
// the threshold — the overwhelming majority — pay no lock and no copy; only
// admitted entries take the mutex.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  // Retains (sql, profile) when the threshold is set and total_ns reaches
  // it, evicting the oldest entry once the ring is full. session_id and
  // trace_id attribute the entry to its session and (when the statement
  // was sampled) its span trace.
  void MaybeRecord(const std::string& sql, uint64_t total_ns,
                   const QueryProfile& profile, uint64_t session_id = 0,
                   uint64_t trace_id = 0);

  // Retained entries, oldest first.
  std::vector<SlowQueryEntry> Snapshot() const;

  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  std::atomic<uint64_t> threshold_ns_{0};
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // ring_[(first_ + i) % size] logical
  size_t first_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_SLOW_QUERY_LOG_H_
