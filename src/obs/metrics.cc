#include "obs/metrics.h"

#include <algorithm>

namespace grtdb {
namespace obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.value = static_cast<int64_t>(counter->value());
    out.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.value = gauge->value();
    out.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    std::string buckets;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = histogram->bucket(i);
      if (n == 0) continue;
      if (!buckets.empty()) buckets += ' ';
      if (i + 1 == Histogram::kBuckets) {
        buckets += "inf:" + std::to_string(n);
      } else {
        buckets += "lt" + std::to_string(Histogram::BucketBound(i)) + ":" +
                   std::to_string(n);
      }
    }
    sample.buckets = std::move(buckets);
    out.push_back(std::move(sample));
  }
  // maps iterate sorted; interleave the three kinds into one name order.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace grtdb
