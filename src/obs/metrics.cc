#include "obs/metrics.h"

#include <algorithm>

namespace grtdb {
namespace obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.value = static_cast<int64_t>(counter->value());
    out.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.value = gauge->value();
    out.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    std::string buckets;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = histogram->bucket(i);
      if (n == 0) continue;
      if (!buckets.empty()) buckets += ' ';
      if (i + 1 == Histogram::kBuckets) {
        buckets += "inf:" + std::to_string(n);
      } else {
        buckets += "lt" + std::to_string(Histogram::BucketBound(i)) + ":" +
                   std::to_string(n);
      }
    }
    sample.buckets = std::move(buckets);
    out.push_back(std::move(sample));
  }
  // maps iterate sorted; interleave the three kinds into one name order.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return out;
}

namespace {

// "wal.commit.us" -> "grtdb_wal_commit_us". Prometheus metric names admit
// [a-zA-Z0-9_:]; everything else becomes '_'.
std::string PromName(const std::string& name) {
  std::string out = "grtdb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
      cumulative += histogram->bucket(i);
      // Bucket i covers v < 2^i; with integer samples that is the
      // inclusive le = 2^i - 1 Prometheus wants.
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketBound(i) - 1) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(histogram->count()) +
           "\n";
    out += prom + "_sum " + std::to_string(histogram->sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->count()) + "\n";
    // Precomputed tail quantiles as gauges: scrapers that can't run
    // histogram_quantile (or dashboards that want the cheap answer) read
    // these directly. Estimates, interpolated within the winning bucket.
    out += "# TYPE " + prom + "_p50 gauge\n";
    out += prom + "_p50 " + std::to_string(histogram->Quantile(0.5)) + "\n";
    out += "# TYPE " + prom + "_p99 gauge\n";
    out += prom + "_p99 " + std::to_string(histogram->Quantile(0.99)) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace grtdb
