#ifndef GRTDB_OBS_QUERY_PROFILE_H_
#define GRTDB_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grtdb {
namespace obs {

// The Virtual Index Interface purpose functions (paper Fig. 6), in the
// order the profile report lists them.
enum class PurposeFn {
  kAmCreate,
  kAmDrop,
  kAmOpen,
  kAmClose,
  kAmBeginScan,
  kAmEndScan,
  kAmRescan,
  kAmGetNext,
  kAmInsert,
  kAmDelete,
  kAmUpdate,
  kAmScanCost,
  kAmStats,
  kAmCheck,
};
inline constexpr size_t kPurposeFnCount = 14;

// The generic (pre-resolution) name, e.g. "am_getnext".
const char* PurposeFnName(PurposeFn fn);

// Per-statement execution profile (paper Fig. 6 accounting): every VII
// purpose-function invocation counted and timed, the invocation sequence,
// and the substrate work attributable to the statement. Reset at the start
// of each statement; not thread-safe (one statement executes on one
// thread; substrate layers reach it through CurrentProfile()).
class QueryProfile {
 public:
  void Reset();

  void CountCall(PurposeFn fn);
  void AddCallTime(PurposeFn fn, uint64_t ns);

  uint64_t calls(PurposeFn fn) const {
    return calls_[static_cast<size_t>(fn)];
  }
  uint64_t call_ns(PurposeFn fn) const {
    return ns_[static_cast<size_t>(fn)];
  }
  uint64_t total_calls() const;
  const std::vector<PurposeFn>& sequence() const { return sequence_; }

  // Statement-attributable row and substrate counters, incremented
  // directly by the executor and (via CurrentProfile()) by the node cache
  // and lock manager.
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t node_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_ns = 0;

  // Human/machine-readable report lines, each prefixed "PROFILE".
  std::vector<std::string> Report() const;

 private:
  // The sequence is capped so a huge scan cannot balloon the profile;
  // counts stay exact, only the ordered tail is dropped.
  static constexpr size_t kMaxSequence = 4096;

  uint64_t calls_[kPurposeFnCount] = {};
  uint64_t ns_[kPurposeFnCount] = {};
  std::vector<PurposeFn> sequence_;
  uint64_t sequence_dropped_ = 0;
};

// Thread-local attribution point: the profile of the statement currently
// executing on this thread, or null. Substrate layers (node cache, lock
// manager) use it to charge work to the statement without plumbing a
// context through every NodeStore call.
QueryProfile* CurrentProfile();

// RAII scope installing `profile` as the thread's current profile.
class ScopedProfile {
 public:
  explicit ScopedProfile(QueryProfile* profile);
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  QueryProfile* prev_;
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_QUERY_PROFILE_H_
