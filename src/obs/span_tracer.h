#ifndef GRTDB_OBS_SPAN_TRACER_H_
#define GRTDB_OBS_SPAN_TRACER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/fast_clock.h"

namespace grtdb {
namespace obs {

// The tracer's entire span vocabulary: every phase a request crosses on its
// way from the wire to the WAL. Like FlightEvent, emission sites must pass
// an enumerator, never a raw number (grtdb_lint's span-name rule rejects
// numeric span arguments to SpanScope/TraceScope/EmitSpan).
enum class SpanName : uint8_t {
  kRequest = 0,   // root: one wire request (or embedded Execute)
  kQueueWait,     // accept-queue enqueue -> worker pickup; a = queue depth
  kWireDecode,    // frame payload -> Request struct
  kRespond,       // ResultSet -> response frame -> socket write
  kGateWait,      // statement-gate acquisition; a = 1 when exclusive
  kParse,         // SQL text -> statement list
  kPlan,          // plan-cache consult; a = 1 hit, 0 miss
  kExec,          // statement execution (the std::visit body)
  kLockWait,      // blocked in the lock manager; a = resource, b = txn
  kNodeIo,        // node-cache miss serviced from the inner store; a = node
  kPurpose,       // one VII purpose call; a = PurposeFn index
  kWalWait,       // group-commit: enqueue -> durable; a = records, b = bytes
};
inline constexpr size_t kSpanNameCount = 12;

// Static-table name, e.g. "exec"; out-of-range renders as "span_unknown".
const char* SpanNameString(SpanName name);

// One finished span as retained by the buffer / returned by Snapshot().
struct SpanRecord {
  uint64_t seq = 0;       // monotone admission number
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  uint64_t start_ticks = 0;
  uint64_t end_ticks = 0;
  uint64_t thread = 0;  // hashed id of the emitting thread
  uint64_t a = 0;
  uint64_t b = 0;
  SpanName name = SpanName::kRequest;
};

// A sampled trace's identity, copyable across threads. Handing one to
// another thread and opening a TraceScope there is the cross-thread
// propagation mechanism (net accept thread -> worker thread). An inactive
// handle (tracer == nullptr) makes every downstream scope a no-op.
struct TraceHandle {
  class SpanTracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;  // spans opened under this handle nest here
  bool active() const { return tracer != nullptr; }
};

// Span-based request tracer: a bounded server-wide ring of finished spans,
// fed by RAII scopes that keep a thread-local active-span stack so child
// spans nest under their parent without any context plumbing. Same
// discipline as the flight recorder on the common path: when sampling is
// off (the default), StartTrace is one relaxed atomic load and every
// SpanScope is one thread-local read and branch — no locks, no allocation,
// no clock reads. Only sampled requests touch the mutex-protected ring,
// and sampling is 1-in-N by construction.
class SpanTracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit SpanTracer(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity), base_ticks_(Ticks()) {}

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Sampling control (SET TRACE_SAMPLE = N): 0 disables, N samples one in
  // every N StartTrace calls. Relaxed atomics; safe from any thread.
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  void set_sample_every(uint32_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }

  // Entry point at request arrival. A nonzero wire_trace_id (client-set)
  // always samples under that id; otherwise the 1-in-N gate decides and the
  // id is server-generated. The returned handle is inactive when not
  // sampled — the overwhelmingly common case, costing one relaxed load.
  TraceHandle StartTrace(uint64_t wire_trace_id = 0);

  // Always-sampled variant for explicit requests (EXPLAIN TRACE).
  TraceHandle StartTraceForced();

  // Records a completed interval under `handle` without an RAII scope —
  // for waits measured on another thread, like the accept-queue wait whose
  // start tick was taken by the accept thread.
  void EmitSpan(const TraceHandle& handle, SpanName name,
                uint64_t start_ticks, uint64_t end_ticks, uint64_t a = 0,
                uint64_t b = 0);

  // Retained spans, oldest first; optionally only one trace's.
  std::vector<SpanRecord> Snapshot() const;
  std::vector<SpanRecord> SnapshotTrace(uint64_t trace_id) const;

  void Clear();

  size_t capacity() const { return capacity_; }

  // Spans admitted ever (ring may have evicted older ones) and spans
  // evicted by ring wrap; their difference is the retained count.
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

  // Tick of tracer construction: the zero point sys_spans and the JSON
  // dump subtract before converting to wall durations.
  uint64_t base_ticks() const { return base_ticks_; }

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(const SpanRecord& record);

 private:
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> evicted_{0};

  const size_t capacity_;
  const uint64_t base_ticks_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // ring_[(first_ + i) % size] logical
  size_t first_ = 0;
  uint64_t next_seq_ = 0;
};

namespace internal {
// Thread-local trace state: which tracer/trace/span the current thread is
// inside. Substrate layers (lock manager, node cache, WAL) reach it via
// SpanScope without any plumbing, mirroring obs::CurrentProfile().
struct ThreadTraceState {
  SpanTracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t active_span = 0;
};
inline thread_local ThreadTraceState tls_trace;
}  // namespace internal

// The handle for the trace currently installed on this thread (inactive
// when none) — what a layer uses to hand work to another thread, or to
// stamp a trace id into the slow-query log.
inline TraceHandle CurrentTraceHandle() {
  const internal::ThreadTraceState& s = internal::tls_trace;
  return TraceHandle{s.tracer, s.trace_id, s.active_span};
}

// RAII root/adoption scope: installs `handle`'s trace on this thread and
// opens one span under it; the destructor emits the span and restores the
// previous thread state. Used where a trace enters a thread (net worker
// adopting the request trace, embedded Execute, a test thread adopting a
// handoff). `start_ticks` may backdate the span start (frame-read time).
class TraceScope {
 public:
  TraceScope(const TraceHandle& handle, SpanName name,
             uint64_t start_ticks = 0, uint64_t a = 0, uint64_t b = 0)
      : a_(a), b_(b), name_(name) {
    if (!handle.active()) return;
    active_ = true;
    prev_ = internal::tls_trace;
    span_id_ = handle.tracer->NextSpanId();
    parent_ = handle.parent_span;
    start_ticks_ = start_ticks != 0 ? start_ticks : Ticks();
    internal::tls_trace = {handle.tracer, handle.trace_id, span_id_};
  }

  ~TraceScope() {
    if (!active_) return;
    SpanRecord r;
    r.trace_id = internal::tls_trace.trace_id;
    r.span_id = span_id_;
    r.parent_id = parent_;
    r.start_ticks = start_ticks_;
    r.end_ticks = Ticks();
    r.a = a_;
    r.b = b_;
    r.name = name_;
    SpanTracer* tracer = internal::tls_trace.tracer;
    internal::tls_trace = prev_;
    tracer->Record(r);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return active_; }
  void set_operands(uint64_t a, uint64_t b) {
    a_ = a;
    b_ = b;
  }

 private:
  internal::ThreadTraceState prev_;
  uint64_t span_id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ticks_ = 0;
  uint64_t a_;
  uint64_t b_;
  SpanName name_;
  bool active_ = false;
};

// RAII child span under whatever trace is installed on this thread. The
// instrument-everywhere primitive: when no sampled trace is active (the
// normal case) construction is a thread-local read and a branch.
class SpanScope {
 public:
  explicit SpanScope(SpanName name, uint64_t a = 0, uint64_t b = 0)
      : a_(a), b_(b), name_(name) {
    internal::ThreadTraceState& s = internal::tls_trace;
    if (s.tracer == nullptr) return;
    active_ = true;
    parent_ = s.active_span;
    span_id_ = s.tracer->NextSpanId();
    s.active_span = span_id_;
    start_ticks_ = Ticks();
  }

  ~SpanScope() {
    if (!active_) return;
    internal::ThreadTraceState& s = internal::tls_trace;
    SpanRecord r;
    r.trace_id = s.trace_id;
    r.span_id = span_id_;
    r.parent_id = parent_;
    r.start_ticks = start_ticks_;
    r.end_ticks = Ticks();
    r.a = a_;
    r.b = b_;
    r.name = name_;
    s.active_span = parent_;
    s.tracer->Record(r);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return active_; }
  void set_operands(uint64_t a, uint64_t b) {
    a_ = a;
    b_ = b;
  }

 private:
  uint64_t span_id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ticks_ = 0;
  uint64_t a_;
  uint64_t b_;
  SpanName name_;
  bool active_ = false;
};

}  // namespace obs
}  // namespace grtdb

#endif  // GRTDB_OBS_SPAN_TRACER_H_
