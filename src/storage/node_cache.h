#ifndef GRTDB_STORAGE_NODE_CACHE_H_
#define GRTDB_STORAGE_NODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "blade/trace.h"
#include "common/status.h"
#include "obs/heat_tracker.h"
#include "obs/metrics.h"
#include "storage/node_store.h"

namespace grtdb {

// A buffer-managed node cache decorating any NodeStore, in the GiST-style
// layered spirit: placed below the tree, every §5.3 storage layout gets the
// same LRU frame pool, so repeated traversals stop paying an LoRead or
// pager copy per node touch. Write policy is write-back: WriteNode dirties
// the frame and the page reaches the inner store on eviction, Flush(), or
// destruction. Reads can be zero-copy via ViewNode, which returns a pinned
// frame guarded by the cache's reader latch.
//
// Concurrency: a reader-writer latch protects the frame table. Lookups and
// frame reads take it shared (pin counts and LRU ticks are atomics);
// anything that loads, evicts, writes, or remaps frames takes it exclusive.
// A NodeView from ViewNode holds the shared latch for its lifetime, so a
// thread must drop its views before calling a mutating method on the same
// cache — the pin discipline DESIGN.md documents.
class NodeCache final : public NodeStore {
 public:
  // `inner` must outlive the cache. `capacity` is the frame count (>=1).
  NodeCache(NodeStore* inner, size_t capacity);
  ~NodeCache() override;

  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  Status ViewNode(NodeId id, NodeView* view) override;
  uint64_t LoOfNode(NodeId id) const override { return inner_->LoOfNode(id); }
  uint64_t FreeListLength() override { return inner_->FreeListLength(); }

  // Writes back every dirty frame, then flushes the inner store. Frames
  // stay resident (a flush is not an invalidation).
  Status Flush() override;

  // Logical traffic seen by the cache plus hit/miss/eviction/write-back
  // counters; physical I/O remains on the inner store's stats.
  const NodeStoreStats& stats() const override;
  void ResetStats() override;

  size_t capacity() const { return frames_.size(); }
  NodeStore* inner() const { return inner_; }
  void set_trace(TraceFacility* trace) { trace_ = trace; }

  // Mirrors the private counters into server-wide cache.* metrics; the
  // counter handles are resolved once here, never per access. Multiple
  // caches on the same registry aggregate.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Wires per-node heat accounting: every ReadNode/ViewNode/WriteNode on
  // this cache reports to `heat` under `label` (blades pass the index
  // name, so sys_hot_nodes joins sys_index_stats). While the tracker's
  // gate is off the per-access cost is one relaxed load and a branch.
  void set_heat(obs::HeatTracker* heat, const std::string& label);

  // Called by NodeView::Reset when a pinned view is dropped.
  void Unpin(size_t frame);

 private:
  struct Frame {
    std::atomic<uint32_t> pins{0};
    std::atomic<uint64_t> lru_tick{0};
    NodeId node_id = kInvalidNodeId;
    bool dirty = false;
    std::unique_ptr<uint8_t[]> data;
  };

  // Returns with `latch` holding latch_ shared and the frame pinned;
  // `*hit` reports whether the node was already resident. When heat
  // tracking is armed, `*pin_wait_ns` reports the time this call spent
  // blocked on the frame-table latch (0 when it was free or heat is off —
  // the clock is only read after a failed try_lock).
  Status PinFrame(NodeId id, size_t* frame,
                  std::shared_lock<std::shared_mutex>* latch, bool* hit,
                  uint64_t* pin_wait_ns);
  // Both require latch_ held exclusive.
  Status GrabFrameLocked(size_t* frame);
  Status FrameForWriteLocked(NodeId id, size_t* frame);
  Status WriteBackLocked(Frame& frame);
  uint64_t NextTick() { return tick_.fetch_add(1) + 1; }

  NodeStore* inner_;
  TraceFacility* trace_ = nullptr;
  obs::HeatTracker* heat_ = nullptr;
  uint32_t heat_store_ = 0;

  // Cached registry handles (null when no registry is wired).
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_write_backs_ = nullptr;

  mutable std::shared_mutex latch_;
  std::vector<Frame> frames_;
  std::unordered_map<NodeId, size_t> node_table_;
  std::atomic<uint64_t> tick_{0};

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> write_backs_{0};

  mutable std::mutex snapshot_mu_;
  mutable NodeStoreStats snapshot_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_NODE_CACHE_H_
