#ifndef GRTDB_STORAGE_WAL_STORE_H_
#define GRTDB_STORAGE_WAL_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blade/trace.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/node_store.h"

namespace grtdb {

class WalTxn;

// On-disk framing of the log (see DESIGN.md "Durability path"): every
// transaction is one frame
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// whose payload is the record sequence BEGIN (WRITE|FREE)* COMMIT. The
// record-type bytes are exposed here so tests can hand-assemble frames.
namespace wal {
inline constexpr uint8_t kRecBegin = 1;
inline constexpr uint8_t kRecWrite = 2;  // + u64 node id + kPageSize image
inline constexpr uint8_t kRecFree = 3;   // + u64 node id
inline constexpr uint8_t kRecCommit = 4;
inline constexpr size_t kFrameHeaderSize = 8;
// Frames larger than this are rejected as corrupt during recovery.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;
}  // namespace wal

// Group-commit / checkpoint tuning knobs.
struct WalOptions {
  // Maximum transactions coalesced into one log append + fsync.
  size_t max_batch = 64;
  // How long a commit leader lingers for more transactions to join its
  // batch before flushing. 0 = flush immediately; batching then still
  // happens naturally while a leader's fsync is in flight.
  uint32_t max_wait_us = 0;
  // Size-triggered incremental checkpoint: once the log exceeds this many
  // bytes, the next commit flushes the inner store and truncates the log.
  // 0 disables the trigger (explicit Checkpoint() still works).
  uint64_t checkpoint_log_bytes = 8ull << 20;
};

struct WalStats {
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t syncs = 0;
  uint64_t transactions_committed = 0;
  uint64_t transactions_replayed = 0;   // by Recover()
  uint64_t transactions_discarded = 0;  // incomplete tails dropped
  // Group commit.
  uint64_t group_commits = 0;    // leader flushes that carried > 1 txn
  uint64_t batched_commits = 0;  // txns that rode another txn's fsync
  uint64_t fsyncs_saved = 0;     // fsyncs avoided by batching
  // Recovery / framing.
  uint64_t crc_failures = 0;   // frames rejected by checksum
  uint64_t bytes_replayed = 0; // log bytes scanned by Recover()
  uint64_t checkpoints = 0;    // explicit + size-triggered
};

// Write-ahead logging for a NodeStore — the recovery machinery a DataBlade
// that stores its index in a regular operating-system file must build
// itself, because "there are no means to integrate the access-method
// recovery with the Informix Server's recovery subsystem" (paper §5.3).
//
// Protocol: no-steal / no-force with physical redo records. Writes inside
// a transaction stay in memory; commit serializes them into a CRC-framed
// log record, appends + fsyncs it, and only then applies them to the inner
// store. A crash before the commit frame is durable loses nothing but the
// uncommitted transaction; a crash after it is repaired by Recover(),
// which streams the log in fixed-size chunks, replays every committed
// transaction (idempotent physical redo), and discards torn or
// checksum-invalid tails.
//
// Concurrency: commits from many threads are *group committed* — a commit
// leader drains the queue of concurrently committing transactions and
// retires the whole batch with one append and one fsync. Use
// BeginConcurrent() to obtain a per-thread transaction handle; the
// Begin()/Commit()/Rollback() brackets below operate on a single built-in
// session and remain for single-threaded callers.
class WalNodeStore final : public NodeStore {
 public:
  // Opens the log at `log_path` (created if absent) over `inner`. Call
  // Recover() before any other operation.
  static StatusOr<std::unique_ptr<WalNodeStore>> Open(
      NodeStore* inner, const std::string& log_path, WalOptions options = {});

  ~WalNodeStore() override;

  // Replays committed-but-unapplied transactions into the inner store and
  // truncates the log. Safe to call on a clean log and idempotent: a
  // second call (or a crash during the first) replays the same physical
  // images again.
  Status Recover();

  // Single-session transaction brackets (legacy, not thread-safe against
  // each other; concurrent writers use BeginConcurrent). Node writes
  // outside a transaction are write-through (no atomicity), matching a
  // blade that skips the work.
  Status Begin();
  Status Commit();
  // Drops the transaction's buffered writes.
  Status Rollback();

  // Starts an independent transaction that can commit concurrently with
  // others; commits are coalesced by the group-commit pipeline. The handle
  // is a NodeStore, so a whole tree can run on top of it.
  std::unique_ptr<WalTxn> BeginConcurrent();

  // Flushes the inner store and truncates the log (checkpoint). Waits for
  // in-flight commits to drain first.
  Status Checkpoint();

  // NodeStore interface.
  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  Status ViewNode(NodeId id, NodeView* view) override;
  uint64_t LoOfNode(NodeId id) const override { return inner_->LoOfNode(id); }
  uint64_t FreeListLength() override { return inner_->FreeListLength(); }
  Status Flush() override;

  WalStats wal_stats() const;
  bool in_transaction() const { return default_txn_.open; }
  const WalOptions& options() const { return options_; }

  // Commit-path events go to `trace` under class "wal" (level 1: recovery
  // and checkpoints, level 2: per-batch group commits). May be null.
  void set_trace(TraceFacility* trace) { trace_ = trace; }

  // Mirrors commit-path activity into server-wide wal.* metrics: commit
  // latency and group-commit batch-size histograms plus commit/sync
  // counters. Handles are cached here; null unwires.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Test hook: commit to the log but "crash" before applying to the inner
  // store — Recover() must repair this.
  Status CommitWithCrashBeforeApply();

  // Test hook: replaces ::write on the log fd, e.g. to force short writes
  // or EINTR. Pass nullptr to restore the real call.
  using WriteHook = std::function<ssize_t(int fd, const uint8_t* data,
                                          size_t size)>;
  void SetWriteHookForTesting(WriteHook hook) { write_hook_ = std::move(hook); }

 private:
  friend class WalTxn;

  // Buffered effects of one open transaction, last image per node.
  struct TxnBuffer {
    std::map<NodeId, std::vector<uint8_t>> writes;
    std::vector<NodeId> frees;
    bool open = false;
  };

  // A transaction waiting in the group-commit queue.
  struct CommitRequest {
    const TxnBuffer* txn = nullptr;
    std::vector<uint8_t> frame;
    uint64_t records = 0;
    bool apply = true;
    bool done = false;
    Status result;
  };

  WalNodeStore(NodeStore* inner, std::string log_path, WalOptions options)
      : inner_(inner), log_path_(std::move(log_path)), options_(options) {}

  Status OpenLogForAppend();

  // Commit pipeline.
  Status CommitBuffer(TxnBuffer* txn, bool apply);
  void RunLeaderRound(std::unique_lock<std::mutex>& lk);
  static std::vector<uint8_t> BuildFrame(const TxnBuffer& txn);
  Status WriteAllToLog(const uint8_t* data, size_t size);
  Status ApplyTxnInnerLocked(const TxnBuffer& txn);
  void MaybeAutoCheckpoint();

  // Blocks new commit leaders and waits out the active one; paired with
  // ReleasePipeline(). Used by Recover()/Checkpoint() to quiesce the log.
  void AcquirePipeline();
  void ReleasePipeline();
  Status CheckpointQuiesced();

  // Reads for transaction handles: committed state only, no WAL stats.
  Status ReadNodeInner(NodeId id, uint8_t* out);

  NodeStore* inner_;
  std::string log_path_;
  WalOptions options_;
  int log_fd_ = -1;
  TraceFacility* trace_ = nullptr;
  WriteHook write_hook_;

  // Cached registry handles (null when no registry is wired).
  obs::Histogram* m_commit_us_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Counter* m_group_commits_ = nullptr;
  obs::Counter* m_log_bytes_ = nullptr;

  // The built-in session behind Begin()/Commit()/Rollback().
  TxnBuffer default_txn_;

  // Group-commit pipeline state (guarded by commit_mu_). leader_active_
  // also serializes all log appends and truncations.
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::deque<CommitRequest*> commit_queue_;
  bool leader_active_ = false;

  // Guards every inner_-> mutation plus the bookkeeping that must stay
  // consistent with it (log_size_, unapplied_in_log_, NodeStore stats_).
  std::mutex inner_mu_;
  uint64_t log_size_ = 0;  // bytes in the log since the last truncate
  // True while the log holds a durable-but-unapplied transaction (the
  // CommitWithCrashBeforeApply test hook); suppresses auto-checkpoint,
  // which would otherwise truncate a committed transaction away.
  bool unapplied_in_log_ = false;

  mutable std::mutex stats_mu_;
  WalStats wal_stats_;
};

// A per-thread WAL transaction handle. Born open; Commit()/Rollback()
// finish it, after which every operation fails. Reads see the
// transaction's own writes first, then the committed state of the store.
class WalTxn final : public NodeStore {
 public:
  ~WalTxn() override = default;

  WalTxn(const WalTxn&) = delete;
  WalTxn& operator=(const WalTxn&) = delete;

  Status Commit() { return wal_->CommitBuffer(&buf_, /*apply=*/true); }
  Status Rollback();
  // Test hook, see WalNodeStore::CommitWithCrashBeforeApply.
  Status CommitWithCrashBeforeApply() {
    return wal_->CommitBuffer(&buf_, /*apply=*/false);
  }
  bool open() const { return buf_.open; }

  // NodeStore interface.
  Status AllocateNode(NodeId* id) override { return wal_->AllocateNode(id); }
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId id) const override { return wal_->LoOfNode(id); }
  uint64_t FreeListLength() override { return wal_->FreeListLength(); }
  Status Flush() override { return wal_->Flush(); }

 private:
  friend class WalNodeStore;

  explicit WalTxn(WalNodeStore* wal) : wal_(wal) { buf_.open = true; }

  WalNodeStore* wal_;
  WalNodeStore::TxnBuffer buf_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_WAL_STORE_H_
