#ifndef GRTDB_STORAGE_WAL_STORE_H_
#define GRTDB_STORAGE_WAL_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/node_store.h"

namespace grtdb {

struct WalStats {
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t syncs = 0;
  uint64_t transactions_committed = 0;
  uint64_t transactions_replayed = 0;  // by Recover()
  uint64_t transactions_discarded = 0;  // incomplete tails dropped
};

// Write-ahead logging for a NodeStore — the recovery machinery a DataBlade
// that stores its index in a regular operating-system file must build
// itself, because "there are no means to integrate the access-method
// recovery with the Informix Server's recovery subsystem" (paper §5.3).
//
// Protocol: no-steal / no-force with physical redo records. Writes inside
// a transaction stay in memory; Commit() appends them to the log, fsyncs,
// and only then applies them to the inner store. A crash before the commit
// record loses nothing but the uncommitted transaction; a crash after it
// is repaired by Recover(), which replays every committed transaction
// (idempotent physical redo) and discards incomplete tails — including
// torn final records.
class WalNodeStore final : public NodeStore {
 public:
  // Opens the log at `log_path` (created if absent) over `inner`. Call
  // Recover() before any other operation.
  static StatusOr<std::unique_ptr<WalNodeStore>> Open(
      NodeStore* inner, const std::string& log_path);

  ~WalNodeStore() override;

  // Replays committed-but-unapplied transactions into the inner store and
  // truncates the log. Safe to call on a clean log.
  Status Recover();

  // Transaction brackets. Node writes outside a transaction are
  // write-through (no atomicity), matching a blade that skips the work.
  Status Begin();
  Status Commit();
  // Drops the transaction's buffered writes.
  Status Rollback();

  // Truncates the log once the inner store is durable (checkpoint).
  Status Checkpoint();

  // NodeStore interface.
  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId id) const override { return inner_->LoOfNode(id); }
  Status Flush() override;

  const WalStats& wal_stats() const { return wal_stats_; }
  bool in_transaction() const { return in_txn_; }

  // Test hook: commit to the log but "crash" before applying to the inner
  // store — Recover() must repair this.
  Status CommitWithCrashBeforeApply();

 private:
  WalNodeStore(NodeStore* inner, std::string log_path)
      : inner_(inner), log_path_(std::move(log_path)) {}

  Status AppendTransactionToLog();
  Status ApplyPending();
  Status OpenLogForAppend();

  NodeStore* inner_;
  std::string log_path_;
  int log_fd_ = -1;
  bool in_txn_ = false;
  // Buffered writes of the open transaction, last image per node.
  std::map<NodeId, std::vector<uint8_t>> pending_;
  std::vector<NodeId> pending_frees_;
  WalStats wal_stats_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_WAL_STORE_H_
