#include "storage/sbspace.h"

#include <algorithm>
#include <vector>
#include <cstring>

#include "storage/layout.h"

namespace grtdb {

namespace {

constexpr uint64_t kMagic = 0x5342535043303031ull;  // "SBSPC001"

// Header page (page 0) offsets.
constexpr size_t kHdrMagic = 0;
constexpr size_t kHdrNextLoId = 8;
constexpr size_t kHdrFreeHead = 16;
constexpr size_t kHdrDirHead = 20;

// Directory page offsets.
constexpr size_t kDirNext = 0;
constexpr size_t kDirCount = 4;
constexpr size_t kDirEntries = 8;
constexpr size_t kDirEntrySize = 12;  // lo_id u64 + inode u32
constexpr size_t kDirCapacity = (kPageSize - kDirEntries) / kDirEntrySize;

// Inode page offsets.
constexpr size_t kInodeSize = 0;  // u64, root inode only
constexpr size_t kInodeNext = 8;
constexpr size_t kInodeCount = 12;
constexpr size_t kInodePages = 16;
constexpr size_t kInodeCapacity = (kPageSize - kInodePages) / 4;

}  // namespace

StatusOr<std::unique_ptr<Sbspace>> Sbspace::Open(Space* space,
                                                 size_t pool_pages) {
  std::unique_ptr<Sbspace> sbspace(new Sbspace(space, pool_pages));
  if (space->page_count() == 0) {
    GRTDB_RETURN_IF_ERROR(sbspace->Format());
  } else {
    uint8_t* hdr;
    GRTDB_RETURN_IF_ERROR(sbspace->pager_.FetchPage(0, &hdr));
    const uint64_t magic = LoadU64(hdr + kHdrMagic);
    sbspace->pager_.Unpin(0);
    if (magic != kMagic) {
      return Status::Corruption("not an sbspace (bad magic)");
    }
  }
  return sbspace;
}

Status Sbspace::Format() {
  PageId hdr_id;
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.NewPage(&hdr_id, &hdr));
  if (hdr_id != 0) {
    pager_.Unpin(hdr_id);
    return Status::Internal("sbspace header must be page 0");
  }
  StoreU64(hdr + kHdrMagic, kMagic);
  StoreU64(hdr + kHdrNextLoId, 1);
  StoreU32(hdr + kHdrFreeHead, kInvalidPageId);

  PageId dir_id;
  uint8_t* dir;
  Status st = pager_.NewPage(&dir_id, &dir);
  if (!st.ok()) {
    pager_.Unpin(hdr_id);
    return st;
  }
  StoreU32(dir + kDirNext, kInvalidPageId);
  StoreU32(dir + kDirCount, 0);
  pager_.Unpin(dir_id);

  StoreU32(hdr + kHdrDirHead, dir_id);
  pager_.MarkDirty(hdr_id);
  pager_.Unpin(hdr_id);
  return Status::OK();
}

Status Sbspace::AllocPage(PageId* id) {
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageGuard hdr_guard(&pager_, 0, hdr);
  PageId free_head = LoadU32(hdr + kHdrFreeHead);
  if (free_head != kInvalidPageId) {
    uint8_t* page;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(free_head, &page));
    PageGuard guard(&pager_, free_head, page);
    StoreU32(hdr + kHdrFreeHead, LoadU32(page + kDirNext));
    hdr_guard.MarkDirty();
    std::memset(page, 0, kPageSize);
    guard.MarkDirty();
    *id = free_head;
    return Status::OK();
  }
  uint8_t* page;
  GRTDB_RETURN_IF_ERROR(pager_.NewPage(id, &page));
  pager_.Unpin(*id);
  return Status::OK();
}

Status Sbspace::FreePage(PageId id) {
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageGuard hdr_guard(&pager_, 0, hdr);
  uint8_t* page;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(id, &page));
  PageGuard guard(&pager_, id, page);
  StoreU32(page, LoadU32(hdr + kHdrFreeHead));
  guard.MarkDirty();
  StoreU32(hdr + kHdrFreeHead, id);
  hdr_guard.MarkDirty();
  return Status::OK();
}

Status Sbspace::CreateLo(LoHandle* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageGuard hdr_guard(&pager_, 0, hdr);
  const uint64_t lo_id = LoadU64(hdr + kHdrNextLoId);
  StoreU64(hdr + kHdrNextLoId, lo_id + 1);
  hdr_guard.MarkDirty();

  PageId inode_id;
  GRTDB_RETURN_IF_ERROR(AllocPage(&inode_id));
  {
    uint8_t* inode;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(inode_id, &inode));
    PageGuard guard(&pager_, inode_id, inode);
    StoreU64(inode + kInodeSize, 0);
    StoreU32(inode + kInodeNext, kInvalidPageId);
    StoreU32(inode + kInodeCount, 0);
    guard.MarkDirty();
  }

  // Add a directory entry (reusing a vacated slot when one exists).
  PageId dir_id = LoadU32(hdr + kHdrDirHead);
  while (true) {
    uint8_t* dir;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(dir_id, &dir));
    PageGuard guard(&pager_, dir_id, dir);
    const uint32_t count = LoadU32(dir + kDirCount);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t* entry = dir + kDirEntries + i * kDirEntrySize;
      if (LoadU64(entry) == 0) {
        StoreU64(entry, lo_id);
        StoreU32(entry + 8, inode_id);
        guard.MarkDirty();
        handle->id = lo_id;
        return Status::OK();
      }
    }
    if (count < kDirCapacity) {
      uint8_t* entry = dir + kDirEntries + count * kDirEntrySize;
      StoreU64(entry, lo_id);
      StoreU32(entry + 8, inode_id);
      StoreU32(dir + kDirCount, count + 1);
      guard.MarkDirty();
      handle->id = lo_id;
      return Status::OK();
    }
    PageId next = LoadU32(dir + kDirNext);
    if (next == kInvalidPageId) {
      GRTDB_RETURN_IF_ERROR(AllocPage(&next));
      uint8_t* next_dir;
      GRTDB_RETURN_IF_ERROR(pager_.FetchPage(next, &next_dir));
      PageGuard next_guard(&pager_, next, next_dir);
      StoreU32(next_dir + kDirNext, kInvalidPageId);
      StoreU32(next_dir + kDirCount, 0);
      next_guard.MarkDirty();
      StoreU32(dir + kDirNext, next);
      guard.MarkDirty();
    }
    dir_id = next;
  }
}

Status Sbspace::FindInode(uint64_t lo_id, PageId* inode_page) {
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageId dir_id = LoadU32(hdr + kHdrDirHead);
  pager_.Unpin(0);
  while (dir_id != kInvalidPageId) {
    uint8_t* dir;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(dir_id, &dir));
    PageGuard guard(&pager_, dir_id, dir);
    const uint32_t count = LoadU32(dir + kDirCount);
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* entry = dir + kDirEntries + i * kDirEntrySize;
      if (LoadU64(entry) == lo_id) {
        *inode_page = LoadU32(entry + 8);
        return Status::OK();
      }
    }
    dir_id = LoadU32(dir + kDirNext);
  }
  return Status::NotFound("large object " + std::to_string(lo_id));
}

Status Sbspace::DataPageFor(PageId inode_root, uint64_t page_index, bool grow,
                            PageId* data_page) {
  PageId inode_id = inode_root;
  uint64_t index = page_index;
  while (true) {
    uint8_t* inode;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(inode_id, &inode));
    PageGuard guard(&pager_, inode_id, inode);
    uint32_t count = LoadU32(inode + kInodeCount);
    if (index < count) {
      *data_page = LoadU32(inode + kInodePages + index * 4);
      return Status::OK();
    }
    if (index < kInodeCapacity) {
      if (!grow) return Status::IOError("read past end of large object");
      // Append pages up to `index` within this inode page.
      while (count <= index) {
        PageId page;
        GRTDB_RETURN_IF_ERROR(AllocPage(&page));
        StoreU32(inode + kInodePages + count * 4, page);
        ++count;
      }
      StoreU32(inode + kInodeCount, count);
      guard.MarkDirty();
      *data_page = LoadU32(inode + kInodePages + index * 4);
      return Status::OK();
    }
    // Move to the next inode page in the chain.
    PageId next = LoadU32(inode + kInodeNext);
    if (next == kInvalidPageId) {
      if (!grow) return Status::IOError("read past end of large object");
      if (count < kInodeCapacity) {
        while (count < kInodeCapacity) {
          PageId page;
          GRTDB_RETURN_IF_ERROR(AllocPage(&page));
          StoreU32(inode + kInodePages + count * 4, page);
          ++count;
        }
        StoreU32(inode + kInodeCount, count);
      }
      GRTDB_RETURN_IF_ERROR(AllocPage(&next));
      uint8_t* next_inode;
      GRTDB_RETURN_IF_ERROR(pager_.FetchPage(next, &next_inode));
      PageGuard next_guard(&pager_, next, next_inode);
      StoreU32(next_inode + kInodeNext, kInvalidPageId);
      StoreU32(next_inode + kInodeCount, 0);
      next_guard.MarkDirty();
      StoreU32(inode + kInodeNext, next);
      guard.MarkDirty();
    }
    inode_id = next;
    index -= kInodeCapacity;
  }
}

Status Sbspace::LoSize(LoHandle handle, uint64_t* size) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId inode_id;
  GRTDB_RETURN_IF_ERROR(FindInode(handle.id, &inode_id));
  uint8_t* inode;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(inode_id, &inode));
  *size = LoadU64(inode + kInodeSize);
  pager_.Unpin(inode_id);
  return Status::OK();
}

Status Sbspace::LoRead(LoHandle handle, uint64_t offset, size_t len,
                       uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId inode_id;
  GRTDB_RETURN_IF_ERROR(FindInode(handle.id, &inode_id));
  {
    uint8_t* inode;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(inode_id, &inode));
    const uint64_t size = LoadU64(inode + kInodeSize);
    pager_.Unpin(inode_id);
    if (offset + len > size) {
      return Status::IOError("LO read past end (offset " +
                             std::to_string(offset) + " + " +
                             std::to_string(len) + " > size " +
                             std::to_string(size) + ")");
    }
  }
  while (len > 0) {
    const uint64_t page_index = offset / kPageSize;
    const size_t in_page = static_cast<size_t>(offset % kPageSize);
    const size_t chunk = std::min(len, kPageSize - in_page);
    PageId data_page;
    GRTDB_RETURN_IF_ERROR(
        DataPageFor(inode_id, page_index, /*grow=*/false, &data_page));
    uint8_t* data;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(data_page, &data));
    std::memcpy(out, data + in_page, chunk);
    pager_.Unpin(data_page);
    out += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status Sbspace::LoWrite(LoHandle handle, uint64_t offset, size_t len,
                        const uint8_t* data_in) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId inode_id;
  GRTDB_RETURN_IF_ERROR(FindInode(handle.id, &inode_id));
  const uint64_t end = offset + len;
  while (len > 0) {
    const uint64_t page_index = offset / kPageSize;
    const size_t in_page = static_cast<size_t>(offset % kPageSize);
    const size_t chunk = std::min(len, kPageSize - in_page);
    PageId data_page;
    GRTDB_RETURN_IF_ERROR(
        DataPageFor(inode_id, page_index, /*grow=*/true, &data_page));
    uint8_t* data;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(data_page, &data));
    std::memcpy(data + in_page, data_in, chunk);
    pager_.MarkDirty(data_page);
    pager_.Unpin(data_page);
    data_in += chunk;
    offset += chunk;
    len -= chunk;
  }
  uint8_t* inode;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(inode_id, &inode));
  if (end > LoadU64(inode + kInodeSize)) {
    StoreU64(inode + kInodeSize, end);
    pager_.MarkDirty(inode_id);
  }
  pager_.Unpin(inode_id);
  return Status::OK();
}

Status Sbspace::LoTruncate(LoHandle handle, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId inode_id;
  GRTDB_RETURN_IF_ERROR(FindInode(handle.id, &inode_id));
  // Walk the inode chain, releasing whole pages past the new size.
  const uint64_t keep_pages = (size + kPageSize - 1) / kPageSize;
  PageId current = inode_id;
  uint64_t base = 0;
  while (current != kInvalidPageId) {
    uint8_t* inode;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(current, &inode));
    PageGuard guard(&pager_, current, inode);
    const uint32_t count = LoadU32(inode + kInodeCount);
    uint32_t keep_here = 0;
    if (keep_pages > base) {
      keep_here = static_cast<uint32_t>(
          std::min<uint64_t>(count, keep_pages - base));
    }
    for (uint32_t i = keep_here; i < count; ++i) {
      GRTDB_RETURN_IF_ERROR(FreePage(LoadU32(inode + kInodePages + i * 4)));
    }
    if (keep_here != count) {
      StoreU32(inode + kInodeCount, keep_here);
      guard.MarkDirty();
    }
    if (current == inode_id) {
      StoreU64(inode + kInodeSize, size);
      guard.MarkDirty();
    }
    base += kInodeCapacity;
    current = LoadU32(inode + kInodeNext);
  }
  return Status::OK();
}

Status Sbspace::DropLo(LoHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId inode_root;
  GRTDB_RETURN_IF_ERROR(FindInode(handle.id, &inode_root));
  // Free all data pages and inode pages.
  PageId current = inode_root;
  while (current != kInvalidPageId) {
    uint8_t* inode;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(current, &inode));
    const uint32_t count = LoadU32(inode + kInodeCount);
    const PageId next = LoadU32(inode + kInodeNext);
    std::vector<PageId> pages;
    pages.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      pages.push_back(LoadU32(inode + kInodePages + i * 4));
    }
    pager_.Unpin(current);
    for (PageId page : pages) {
      GRTDB_RETURN_IF_ERROR(FreePage(page));
    }
    GRTDB_RETURN_IF_ERROR(FreePage(current));
    current = next;
  }
  // Vacate the directory slot.
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageId dir_id = LoadU32(hdr + kHdrDirHead);
  pager_.Unpin(0);
  while (dir_id != kInvalidPageId) {
    uint8_t* dir;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(dir_id, &dir));
    PageGuard guard(&pager_, dir_id, dir);
    const uint32_t count = LoadU32(dir + kDirCount);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t* entry = dir + kDirEntries + i * kDirEntrySize;
      if (LoadU64(entry) == handle.id) {
        StoreU64(entry, 0);
        StoreU32(entry + 8, kInvalidPageId);
        guard.MarkDirty();
        return Status::OK();
      }
    }
    dir_id = LoadU32(dir + kDirNext);
  }
  return Status::Corruption("LO directory entry vanished during drop");
}

Status Sbspace::CountLos(uint64_t* count) {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t* hdr;
  GRTDB_RETURN_IF_ERROR(pager_.FetchPage(0, &hdr));
  PageId dir_id = LoadU32(hdr + kHdrDirHead);
  pager_.Unpin(0);
  uint64_t total = 0;
  while (dir_id != kInvalidPageId) {
    uint8_t* dir;
    GRTDB_RETURN_IF_ERROR(pager_.FetchPage(dir_id, &dir));
    const uint32_t n = LoadU32(dir + kDirCount);
    for (uint32_t i = 0; i < n; ++i) {
      if (LoadU64(dir + kDirEntries + i * kDirEntrySize) != 0) ++total;
    }
    PageId next = LoadU32(dir + kDirNext);
    pager_.Unpin(dir_id);
    dir_id = next;
  }
  *count = total;
  return Status::OK();
}

}  // namespace grtdb
