#ifndef GRTDB_STORAGE_LAYOUT_H_
#define GRTDB_STORAGE_LAYOUT_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace grtdb {

// Unaligned little-endian loads/stores used by all on-page layouts.

inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

inline int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreI64(uint8_t* p, int64_t v) { std::memcpy(p, &v, sizeof(v)); }

// CRC-32 (IEEE 802.3 polynomial, reflected) used to frame WAL records so
// torn tails and bit rot are detected positively rather than by parse
// failure. Incremental form: seed with Crc32Init(), feed chunks through
// Crc32Feed(), close with Crc32Final(); Crc32() is the one-shot wrapper.

namespace internal {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

inline uint32_t Crc32Init() { return 0xFFFFFFFFu; }

inline uint32_t Crc32Feed(uint32_t state, const uint8_t* data, size_t n) {
  const std::array<uint32_t, 256>& table = internal::Crc32Table();
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

inline uint32_t Crc32Final(uint32_t state) { return state ^ 0xFFFFFFFFu; }

inline uint32_t Crc32(const uint8_t* data, size_t n) {
  return Crc32Final(Crc32Feed(Crc32Init(), data, n));
}

}  // namespace grtdb

#endif  // GRTDB_STORAGE_LAYOUT_H_
