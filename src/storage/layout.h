#ifndef GRTDB_STORAGE_LAYOUT_H_
#define GRTDB_STORAGE_LAYOUT_H_

#include <cstdint>
#include <cstring>

namespace grtdb {

// Unaligned little-endian loads/stores used by all on-page layouts.

inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

inline int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreI64(uint8_t* p, int64_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace grtdb

#endif  // GRTDB_STORAGE_LAYOUT_H_
