#ifndef GRTDB_STORAGE_SPACE_H_
#define GRTDB_STORAGE_SPACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace grtdb {

// Pages are the unit of I/O everywhere in the system.
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

// A Space is a raw array of pages — the storage substrate under a Pager.
// Implementations: in-memory (benchmarks, tests) and file-backed.
class Space {
 public:
  virtual ~Space() = default;

  virtual Status ReadPage(PageId id, uint8_t* out) = 0;
  virtual Status WritePage(PageId id, const uint8_t* data) = 0;

  // Number of pages currently in the space.
  virtual PageId page_count() const = 0;

  // Appends a zeroed page and returns its id.
  virtual Status Extend(PageId* id) = 0;

  // Durably persists written pages (no-op for memory spaces).
  virtual Status Sync() = 0;
};

// Heap-allocated page array.
class MemorySpace final : public Space {
 public:
  MemorySpace() = default;

  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  PageId page_count() const override;
  Status Extend(PageId* id) override;
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

// POSIX-file-backed page array.
class FileSpace final : public Space {
 public:
  // Creates the file if missing; existing contents are kept.
  static StatusOr<std::unique_ptr<FileSpace>> Open(const std::string& path);

  ~FileSpace() override;

  FileSpace(const FileSpace&) = delete;
  FileSpace& operator=(const FileSpace&) = delete;

  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  PageId page_count() const override;
  Status Extend(PageId* id) override;
  Status Sync() override;

 private:
  FileSpace(int fd, PageId page_count) : fd_(fd), page_count_(page_count) {}

  int fd_;
  PageId page_count_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_SPACE_H_
