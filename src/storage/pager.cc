#include "storage/pager.h"

#include <cstring>

#include "txn/witness.h"

namespace grtdb {

namespace {
[[maybe_unused]] grtdb::witness::LockClass& PagerMutexClass() {
  static grtdb::witness::LockClass cls("pager.mu");
  return cls;
}
}  // namespace

Pager::Pager(Space* space, size_t capacity) : space_(space) {
  if (capacity == 0) capacity = 1;
  frames_.resize(capacity);
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
  }
}

void Pager::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    m_logical_reads_ = m_physical_reads_ = m_physical_writes_ = nullptr;
    m_hits_ = m_misses_ = m_evictions_ = nullptr;
    return;
  }
  m_logical_reads_ = metrics->GetCounter("pager.logical_reads");
  m_physical_reads_ = metrics->GetCounter("pager.physical_reads");
  m_physical_writes_ = metrics->GetCounter("pager.physical_writes");
  m_hits_ = metrics->GetCounter("pager.hits");
  m_misses_ = metrics->GetCounter("pager.misses");
  m_evictions_ = metrics->GetCounter("pager.evictions");
}

Status Pager::GrabFrameLocked(size_t* frame_index) {
  size_t victim = frames_.size();
  uint64_t best_tick = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId) {
      *frame_index = i;
      return Status::OK();
    }
    if (frame.pin_count == 0 && frame.lru_tick < best_tick) {
      best_tick = frame.lru_tick;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    GRTDB_RETURN_IF_ERROR(space_->WritePage(frame.page_id, frame.data.get()));
    ++stats_.physical_writes;
    if (m_physical_writes_ != nullptr) m_physical_writes_->Add();
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++stats_.evictions;
  if (m_evictions_ != nullptr) m_evictions_->Add();
  *frame_index = victim;
  return Status::OK();
}

Status Pager::NewPage(PageId* id, uint8_t** data) {
  GRTDB_WITNESS_SCOPE(PagerMutexClass());
  std::lock_guard<std::mutex> lock(mu_);
  // Grab the frame *before* extending the space: Extend is irreversible,
  // so doing it first would leak the fresh page forever whenever the pool
  // has no evictable frame. A failed grab leaves the space untouched.
  size_t frame_index;
  GRTDB_RETURN_IF_ERROR(GrabFrameLocked(&frame_index));
  PageId new_id;
  GRTDB_RETURN_IF_ERROR(space_->Extend(&new_id));
  Frame& frame = frames_[frame_index];
  frame.page_id = new_id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.lru_tick = ++tick_;
  std::memset(frame.data.get(), 0, kPageSize);
  page_table_[new_id] = frame_index;
  *id = new_id;
  *data = frame.data.get();
  return Status::OK();
}

Status Pager::FetchPage(PageId id, uint8_t** data) {
  GRTDB_WITNESS_SCOPE(PagerMutexClass());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.logical_reads;
  if (m_logical_reads_ != nullptr) m_logical_reads_->Add();
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.lru_tick = ++tick_;
    ++stats_.hits;
    if (m_hits_ != nullptr) m_hits_->Add();
    *data = frame.data.get();
    return Status::OK();
  }
  ++stats_.misses;
  if (m_misses_ != nullptr) m_misses_->Add();
  size_t frame_index;
  GRTDB_RETURN_IF_ERROR(GrabFrameLocked(&frame_index));
  Frame& frame = frames_[frame_index];
  Status read = space_->ReadPage(id, frame.data.get());
  if (!read.ok()) {
    // Leave the frame fully free and the page table without an entry for
    // `id`: a later fetch must retry the physical read, not serve the
    // garbage this one left in the frame.
    frame.page_id = kInvalidPageId;
    frame.pin_count = 0;
    frame.dirty = false;
    return read;
  }
  ++stats_.physical_reads;
  if (m_physical_reads_ != nullptr) m_physical_reads_->Add();
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.lru_tick = ++tick_;
  page_table_[id] = frame_index;
  *data = frame.data.get();
  return Status::OK();
}

void Pager::MarkDirty(PageId id) {
  GRTDB_WITNESS_SCOPE(PagerMutexClass());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) frames_[it->second].dirty = true;
}

void Pager::Unpin(PageId id) {
  GRTDB_WITNESS_SCOPE(PagerMutexClass());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end() && frames_[it->second].pin_count > 0) {
    --frames_[it->second].pin_count;
  }
}

Status Pager::FlushAll() {
  GRTDB_WITNESS_SCOPE(PagerMutexClass());
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      GRTDB_RETURN_IF_ERROR(
          space_->WritePage(frame.page_id, frame.data.get()));
      ++stats_.physical_writes;
      if (m_physical_writes_ != nullptr) m_physical_writes_->Add();
      frame.dirty = false;
    }
  }
  return space_->Sync();
}

PagerStats Pager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Pager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PagerStats();
}

}  // namespace grtdb
