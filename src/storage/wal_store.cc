#include "storage/wal_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/span_tracer.h"
#include "storage/layout.h"
#include "txn/witness.h"

namespace grtdb {

namespace {

[[maybe_unused]] grtdb::witness::LockClass& CommitMutexClass() {
  static grtdb::witness::LockClass cls("wal.commit_mu");
  return cls;
}

// One redo record: type byte + (for writes/frees) a node id, + (for
// writes) the full page image.
constexpr size_t kWriteRecordSize = 1 + 8 + kPageSize;
constexpr size_t kFreeRecordSize = 1 + 8;

}  // namespace

StatusOr<std::unique_ptr<WalNodeStore>> WalNodeStore::Open(
    NodeStore* inner, const std::string& log_path, WalOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  std::unique_ptr<WalNodeStore> store(
      new WalNodeStore(inner, log_path, options));
  GRTDB_RETURN_IF_ERROR(store->OpenLogForAppend());
  return store;
}

WalNodeStore::~WalNodeStore() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

Status WalNodeStore::OpenLogForAppend() {
  log_fd_ = ::open(log_path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (log_fd_ < 0) {
    return Status::IOError("cannot open WAL '" + log_path_ +
                           "': " + std::strerror(errno));
  }
  const off_t size = ::lseek(log_fd_, 0, SEEK_END);
  if (size < 0) return Status::IOError("lseek on WAL failed");
  log_size_ = static_cast<uint64_t>(size);
  return Status::OK();
}

// --------------------------------------------------------------- recovery --

namespace {

// Sequential chunked reader over the log fd: recovery touches the file in
// fixed-size pread chunks instead of slurping it whole into memory, so
// replay memory is bounded by the largest single transaction, not by the
// log size.
class ChunkedLogReader {
 public:
  static constexpr size_t kChunk = 256 * 1024;

  explicit ChunkedLogReader(int fd) : fd_(fd) {
    buf_.resize(kChunk);
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    file_size_ = size < 0 ? 0 : static_cast<uint64_t>(size);
  }

  bool failed() const { return failed_; }
  uint64_t file_size() const { return file_size_; }

  // Reads up to `n` sequential bytes; returns how many were available.
  size_t Read(uint8_t* out, size_t n) {
    size_t copied = 0;
    while (copied < n) {
      if (pos_ >= len_) {
        if (!Fill()) break;
      }
      const size_t take = std::min(n - copied, len_ - pos_);
      std::memcpy(out + copied, buf_.data() + pos_, take);
      pos_ += take;
      copied += take;
    }
    return copied;
  }

 private:
  bool Fill() {
    if (file_pos_ >= file_size_) return false;
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kChunk, file_size_ - file_pos_));
    const ssize_t got =
        ::pread(fd_, buf_.data(), want, static_cast<off_t>(file_pos_));
    if (got <= 0) {
      failed_ = got < 0;
      file_pos_ = file_size_;  // stop
      return false;
    }
    file_pos_ += static_cast<uint64_t>(got);
    len_ = static_cast<size_t>(got);
    pos_ = 0;
    return true;
  }

  int fd_;
  uint64_t file_size_ = 0;
  uint64_t file_pos_ = 0;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  size_t len_ = 0;
  bool failed_ = false;
};

}  // namespace

Status WalNodeStore::Recover() {
  AcquirePipeline();
  obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kRecoveryBegin);
  Status status = [&]() -> Status {
    ChunkedLogReader reader(log_fd_);
    uint64_t replayed = 0;
    uint64_t discarded = 0;
    uint64_t crc_failures = 0;
    uint64_t bytes_scanned = 0;
    std::vector<uint8_t> payload;

    for (;;) {
      uint8_t header[wal::kFrameHeaderSize];
      const size_t got = reader.Read(header, sizeof(header));
      if (got == 0) break;  // clean end of log
      if (got < sizeof(header)) {
        ++discarded;  // torn frame header
        break;
      }
      const uint32_t payload_len = LoadU32(header);
      const uint32_t expected_crc = LoadU32(header + 4);
      if (payload_len == 0 || payload_len > wal::kMaxFramePayload) {
        ++crc_failures;  // header is garbage; nothing after it is trusted
        ++discarded;
        break;
      }
      payload.resize(payload_len);
      if (reader.Read(payload.data(), payload_len) < payload_len) {
        ++discarded;  // torn payload
        break;
      }
      if (Crc32(payload.data(), payload_len) != expected_crc) {
        ++crc_failures;
        ++discarded;
        break;
      }
      bytes_scanned += wal::kFrameHeaderSize + payload_len;

      // The frame checksummed clean: replay its committed transactions.
      // Every BEGIN that reaches end-of-frame without a COMMIT is one
      // discarded transaction (counted individually).
      TxnBuffer txn;
      bool open = false;
      size_t offset = 0;
      while (offset < payload_len) {
        const uint8_t type = payload[offset];
        if (type == wal::kRecBegin) {
          if (open) ++discarded;  // BEGIN without COMMIT before it
          txn = TxnBuffer();
          open = true;
          offset += 1;
        } else if (type == wal::kRecWrite) {
          if (offset + kWriteRecordSize > payload_len) {
            return Status::Corruption("WAL write record overruns its frame");
          }
          const NodeId id = LoadU64(payload.data() + offset + 1);
          txn.writes[id].assign(payload.begin() + offset + 9,
                                payload.begin() + offset + 9 + kPageSize);
          offset += kWriteRecordSize;
        } else if (type == wal::kRecFree) {
          if (offset + kFreeRecordSize > payload_len) {
            return Status::Corruption("WAL free record overruns its frame");
          }
          txn.frees.push_back(LoadU64(payload.data() + offset + 1));
          offset += kFreeRecordSize;
        } else if (type == wal::kRecCommit) {
          if (!open) {
            return Status::Corruption("WAL COMMIT record without BEGIN");
          }
          {
            std::lock_guard<std::mutex> il(inner_mu_);
            GRTDB_RETURN_IF_ERROR(ApplyTxnInnerLocked(txn));
          }
          ++replayed;
          open = false;
          offset += 1;
        } else {
          return Status::Corruption("unknown WAL record type inside frame");
        }
      }
      if (open) ++discarded;  // frame ended with the transaction open
    }
    if (reader.failed()) return Status::IOError("read of WAL failed");

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      wal_stats_.transactions_replayed += replayed;
      wal_stats_.transactions_discarded += discarded;
      wal_stats_.crc_failures += crc_failures;
      wal_stats_.bytes_replayed += bytes_scanned;
    }
    obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kRecoveryEnd,
                                              replayed, discarded);
    if (trace_ != nullptr) {
      trace_->Tprintf(
          "wal", 1,
          "recover: %llu txns replayed, %llu discarded, %llu CRC failures, "
          "%llu bytes scanned",
          static_cast<unsigned long long>(replayed),
          static_cast<unsigned long long>(discarded),
          static_cast<unsigned long long>(crc_failures),
          static_cast<unsigned long long>(bytes_scanned));
    }

    // The log's work is done; flush the replayed state and truncate it.
    {
      std::lock_guard<std::mutex> il(inner_mu_);
      GRTDB_RETURN_IF_ERROR(inner_->Flush());
      if (::ftruncate(log_fd_, 0) != 0) {
        return Status::IOError("cannot truncate WAL");
      }
      log_size_ = 0;
      unapplied_in_log_ = false;
    }
    return Status::OK();
  }();
  ReleasePipeline();
  return status;
}

// ------------------------------------------------------------ txn buffers --

Status WalNodeStore::Begin() {
  if (default_txn_.open) {
    return Status::InvalidArgument("WAL transaction already open");
  }
  default_txn_.open = true;
  default_txn_.writes.clear();
  default_txn_.frees.clear();
  return Status::OK();
}

Status WalNodeStore::Commit() {
  return CommitBuffer(&default_txn_, /*apply=*/true);
}

Status WalNodeStore::CommitWithCrashBeforeApply() {
  return CommitBuffer(&default_txn_, /*apply=*/false);
}

Status WalNodeStore::Rollback() {
  if (!default_txn_.open) {
    return Status::InvalidArgument("no WAL transaction open");
  }
  default_txn_.writes.clear();
  default_txn_.frees.clear();
  default_txn_.open = false;
  return Status::OK();
}

std::unique_ptr<WalTxn> WalNodeStore::BeginConcurrent() {
  return std::unique_ptr<WalTxn>(new WalTxn(this));
}

// ------------------------------------------------------------ commit path --

std::vector<uint8_t> WalNodeStore::BuildFrame(const TxnBuffer& txn) {
  const size_t payload_size = 1 + txn.writes.size() * kWriteRecordSize +
                              txn.frees.size() * kFreeRecordSize + 1;
  std::vector<uint8_t> frame;
  frame.reserve(wal::kFrameHeaderSize + payload_size);
  frame.resize(wal::kFrameHeaderSize);
  frame.push_back(wal::kRecBegin);
  for (const auto& [id, image] : txn.writes) {
    frame.push_back(wal::kRecWrite);
    uint8_t id_bytes[8];
    StoreU64(id_bytes, id);
    frame.insert(frame.end(), id_bytes, id_bytes + 8);
    frame.insert(frame.end(), image.begin(), image.end());
  }
  for (NodeId id : txn.frees) {
    frame.push_back(wal::kRecFree);
    uint8_t id_bytes[8];
    StoreU64(id_bytes, id);
    frame.insert(frame.end(), id_bytes, id_bytes + 8);
  }
  frame.push_back(wal::kRecCommit);
  const size_t payload_len = frame.size() - wal::kFrameHeaderSize;
  StoreU32(frame.data(), static_cast<uint32_t>(payload_len));
  StoreU32(frame.data() + 4,
           Crc32(frame.data() + wal::kFrameHeaderSize, payload_len));
  return frame;
}

Status WalNodeStore::WriteAllToLog(const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t written = write_hook_
                                ? write_hook_(log_fd_, data, size)
                                : ::write(log_fd_, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;  // interrupted before any byte moved
      return Status::IOError(std::string("write to WAL failed: ") +
                             std::strerror(errno));
    }
    // A short write (signal, quota boundary) is not an error: the kernel
    // accepted a prefix, so push the remainder until it is all durable in
    // the page cache. Giving up here would leave a torn record in the log.
    data += written;
    size -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status WalNodeStore::ApplyTxnInnerLocked(const TxnBuffer& txn) {
  for (const auto& [id, image] : txn.writes) {
    GRTDB_RETURN_IF_ERROR(inner_->WriteNode(id, image.data()));
  }
  for (NodeId id : txn.frees) {
    GRTDB_RETURN_IF_ERROR(inner_->FreeNode(id));
  }
  return Status::OK();
}

void WalNodeStore::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_commit_us_ = m_batch_size_ = nullptr;
    m_commits_ = m_syncs_ = m_group_commits_ = m_log_bytes_ = nullptr;
    return;
  }
  m_commit_us_ = metrics->GetHistogram("wal.commit_us");
  m_batch_size_ = metrics->GetHistogram("wal.batch_size");
  m_commits_ = metrics->GetCounter("wal.commits");
  m_syncs_ = metrics->GetCounter("wal.syncs");
  m_group_commits_ = metrics->GetCounter("wal.group_commits");
  m_log_bytes_ = metrics->GetCounter("wal.log_bytes");
}

Status WalNodeStore::CommitBuffer(TxnBuffer* txn, bool apply) {
  if (!txn->open) return Status::InvalidArgument("no WAL transaction open");

  // The commit-latency histogram spans the whole commit: frame build,
  // queueing, the (possibly borrowed) fsync, and the inner-store apply.
  const auto commit_start = m_commit_us_ != nullptr
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point();

  CommitRequest req;
  req.txn = txn;
  req.apply = apply;
  req.frame = BuildFrame(*txn);
  req.records = 2 + txn->writes.size() + txn->frees.size();

  GRTDB_WITNESS_ACQUIRE(CommitMutexClass());
  {
    // Group-commit wait for a traced request: enqueue until this
    // transaction is durable, whether this thread led the round's fsync
    // or rode on another leader's.
    obs::SpanScope wal_span(obs::SpanName::kWalWait, req.records,
                            req.frame.size());
    std::unique_lock<std::mutex> lk(commit_mu_);
    commit_queue_.push_back(&req);
    commit_cv_.notify_all();  // a lingering leader may be waiting for joiners
    for (;;) {
      if (req.done) break;
      if (!leader_active_) {
        // No leader: this thread drains the queue (including its own
        // request, unless the batch cap defers it to the next round).
        RunLeaderRound(lk);
        continue;
      }
      commit_cv_.wait(lk);
    }
    lk.unlock();
  }
  GRTDB_WITNESS_RELEASE(CommitMutexClass());

  if (req.result.ok()) {
    txn->writes.clear();
    txn->frees.clear();
    txn->open = false;
    if (m_commit_us_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - commit_start;
      m_commit_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
    }
    if (m_commits_ != nullptr) m_commits_->Add();
  }
  return req.result;
}

void WalNodeStore::RunLeaderRound(std::unique_lock<std::mutex>& lk) {
  leader_active_ = true;
  if (options_.max_wait_us > 0 && commit_queue_.size() < options_.max_batch) {
    // Linger briefly so concurrent committers can join this batch.
    commit_cv_.wait_for(
        lk, std::chrono::microseconds(options_.max_wait_us),
        [&] { return commit_queue_.size() >= options_.max_batch; });
  }
  std::vector<CommitRequest*> batch;
  while (!commit_queue_.empty() && batch.size() < options_.max_batch) {
    batch.push_back(commit_queue_.front());
    commit_queue_.pop_front();
  }
  lk.unlock();
  GRTDB_WITNESS_RELEASE(CommitMutexClass());

  size_t blob_size = 0;
  uint64_t records = 0;
  for (const CommitRequest* r : batch) {
    blob_size += r->frame.size();
    records += r->records;
  }
  std::vector<uint8_t> blob;
  blob.reserve(blob_size);
  for (const CommitRequest* r : batch) {
    blob.insert(blob.end(), r->frame.begin(), r->frame.end());
  }

  Status io = WriteAllToLog(blob.data(), blob.size());
  if (io.ok() && ::fsync(log_fd_) != 0) {
    io = Status::IOError("fsync on WAL failed");
  }

  if (io.ok()) {
    std::lock_guard<std::mutex> il(inner_mu_);
    log_size_ += blob.size();
    for (CommitRequest* r : batch) {
      if (r->apply) {
        r->result = ApplyTxnInnerLocked(*r->txn);
      } else {
        // "Crash" hook: the durable log has the transaction, the store
        // does not. Recover() must repair it, so the log must survive.
        unapplied_in_log_ = true;
        r->result = Status::OK();
      }
    }
  } else {
    for (CommitRequest* r : batch) r->result = io;
  }

  if (io.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++wal_stats_.syncs;
    wal_stats_.log_bytes += blob.size();
    wal_stats_.log_records += records;
    wal_stats_.transactions_committed += batch.size();
    if (batch.size() > 1) {
      ++wal_stats_.group_commits;
      wal_stats_.batched_commits += batch.size() - 1;
      wal_stats_.fsyncs_saved += batch.size() - 1;
    }
  }
  if (io.ok()) {
    if (m_syncs_ != nullptr) m_syncs_->Add();
    if (m_log_bytes_ != nullptr) m_log_bytes_->Add(blob.size());
    if (m_batch_size_ != nullptr) m_batch_size_->Record(batch.size());
    if (m_group_commits_ != nullptr && batch.size() > 1) {
      m_group_commits_->Add();
    }
  }
  if (trace_ != nullptr && batch.size() > 1) {
    trace_->Tprintf("wal", 2, "group commit: %llu txns, %llu bytes, 1 fsync",
                    static_cast<unsigned long long>(batch.size()),
                    static_cast<unsigned long long>(blob.size()));
  }
  if (io.ok()) MaybeAutoCheckpoint();

  GRTDB_WITNESS_ACQUIRE(CommitMutexClass());
  lk.lock();
  for (CommitRequest* r : batch) r->done = true;
  leader_active_ = false;
  commit_cv_.notify_all();
}

void WalNodeStore::MaybeAutoCheckpoint() {
  if (options_.checkpoint_log_bytes == 0) return;
  std::lock_guard<std::mutex> il(inner_mu_);
  // Never truncate while the log holds a committed-but-unapplied
  // transaction (crash-test hook): the log is its only copy.
  if (unapplied_in_log_ || log_size_ < options_.checkpoint_log_bytes) return;
  // Incremental checkpoint: make the inner store durable, then drop the
  // log. A failure here is not a commit failure — the log simply stays and
  // the next commit retries the checkpoint.
  Status status = inner_->Flush();
  if (status.ok() && ::ftruncate(log_fd_, 0) != 0) {
    status = Status::IOError("cannot truncate WAL");
  }
  if (status.ok()) {
    const uint64_t dropped = log_size_;
    log_size_ = 0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++wal_stats_.checkpoints;
    }
    obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kCheckpoint,
                                              dropped);
    if (trace_ != nullptr) {
      trace_->Tprintf("wal", 1,
                      "size-triggered checkpoint: dropped %llu log bytes",
                      static_cast<unsigned long long>(dropped));
    }
  } else if (trace_ != nullptr) {
    trace_->Tprintf("wal", 1, "checkpoint failed: %s",
                    status.ToString().c_str());
  }
}

// ------------------------------------------------------------- checkpoint --

void WalNodeStore::AcquirePipeline() {
  GRTDB_WITNESS_ACQUIRE(CommitMutexClass());
  std::unique_lock<std::mutex> lk(commit_mu_);
  commit_cv_.wait(lk, [&] { return !leader_active_; });
  leader_active_ = true;  // blocks commit leaders; appends are quiesced
}

void WalNodeStore::ReleasePipeline() {
  {
    std::lock_guard<std::mutex> lk(commit_mu_);
    leader_active_ = false;
  }
  commit_cv_.notify_all();
  GRTDB_WITNESS_RELEASE(CommitMutexClass());
}

Status WalNodeStore::CheckpointQuiesced() {
  std::lock_guard<std::mutex> il(inner_mu_);
  GRTDB_RETURN_IF_ERROR(inner_->Flush());
  if (::ftruncate(log_fd_, 0) != 0) {
    return Status::IOError("cannot truncate WAL");
  }
  const uint64_t dropped = log_size_;
  log_size_ = 0;
  unapplied_in_log_ = false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++wal_stats_.checkpoints;
  }
  obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kCheckpoint,
                                            dropped);
  return Status::OK();
}

Status WalNodeStore::Checkpoint() {
  if (default_txn_.open) {
    return Status::InvalidArgument("cannot checkpoint inside a transaction");
  }
  AcquirePipeline();
  Status status = CheckpointQuiesced();
  ReleasePipeline();
  if (status.ok() && trace_ != nullptr) {
    trace_->Tprintf("wal", 1, "checkpoint: log truncated");
  }
  return status;
}

// -------------------------------------------------------- NodeStore calls --

Status WalNodeStore::AllocateNode(NodeId* id) {
  // Allocation mutates the inner store immediately; a crash before commit
  // merely leaks the slot (documented trade-off of the simple protocol).
  std::lock_guard<std::mutex> il(inner_mu_);
  return inner_->AllocateNode(id);
}

Status WalNodeStore::FreeNode(NodeId id) {
  if (!default_txn_.open) {
    std::lock_guard<std::mutex> il(inner_mu_);
    return inner_->FreeNode(id);
  }
  default_txn_.writes.erase(id);
  default_txn_.frees.push_back(id);
  return Status::OK();
}

Status WalNodeStore::ReadNodeInner(NodeId id, uint8_t* out) {
  std::lock_guard<std::mutex> il(inner_mu_);
  return inner_->ReadNode(id, out);
}

Status WalNodeStore::ReadNode(NodeId id, uint8_t* out) {
  {
    std::lock_guard<std::mutex> il(inner_mu_);
    ++stats_.node_reads;
  }
  if (default_txn_.open) {
    auto it = default_txn_.writes.find(id);
    if (it != default_txn_.writes.end()) {
      std::memcpy(out, it->second.data(), kPageSize);
      return Status::OK();
    }
  }
  return ReadNodeInner(id, out);
}

Status WalNodeStore::ViewNode(NodeId id, NodeView* view) {
  if (default_txn_.open) {
    // Transactional reads must see the txn buffer: take the copying
    // default, which routes through our ReadNode (and its stats).
    return NodeStore::ViewNode(id, view);
  }
  std::lock_guard<std::mutex> il(inner_mu_);
  ++stats_.node_reads;
  return inner_->ViewNode(id, view);  // zero-copy when inner is a cache
}

Status WalNodeStore::WriteNode(NodeId id, const uint8_t* data) {
  std::lock_guard<std::mutex> il(inner_mu_);
  ++stats_.node_writes;
  if (!default_txn_.open) return inner_->WriteNode(id, data);
  default_txn_.writes[id].assign(data, data + kPageSize);
  return Status::OK();
}

Status WalNodeStore::Flush() {
  std::lock_guard<std::mutex> il(inner_mu_);
  return inner_->Flush();
}

WalStats WalNodeStore::wal_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return wal_stats_;
}

// ------------------------------------------------------------------ WalTxn --

Status WalTxn::Rollback() {
  if (!buf_.open) return Status::InvalidArgument("no WAL transaction open");
  buf_.writes.clear();
  buf_.frees.clear();
  buf_.open = false;
  return Status::OK();
}

Status WalTxn::FreeNode(NodeId id) {
  if (!buf_.open) return Status::InvalidArgument("WAL transaction finished");
  buf_.writes.erase(id);
  buf_.frees.push_back(id);
  return Status::OK();
}

Status WalTxn::ReadNode(NodeId id, uint8_t* out) {
  if (!buf_.open) return Status::InvalidArgument("WAL transaction finished");
  ++stats_.node_reads;
  auto it = buf_.writes.find(id);
  if (it != buf_.writes.end()) {
    std::memcpy(out, it->second.data(), kPageSize);
    return Status::OK();
  }
  return wal_->ReadNodeInner(id, out);
}

Status WalTxn::WriteNode(NodeId id, const uint8_t* data) {
  if (!buf_.open) return Status::InvalidArgument("WAL transaction finished");
  ++stats_.node_writes;
  buf_.writes[id].assign(data, data + kPageSize);
  return Status::OK();
}

}  // namespace grtdb
