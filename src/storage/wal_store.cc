#include "storage/wal_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/layout.h"

namespace grtdb {

namespace {

// Log record types. A transaction is BEGIN (WRITE | FREE)* COMMIT; only
// transactions whose COMMIT made it to disk are replayed.
constexpr uint8_t kRecBegin = 1;
constexpr uint8_t kRecWrite = 2;
constexpr uint8_t kRecFree = 3;
constexpr uint8_t kRecCommit = 4;

}  // namespace

StatusOr<std::unique_ptr<WalNodeStore>> WalNodeStore::Open(
    NodeStore* inner, const std::string& log_path) {
  std::unique_ptr<WalNodeStore> store(new WalNodeStore(inner, log_path));
  GRTDB_RETURN_IF_ERROR(store->OpenLogForAppend());
  return store;
}

WalNodeStore::~WalNodeStore() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

Status WalNodeStore::OpenLogForAppend() {
  log_fd_ = ::open(log_path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (log_fd_ < 0) {
    return Status::IOError("cannot open WAL '" + log_path_ +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

Status WalNodeStore::Recover() {
  // Read the whole log and replay committed transactions in order.
  std::vector<uint8_t> log;
  {
    const off_t size = ::lseek(log_fd_, 0, SEEK_END);
    if (size < 0) return Status::IOError("lseek on WAL failed");
    log.resize(static_cast<size_t>(size));
    if (size > 0 &&
        ::pread(log_fd_, log.data(), log.size(), 0) !=
            static_cast<ssize_t>(log.size())) {
      return Status::IOError("short read on WAL");
    }
  }

  struct PendingTxn {
    std::map<NodeId, std::vector<uint8_t>> writes;
    std::vector<NodeId> frees;
  };
  PendingTxn txn;
  bool open = false;
  size_t offset = 0;
  while (offset < log.size()) {
    const uint8_t type = log[offset];
    if (type == kRecBegin) {
      if (offset + 1 > log.size()) break;
      txn = PendingTxn();
      open = true;
      offset += 1;
    } else if (type == kRecWrite) {
      if (offset + 1 + 8 + kPageSize > log.size()) break;  // torn tail
      const NodeId id = LoadU64(log.data() + offset + 1);
      txn.writes[id].assign(log.begin() + offset + 9,
                            log.begin() + offset + 9 + kPageSize);
      offset += 1 + 8 + kPageSize;
    } else if (type == kRecFree) {
      if (offset + 1 + 8 > log.size()) break;
      txn.frees.push_back(LoadU64(log.data() + offset + 1));
      offset += 1 + 8;
    } else if (type == kRecCommit) {
      if (!open) break;  // corrupt; stop here
      for (const auto& [id, image] : txn.writes) {
        GRTDB_RETURN_IF_ERROR(inner_->WriteNode(id, image.data()));
      }
      for (NodeId id : txn.frees) {
        GRTDB_RETURN_IF_ERROR(inner_->FreeNode(id));
      }
      ++wal_stats_.transactions_replayed;
      open = false;
      offset += 1;
    } else {
      break;  // unknown byte: treat as torn tail
    }
  }
  if (open || offset < log.size()) ++wal_stats_.transactions_discarded;

  GRTDB_RETURN_IF_ERROR(inner_->Flush());
  // The log's work is done; truncate it.
  if (::ftruncate(log_fd_, 0) != 0) {
    return Status::IOError("cannot truncate WAL");
  }
  return Status::OK();
}

Status WalNodeStore::Begin() {
  if (in_txn_) {
    return Status::InvalidArgument("WAL transaction already open");
  }
  in_txn_ = true;
  pending_.clear();
  pending_frees_.clear();
  return Status::OK();
}

Status WalNodeStore::AppendTransactionToLog() {
  std::vector<uint8_t> buffer;
  buffer.reserve(1 + pending_.size() * (1 + 8 + kPageSize) +
                 pending_frees_.size() * 9 + 1);
  buffer.push_back(kRecBegin);
  for (const auto& [id, image] : pending_) {
    buffer.push_back(kRecWrite);
    uint8_t id_bytes[8];
    StoreU64(id_bytes, id);
    buffer.insert(buffer.end(), id_bytes, id_bytes + 8);
    buffer.insert(buffer.end(), image.begin(), image.end());
  }
  for (NodeId id : pending_frees_) {
    buffer.push_back(kRecFree);
    uint8_t id_bytes[8];
    StoreU64(id_bytes, id);
    buffer.insert(buffer.end(), id_bytes, id_bytes + 8);
  }
  buffer.push_back(kRecCommit);
  if (::write(log_fd_, buffer.data(), buffer.size()) !=
      static_cast<ssize_t>(buffer.size())) {
    return Status::IOError("short write to WAL");
  }
  if (::fsync(log_fd_) != 0) {
    return Status::IOError("fsync on WAL failed");
  }
  wal_stats_.log_records += 2 + pending_.size() + pending_frees_.size();
  wal_stats_.log_bytes += buffer.size();
  ++wal_stats_.syncs;
  return Status::OK();
}

Status WalNodeStore::ApplyPending() {
  for (const auto& [id, image] : pending_) {
    GRTDB_RETURN_IF_ERROR(inner_->WriteNode(id, image.data()));
  }
  for (NodeId id : pending_frees_) {
    GRTDB_RETURN_IF_ERROR(inner_->FreeNode(id));
  }
  pending_.clear();
  pending_frees_.clear();
  return Status::OK();
}

Status WalNodeStore::Commit() {
  if (!in_txn_) return Status::InvalidArgument("no WAL transaction open");
  GRTDB_RETURN_IF_ERROR(AppendTransactionToLog());
  GRTDB_RETURN_IF_ERROR(ApplyPending());
  in_txn_ = false;
  ++wal_stats_.transactions_committed;
  return Status::OK();
}

Status WalNodeStore::CommitWithCrashBeforeApply() {
  if (!in_txn_) return Status::InvalidArgument("no WAL transaction open");
  GRTDB_RETURN_IF_ERROR(AppendTransactionToLog());
  // "Crash": the durable log has the transaction, the store does not.
  pending_.clear();
  pending_frees_.clear();
  in_txn_ = false;
  ++wal_stats_.transactions_committed;
  return Status::OK();
}

Status WalNodeStore::Rollback() {
  if (!in_txn_) return Status::InvalidArgument("no WAL transaction open");
  pending_.clear();
  pending_frees_.clear();
  in_txn_ = false;
  return Status::OK();
}

Status WalNodeStore::Checkpoint() {
  if (in_txn_) {
    return Status::InvalidArgument("cannot checkpoint inside a transaction");
  }
  GRTDB_RETURN_IF_ERROR(inner_->Flush());
  if (::ftruncate(log_fd_, 0) != 0) {
    return Status::IOError("cannot truncate WAL");
  }
  return Status::OK();
}

Status WalNodeStore::AllocateNode(NodeId* id) {
  // Allocation mutates the inner store immediately; a crash before commit
  // merely leaks the slot (documented trade-off of the simple protocol).
  return inner_->AllocateNode(id);
}

Status WalNodeStore::FreeNode(NodeId id) {
  if (!in_txn_) return inner_->FreeNode(id);
  pending_.erase(id);
  pending_frees_.push_back(id);
  return Status::OK();
}

Status WalNodeStore::ReadNode(NodeId id, uint8_t* out) {
  ++stats_.node_reads;
  if (in_txn_) {
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      std::memcpy(out, it->second.data(), kPageSize);
      return Status::OK();
    }
  }
  return inner_->ReadNode(id, out);
}

Status WalNodeStore::WriteNode(NodeId id, const uint8_t* data) {
  ++stats_.node_writes;
  if (!in_txn_) return inner_->WriteNode(id, data);
  pending_[id].assign(data, data + kPageSize);
  return Status::OK();
}

Status WalNodeStore::Flush() { return inner_->Flush(); }

}  // namespace grtdb
