#ifndef GRTDB_STORAGE_SBSPACE_H_
#define GRTDB_STORAGE_SBSPACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/pager.h"

namespace grtdb {

// Handle to a smart large object. The paper (§5.3) notes Informix LO handles
// are "relatively large" — kSerializedSize reflects that when a handle is
// embedded into index node entries (the per-node-LO storage layout of T8).
struct LoHandle {
  uint64_t id = 0;

  static constexpr size_t kSerializedSize = 64;

  bool valid() const { return id != 0; }
  friend bool operator==(LoHandle a, LoHandle b) { return a.id == b.id; }
};

// An sbspace: a page space holding smart large objects (the storage option
// Informix offers access-method DataBlades, §5.3). Each large object is a
// byte-addressable, growable sequence backed by a chain of pages; the space
// maintains a directory of LO ids and a free-page list.
//
// Locking is *not* done here: the DataBlade-facing wrapper (blade::MiLo)
// acquires LO-granularity two-phase locks through the LockManager, exactly
// as Informix locks LOs on open. This class is thread-safe for structural
// correctness only.
class Sbspace {
 public:
  // Opens (formatting if empty) an sbspace over `space` with a buffer pool
  // of `pool_pages` frames.
  static StatusOr<std::unique_ptr<Sbspace>> Open(Space* space,
                                                 size_t pool_pages);

  Sbspace(const Sbspace&) = delete;
  Sbspace& operator=(const Sbspace&) = delete;

  Status CreateLo(LoHandle* handle);
  Status DropLo(LoHandle handle);

  // Current byte size of the LO.
  Status LoSize(LoHandle handle, uint64_t* size);

  // Reads `len` bytes at `offset`. Reading past the end is an error.
  Status LoRead(LoHandle handle, uint64_t offset, size_t len, uint8_t* out);

  // Writes `len` bytes at `offset`, growing the LO (zero-filled) as needed.
  Status LoWrite(LoHandle handle, uint64_t offset, size_t len,
                 const uint8_t* data);

  // Truncates the LO to `size` bytes, releasing whole trailing pages.
  Status LoTruncate(LoHandle handle, uint64_t size);

  Pager& pager() { return pager_; }

  // Number of live large objects (directory scan; for tests).
  Status CountLos(uint64_t* count);

 private:
  explicit Sbspace(Space* space, size_t pool_pages)
      : pager_(space, pool_pages) {}

  Status Format();
  Status AllocPage(PageId* id);
  Status FreePage(PageId id);
  Status FindInode(uint64_t lo_id, PageId* inode_page);
  // Locates (or, if `grow`, allocates up to) the data page holding byte
  // `offset`; page index within the LO is offset / kPageSize.
  Status DataPageFor(PageId inode_root, uint64_t page_index, bool grow,
                     PageId* data_page);

  std::mutex mu_;
  Pager pager_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_SBSPACE_H_
