#include "storage/space.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace grtdb {

Status MemorySpace::ReadPage(PageId id, uint8_t* out) {
  if (id >= pages_.size()) {
    return Status::IOError("read past end of space: page " +
                           std::to_string(id));
  }
  std::memcpy(out, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemorySpace::WritePage(PageId id, const uint8_t* data) {
  if (id >= pages_.size()) {
    return Status::IOError("write past end of space: page " +
                           std::to_string(id));
  }
  std::memcpy(pages_[id].get(), data, kPageSize);
  return Status::OK();
}

PageId MemorySpace::page_count() const {
  return static_cast<PageId>(pages_.size());
}

Status MemorySpace::Extend(PageId* id) {
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  *id = static_cast<PageId>(pages_.size() - 1);
  return Status::OK();
}

StatusOr<std::unique_ptr<FileSpace>> FileSpace::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek failed on '" + path + "'");
  }
  PageId pages = static_cast<PageId>(static_cast<uint64_t>(size) / kPageSize);
  return std::unique_ptr<FileSpace>(new FileSpace(fd, pages));
}

FileSpace::~FileSpace() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileSpace::ReadPage(PageId id, uint8_t* out) {
  if (id >= page_count_) {
    return Status::IOError("read past end of space: page " +
                           std::to_string(id));
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short read on page " + std::to_string(id));
  }
  return Status::OK();
}

Status FileSpace::WritePage(PageId id, const uint8_t* data) {
  if (id >= page_count_) {
    return Status::IOError("write past end of space: page " +
                           std::to_string(id));
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  return Status::OK();
}

PageId FileSpace::page_count() const { return page_count_; }

Status FileSpace::Extend(PageId* id) {
  uint8_t zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  PageId new_id = page_count_;
  ssize_t n =
      ::pwrite(fd_, zeros, kPageSize,
               static_cast<off_t>(new_id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("extend failed at page " + std::to_string(new_id));
  }
  ++page_count_;
  *id = new_id;
  return Status::OK();
}

Status FileSpace::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace grtdb
