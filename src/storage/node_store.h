#ifndef GRTDB_STORAGE_NODE_STORE_H_
#define GRTDB_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"
#include "storage/sbspace.h"

namespace grtdb {

using NodeId = uint64_t;
inline constexpr NodeId kInvalidNodeId = ~0ull;

class NodeCache;

// Per-store access statistics: one read/write = one node (page) touched.
// The cache_* fields are only populated by NodeCache decorators.
struct NodeStoreStats {
  uint64_t node_reads = 0;
  uint64_t node_writes = 0;
  uint64_t lo_opens = 0;  // large-object opens (per-LO layouts only)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_write_backs = 0;

  double cache_hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

// A read-only view of one node image. Either owns a private copy (the
// default ViewNode path) or pins a NodeCache frame, in which case the view
// also holds the cache's read latch for its lifetime: zero-copy for tree
// search, but callers must drop the view before writing to the same store.
class NodeView {
 public:
  NodeView() = default;
  ~NodeView() { Reset(); }
  NodeView(NodeView&& other) noexcept { *this = std::move(other); }
  NodeView& operator=(NodeView&& other) noexcept;
  NodeView(const NodeView&) = delete;
  NodeView& operator=(const NodeView&) = delete;

  const uint8_t* data() const { return data_; }
  bool valid() const { return data_ != nullptr; }
  void Reset();

  // Takes ownership of a kPageSize heap copy (default / non-cached path).
  void AdoptOwned(std::unique_ptr<uint8_t[]> owned);
  // Adopts a pinned cache frame; `latch` keeps readers latched while the
  // view is live and `frame` is unpinned on Reset. Called by NodeCache.
  void AdoptPinned(NodeCache* cache, size_t frame, const uint8_t* data,
                   std::shared_lock<std::shared_mutex> latch);

 private:
  const uint8_t* data_ = nullptr;
  std::unique_ptr<uint8_t[]> owned_;
  NodeCache* cache_ = nullptr;
  size_t frame_ = 0;
  std::shared_lock<std::shared_mutex> latch_;
};

// Where a tree-based access method keeps its nodes. The paper (§5.3)
// discusses the DataBlade developer's options: smart large objects in an
// sbspace (one LO for the whole index, one LO per node, or LOs holding
// subtrees) or a regular operating-system file. Each option is an
// implementation of this interface so the same GR-tree/R*-tree code runs on
// all of them and bench T8 can compare.
class NodeStore {
 public:
  virtual ~NodeStore() = default;

  // Allocates a node slot (kPageSize bytes, zeroed).
  virtual Status AllocateNode(NodeId* id) = 0;
  virtual Status FreeNode(NodeId id) = 0;

  // Reads/writes the full kPageSize image of a node.
  virtual Status ReadNode(NodeId id, uint8_t* out) = 0;
  virtual Status WriteNode(NodeId id, const uint8_t* data) = 0;

  // Read-only view of a node image. The default copies through ReadNode
  // (so decorators keep their locking/buffering semantics); NodeCache
  // overrides it with a zero-copy pinned frame.
  virtual Status ViewNode(NodeId id, NodeView* view);

  // The large object the node lives in, or 0 when the layout is not
  // LO-based. Lock decorators use this to lock at LO granularity, exactly
  // as Informix locks LOs on open.
  virtual uint64_t LoOfNode(NodeId id) const = 0;

  virtual Status Flush() = 0;

  // Freed node slots awaiting reuse — structural telemetry for am_stats.
  // The default covers layouts without an explicit free list.
  virtual uint64_t FreeListLength() { return 0; }

  virtual const NodeStoreStats& stats() const { return stats_; }
  virtual void ResetStats() { stats_ = NodeStoreStats(); }

 protected:
  NodeStoreStats stats_;
};

// Nodes as raw pages of a Pager — the dbspace layout Informix reserves for
// its built-in access methods (no public interface; we use it for the
// standalone R*-tree/GR-tree cores and as the T8 reference point).
class PagerNodeStore final : public NodeStore {
 public:
  explicit PagerNodeStore(Pager* pager) : pager_(pager) {}

  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId) const override { return 0; }
  Status Flush() override { return pager_->FlushAll(); }
  uint64_t FreeListLength() override { return free_list_.size(); }

 private:
  Pager* pager_;
  std::vector<PageId> free_list_;
};

// The whole index in a single smart large object (the design the paper's
// GR-tree DataBlade chose): node `i` occupies bytes [i*kPageSize,
// (i+1)*kPageSize). Slot 0 holds the store's own freelist header.
class SingleLoNodeStore final : public NodeStore {
 public:
  // Uses `handle` if valid, else creates a fresh LO (returned via handle()).
  static StatusOr<std::unique_ptr<SingleLoNodeStore>> Open(Sbspace* sbspace,
                                                           LoHandle handle);

  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId) const override { return handle_.id; }
  Status Flush() override { return sbspace_->pager().FlushAll(); }
  // Walks the on-LO free chain (capped at node_count_ against cycles).
  uint64_t FreeListLength() override;

  LoHandle handle() const { return handle_; }

 private:
  SingleLoNodeStore(Sbspace* sbspace, LoHandle handle)
      : sbspace_(sbspace), handle_(handle) {}

  Status LoadHeader();
  Status StoreHeader();

  Sbspace* sbspace_;
  LoHandle handle_;
  uint64_t node_count_ = 1;  // slot 0 = header
  NodeId free_head_ = kInvalidNodeId;
};

// One LO per group of `nodes_per_lo` nodes; nodes_per_lo == 1 is the
// one-LO-per-node layout whose drawbacks §5.3 calls out (large handles in
// parent entries, open/close cost), larger values model the suggested
// subtree-per-LO middle ground. Every node access opens its LO (counted in
// stats().lo_opens).
class ClusteredLoNodeStore final : public NodeStore {
 public:
  ClusteredLoNodeStore(Sbspace* sbspace, uint64_t nodes_per_lo)
      : sbspace_(sbspace), nodes_per_lo_(nodes_per_lo) {}

  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId id) const override;
  Status Flush() override { return sbspace_->pager().FlushAll(); }
  uint64_t FreeListLength() override { return free_list_.size(); }

  // Bytes of LO-handle overhead a parent entry would carry in this layout.
  size_t handle_overhead_per_entry() const {
    return nodes_per_lo_ == 1 ? LoHandle::kSerializedSize : 0;
  }

  // State persistence: the cluster map lives in the access method's
  // catalog record (the free list is rebuilt lazily and may leak slots
  // across reopens, which only wastes space).
  const std::vector<LoHandle>& cluster_handles() const {
    return cluster_handles_;
  }
  uint64_t node_count() const { return node_count_; }
  void RestoreState(std::vector<LoHandle> handles, uint64_t node_count) {
    cluster_handles_ = std::move(handles);
    node_count_ = node_count;
  }

 private:
  Status HandleForCluster(uint64_t cluster, bool create, LoHandle* handle);

  Sbspace* sbspace_;
  uint64_t nodes_per_lo_;
  std::vector<LoHandle> cluster_handles_;
  std::vector<NodeId> free_list_;
  uint64_t node_count_ = 0;
};

// Nodes in a regular operating-system file — the storage option where the
// developer must provide *all* concurrency control and recovery (§5.3).
class ExternalFileNodeStore final : public NodeStore {
 public:
  static StatusOr<std::unique_ptr<ExternalFileNodeStore>> Open(
      const std::string& path);

  Status AllocateNode(NodeId* id) override;
  Status FreeNode(NodeId id) override;
  Status ReadNode(NodeId id, uint8_t* out) override;
  Status WriteNode(NodeId id, const uint8_t* data) override;
  uint64_t LoOfNode(NodeId) const override { return 0; }
  Status Flush() override;
  uint64_t FreeListLength() override { return free_list_.size(); }

 private:
  explicit ExternalFileNodeStore(std::unique_ptr<FileSpace> file)
      : file_(std::move(file)) {}

  std::unique_ptr<FileSpace> file_;
  std::vector<NodeId> free_list_;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_NODE_STORE_H_
