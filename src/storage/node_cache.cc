#include "storage/node_cache.h"

#include <cstring>
#include <mutex>

#include "obs/fast_clock.h"
#include "obs/flight_recorder.h"
#include "obs/query_profile.h"
#include "obs/span_tracer.h"
#include "txn/witness.h"

namespace grtdb {

namespace {
// One witness class for the frame-table latch, shared and unique modes
// alike: ordering against the lock manager and the pager is what matters.
[[maybe_unused]] witness::LockClass& CacheLatchClass() {
  static witness::LockClass cls("cache.latch");
  return cls;
}
}  // namespace

NodeCache::NodeCache(NodeStore* inner, size_t capacity)
    : inner_(inner), frames_(capacity == 0 ? 1 : capacity) {
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
  }
}

NodeCache::~NodeCache() {
  // Best-effort write-back so a cache dropped without Flush() does not
  // strand dirty pages (blades still Flush explicitly to see the status).
  GRTDB_WITNESS_SCOPE(CacheLatchClass());
  std::unique_lock lock(latch_);
  for (Frame& frame : frames_) {
    if (frame.node_id != kInvalidNodeId && frame.dirty) {
      Status s = WriteBackLocked(frame);
      (void)s;
    }
  }
}

void NodeCache::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_reads_ = m_writes_ = m_hits_ = m_misses_ = m_evictions_ =
        m_write_backs_ = nullptr;
    return;
  }
  m_reads_ = metrics->GetCounter("cache.reads");
  m_writes_ = metrics->GetCounter("cache.writes");
  m_hits_ = metrics->GetCounter("cache.hits");
  m_misses_ = metrics->GetCounter("cache.misses");
  m_evictions_ = metrics->GetCounter("cache.evictions");
  m_write_backs_ = metrics->GetCounter("cache.write_backs");
}

void NodeCache::set_heat(obs::HeatTracker* heat, const std::string& label) {
  heat_ = heat;
  heat_store_ = heat != nullptr ? heat->RegisterStore(label) : 0;
}

Status NodeCache::WriteBackLocked(Frame& frame) {
  GRTDB_RETURN_IF_ERROR(inner_->WriteNode(frame.node_id, frame.data.get()));
  frame.dirty = false;
  write_backs_.fetch_add(1, std::memory_order_relaxed);
  if (m_write_backs_ != nullptr) m_write_backs_->Add();
  return Status::OK();
}

Status NodeCache::GrabFrameLocked(size_t* frame) {
  size_t victim = frames_.size();
  uint64_t victim_tick = ~0ull;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].pins.load(std::memory_order_acquire) != 0) continue;
    if (frames_[i].node_id == kInvalidNodeId) {
      victim = i;
      break;
    }
    const uint64_t tick = frames_[i].lru_tick.load(std::memory_order_relaxed);
    if (tick < victim_tick) {
      victim = i;
      victim_tick = tick;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("node cache: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.node_id != kInvalidNodeId) {
    const bool was_dirty = f.dirty;
    if (was_dirty) {
      GRTDB_RETURN_IF_ERROR(WriteBackLocked(f));
    }
    if (trace_ != nullptr) {
      trace_->Tprintf("cache", 2, "evict node %llu%s",
                      static_cast<unsigned long long>(f.node_id),
                      was_dirty ? " (dirty)" : "");
    }
    const NodeId evicted = f.node_id;
    node_table_.erase(f.node_id);
    f.node_id = kInvalidNodeId;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) m_evictions_->Add();
    obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kCacheEviction,
                                              evicted, was_dirty ? 1 : 0);
  }
  *frame = victim;
  return Status::OK();
}

Status NodeCache::PinFrame(NodeId id, size_t* frame,
                           std::shared_lock<std::shared_mutex>* latch,
                           bool* hit, uint64_t* pin_wait_ns) {
  // The pin spans until Unpin() (possibly via a NodeView), which balances
  // this witness record; error returns below balance it immediately. The
  // success paths deliberately transfer the held record to the caller.
  GRTDB_WITNESS_ACQUIRE(CacheLatchClass());  // NOLINT(grtdb-resource-balance)
  *hit = true;
  *pin_wait_ns = 0;
  const bool heat_on = heat_ != nullptr && heat_->enabled();
  {
    std::shared_lock shared(latch_, std::defer_lock);
    if (heat_on && !shared.try_lock()) {
      // Only a blocked acquisition pays for clock reads, and only while
      // the heat gate is armed — the dormant path never reaches here.
      const uint64_t blocked_from = obs::Ticks();
      shared.lock();
      *pin_wait_ns += obs::TicksToNs(obs::Ticks() - blocked_from);
    } else if (!heat_on) {
      shared.lock();
    }
    auto it = node_table_.find(id);
    if (it != node_table_.end()) {
      Frame& f = frames_[it->second];
      f.pins.fetch_add(1, std::memory_order_acq_rel);
      f.lru_tick.store(NextTick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_hits_ != nullptr) m_hits_->Add();
      *frame = it->second;
      *latch = std::move(shared);
      return Status::OK();
    }
  }
  {
    std::unique_lock exclusive(latch_, std::defer_lock);
    if (heat_on && !exclusive.try_lock()) {
      const uint64_t blocked_from = obs::Ticks();
      exclusive.lock();
      *pin_wait_ns += obs::TicksToNs(obs::Ticks() - blocked_from);
    } else if (!heat_on) {
      exclusive.lock();
    }
    auto it = node_table_.find(id);
    if (it == node_table_.end()) {
      size_t slot;
      Status grab = GrabFrameLocked(&slot);
      if (!grab.ok()) {
        GRTDB_WITNESS_RELEASE(CacheLatchClass());
        return grab;
      }
      Frame& f = frames_[slot];
      Status read;
      {
        // The miss is the interesting part of a traced read: the time the
        // inner store (pager I/O) took to fill the frame.
        obs::SpanScope io_span(obs::SpanName::kNodeIo, id);
        read = inner_->ReadNode(id, f.data.get());
      }
      if (!read.ok()) {
        GRTDB_WITNESS_RELEASE(CacheLatchClass());
        return read;
      }
      f.node_id = id;
      f.dirty = false;
      node_table_[id] = slot;
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (m_misses_ != nullptr) m_misses_->Add();
      *hit = false;
      it = node_table_.find(id);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_hits_ != nullptr) m_hits_->Add();
    }
    Frame& f = frames_[it->second];
    f.pins.fetch_add(1, std::memory_order_acq_rel);
    f.lru_tick.store(NextTick(), std::memory_order_relaxed);
    *frame = it->second;
  }
  // Downgrade: the pin keeps the frame (and its mapping's data buffer)
  // alive across the latch gap, so re-acquiring shared is safe.
  *latch = std::shared_lock(latch_);
  return Status::OK();
}

void NodeCache::Unpin(size_t frame) {
  frames_[frame].pins.fetch_sub(1, std::memory_order_acq_rel);
  GRTDB_WITNESS_RELEASE(CacheLatchClass());
}

Status NodeCache::ReadNode(NodeId id, uint8_t* out) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (m_reads_ != nullptr) m_reads_->Add();
  size_t frame;
  std::shared_lock<std::shared_mutex> latch;
  bool hit;
  uint64_t pin_wait_ns;
  GRTDB_RETURN_IF_ERROR(PinFrame(id, &frame, &latch, &hit, &pin_wait_ns));
  if (obs::QueryProfile* profile = obs::CurrentProfile()) {
    ++profile->node_reads;
    if (hit) ++profile->cache_hits;
  }
  if (heat_ != nullptr && heat_->enabled()) {
    heat_->RecordAccess(heat_store_, id, obs::HeatAccess::kRead,
                        pin_wait_ns);
  }
  std::memcpy(out, frames_[frame].data.get(), kPageSize);
  latch.unlock();
  Unpin(frame);
  return Status::OK();
}

Status NodeCache::ViewNode(NodeId id, NodeView* view) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (m_reads_ != nullptr) m_reads_->Add();
  size_t frame;
  std::shared_lock<std::shared_mutex> latch;
  bool hit;
  uint64_t pin_wait_ns;
  GRTDB_RETURN_IF_ERROR(PinFrame(id, &frame, &latch, &hit, &pin_wait_ns));
  if (obs::QueryProfile* profile = obs::CurrentProfile()) {
    ++profile->node_reads;
    if (hit) ++profile->cache_hits;
  }
  if (heat_ != nullptr && heat_->enabled()) {
    heat_->RecordAccess(heat_store_, id, obs::HeatAccess::kRead,
                        pin_wait_ns);
  }
  view->AdoptPinned(this, frame, frames_[frame].data.get(),
                    std::move(latch));
  return Status::OK();
}

Status NodeCache::FrameForWriteLocked(NodeId id, size_t* frame) {
  auto it = node_table_.find(id);
  if (it != node_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (m_hits_ != nullptr) m_hits_->Add();
    *frame = it->second;
    return Status::OK();
  }
  // Write-allocate without reading the inner store: WriteNode replaces the
  // whole kPageSize image anyway.
  GRTDB_RETURN_IF_ERROR(GrabFrameLocked(frame));
  Frame& f = frames_[*frame];
  f.node_id = id;
  f.dirty = false;
  node_table_[id] = *frame;
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_misses_ != nullptr) m_misses_->Add();
  return Status::OK();
}

Status NodeCache::WriteNode(NodeId id, const uint8_t* data) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (m_writes_ != nullptr) m_writes_->Add();
  GRTDB_WITNESS_SCOPE(CacheLatchClass());
  const bool heat_on = heat_ != nullptr && heat_->enabled();
  uint64_t pin_wait_ns = 0;
  std::unique_lock lock(latch_, std::defer_lock);
  if (heat_on && !lock.try_lock()) {
    const uint64_t blocked_from = obs::Ticks();
    lock.lock();
    pin_wait_ns = obs::TicksToNs(obs::Ticks() - blocked_from);
  } else if (!heat_on) {
    lock.lock();
  }
  if (heat_on) {
    heat_->RecordAccess(heat_store_, id, obs::HeatAccess::kWrite,
                        pin_wait_ns);
  }
  size_t frame;
  GRTDB_RETURN_IF_ERROR(FrameForWriteLocked(id, &frame));
  Frame& f = frames_[frame];
  std::memcpy(f.data.get(), data, kPageSize);
  f.dirty = true;
  f.lru_tick.store(NextTick(), std::memory_order_relaxed);
  return Status::OK();
}

Status NodeCache::AllocateNode(NodeId* id) {
  GRTDB_WITNESS_SCOPE(CacheLatchClass());
  std::unique_lock lock(latch_);
  return inner_->AllocateNode(id);
}

Status NodeCache::FreeNode(NodeId id) {
  GRTDB_WITNESS_SCOPE(CacheLatchClass());
  std::unique_lock lock(latch_);
  auto it = node_table_.find(id);
  if (it != node_table_.end()) {
    // Drop the frame without write-back: the inner FreeNode may repurpose
    // the slot (e.g. SingleLo scribbles its free-list next pointer), and a
    // later dirty write-back of the dead image would corrupt it.
    Frame& f = frames_[it->second];
    f.node_id = kInvalidNodeId;
    f.dirty = false;
    node_table_.erase(it);
  }
  return inner_->FreeNode(id);
}

Status NodeCache::Flush() {
  GRTDB_WITNESS_SCOPE(CacheLatchClass());
  std::unique_lock lock(latch_);
  uint64_t flushed = 0;
  for (Frame& frame : frames_) {
    if (frame.node_id != kInvalidNodeId && frame.dirty) {
      GRTDB_RETURN_IF_ERROR(WriteBackLocked(frame));
      ++flushed;
    }
  }
  if (trace_ != nullptr && trace_->Enabled("cache", 1)) {
    trace_->Tprintf("cache", 1,
                    "flush: wrote back %llu dirty frame(s), %zu resident",
                    static_cast<unsigned long long>(flushed),
                    node_table_.size());
  }
  return inner_->Flush();
}

const NodeStoreStats& NodeCache::stats() const {
  std::lock_guard guard(snapshot_mu_);
  snapshot_.node_reads = reads_.load(std::memory_order_relaxed);
  snapshot_.node_writes = writes_.load(std::memory_order_relaxed);
  snapshot_.lo_opens = 0;
  snapshot_.cache_hits = hits_.load(std::memory_order_relaxed);
  snapshot_.cache_misses = misses_.load(std::memory_order_relaxed);
  snapshot_.cache_evictions = evictions_.load(std::memory_order_relaxed);
  snapshot_.cache_write_backs = write_backs_.load(std::memory_order_relaxed);
  return snapshot_;
}

void NodeCache::ResetStats() {
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  write_backs_.store(0, std::memory_order_relaxed);
}

}  // namespace grtdb
