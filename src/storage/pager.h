#ifndef GRTDB_STORAGE_PAGER_H_
#define GRTDB_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/space.h"

namespace grtdb {

// Buffer-pool statistics. `logical_reads` counts FetchPage calls;
// `physical_reads`/`physical_writes` count actual Space I/O.
struct PagerStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// A buffer pool with LRU replacement over a Space. Thread-safe; pages are
// pinned while a caller holds the frame pointer and must be unpinned.
//
// PageGuard is the RAII pin: prefer it over raw Fetch/Unpin pairs.
class Pager {
 public:
  // `capacity` is the number of in-memory frames (>= 1).
  Pager(Space* space, size_t capacity);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Allocates a fresh zeroed page in the space and pins it (dirty).
  Status NewPage(PageId* id, uint8_t** data);

  // Pins page `id`, reading it from the space on a miss.
  Status FetchPage(PageId id, uint8_t** data);

  // Marks a pinned page dirty so eviction/flush writes it back.
  void MarkDirty(PageId id);

  // Releases one pin.
  void Unpin(PageId id);

  // Writes back all dirty frames and syncs the space.
  Status FlushAll();

  PagerStats stats() const;
  void ResetStats();

  // Mirrors page-I/O counts into server-wide pager.* metrics. The names
  // are shared, so every pager on the registry aggregates into one set.
  void set_metrics(obs::MetricsRegistry* metrics);

  size_t capacity() const { return frames_.size(); }
  Space* space() const { return space_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
    std::unique_ptr<uint8_t[]> data;
  };

  // Returns the index of a free or evictable frame. Requires mu_ held.
  Status GrabFrameLocked(size_t* frame_index);

  Space* space_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  uint64_t tick_ = 0;
  PagerStats stats_;

  // Cached registry handles (null when no registry is wired).
  obs::Counter* m_logical_reads_ = nullptr;
  obs::Counter* m_physical_reads_ = nullptr;
  obs::Counter* m_physical_writes_ = nullptr;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

// RAII pin on a page.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(Pager* pager, PageId id, uint8_t* data)
      : pager_(pager), id_(id), data_(data) {}
  ~PageGuard() { Reset(); }

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Reset();
      pager_ = other.pager_;
      id_ = other.id_;
      data_ = other.data_;
      other.pager_ = nullptr;
      other.data_ = nullptr;
    }
    return *this;
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  void MarkDirty() { pager_->MarkDirty(id_); }

  void Reset() {
    if (pager_ != nullptr && data_ != nullptr) pager_->Unpin(id_);
    pager_ = nullptr;
    data_ = nullptr;
  }

 private:
  Pager* pager_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

}  // namespace grtdb

#endif  // GRTDB_STORAGE_PAGER_H_
