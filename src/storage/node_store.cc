#include "storage/node_store.h"

#include <cstring>
#include <utility>

#include "storage/layout.h"
#include "storage/node_cache.h"

namespace grtdb {

// ------------------------------------------------------------- NodeView ---

NodeView& NodeView::operator=(NodeView&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    owned_ = std::move(other.owned_);
    cache_ = std::exchange(other.cache_, nullptr);
    frame_ = other.frame_;
    latch_ = std::move(other.latch_);
  }
  return *this;
}

void NodeView::Reset() {
  if (cache_ != nullptr) {
    cache_->Unpin(frame_);
    cache_ = nullptr;
  }
  latch_ = std::shared_lock<std::shared_mutex>();
  owned_.reset();
  data_ = nullptr;
}

void NodeView::AdoptOwned(std::unique_ptr<uint8_t[]> owned) {
  Reset();
  data_ = owned.get();
  owned_ = std::move(owned);
}

void NodeView::AdoptPinned(NodeCache* cache, size_t frame,
                           const uint8_t* data,
                           std::shared_lock<std::shared_mutex> latch) {
  Reset();
  data_ = data;
  cache_ = cache;
  frame_ = frame;
  latch_ = std::move(latch);
}

Status NodeStore::ViewNode(NodeId id, NodeView* view) {
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  GRTDB_RETURN_IF_ERROR(ReadNode(id, buf.get()));
  view->AdoptOwned(std::move(buf));
  return Status::OK();
}

// ---------------------------------------------------------------- Pager ---

Status PagerNodeStore::AllocateNode(NodeId* id) {
  if (!free_list_.empty()) {
    *id = free_list_.back();
    free_list_.pop_back();
    // Zero the recycled slot: the AllocateNode contract promises a zeroed
    // page, but the previous occupant's bytes are still in the frame.
    uint8_t* data;
    Status s = pager_->FetchPage(static_cast<PageId>(*id), &data);
    if (!s.ok()) {
      free_list_.push_back(static_cast<PageId>(*id));
      return s;
    }
    std::memset(data, 0, kPageSize);
    pager_->MarkDirty(static_cast<PageId>(*id));
    pager_->Unpin(static_cast<PageId>(*id));
    return Status::OK();
  }
  PageId page;
  uint8_t* data;
  GRTDB_RETURN_IF_ERROR(pager_->NewPage(&page, &data));
  pager_->Unpin(page);
  *id = page;
  return Status::OK();
}

Status PagerNodeStore::FreeNode(NodeId id) {
  free_list_.push_back(static_cast<PageId>(id));
  return Status::OK();
}

Status PagerNodeStore::ReadNode(NodeId id, uint8_t* out) {
  ++stats_.node_reads;
  uint8_t* data;
  GRTDB_RETURN_IF_ERROR(pager_->FetchPage(static_cast<PageId>(id), &data));
  std::memcpy(out, data, kPageSize);
  pager_->Unpin(static_cast<PageId>(id));
  return Status::OK();
}

Status PagerNodeStore::WriteNode(NodeId id, const uint8_t* data_in) {
  ++stats_.node_writes;
  uint8_t* data;
  GRTDB_RETURN_IF_ERROR(pager_->FetchPage(static_cast<PageId>(id), &data));
  std::memcpy(data, data_in, kPageSize);
  pager_->MarkDirty(static_cast<PageId>(id));
  pager_->Unpin(static_cast<PageId>(id));
  return Status::OK();
}

// ------------------------------------------------------------- SingleLo ---

StatusOr<std::unique_ptr<SingleLoNodeStore>> SingleLoNodeStore::Open(
    Sbspace* sbspace, LoHandle handle) {
  bool fresh = !handle.valid();
  if (fresh) {
    GRTDB_RETURN_IF_ERROR(sbspace->CreateLo(&handle));
  }
  std::unique_ptr<SingleLoNodeStore> store(
      new SingleLoNodeStore(sbspace, handle));
  if (fresh) {
    GRTDB_RETURN_IF_ERROR(store->StoreHeader());
  } else {
    GRTDB_RETURN_IF_ERROR(store->LoadHeader());
  }
  return store;
}

Status SingleLoNodeStore::LoadHeader() {
  uint8_t buf[16];
  GRTDB_RETURN_IF_ERROR(sbspace_->LoRead(handle_, 0, sizeof(buf), buf));
  node_count_ = LoadU64(buf);
  free_head_ = LoadU64(buf + 8);
  return Status::OK();
}

Status SingleLoNodeStore::StoreHeader() {
  uint8_t buf[16];
  StoreU64(buf, node_count_);
  StoreU64(buf + 8, free_head_);
  return sbspace_->LoWrite(handle_, 0, sizeof(buf), buf);
}

Status SingleLoNodeStore::AllocateNode(NodeId* id) {
  if (free_head_ != kInvalidNodeId) {
    *id = free_head_;
    uint8_t next_buf[8];
    GRTDB_RETURN_IF_ERROR(
        sbspace_->LoRead(handle_, free_head_ * kPageSize, 8, next_buf));
    free_head_ = LoadU64(next_buf);
    // Zero the recycled slot; FreeNode only overwrote the first 8 bytes
    // with the next pointer, the rest still holds the previous occupant.
    uint8_t zeros[kPageSize];
    std::memset(zeros, 0, sizeof(zeros));
    GRTDB_RETURN_IF_ERROR(
        sbspace_->LoWrite(handle_, *id * kPageSize, kPageSize, zeros));
    return StoreHeader();
  }
  *id = node_count_;
  ++node_count_;
  // Materialize the slot so later reads of an unwritten node see zeroes.
  uint8_t zeros[kPageSize];
  std::memset(zeros, 0, sizeof(zeros));
  GRTDB_RETURN_IF_ERROR(
      sbspace_->LoWrite(handle_, *id * kPageSize, kPageSize, zeros));
  return StoreHeader();
}

Status SingleLoNodeStore::FreeNode(NodeId id) {
  uint8_t next_buf[8];
  StoreU64(next_buf, free_head_);
  GRTDB_RETURN_IF_ERROR(
      sbspace_->LoWrite(handle_, id * kPageSize, 8, next_buf));
  free_head_ = id;
  return StoreHeader();
}

Status SingleLoNodeStore::ReadNode(NodeId id, uint8_t* out) {
  ++stats_.node_reads;
  return sbspace_->LoRead(handle_, id * kPageSize, kPageSize, out);
}

uint64_t SingleLoNodeStore::FreeListLength() {
  // The free list lives on the LO itself (each freed slot's first 8 bytes
  // point at the next). The node-count cap makes a corrupt cycle terminate.
  uint64_t length = 0;
  NodeId cursor = free_head_;
  while (cursor != kInvalidNodeId && length < node_count_) {
    ++length;
    uint8_t next_buf[8];
    if (!sbspace_->LoRead(handle_, cursor * kPageSize, 8, next_buf).ok()) {
      break;
    }
    cursor = LoadU64(next_buf);
  }
  return length;
}

Status SingleLoNodeStore::WriteNode(NodeId id, const uint8_t* data) {
  ++stats_.node_writes;
  return sbspace_->LoWrite(handle_, id * kPageSize, kPageSize, data);
}

// ---------------------------------------------------------- ClusteredLo ---

Status ClusteredLoNodeStore::HandleForCluster(uint64_t cluster, bool create,
                                              LoHandle* handle) {
  if (cluster < cluster_handles_.size() &&
      cluster_handles_[cluster].valid()) {
    *handle = cluster_handles_[cluster];
    return Status::OK();
  }
  if (!create) {
    return Status::NotFound("cluster " + std::to_string(cluster) +
                            " has no large object");
  }
  if (cluster >= cluster_handles_.size()) {
    cluster_handles_.resize(cluster + 1);
  }
  GRTDB_RETURN_IF_ERROR(sbspace_->CreateLo(&cluster_handles_[cluster]));
  // Materialize the whole cluster in one ranged write so first touch is
  // O(1) I/O calls, and charge the creation as a single LO open.
  ++stats_.lo_opens;
  std::vector<uint8_t> zeros(nodes_per_lo_ * kPageSize, 0);
  GRTDB_RETURN_IF_ERROR(sbspace_->LoWrite(cluster_handles_[cluster], 0,
                                          zeros.size(), zeros.data()));
  *handle = cluster_handles_[cluster];
  return Status::OK();
}

Status ClusteredLoNodeStore::AllocateNode(NodeId* id) {
  if (!free_list_.empty()) {
    *id = free_list_.back();
    free_list_.pop_back();
    // Zero the recycled slot per the AllocateNode contract.
    LoHandle handle;
    GRTDB_RETURN_IF_ERROR(
        HandleForCluster(*id / nodes_per_lo_, /*create=*/false, &handle));
    uint8_t zeros[kPageSize];
    std::memset(zeros, 0, sizeof(zeros));
    return sbspace_->LoWrite(handle, (*id % nodes_per_lo_) * kPageSize,
                             kPageSize, zeros);
  }
  *id = node_count_;
  ++node_count_;
  LoHandle handle;
  return HandleForCluster(*id / nodes_per_lo_, /*create=*/true, &handle);
}

Status ClusteredLoNodeStore::FreeNode(NodeId id) {
  free_list_.push_back(id);
  return Status::OK();
}

uint64_t ClusteredLoNodeStore::LoOfNode(NodeId id) const {
  const uint64_t cluster = id / nodes_per_lo_;
  if (cluster < cluster_handles_.size()) {
    return cluster_handles_[cluster].id;
  }
  return 0;
}

Status ClusteredLoNodeStore::ReadNode(NodeId id, uint8_t* out) {
  ++stats_.node_reads;
  ++stats_.lo_opens;
  LoHandle handle;
  GRTDB_RETURN_IF_ERROR(
      HandleForCluster(id / nodes_per_lo_, /*create=*/false, &handle));
  return sbspace_->LoRead(handle, (id % nodes_per_lo_) * kPageSize,
                          kPageSize, out);
}

Status ClusteredLoNodeStore::WriteNode(NodeId id, const uint8_t* data) {
  ++stats_.node_writes;
  ++stats_.lo_opens;
  LoHandle handle;
  GRTDB_RETURN_IF_ERROR(
      HandleForCluster(id / nodes_per_lo_, /*create=*/true, &handle));
  return sbspace_->LoWrite(handle, (id % nodes_per_lo_) * kPageSize,
                           kPageSize, data);
}

// --------------------------------------------------------- ExternalFile ---

StatusOr<std::unique_ptr<ExternalFileNodeStore>> ExternalFileNodeStore::Open(
    const std::string& path) {
  auto file_or = FileSpace::Open(path);
  if (!file_or.ok()) return file_or.status();
  return std::unique_ptr<ExternalFileNodeStore>(
      new ExternalFileNodeStore(std::move(file_or).value()));
}

Status ExternalFileNodeStore::AllocateNode(NodeId* id) {
  if (!free_list_.empty()) {
    *id = free_list_.back();
    free_list_.pop_back();
    // Zero the recycled slot per the AllocateNode contract.
    uint8_t zeros[kPageSize];
    std::memset(zeros, 0, sizeof(zeros));
    Status s = file_->WritePage(static_cast<PageId>(*id), zeros);
    if (!s.ok()) free_list_.push_back(*id);
    return s;
  }
  PageId page;
  GRTDB_RETURN_IF_ERROR(file_->Extend(&page));
  *id = page;
  return Status::OK();
}

Status ExternalFileNodeStore::FreeNode(NodeId id) {
  free_list_.push_back(id);
  return Status::OK();
}

Status ExternalFileNodeStore::ReadNode(NodeId id, uint8_t* out) {
  ++stats_.node_reads;
  return file_->ReadPage(static_cast<PageId>(id), out);
}

Status ExternalFileNodeStore::WriteNode(NodeId id, const uint8_t* data) {
  ++stats_.node_writes;
  return file_->WritePage(static_cast<PageId>(id), data);
}

Status ExternalFileNodeStore::Flush() { return file_->Sync(); }

}  // namespace grtdb
