#include "btree/btree.h"

#include <algorithm>
#include <cstring>

#include "storage/layout.h"

namespace grtdb {

int NaturalCompare(int64_t a, int64_t b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

namespace {

constexpr uint32_t kAnchorMagic = 0x42545245;  // "BTRE"
constexpr size_t kHeaderSize = 12;  // leaf u8 + pad u8 + count u16 + next u64

// Leaf entry: key i64 + payload u64. Internal: per key also a separator
// payload (duplicate tie-break) and one extra child pointer.
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalKeySize = 24;  // key + sep payload + child

size_t MaxEntriesForPage() {
  const size_t leaf_cap = (kPageSize - kHeaderSize) / kLeafEntrySize;
  const size_t internal_cap =
      (kPageSize - kHeaderSize - 8) / kInternalKeySize;
  return std::min(leaf_cap, internal_cap);
}

// (key, payload) pair order under `cmp`.
int PairCompare(int64_t key_a, uint64_t payload_a, int64_t key_b,
                uint64_t payload_b, const BtreeCompare& cmp) {
  const int by_key = cmp(key_a, key_b);
  if (by_key != 0) return by_key;
  if (payload_a < payload_b) return -1;
  if (payload_a > payload_b) return 1;
  return 0;
}

}  // namespace

StatusOr<std::unique_ptr<BtreeIndex>> BtreeIndex::Create(
    NodeStore* store, const Options& options, NodeId* anchor) {
  std::unique_ptr<BtreeIndex> tree(new BtreeIndex(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  if (tree->max_entries_ > MaxEntriesForPage()) {
    return Status::InvalidArgument("max_entries exceeds page capacity");
  }
  if (tree->max_entries_ < 3) {
    return Status::InvalidArgument("max_entries must be >= 3");
  }
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->anchor_));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->root_));
  Node root;
  GRTDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, root));
  GRTDB_RETURN_IF_ERROR(tree->SaveAnchor());
  *anchor = tree->anchor_;
  return tree;
}

StatusOr<std::unique_ptr<BtreeIndex>> BtreeIndex::Open(
    NodeStore* store, NodeId anchor, const Options& options) {
  std::unique_ptr<BtreeIndex> tree(new BtreeIndex(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  tree->anchor_ = anchor;
  GRTDB_RETURN_IF_ERROR(tree->LoadAnchor());
  return tree;
}

Status BtreeIndex::LoadAnchor() {
  uint8_t page[kPageSize];
  GRTDB_RETURN_IF_ERROR(store_->ReadNode(anchor_, page));
  if (LoadU32(page) != kAnchorMagic) {
    return Status::Corruption("bad B+-tree anchor magic");
  }
  root_ = LoadU64(page + 4);
  height_ = LoadU32(page + 12);
  size_ = LoadU64(page + 16);
  return Status::OK();
}

Status BtreeIndex::SaveAnchor() {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, kAnchorMagic);
  StoreU64(page + 4, root_);
  StoreU32(page + 12, height_);
  StoreU64(page + 16, size_);
  return store_->WriteNode(anchor_, page);
}

Status BtreeIndex::ReadNode(NodeId id, Node* node) const {
  uint8_t page[kPageSize];
  GRTDB_RETURN_IF_ERROR(store_->ReadNode(id, page));
  node->leaf = page[0] != 0;
  const uint16_t count = static_cast<uint16_t>(LoadU32(page + 2) & 0xFFFF);
  node->next = LoadU64(page + 4);
  node->keys.clear();
  node->values.clear();
  if (node->leaf) {
    node->keys.reserve(count);
    node->values.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* p = page + kHeaderSize + i * kLeafEntrySize;
      node->keys.push_back(LoadI64(p));
      node->values.push_back(LoadU64(p + 8));
    }
  } else {
    // count separator keys (+payloads), count+1 children.
    node->keys.reserve(count);
    node->sep_payloads.clear();
    node->sep_payloads.reserve(count);
    node->values.reserve(count + 1u);
    const uint8_t* p = page + kHeaderSize;
    for (uint16_t i = 0; i < count; ++i) {
      node->keys.push_back(LoadI64(p));
      p += 8;
      node->sep_payloads.push_back(LoadU64(p));
      p += 8;
    }
    for (uint16_t i = 0; i <= count; ++i) {
      node->values.push_back(LoadU64(p));
      p += 8;
    }
  }
  return Status::OK();
}

Status BtreeIndex::WriteNode(NodeId id, const Node& node) {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  page[0] = node.leaf ? 1 : 0;
  StoreU32(page + 2, static_cast<uint32_t>(node.keys.size()) & 0xFFFF);
  StoreU64(page + 4, node.next);
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      uint8_t* p = page + kHeaderSize + i * kLeafEntrySize;
      StoreI64(p, node.keys[i]);
      StoreU64(p + 8, node.values[i]);
    }
  } else {
    uint8_t* p = page + kHeaderSize;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      StoreI64(p, node.keys[i]);
      p += 8;
      StoreU64(p, node.sep_payloads[i]);
      p += 8;
    }
    for (uint64_t child : node.values) {
      StoreU64(p, child);
      p += 8;
    }
  }
  return store_->WriteNode(id, page);
}

size_t BtreeIndex::LowerBound(const Node& node, int64_t key,
                              uint64_t payload, const BtreeCompare& cmp) {
  size_t lo = 0;
  size_t hi = node.keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (PairCompare(node.keys[mid], node.values[mid], key, payload, cmp) <
        0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t BtreeIndex::ChildIndex(const Node& node, int64_t key,
                              uint64_t payload, const BtreeCompare& cmp) {
  // First separator strictly greater than (key, payload) determines the
  // child; separators mark the smallest pair of the following child.
  size_t lo = 0;
  size_t hi = node.keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (PairCompare(node.keys[mid], node.sep_payloads[mid], key, payload,
                    cmp) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status BtreeIndex::Insert(int64_t key, uint64_t payload,
                          const BtreeCompare& cmp) {
  bool split = false;
  int64_t split_key = 0;
  uint64_t split_payload = 0;
  NodeId split_node = kInvalidNodeId;
  GRTDB_RETURN_IF_ERROR(InsertRecursive(root_, key, payload, cmp, &split,
                                        &split_key, &split_payload,
                                        &split_node));
  if (split) {
    Node new_root;
    new_root.leaf = false;
    new_root.keys.push_back(split_key);
    new_root.sep_payloads.push_back(split_payload);
    new_root.values.push_back(root_);
    new_root.values.push_back(split_node);
    NodeId new_root_id;
    GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&new_root_id));
    GRTDB_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
    root_ = new_root_id;
    ++height_;
  }
  ++size_;
  return SaveAnchor();
}

Status BtreeIndex::InsertRecursive(NodeId node_id, int64_t key,
                                   uint64_t payload, const BtreeCompare& cmp,
                                   bool* split, int64_t* split_key,
                                   uint64_t* split_payload,
                                   NodeId* split_node) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *split = false;
  if (node.leaf) {
    const size_t pos = LowerBound(node, key, payload, cmp);
    if (pos < node.keys.size() &&
        PairCompare(node.keys[pos], node.values[pos], key, payload, cmp) ==
            0) {
      return Status::AlreadyExists("duplicate (key, rowid) in B+-tree");
    }
    node.keys.insert(node.keys.begin() + pos, key);
    node.values.insert(node.values.begin() + pos, payload);
    if (node.keys.size() <= max_entries_) {
      return WriteNode(node_id, node);
    }
    // Split the leaf; the right node's first pair becomes the separator.
    const size_t half = node.keys.size() / 2;
    Node right;
    right.leaf = true;
    right.keys.assign(node.keys.begin() + half, node.keys.end());
    right.values.assign(node.values.begin() + half, node.values.end());
    right.next = node.next;
    node.keys.resize(half);
    node.values.resize(half);
    NodeId right_id;
    GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&right_id));
    node.next = right_id;
    GRTDB_RETURN_IF_ERROR(WriteNode(right_id, right));
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *split = true;
    *split_key = right.keys.front();
    *split_payload = right.values.front();
    *split_node = right_id;
    return Status::OK();
  }

  const size_t child_index = ChildIndex(node, key, payload, cmp);
  bool child_split = false;
  int64_t child_key = 0;
  uint64_t child_payload = 0;
  NodeId child_node = kInvalidNodeId;
  GRTDB_RETURN_IF_ERROR(InsertRecursive(node.values[child_index], key,
                                        payload, cmp, &child_split,
                                        &child_key, &child_payload,
                                        &child_node));
  if (!child_split) return Status::OK();
  node.keys.insert(node.keys.begin() + child_index, child_key);
  node.sep_payloads.insert(node.sep_payloads.begin() + child_index,
                           child_payload);
  node.values.insert(node.values.begin() + child_index + 1, child_node);
  if (node.keys.size() <= max_entries_) {
    return WriteNode(node_id, node);
  }
  // Split the internal node; the middle separator moves up.
  const size_t mid = node.keys.size() / 2;
  Node right;
  right.leaf = false;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.sep_payloads.assign(node.sep_payloads.begin() + mid + 1,
                            node.sep_payloads.end());
  right.values.assign(node.values.begin() + mid + 1, node.values.end());
  *split_key = node.keys[mid];
  *split_payload = node.sep_payloads[mid];
  node.keys.resize(mid);
  node.sep_payloads.resize(mid);
  node.values.resize(mid + 1);
  NodeId right_id;
  GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&right_id));
  GRTDB_RETURN_IF_ERROR(WriteNode(right_id, right));
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
  *split = true;
  *split_node = right_id;
  return Status::OK();
}

Status BtreeIndex::Delete(int64_t key, uint64_t payload,
                          const BtreeCompare& cmp, bool* found) {
  *found = false;
  GRTDB_RETURN_IF_ERROR(DeleteRecursive(root_, key, payload, cmp, found));
  if (!*found) return Status::OK();
  --size_;
  return SaveAnchor();
}

Status BtreeIndex::DeleteRecursive(NodeId node_id, int64_t key,
                                   uint64_t payload, const BtreeCompare& cmp,
                                   bool* found) {
  // Lazy deletion: entries are removed from leaves; nodes are not merged.
  // (Scans skip sparse leaves; the paper's own deletion discussion — §5.5 —
  // concerns the R-tree family, where condensation interacts with scans.)
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.leaf) {
    const size_t pos = LowerBound(node, key, payload, cmp);
    if (pos < node.keys.size() &&
        PairCompare(node.keys[pos], node.values[pos], key, payload, cmp) ==
            0) {
      node.keys.erase(node.keys.begin() + pos);
      node.values.erase(node.values.begin() + pos);
      *found = true;
      return WriteNode(node_id, node);
    }
    return Status::OK();
  }
  return DeleteRecursive(node.values[ChildIndex(node, key, payload, cmp)],
                         key, payload, cmp, found);
}

Status BtreeIndex::Scan(const Range& range, const BtreeCompare& cmp,
                        const std::function<bool(const Entry&)>& fn) const {
  // Descend to the first candidate leaf.
  NodeId current = root_;
  while (true) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    if (node.leaf) break;
    const size_t child = range.lo.has_value()
                             ? ChildIndex(node, *range.lo, 0, cmp)
                             : 0;
    current = node.values[child];
  }
  while (current != kInvalidNodeId) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    size_t start = 0;
    if (range.lo.has_value()) {
      start = LowerBound(node, *range.lo, 0, cmp);
    }
    for (size_t i = start; i < node.keys.size(); ++i) {
      if (range.lo.has_value()) {
        const int versus_lo = cmp(node.keys[i], *range.lo);
        if (versus_lo < 0 || (range.lo_strict && versus_lo == 0)) continue;
      }
      if (range.hi.has_value()) {
        const int versus_hi = cmp(node.keys[i], *range.hi);
        if (versus_hi > 0 || (range.hi_strict && versus_hi == 0)) {
          return Status::OK();
        }
      }
      if (!fn(Entry{node.keys[i], node.values[i]})) return Status::OK();
    }
    current = node.next;
  }
  return Status::OK();
}

Status BtreeIndex::ScanAll(const Range& range, const BtreeCompare& cmp,
                           std::vector<Entry>* out) const {
  out->clear();
  return Scan(range, cmp, [out](const Entry& entry) {
    out->push_back(entry);
    return true;
  });
}

StatusOr<double> BtreeIndex::EstimateScanCost(const Range& range,
                                              const BtreeCompare& cmp) const {
  // Height (descent) plus the number of leaves the range touches.
  double cost = height_;
  NodeId current = root_;
  while (true) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    if (node.leaf) break;
    const size_t child = range.lo.has_value()
                             ? ChildIndex(node, *range.lo, 0, cmp)
                             : 0;
    current = node.values[child];
  }
  while (current != kInvalidNodeId) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    cost += 1.0;
    if (range.hi.has_value() && !node.keys.empty()) {
      const int versus_hi = cmp(node.keys.front(), *range.hi);
      if (versus_hi > 0 || (range.hi_strict && versus_hi == 0)) break;
    }
    current = node.next;
  }
  return cost;
}

Status BtreeIndex::CheckConsistency(const BtreeCompare& cmp) const {
  uint64_t entries = 0;
  uint32_t leaf_depth = 0;
  GRTDB_RETURN_IF_ERROR(
      CheckRecursive(root_, 1, cmp, &entries, &leaf_depth));
  if (entries != size_) {
    return Status::Corruption("B+-tree size mismatch: anchor " +
                              std::to_string(size_) + " vs counted " +
                              std::to_string(entries));
  }
  // Leaf chain must deliver every entry in order.
  NodeId current = root_;
  while (true) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    if (node.leaf) break;
    current = node.values.front();
  }
  uint64_t chained = 0;
  bool have_prev = false;
  int64_t prev_key = 0;
  uint64_t prev_payload = 0;
  while (current != kInvalidNodeId) {
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(current, &node));
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (have_prev &&
          PairCompare(prev_key, prev_payload, node.keys[i], node.values[i],
                      cmp) >= 0) {
        return Status::Corruption("leaf chain out of order");
      }
      prev_key = node.keys[i];
      prev_payload = node.values[i];
      have_prev = true;
      ++chained;
    }
    current = node.next;
  }
  if (chained != size_) {
    return Status::Corruption("leaf chain misses entries");
  }
  return Status::OK();
}

Status BtreeIndex::CheckRecursive(NodeId node_id, uint32_t depth,
                                  const BtreeCompare& cmp, uint64_t* entries,
                                  uint32_t* leaf_depth) const {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.leaf) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    *entries += node.keys.size();
    return Status::OK();
  }
  if (node.values.size() != node.keys.size() + 1 ||
      node.sep_payloads.size() != node.keys.size()) {
    return Status::Corruption("internal node shape broken");
  }
  for (size_t i = 1; i < node.keys.size(); ++i) {
    if (PairCompare(node.keys[i - 1], node.sep_payloads[i - 1], node.keys[i],
                    node.sep_payloads[i], cmp) >= 0) {
      return Status::Corruption("separators out of order");
    }
  }
  for (uint64_t child : node.values) {
    GRTDB_RETURN_IF_ERROR(
        CheckRecursive(child, depth + 1, cmp, entries, leaf_depth));
  }
  return Status::OK();
}

Status BtreeIndex::LevelStats(std::vector<BtreeLevelStats>* out) const {
  out->assign(height_, BtreeLevelStats{});
  for (uint32_t i = 0; i < height_; ++i) (*out)[i].level = i;
  // Nodes carry no level field; the BFS depth pins it (root = height-1,
  // leaves = 0 to match the other trees' numbering).
  std::vector<NodeId> frontier = {root_};
  uint32_t depth = 0;
  while (!frontier.empty()) {
    if (depth >= height_) {
      return Status::Corruption("B+-tree deeper than its anchor height");
    }
    BtreeLevelStats& stats = (*out)[height_ - 1 - depth];
    std::vector<NodeId> next;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      ++stats.nodes;
      stats.entries += node.keys.size();
      if (!node.leaf) {
        for (uint64_t child : node.values) next.push_back(child);
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return Status::OK();
}

Status BtreeIndex::Drop() {
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
    if (!node.leaf) {
      for (uint64_t child : node.values) frontier.push_back(child);
    }
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(id));
  }
  GRTDB_RETURN_IF_ERROR(store_->FreeNode(anchor_));
  root_ = kInvalidNodeId;
  anchor_ = kInvalidNodeId;
  size_ = 0;
  height_ = 1;
  return Status::OK();
}

}  // namespace grtdb
