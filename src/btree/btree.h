#ifndef GRTDB_BTREE_BTREE_H_
#define GRTDB_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/node_store.h"

namespace grtdb {

// Key comparator: <0, 0, >0. The B+-tree resolves it dynamically on every
// operation — this is the paper's §4 example of support-function
// extensibility: registering a substitute compare() in a new operator
// class re-orders the whole index (e.g. the 0, -1, 1, -2, 2 ordering).
using BtreeCompare = std::function<int(int64_t, int64_t)>;

// The natural integer order (the default operator class's compare()).
int NaturalCompare(int64_t a, int64_t b);

// Per-level structure statistics (leaf = level 0). Backs am_stats.
struct BtreeLevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;
};

// A disk-resident B+-tree over a NodeStore mapping int64 keys to uint64
// payloads (rowids). Duplicate keys are allowed; entries are unique by
// (key, payload). Leaves are chained for range scans.
class BtreeIndex {
 public:
  struct Options {
    size_t max_entries = 0;  // 0 = derive from the page size
  };

  struct Entry {
    int64_t key = 0;
    uint64_t payload = 0;
  };

  // Scan bounds; unset = open. `lo_strict`/`hi_strict` exclude the bound.
  struct Range {
    std::optional<int64_t> lo;
    bool lo_strict = false;
    std::optional<int64_t> hi;
    bool hi_strict = false;
  };

  static StatusOr<std::unique_ptr<BtreeIndex>> Create(NodeStore* store,
                                                      const Options& options,
                                                      NodeId* anchor);
  static StatusOr<std::unique_ptr<BtreeIndex>> Open(NodeStore* store,
                                                    NodeId anchor,
                                                    const Options& options);

  BtreeIndex(const BtreeIndex&) = delete;
  BtreeIndex& operator=(const BtreeIndex&) = delete;

  Status Insert(int64_t key, uint64_t payload, const BtreeCompare& cmp);
  Status Delete(int64_t key, uint64_t payload, const BtreeCompare& cmp,
                bool* found);

  // Calls fn for entries within `range` in comparator order; return false
  // to stop.
  Status Scan(const Range& range, const BtreeCompare& cmp,
              const std::function<bool(const Entry&)>& fn) const;
  Status ScanAll(const Range& range, const BtreeCompare& cmp,
                 std::vector<Entry>* out) const;

  // Estimated node reads for a range scan (am_scancost).
  StatusOr<double> EstimateScanCost(const Range& range,
                                    const BtreeCompare& cmp) const;

  // Structural invariants: key order (per cmp), fill, leaf chaining,
  // entry count.
  Status CheckConsistency(const BtreeCompare& cmp) const;

  Status LevelStats(std::vector<BtreeLevelStats>* out) const;

  Status Drop();

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  NodeId anchor() const { return anchor_; }
  size_t max_entries() const { return max_entries_; }

 private:
  // On-disk node: leaves hold (key, payload) pairs plus a next-leaf link;
  // internal nodes hold separator keys and child ids (children.size() ==
  // keys.size() + 1).
  struct Node {
    bool leaf = true;
    std::vector<int64_t> keys;
    std::vector<uint64_t> values;  // payloads (leaf) or child ids (internal)
    // Duplicate tie-break payload carried with each separator (internal).
    std::vector<uint64_t> sep_payloads;
    NodeId next = kInvalidNodeId;  // leaf chain
  };

  BtreeIndex(NodeStore* store, const Options& options)
      : store_(store), options_(options) {}

  Status LoadAnchor();
  Status SaveAnchor();
  Status ReadNode(NodeId id, Node* node) const;
  Status WriteNode(NodeId id, const Node& node);

  // Index of the first entry in a leaf not less than (key, payload).
  static size_t LowerBound(const Node& node, int64_t key, uint64_t payload,
                           const BtreeCompare& cmp);
  // Child to descend into for `key`.
  static size_t ChildIndex(const Node& node, int64_t key, uint64_t payload,
                           const BtreeCompare& cmp);

  Status InsertRecursive(NodeId node_id, int64_t key, uint64_t payload,
                         const BtreeCompare& cmp, bool* split,
                         int64_t* split_key, uint64_t* split_payload,
                         NodeId* split_node);
  Status DeleteRecursive(NodeId node_id, int64_t key, uint64_t payload,
                         const BtreeCompare& cmp, bool* found);
  Status CheckRecursive(NodeId node_id, uint32_t depth,
                        const BtreeCompare& cmp, uint64_t* entries,
                        uint32_t* leaf_depth) const;

  NodeStore* store_;
  Options options_;
  size_t max_entries_ = 0;
  NodeId anchor_ = kInvalidNodeId;
  NodeId root_ = kInvalidNodeId;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
};

}  // namespace grtdb

#endif  // GRTDB_BTREE_BTREE_H_
