#ifndef GRTDB_SQL_AST_H_
#define GRTDB_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace grtdb {
namespace sql {

// Untyped literal as written in the SQL text; the executor coerces it to
// the column/argument type (string literals become dates, opaque values,
// or text depending on context). kParam is a `?` placeholder in a
// prepared statement: param_index is its 0-based lexical position, and
// the executor substitutes the session's bound parameter before coercion.
struct Literal {
  enum class Kind { kNull, kInteger, kFloat, kString, kParam };
  Kind kind = Kind::kNull;
  int64_t integer = 0;
  double real = 0.0;
  std::string text;
  size_t param_index = 0;  // kParam only
};

// Boolean/value expression in a WHERE clause.
struct Expr {
  enum class Kind { kLiteral, kColumn, kCall, kAnd, kOr, kNot, kCompare };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kLiteral;
  Literal literal;      // kLiteral
  std::string column;   // kColumn (identifier)
  std::string func;     // kCall (function name)
  CmpOp cmp = CmpOp::kEq;
  std::vector<std::unique_ptr<Expr>> children;  // operands
};

struct ColumnSpec {
  std::string name;
  std::string type_name;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnSpec> columns;
};

struct DropTableStmt {
  std::string table;
};

struct CreateFunctionStmt {
  std::string name;
  std::vector<std::string> arg_types;
  std::string return_type;
  std::string external_name;  // "path(symbol)"
  std::string language;
  // §5.2: Informix lets a function declare its negator (returns the
  // opposite) and its commutator (same result with swapped arguments) —
  // and nothing stronger, such as implications between predicates.
  std::string negator;
  std::string commutator;
};

struct CreateAccessMethodStmt {
  std::string name;
  // am_create = grt_create, am_sptype = "S", ...
  std::vector<std::pair<std::string, std::string>> properties;
};

struct CreateOpclassStmt {
  std::string name;
  std::string access_method;
  std::vector<std::string> strategies;
  std::vector<std::string> supports;
  bool is_default = false;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  // (column, operator class); empty opclass selects the AM's default.
  std::vector<std::pair<std::string, std::string>> columns;
  std::string access_method;  // USING <am>
  std::string space;          // IN <space>
};

struct DropIndexStmt {
  std::string index;
};

struct DropFunctionStmt {
  std::string name;
};

struct DropAccessMethodStmt {
  std::string name;
};

struct DropOpclassStmt {
  std::string name;
};

struct InsertStmt {
  std::string table;
  std::vector<Literal> values;
};

struct SelectStmt {
  bool star = false;
  bool count_star = false;
  std::vector<std::string> columns;
  std::string table;
  std::unique_ptr<Expr> where;  // may be null
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Literal>> assignments;
  std::unique_ptr<Expr> where;
};

struct BeginWorkStmt {};
struct CommitWorkStmt {};
struct RollbackWorkStmt {};

struct SetStmt {
  enum class What {
    kIsolation,    // SET ISOLATION TO {DIRTY|COMMITTED|REPEATABLE} READ
    kExplain,      // SET EXPLAIN {ON|OFF}
    kCurrentTime,  // SET CURRENT_TIME TO <literal>   (simulation clock)
    kTimeMode,     // SET TIME MODE {STATEMENT|TRANSACTION}   (§5.4)
    kTrace,        // SET TRACE <class> TO <level>
    kSlowQueryNs,  // SET SLOW_QUERY_NS {=|TO} <n>   (0 disables the log)
    kTraceSample,  // SET TRACE_SAMPLE {=|TO} <n>   (sample 1-in-n requests)
    kHeatTrack,    // SET HEAT_TRACK {=|TO} {0|1}   (per-node heat tracking)
  };
  What what = What::kExplain;
  std::string argument;  // textual argument
  Literal value;         // literal argument where applicable
};

// LOAD FROM 'file' INSERT INTO t — bulk text loading through the opaque
// types' import support functions (paper §6.3 task 3). Fields are
// |-separated, one row per line.
struct LoadStmt {
  std::string path;
  std::string table;
};

// UNLOAD TO 'file' SELECT * FROM t [WHERE ...] — the reverse, through the
// export support functions.
struct UnloadStmt {
  std::string path;
  std::string table;
  std::unique_ptr<Expr> where;
};

// Extensions surfacing am_check / am_stats (Informix reaches them through
// oncheck / UPDATE STATISTICS).
struct CheckIndexStmt {
  std::string index;
};
struct UpdateStatisticsStmt {
  std::string index;  // empty = every index whose access method has am_stats
};

// DUMP FLIGHT — stitches the process-wide flight recorder's per-thread
// rings into a result set (the on-demand form of the crash dump).
struct DumpFlightStmt {};

// EXPORT METRICS — the MetricsRegistry in Prometheus text format, one
// result row per line.
struct ExportMetricsStmt {};

// EXPLAIN PROFILE <stmt> — executes the inner statement and appends its
// per-statement purpose-function profile to the result messages. The inner
// statement is kept as text (validated at parse time, re-parsed at
// execution) so the Statement variant stays non-recursive.
struct ExplainProfileStmt {
  std::string inner_sql;
};

// EXPLAIN TRACE <stmt> — executes the inner statement under a forced span
// trace and appends the span tree (one "TRACE" message per span, indented
// by depth, with durations) to the result. Same text-span idiom as
// ExplainProfileStmt.
struct ExplainTraceStmt {
  std::string inner_sql;
};

// DUMP TRACE [JSON] — the span tracer's retained buffer. Plain form: one
// result row per span. JSON form: Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing), one result row per output line.
struct DumpTraceStmt {
  bool json = false;
};

// DUMP HEAT [JSON] — the heat tracker's ranked per-node access map. Plain
// form: one result row per (store, node). JSON form: a single document for
// offline rendering (heat-map tooling), one result row per output line.
struct DumpHeatStmt {
  bool json = false;
};

// PREPARE name AS <stmt> — the inner statement is kept as a text span
// (same idiom as ExplainProfileStmt) so the Statement variant stays
// non-recursive; the server parses it once into its plan cache.
struct PrepareStmt {
  std::string name;
  std::string inner_sql;
};

// EXECUTE name [(arg, ...)] — args bind the inner statement's `?`
// placeholders in lexical order.
struct ExecuteStmt {
  std::string name;
  std::vector<Literal> args;
};

// DEALLOCATE [PREPARE] name
struct DeallocateStmt {
  std::string name;
};

using Statement =
    std::variant<CreateTableStmt, DropTableStmt, CreateFunctionStmt,
                 CreateAccessMethodStmt, CreateOpclassStmt, CreateIndexStmt,
                 DropIndexStmt, DropFunctionStmt, DropAccessMethodStmt,
                 DropOpclassStmt, InsertStmt, SelectStmt, DeleteStmt,
                 UpdateStmt, BeginWorkStmt, CommitWorkStmt, RollbackWorkStmt,
                 SetStmt, CheckIndexStmt, UpdateStatisticsStmt, LoadStmt,
                 UnloadStmt, ExplainProfileStmt, ExplainTraceStmt,
                 DumpFlightStmt, DumpTraceStmt, DumpHeatStmt,
                 ExportMetricsStmt, PrepareStmt, ExecuteStmt,
                 DeallocateStmt>;

}  // namespace sql
}  // namespace grtdb

#endif  // GRTDB_SQL_AST_H_
