#include "sql/parser.h"

#include "common/strings.h"

namespace grtdb {
namespace sql {

namespace {

Status ErrorAt(const Token& token, const std::string& expected) {
  return Status::InvalidArgument("expected " + expected + " near '" +
                                 (token.kind == Token::Kind::kEnd
                                      ? std::string("<end>")
                                      : token.text) +
                                 "' (offset " + std::to_string(token.offset) +
                                 ")");
}

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  const size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[index];
}

Token Parser::Take() {
  Token token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::AtKeyword(const std::string& word) const {
  const Token& token = Peek();
  return token.kind == Token::Kind::kIdentifier &&
         EqualsIgnoreCase(token.text, word);
}

Status Parser::ExpectKeyword(const std::string& word) {
  if (!AtKeyword(word)) return ErrorAt(Peek(), "'" + word + "'");
  Take();
  return Status::OK();
}

Status Parser::ExpectSymbol(const std::string& symbol) {
  const Token& token = Peek();
  if (token.kind != Token::Kind::kSymbol || token.text != symbol) {
    return ErrorAt(token, "'" + symbol + "'");
  }
  Take();
  return Status::OK();
}

bool Parser::TrySymbol(const std::string& symbol) {
  const Token& token = Peek();
  if (token.kind == Token::Kind::kSymbol && token.text == symbol) {
    Take();
    return true;
  }
  return false;
}

Status Parser::TakeIdentifier(std::string* out) {
  const Token& token = Peek();
  if (token.kind != Token::Kind::kIdentifier) {
    return ErrorAt(token, "identifier");
  }
  *out = Take().text;
  return Status::OK();
}

Status Parser::Parse(const std::string& text, Statement* out,
                     size_t* param_count) {
  std::vector<Token> tokens;
  GRTDB_RETURN_IF_ERROR(Tokenize(text, &tokens));
  Parser parser(std::move(tokens), text);
  GRTDB_RETURN_IF_ERROR(parser.ParseStatement(out));
  parser.TrySymbol(";");
  if (parser.Peek().kind != Token::Kind::kEnd) {
    return ErrorAt(parser.Peek(), "end of statement");
  }
  if (param_count != nullptr) *param_count = parser.param_count_;
  return Status::OK();
}

Status Parser::ParseScript(const std::string& text,
                           std::vector<Statement>* out) {
  std::vector<Token> tokens;
  GRTDB_RETURN_IF_ERROR(Tokenize(text, &tokens));
  Parser parser(std::move(tokens), text);
  out->clear();
  while (parser.Peek().kind != Token::Kind::kEnd) {
    if (parser.TrySymbol(";")) continue;
    Statement statement;
    GRTDB_RETURN_IF_ERROR(parser.ParseStatement(&statement));
    out->push_back(std::move(statement));
  }
  return Status::OK();
}

Status Parser::ParseStatement(Statement* out) {
  if (AtKeyword("CREATE")) return ParseCreate(out);
  if (AtKeyword("DROP")) return ParseDrop(out);
  if (AtKeyword("INSERT")) return ParseInsert(out);
  if (AtKeyword("SELECT")) return ParseSelect(out);
  if (AtKeyword("DELETE")) return ParseDelete(out);
  if (AtKeyword("UPDATE")) return ParseUpdate(out);
  if (AtKeyword("SET")) return ParseSet(out);
  if (AtKeyword("CHECK")) return ParseCheck(out);
  if (AtKeyword("EXPLAIN")) return ParseExplain(out);
  if (AtKeyword("LOAD")) return ParseLoad(out);
  if (AtKeyword("UNLOAD")) return ParseUnload(out);
  if (AtKeyword("PREPARE")) return ParsePrepare(out);
  if (AtKeyword("EXECUTE")) return ParseExecute(out);
  if (AtKeyword("DEALLOCATE")) return ParseDeallocate(out);
  if (AtKeyword("DUMP")) {
    Take();
    if (AtKeyword("TRACE")) {
      Take();
      DumpTraceStmt stmt;
      if (AtKeyword("JSON")) {
        Take();
        stmt.json = true;
      }
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtKeyword("HEAT")) {
      Take();
      DumpHeatStmt stmt;
      if (AtKeyword("JSON")) {
        Take();
        stmt.json = true;
      }
      *out = std::move(stmt);
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("FLIGHT"));
    *out = DumpFlightStmt{};
    return Status::OK();
  }
  if (AtKeyword("EXPORT")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("METRICS"));
    *out = ExportMetricsStmt{};
    return Status::OK();
  }
  if (AtKeyword("BEGIN")) {
    Take();
    ExpectKeyword("WORK").ok();  // WORK is optional
    *out = BeginWorkStmt{};
    return Status::OK();
  }
  if (AtKeyword("COMMIT")) {
    Take();
    ExpectKeyword("WORK").ok();
    *out = CommitWorkStmt{};
    return Status::OK();
  }
  if (AtKeyword("ROLLBACK")) {
    Take();
    ExpectKeyword("WORK").ok();
    *out = RollbackWorkStmt{};
    return Status::OK();
  }
  return ErrorAt(Peek(), "a statement keyword");
}

Status Parser::ParseCreate(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (AtKeyword("TABLE")) return ParseCreateTable(out);
  if (AtKeyword("FUNCTION")) return ParseCreateFunction(out);
  if (AtKeyword("SECONDARY")) return ParseCreateAccessMethod(out);
  if (AtKeyword("OPCLASS")) return ParseCreateOpclass(false, out);
  if (AtKeyword("DEFAULT")) {
    Take();
    return ParseCreateOpclass(true, out);
  }
  if (AtKeyword("INDEX")) return ParseCreateIndex(out);
  return ErrorAt(Peek(), "TABLE, FUNCTION, SECONDARY, OPCLASS, or INDEX");
}

Status Parser::ParseCreateTable(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  CreateTableStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    ColumnSpec column;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&column.name));
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&column.type_name));
    stmt.columns.push_back(std::move(column));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseCreateFunction(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FUNCTION"));
  CreateFunctionStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  if (!TrySymbol(")")) {
    while (true) {
      std::string type;
      GRTDB_RETURN_IF_ERROR(TakeIdentifier(&type));
      stmt.arg_types.push_back(std::move(type));
      if (TrySymbol(",")) continue;
      break;
    }
    GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("RETURNING"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.return_type));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("EXTERNAL"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("NAME"));
  if (Peek().kind != Token::Kind::kString) {
    return ErrorAt(Peek(), "quoted external name");
  }
  stmt.external_name = Take().text;
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("LANGUAGE"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.language));
  // Optional trailing clauses, in any order: NOT VARIANT,
  // NEGATOR = <fn>, COMMUTATOR = <fn>.
  while (true) {
    if (AtKeyword("NOT")) {
      Take();
      GRTDB_RETURN_IF_ERROR(ExpectKeyword("VARIANT"));
      continue;
    }
    if (AtKeyword("NEGATOR")) {
      Take();
      GRTDB_RETURN_IF_ERROR(ExpectSymbol("="));
      GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.negator));
      continue;
    }
    if (AtKeyword("COMMUTATOR")) {
      Take();
      GRTDB_RETURN_IF_ERROR(ExpectSymbol("="));
      GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.commutator));
      continue;
    }
    break;
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseCreateAccessMethod(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SECONDARY"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("ACCESS_METHOD"));
  CreateAccessMethodStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    std::string key;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&key));
    GRTDB_RETURN_IF_ERROR(ExpectSymbol("="));
    const Token& value_token = Peek();
    std::string value;
    if (value_token.kind == Token::Kind::kIdentifier ||
        value_token.kind == Token::Kind::kString) {
      value = Take().text;
    } else {
      return ErrorAt(value_token, "property value");
    }
    stmt.properties.emplace_back(std::move(key), std::move(value));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseCreateOpclass(bool is_default, Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("OPCLASS"));
  CreateOpclassStmt stmt;
  stmt.is_default = is_default;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FOR"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.access_method));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("STRATEGIES"));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    std::string name;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&name));
    stmt.strategies.push_back(std::move(name));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SUPPORT"));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    std::string name;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&name));
    stmt.supports.push_back(std::move(name));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseCreateIndex(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
  CreateIndexStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    std::string column;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&column));
    std::string opclass;
    if (Peek().kind == Token::Kind::kIdentifier) {
      opclass = Take().text;
    }
    stmt.columns.emplace_back(std::move(column), std::move(opclass));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("USING"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.access_method));
  if (AtKeyword("IN")) {
    Take();
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.space));
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseDrop(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (AtKeyword("TABLE")) {
    Take();
    DropTableStmt stmt;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("INDEX")) {
    Take();
    DropIndexStmt stmt;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.index));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("FUNCTION")) {
    Take();
    DropFunctionStmt stmt;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("SECONDARY")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("ACCESS_METHOD"));
    DropAccessMethodStmt stmt;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("OPCLASS")) {
    Take();
    DropOpclassStmt stmt;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
    *out = std::move(stmt);
    return Status::OK();
  }
  return ErrorAt(Peek(),
                 "TABLE, INDEX, FUNCTION, SECONDARY ACCESS_METHOD, or "
                 "OPCLASS");
}

Status Parser::ParseInsert(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  InsertStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    Literal literal;
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&literal));
    stmt.values.push_back(std::move(literal));
    if (TrySymbol(",")) continue;
    break;
  }
  GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseSelect(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  SelectStmt stmt;
  if (TrySymbol("*")) {
    stmt.star = true;
  } else if (AtKeyword("COUNT") && Peek(1).kind == Token::Kind::kSymbol &&
             Peek(1).text == "(") {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectSymbol("("));
    GRTDB_RETURN_IF_ERROR(ExpectSymbol("*"));
    GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.count_star = true;
  } else {
    while (true) {
      std::string column;
      GRTDB_RETURN_IF_ERROR(TakeIdentifier(&column));
      stmt.columns.push_back(std::move(column));
      if (TrySymbol(",")) continue;
      break;
    }
  }
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  if (AtKeyword("WHERE")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ParseExpr(&stmt.where));
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseDelete(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  DeleteStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  if (AtKeyword("WHERE")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ParseExpr(&stmt.where));
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseUpdate(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  if (AtKeyword("STATISTICS")) {
    Take();
    UpdateStatisticsStmt stmt;
    // Bare UPDATE STATISTICS refreshes every index that has am_stats.
    if (AtKeyword("FOR")) {
      Take();
      GRTDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
      GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.index));
    }
    *out = std::move(stmt);
    return Status::OK();
  }
  UpdateStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  while (true) {
    std::string column;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&column));
    GRTDB_RETURN_IF_ERROR(ExpectSymbol("="));
    Literal literal;
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&literal));
    stmt.assignments.emplace_back(std::move(column), std::move(literal));
    if (TrySymbol(",")) continue;
    break;
  }
  if (AtKeyword("WHERE")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ParseExpr(&stmt.where));
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseSet(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  SetStmt stmt;
  if (AtKeyword("ISOLATION")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    stmt.what = SetStmt::What::kIsolation;
    std::string level;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&level));
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("READ"));
    stmt.argument = ToUpper(level);
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("EXPLAIN")) {
    Take();
    stmt.what = SetStmt::What::kExplain;
    std::string mode;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&mode));
    stmt.argument = ToUpper(mode);
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("CURRENT_TIME")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    stmt.what = SetStmt::What::kCurrentTime;
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&stmt.value));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("TIME")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("MODE"));
    stmt.what = SetStmt::What::kTimeMode;
    std::string mode;
    GRTDB_RETURN_IF_ERROR(TakeIdentifier(&mode));
    stmt.argument = ToUpper(mode);
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("TRACE_SAMPLE")) {
    Take();
    stmt.what = SetStmt::What::kTraceSample;
    if (!TrySymbol("=")) {
      GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    }
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&stmt.value));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("TRACE")) {
    Take();
    stmt.what = SetStmt::What::kTrace;
    if (Peek().kind == Token::Kind::kString ||
        Peek().kind == Token::Kind::kIdentifier) {
      stmt.argument = Take().text;
    } else {
      return ErrorAt(Peek(), "trace class");
    }
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&stmt.value));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("SLOW_QUERY_NS")) {
    Take();
    stmt.what = SetStmt::What::kSlowQueryNs;
    if (!TrySymbol("=")) {
      GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    }
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&stmt.value));
    *out = std::move(stmt);
    return Status::OK();
  }
  if (AtKeyword("HEAT_TRACK")) {
    Take();
    stmt.what = SetStmt::What::kHeatTrack;
    if (!TrySymbol("=")) {
      GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
    }
    GRTDB_RETURN_IF_ERROR(ParseLiteral(&stmt.value));
    *out = std::move(stmt);
    return Status::OK();
  }
  return ErrorAt(Peek(),
                 "ISOLATION, EXPLAIN, CURRENT_TIME, TIME MODE, TRACE, "
                 "TRACE_SAMPLE, SLOW_QUERY_NS, or HEAT_TRACK");
}

Status Parser::ParseCheck(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("CHECK"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
  CheckIndexStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.index));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseExplain(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
  bool trace = false;
  if (AtKeyword("TRACE")) {
    Take();
    trace = true;
  } else {
    GRTDB_RETURN_IF_ERROR(ExpectKeyword("PROFILE"));
  }
  const size_t start = Peek().offset;
  if (Peek().kind == Token::Kind::kEnd) {
    return ErrorAt(Peek(), trace ? "a statement to trace"
                                 : "a statement to profile");
  }
  // Parse the inner statement now so syntax errors surface at parse time,
  // but carry it as the original text span: the executor re-parses and
  // runs it under a profile, and the Statement variant stays flat.
  Statement inner;
  GRTDB_RETURN_IF_ERROR(ParseStatement(&inner));
  const size_t end = Peek().offset;
  if (trace) {
    ExplainTraceStmt stmt;
    stmt.inner_sql = text_.substr(start, end - start);
    *out = std::move(stmt);
    return Status::OK();
  }
  ExplainProfileStmt stmt;
  stmt.inner_sql = text_.substr(start, end - start);
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseLoad(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("LOAD"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  if (Peek().kind != Token::Kind::kString) {
    return ErrorAt(Peek(), "quoted file path");
  }
  LoadStmt stmt;
  stmt.path = Take().text;
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseUnload(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("UNLOAD"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("TO"));
  if (Peek().kind != Token::Kind::kString) {
    return ErrorAt(Peek(), "quoted file path");
  }
  UnloadStmt stmt;
  stmt.path = Take().text;
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  GRTDB_RETURN_IF_ERROR(ExpectSymbol("*"));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.table));
  if (AtKeyword("WHERE")) {
    Take();
    GRTDB_RETURN_IF_ERROR(ParseExpr(&stmt.where));
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParsePrepare(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("PREPARE"));
  PrepareStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("AS"));
  const size_t start = Peek().offset;
  if (Peek().kind == Token::Kind::kEnd) {
    return ErrorAt(Peek(), "a statement to prepare");
  }
  // Same text-span idiom as EXPLAIN PROFILE: parse the inner statement now
  // so syntax errors surface at PREPARE time, but carry the original text —
  // the server parses it once more into its shared plan cache.
  Statement inner;
  GRTDB_RETURN_IF_ERROR(ParseStatement(&inner));
  if (!std::holds_alternative<SelectStmt>(inner) &&
      !std::holds_alternative<InsertStmt>(inner) &&
      !std::holds_alternative<DeleteStmt>(inner) &&
      !std::holds_alternative<UpdateStmt>(inner)) {
    return Status::InvalidArgument(
        "PREPARE supports SELECT, INSERT, DELETE, and UPDATE statements");
  }
  const size_t end = Peek().offset;
  stmt.inner_sql = text_.substr(start, end - start);
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseExecute(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("EXECUTE"));
  ExecuteStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  if (TrySymbol("(")) {
    if (!TrySymbol(")")) {
      while (true) {
        Literal literal;
        GRTDB_RETURN_IF_ERROR(ParseLiteral(&literal));
        if (literal.kind == Literal::Kind::kParam) {
          return Status::InvalidArgument(
              "EXECUTE arguments must be literal values, not '?'");
        }
        stmt.args.push_back(std::move(literal));
        if (TrySymbol(",")) continue;
        break;
      }
      GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseDeallocate(Statement* out) {
  GRTDB_RETURN_IF_ERROR(ExpectKeyword("DEALLOCATE"));
  if (AtKeyword("PREPARE")) Take();  // PREPARE is optional noise
  DeallocateStmt stmt;
  GRTDB_RETURN_IF_ERROR(TakeIdentifier(&stmt.name));
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseLiteral(Literal* out) {
  const Token& token = Peek();
  if (token.kind == Token::Kind::kSymbol && token.text == "?") {
    Take();
    out->kind = Literal::Kind::kParam;
    out->param_index = param_count_++;
    return Status::OK();
  }
  switch (token.kind) {
    case Token::Kind::kInteger:
      out->kind = Literal::Kind::kInteger;
      out->integer = Take().integer;
      return Status::OK();
    case Token::Kind::kFloat:
      out->kind = Literal::Kind::kFloat;
      out->real = Take().real;
      return Status::OK();
    case Token::Kind::kString:
      out->kind = Literal::Kind::kString;
      out->text = Take().text;
      return Status::OK();
    case Token::Kind::kIdentifier:
      if (EqualsIgnoreCase(token.text, "NULL")) {
        Take();
        out->kind = Literal::Kind::kNull;
        return Status::OK();
      }
      return ErrorAt(token, "literal");
    default:
      return ErrorAt(token, "literal");
  }
}

Status Parser::ParseExpr(std::unique_ptr<Expr>* out) { return ParseOr(out); }

Status Parser::ParseOr(std::unique_ptr<Expr>* out) {
  std::unique_ptr<Expr> left;
  GRTDB_RETURN_IF_ERROR(ParseAnd(&left));
  while (AtKeyword("OR")) {
    Take();
    std::unique_ptr<Expr> right;
    GRTDB_RETURN_IF_ERROR(ParseAnd(&right));
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kOr;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    left = std::move(node);
  }
  *out = std::move(left);
  return Status::OK();
}

Status Parser::ParseAnd(std::unique_ptr<Expr>* out) {
  std::unique_ptr<Expr> left;
  GRTDB_RETURN_IF_ERROR(ParseNot(&left));
  while (AtKeyword("AND")) {
    Take();
    std::unique_ptr<Expr> right;
    GRTDB_RETURN_IF_ERROR(ParseNot(&right));
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kAnd;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    left = std::move(node);
  }
  *out = std::move(left);
  return Status::OK();
}

Status Parser::ParseNot(std::unique_ptr<Expr>* out) {
  if (AtKeyword("NOT")) {
    Take();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kNot;
    std::unique_ptr<Expr> child;
    GRTDB_RETURN_IF_ERROR(ParseNot(&child));
    node->children.push_back(std::move(child));
    *out = std::move(node);
    return Status::OK();
  }
  return ParsePredicate(out);
}

Status Parser::ParsePredicate(std::unique_ptr<Expr>* out) {
  if (TrySymbol("(")) {
    std::unique_ptr<Expr> inner;
    GRTDB_RETURN_IF_ERROR(ParseOr(&inner));
    GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    *out = std::move(inner);
    return Status::OK();
  }
  std::unique_ptr<Expr> left;
  GRTDB_RETURN_IF_ERROR(ParseOperand(&left));
  const Token& token = Peek();
  if (token.kind == Token::Kind::kSymbol &&
      (token.text == "=" || token.text == "<" || token.text == ">" ||
       token.text == "<=" || token.text == ">=" || token.text == "<>")) {
    const std::string op = Take().text;
    std::unique_ptr<Expr> right;
    GRTDB_RETURN_IF_ERROR(ParseOperand(&right));
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    if (op == "=") node->cmp = Expr::CmpOp::kEq;
    if (op == "<>") node->cmp = Expr::CmpOp::kNe;
    if (op == "<") node->cmp = Expr::CmpOp::kLt;
    if (op == "<=") node->cmp = Expr::CmpOp::kLe;
    if (op == ">") node->cmp = Expr::CmpOp::kGt;
    if (op == ">=") node->cmp = Expr::CmpOp::kGe;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    *out = std::move(node);
    return Status::OK();
  }
  *out = std::move(left);
  return Status::OK();
}

Status Parser::ParseOperand(std::unique_ptr<Expr>* out) {
  const Token& token = Peek();
  if (token.kind == Token::Kind::kIdentifier &&
      !EqualsIgnoreCase(token.text, "NULL")) {
    std::string name = Take().text;
    if (TrySymbol("(")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kCall;
      node->func = std::move(name);
      if (!TrySymbol(")")) {
        while (true) {
          std::unique_ptr<Expr> arg;
          GRTDB_RETURN_IF_ERROR(ParseOperand(&arg));
          node->children.push_back(std::move(arg));
          if (TrySymbol(",")) continue;
          break;
        }
        GRTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      *out = std::move(node);
      return Status::OK();
    }
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kColumn;
    node->column = std::move(name);
    *out = std::move(node);
    return Status::OK();
  }
  Literal literal;
  GRTDB_RETURN_IF_ERROR(ParseLiteral(&literal));
  auto node = std::make_unique<Expr>();
  node->kind = Expr::Kind::kLiteral;
  node->literal = std::move(literal);
  *out = std::move(node);
  return Status::OK();
}

}  // namespace sql
}  // namespace grtdb
