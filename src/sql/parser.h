#ifndef GRTDB_SQL_PARSER_H_
#define GRTDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace grtdb {
namespace sql {

// Recursive-descent parser for the SQL dialect the paper exercises:
// creation of tables, functions, secondary access methods, operator
// classes, and virtual indexes; DML with WHERE clauses combining
// strategy-function calls and comparisons; transactions; and SET commands
// (plus the simulation extensions SET CURRENT_TIME / SET TIME MODE and the
// CHECK INDEX / UPDATE STATISTICS hooks for am_check / am_stats).
class Parser {
 public:
  // Parses one statement. If param_count is non-null it receives the
  // number of `?` placeholders seen, numbered left to right — the arity
  // a later EXECUTE must match.
  static Status Parse(const std::string& text, Statement* out,
                      size_t* param_count = nullptr);

  // Parses a ;-separated script (trailing ; optional).
  static Status ParseScript(const std::string& text,
                            std::vector<Statement>* out);

 private:
  Parser(std::vector<Token> tokens, std::string text)
      : tokens_(std::move(tokens)), text_(std::move(text)) {}

  const Token& Peek(size_t ahead = 0) const;
  Token Take();
  bool AtKeyword(const std::string& word) const;
  Status ExpectKeyword(const std::string& word);
  Status ExpectSymbol(const std::string& symbol);
  bool TrySymbol(const std::string& symbol);
  Status TakeIdentifier(std::string* out);

  Status ParseStatement(Statement* out);
  Status ParseCreate(Statement* out);
  Status ParseCreateTable(Statement* out);
  Status ParseCreateFunction(Statement* out);
  Status ParseCreateAccessMethod(Statement* out);
  Status ParseCreateOpclass(bool is_default, Statement* out);
  Status ParseCreateIndex(Statement* out);
  Status ParseDrop(Statement* out);
  Status ParseInsert(Statement* out);
  Status ParseSelect(Statement* out);
  Status ParseDelete(Statement* out);
  Status ParseUpdate(Statement* out);
  Status ParseSet(Statement* out);
  Status ParseCheck(Statement* out);
  Status ParseExplain(Statement* out);
  Status ParseLoad(Statement* out);
  Status ParseUnload(Statement* out);
  Status ParsePrepare(Statement* out);
  Status ParseExecute(Statement* out);
  Status ParseDeallocate(Statement* out);

  Status ParseLiteral(Literal* out);
  Status ParseExpr(std::unique_ptr<Expr>* out);
  Status ParseOr(std::unique_ptr<Expr>* out);
  Status ParseAnd(std::unique_ptr<Expr>* out);
  Status ParseNot(std::unique_ptr<Expr>* out);
  Status ParsePredicate(std::unique_ptr<Expr>* out);
  Status ParseOperand(std::unique_ptr<Expr>* out);

  std::vector<Token> tokens_;
  // Original statement text; token offsets index into it, which lets
  // EXPLAIN PROFILE / PREPARE carry their inner statement as a text span.
  std::string text_;
  size_t pos_ = 0;
  // Number of `?` placeholders consumed so far; each gets the next index.
  size_t param_count_ = 0;
};

}  // namespace sql
}  // namespace grtdb

#endif  // GRTDB_SQL_PARSER_H_
