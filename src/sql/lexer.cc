#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace grtdb {
namespace sql {

Status Tokenize(const std::string& input, std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      token.kind = Token::Kind::kIdentifier;
      token.text = input.substr(start, i - start);
      out->push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          // "1." followed by another '.' would be malformed; let strtod
          // handle precision, but a second dot ends the number.
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      const std::string text = input.substr(start, i - start);
      if (is_float) {
        token.kind = Token::Kind::kFloat;
        token.real = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = Token::Kind::kInteger;
        token.integer = std::strtoll(text.c_str(), nullptr, 10);
      }
      token.text = text;
      out->push_back(std::move(token));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (i + 1 < n && input[i + 1] == quote) {
            body.push_back(quote);  // doubled quote escapes itself
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      token.kind = Token::Kind::kString;
      token.text = std::move(body);
      out->push_back(std::move(token));
      continue;
    }
    // Symbols, including two-character comparators.
    if (c == '<' && i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
      token.kind = Token::Kind::kSymbol;
      token.text = input.substr(i, 2);
      i += 2;
      out->push_back(std::move(token));
      continue;
    }
    if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      token.kind = Token::Kind::kSymbol;
      token.text = ">=";
      i += 2;
      out->push_back(std::move(token));
      continue;
    }
    static const char kSingles[] = "(),;=<>*.?";
    bool matched = false;
    for (const char* p = kSingles; *p != '\0'; ++p) {
      if (c == *p) {
        token.kind = Token::Kind::kSymbol;
        token.text = std::string(1, c);
        ++i;
        out->push_back(std::move(token));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = n;
  out->push_back(std::move(end));
  return Status::OK();
}

}  // namespace sql
}  // namespace grtdb
