#ifndef GRTDB_SQL_LEXER_H_
#define GRTDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace grtdb {
namespace sql {

struct Token {
  enum class Kind {
    kIdentifier,  // unquoted word (keywords included; matching is by text)
    kInteger,
    kFloat,
    kString,  // 'single' or "double" quoted
    kSymbol,  // ( ) , ; = < > <= >= <> * . ?
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;  // identifier text (original case), symbol, or string body
  int64_t integer = 0;
  double real = 0.0;
  size_t offset = 0;  // position in the input, for error messages
};

// Tokenizes one SQL statement (or a ;-separated script).
Status Tokenize(const std::string& input, std::vector<Token>* out);

}  // namespace sql
}  // namespace grtdb

#endif  // GRTDB_SQL_LEXER_H_
