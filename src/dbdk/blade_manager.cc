#include "dbdk/blade_manager.h"

#include "common/strings.h"

namespace grtdb {

namespace {

std::string SymbolOf(const BladeRoutine& routine) {
  return routine.symbol.empty() ? ToLower(routine.name) : routine.symbol;
}

}  // namespace

Status BladeManager::Register(Server* server, const BladeProject& project,
                              const TypeSupport& type_support) {
  GRTDB_RETURN_IF_ERROR(BladeSmith::Validate(project));

  // The shared library must export every referenced symbol — the check a
  // real dynamic loader performs at CREATE FUNCTION time; doing it up
  // front gives one coherent error instead of a half-registered blade.
  BladeLibrary* library = server->blade_libraries().Load(project.library);
  for (const BladeRoutine& routine : project.routines) {
    if (library->Lookup(SymbolOf(routine)) == nullptr) {
      return Status::NotFound("blade library '" + project.library +
                              "' does not export symbol '" +
                              SymbolOf(routine) + "' required by " +
                              routine.name);
    }
  }

  // Opaque types first: CREATE FUNCTION statements reference them.
  for (const BladeOpaqueType& type : project.types) {
    auto it = type_support.find(ToLower(type.name));
    if (it == type_support.end()) {
      // Case-sensitive fallback.
      it = type_support.find(type.name);
    }
    if (it == type_support.end()) {
      return Status::InvalidArgument(
          "no type support functions supplied for opaque type '" +
          type.name + "'");
    }
    OpaqueType registered = it->second;
    registered.name = type.name;
    uint32_t id = 0;
    GRTDB_RETURN_IF_ERROR(
        server->types().RegisterOpaque(std::move(registered), &id));
  }

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(
      session, BladeSmith::GenerateRegistrationSql(project), &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  if (!status.ok()) {
    // Roll the type registrations back so a failed registration leaves no
    // residue (BladeManager re-registration during testing relies on it).
    for (const BladeOpaqueType& type : project.types) {
      Status undo = server->types().Unregister(type.name);
      (void)undo;
    }
  }
  return status;
}

Status BladeManager::Unregister(Server* server, const BladeProject& project) {
  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(
      session, BladeSmith::GenerateUnregistrationSql(project), &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  if (!status.ok()) return status;
  for (const BladeOpaqueType& type : project.types) {
    GRTDB_RETURN_IF_ERROR(server->types().Unregister(type.name));
  }
  return Status::OK();
}

bool BladeManager::IsRegistered(Server* server, const BladeProject& project) {
  for (const BladeOpaqueType& type : project.types) {
    if (server->types().FindOpaqueByName(type.name) == nullptr) return false;
  }
  for (const BladeRoutine& routine : project.routines) {
    if (server->udrs().FindAny(routine.name) == nullptr) return false;
  }
  for (const BladeAccessMethod& am : project.access_methods) {
    if (server->catalog().FindAccessMethod(am.name) == nullptr) return false;
    if (!am.opclass_name.empty() &&
        server->catalog().FindOpClass(am.opclass_name) == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace grtdb
