#ifndef GRTDB_DBDK_BLADE_MANAGER_H_
#define GRTDB_DBDK_BLADE_MANAGER_H_

#include <map>
#include <string>

#include "dbdk/bladesmith.h"
#include "server/server.h"

namespace grtdb {

// BladeManager (paper §6.1): registers and unregisters a DataBlade for a
// database. Registration verifies the blade library actually exports every
// symbol the project references, registers the project's opaque types, and
// runs BladeSmith's objects.sql; unregistration runs remove.sql and
// removes the types. The paper found this register/unregister cycle "very
// convenient" because testing repeats it many times — the tests here do
// exactly that.
class BladeManager {
 public:
  // Support functions for each project opaque type (text input/output at
  // minimum), keyed by SQL type name. The compiled blade provides these;
  // BladeSmith only generated their skeletons.
  using TypeSupport = std::map<std::string, OpaqueType>;

  static Status Register(Server* server, const BladeProject& project,
                         const TypeSupport& type_support = {});

  static Status Unregister(Server* server, const BladeProject& project);

  // True when every object of the project is present in the server.
  static bool IsRegistered(Server* server, const BladeProject& project);
};

}  // namespace grtdb

#endif  // GRTDB_DBDK_BLADE_MANAGER_H_
