#ifndef GRTDB_DBDK_BLADESMITH_H_
#define GRTDB_DBDK_BLADESMITH_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace grtdb {

// ---------------------------------------------------------------------------
// The DataBlade Developer's Kit (paper §6.1): BladeSmith manages the
// definition of a DataBlade's objects and generates C skeletons, SQL
// registration/unregistration scripts, and installation metadata;
// BladeManager (dbdk/blade_manager.h) registers the result in a server.
// ---------------------------------------------------------------------------

// A field of an opaque type's internal structure.
struct BladeField {
  std::string name;
  std::string c_type;  // e.g. "mi_integer", "GRT_Timestamp_t"
};

// An opaque type defined in the project. BladeSmith generates the struct
// definition and the skeletons of all type support functions (§6.3: text
// input/output, binary send/receive, text-file import/export).
struct BladeOpaqueType {
  std::string name;        // SQL name, e.g. "grt_timeextent"
  std::string c_name;      // struct name, e.g. "GRT_TimeExtent_t"
  std::vector<BladeField> fields;
};

// A routine in the project: either a SQL-callable UDR (strategy/support
// function) or an access-method purpose function (registered with a
// `pointer` argument, never called from SQL).
struct BladeRoutine {
  std::string name;                    // SQL name
  std::vector<std::string> arg_types;  // SQL type names
  std::string return_type;             // SQL type name
  std::string symbol;                  // C symbol; empty = lowercased name
  bool not_variant = false;
};

// A secondary access method: purpose-function property map plus the
// operator class declaration.
struct BladeAccessMethod {
  std::string name;
  char sptype = 'S';
  // am_create -> grt_create, ... (values must name project routines).
  std::map<std::string, std::string> purpose;
  std::string opclass_name;
  bool opclass_is_default = true;
  std::vector<std::string> strategies;
  std::vector<std::string> supports;
};

// A BladeSmith project — one per DataBlade (§6.1).
struct BladeProject {
  std::string name;     // e.g. "grtree"
  std::string library;  // e.g. "usr/functions/grtree.bld"
  std::vector<BladeOpaqueType> types;
  std::vector<BladeRoutine> routines;
  std::vector<BladeAccessMethod> access_methods;
};

// Generates the DataBlade source artifacts. The paper notes BladeSmith
// emits one header, one C source file, and the SQL scripts BladeManager
// runs; it generates full support-function skeletons for opaque types but
// only prototypes for purpose functions (§6.3 last paragraph) — this
// generator reproduces exactly that division of labour.
class BladeSmith {
 public:
  // The C header: opaque-type structs + prototypes of every routine.
  static std::string GenerateHeader(const BladeProject& project);

  // The C source: generated support-function bodies for opaque types
  // (text input/output, send/receive, import/export) and TODO-stub bodies
  // for every project routine.
  static std::string GenerateSource(const BladeProject& project);

  // objects.sql: CREATE FUNCTION for every routine, CREATE SECONDARY
  // ACCESS_METHOD, CREATE OPCLASS — in dependency order.
  static std::string GenerateRegistrationSql(const BladeProject& project);

  // remove.sql: the reverse, in reverse order.
  static std::string GenerateUnregistrationSql(const BladeProject& project);

  // Writes <name>.h, <name>.c, <name>_objects.sql, <name>_remove.sql into
  // `directory`.
  static Status GenerateAll(const BladeProject& project,
                            const std::string& directory);

  // Validates internal consistency: purpose properties name project
  // routines, strategy/support functions exist, types referenced by
  // routines are project types or built-ins.
  static Status Validate(const BladeProject& project);
};

}  // namespace grtdb

#endif  // GRTDB_DBDK_BLADESMITH_H_
