#include "temporal/timestamp.h"

#include <cstdlib>

#include "common/date.h"
#include "common/strings.h"

namespace grtdb {

Status Timestamp::Parse(const std::string& text, Timestamp* out) {
  std::string trimmed(StripWhitespace(text));
  if (EqualsIgnoreCase(trimmed, "UC")) {
    *out = Timestamp::UC();
    return Status::OK();
  }
  if (EqualsIgnoreCase(trimmed, "NOW")) {
    *out = Timestamp::NOW();
    return Status::OK();
  }
  if (trimmed.find('/') != std::string::npos) {
    int64_t day = 0;
    GRTDB_RETURN_IF_ERROR(ParseDate(trimmed, &day));
    *out = Timestamp::FromChronon(day);
    return Status::OK();
  }
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end == trimmed.c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse timestamp '" + text + "'");
  }
  *out = Timestamp::FromChronon(value);
  return Status::OK();
}

std::string Timestamp::ToString() const {
  if (is_uc()) return "UC";
  if (is_now()) return "NOW";
  return FormatDate(value_);
}

std::string Timestamp::ToChrononString() const {
  if (is_uc()) return "UC";
  if (is_now()) return "NOW";
  return std::to_string(value_);
}

}  // namespace grtdb
