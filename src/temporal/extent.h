#ifndef GRTDB_TEMPORAL_EXTENT_H_
#define GRTDB_TEMPORAL_EXTENT_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "temporal/timestamp.h"

namespace grtdb {

// The six qualitatively different combinations of the four timestamps
// (paper Fig. 2). tt1/tt2/vt1/vt2 denote ground values.
enum class ExtentCase {
  kCase1 = 1,  // [tt1, UC]  x [vt1, vt2]          — rectangle growing in tt
  kCase2 = 2,  // [tt1, tt2] x [vt1, vt2]          — static rectangle
  kCase3 = 3,  // [tt1, UC]  x [vt1, NOW], tt1=vt1 — growing stair
  kCase4 = 4,  // [tt1, tt2] x [vt1, NOW], tt1=vt1 — frozen stair
  kCase5 = 5,  // [tt1, UC]  x [vt1, NOW], tt1>vt1 — growing stair, high step
  kCase6 = 6,  // [tt1, tt2] x [vt1, NOW], tt1>vt1 — frozen stair, high step
};

// The four-timestamp (4TS) representation [SNO87] of a bitemporal tuple's
// time extent: [TTbegin, TTend] x [VTbegin, VTend], closed intervals, where
// TTend may be the variable UC and VTend may be the variable NOW. This is
// the value type behind the DataBlade's opaque SQL type grt_timeextent.
struct TimeExtent {
  Timestamp tt_begin;
  Timestamp tt_end;
  Timestamp vt_begin;
  Timestamp vt_end;

  TimeExtent() = default;
  TimeExtent(Timestamp ttb, Timestamp tte, Timestamp vtb, Timestamp vte)
      : tt_begin(ttb), tt_end(tte), vt_begin(vtb), vt_end(vte) {}

  // Convenience constructor from raw chronons; `tte`/`vte` accept the
  // sentinels via Timestamp::UC()/NOW() through the main constructor.
  static TimeExtent Ground(int64_t ttb, int64_t tte, int64_t vtb,
                           int64_t vte) {
    return TimeExtent(Timestamp::FromChronon(ttb), Timestamp::FromChronon(tte),
                      Timestamp::FromChronon(vtb),
                      Timestamp::FromChronon(vte));
  }

  // Checks structural well-formedness of a *stored* extent (any tuple that
  // can legally exist in a bitemporal relation, §2):
  //   * TTbegin and VTbegin are ground; TTbegin may not be UC/NOW.
  //   * TTend is UC or a ground value >= TTbegin.
  //   * VTend is NOW or a ground value >= VTbegin.
  //   * If VTend is NOW then TTbegin >= VTbegin (cases 3-6; recording a
  //     fact "valid until now" before it starts to be valid would make the
  //     resolved VTend precede VTbegin).
  Status Validate() const;

  // Checks the *insertion* constraints of §2 at current time `ct`:
  // TTbegin = ct, TTend = UC, VTbegin <= VTend (or VTbegin <= ct when
  // VTend is NOW). Implies Validate().
  Status ValidateInsertion(int64_t ct) const;

  // Which of the six cases of Fig. 2 this extent falls into. Requires
  // Validate().ok().
  ExtentCase Classify() const;

  // True when the region still grows as time passes (TTend == UC).
  bool IsCurrent() const { return tt_end.is_uc(); }

  // Logical deletion (§2): TTend: UC -> ct - 1. Requires IsCurrent().
  Status LogicalDelete(int64_t ct);

  // Text format used in SQL statements and results (paper §5.2):
  // "TTbegin, TTend, VTbegin, VTend", e.g. "12/10/95, UC, 12/10/95, NOW".
  static Status Parse(const std::string& text, TimeExtent* out);
  std::string ToString() const;

  // Chronon-valued rendering for test diagnostics.
  std::string ToChrononString() const;

  // Fixed-size binary encoding (4 little-endian int64s) — the "binary
  // send/receive" representation of the opaque type.
  static constexpr size_t kBinarySize = 32;
  void EncodeTo(uint8_t* out) const;
  static TimeExtent DecodeFrom(const uint8_t* in);

  friend bool operator==(const TimeExtent& a, const TimeExtent& b) {
    return a.tt_begin == b.tt_begin && a.tt_end == b.tt_end &&
           a.vt_begin == b.vt_begin && a.vt_end == b.vt_end;
  }
};

}  // namespace grtdb

#endif  // GRTDB_TEMPORAL_EXTENT_H_
