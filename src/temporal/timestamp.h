#ifndef GRTDB_TEMPORAL_TIMESTAMP_H_
#define GRTDB_TEMPORAL_TIMESTAMP_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace grtdb {

// A bitemporal timestamp: either a ground chronon (day number, granularity =
// day per paper §5.1) or one of the two variables of the four-timestamp
// format [SNO87, CLI97]:
//   UC  ("until changed") — only legal as a transaction-time end, tracks the
//        current time in the transaction-time dimension;
//   NOW — only legal as a valid-time end, tracks the current time in the
//        valid-time dimension.
class Timestamp {
 public:
  // Default-constructed timestamps are ground chronon 0 (1970-01-01).
  constexpr Timestamp() : value_(0) {}

  static constexpr Timestamp UC() { return Timestamp(kUCValue); }
  static constexpr Timestamp NOW() { return Timestamp(kNOWValue); }
  static constexpr Timestamp FromChronon(int64_t chronon) {
    return Timestamp(chronon);
  }

  constexpr bool is_uc() const { return value_ == kUCValue; }
  constexpr bool is_now() const { return value_ == kNOWValue; }
  constexpr bool IsGround() const { return !is_uc() && !is_now(); }

  // The ground chronon. Must not be called on UC/NOW.
  constexpr int64_t chronon() const { return value_; }

  // Resolves this timestamp at current time `ct`: UC and NOW both become
  // `ct`; ground values are unchanged. (Callers implementing the paper's
  // exact §3 algorithm — "set VTend to TTend" — resolve TTend first and pass
  // the result; for a single timestamp the two coincide.)
  constexpr int64_t ResolveAt(int64_t ct) const {
    return IsGround() ? value_ : ct;
  }

  // Raw encoding for serialization. Round-trips through FromRaw.
  constexpr int64_t raw() const { return value_; }
  static constexpr Timestamp FromRaw(int64_t raw) { return Timestamp(raw); }

  // Parses "UC", "NOW", an mm/dd/yyyy date, or a bare integer chronon.
  static Status Parse(const std::string& text, Timestamp* out);

  // "UC", "NOW", or the mm/dd/yyyy date.
  std::string ToString() const;

  // Bare chronon rendering ("UC"/"NOW" or the integer), used in test
  // diagnostics where day numbers are easier to eyeball than dates.
  std::string ToChrononString() const;

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return a.value_ != b.value_;
  }

 private:
  static constexpr int64_t kUCValue = std::numeric_limits<int64_t>::max();
  static constexpr int64_t kNOWValue = std::numeric_limits<int64_t>::max() - 1;

  explicit constexpr Timestamp(int64_t value) : value_(value) {}

  int64_t value_;
};

}  // namespace grtdb

#endif  // GRTDB_TEMPORAL_TIMESTAMP_H_
