#include "temporal/extent.h"

#include <cstring>

#include "common/strings.h"

namespace grtdb {

Status TimeExtent::Validate() const {
  if (!tt_begin.IsGround()) {
    return Status::InvalidArgument("TTbegin must be a ground value");
  }
  if (!vt_begin.IsGround()) {
    return Status::InvalidArgument("VTbegin must be a ground value");
  }
  if (tt_end.is_now()) {
    return Status::InvalidArgument("TTend may not be NOW");
  }
  if (vt_end.is_uc()) {
    return Status::InvalidArgument("VTend may not be UC");
  }
  if (tt_end.IsGround() && tt_end.chronon() < tt_begin.chronon()) {
    return Status::InvalidArgument("TTend precedes TTbegin");
  }
  if (vt_end.IsGround() && vt_end.chronon() < vt_begin.chronon()) {
    return Status::InvalidArgument("VTend precedes VTbegin");
  }
  if (vt_end.is_now() && tt_begin.chronon() < vt_begin.chronon()) {
    return Status::InvalidArgument(
        "VTend = NOW requires TTbegin >= VTbegin (cases 3-6 of Fig. 2)");
  }
  return Status::OK();
}

Status TimeExtent::ValidateInsertion(int64_t ct) const {
  GRTDB_RETURN_IF_ERROR(Validate());
  if (tt_begin.chronon() != ct) {
    return Status::InvalidArgument(
        "insertion requires TTbegin = current time");
  }
  if (!tt_end.is_uc()) {
    return Status::InvalidArgument("insertion requires TTend = UC");
  }
  if (vt_end.is_now()) {
    if (vt_begin.chronon() > ct) {
      return Status::InvalidArgument(
          "VTend = NOW requires VTbegin <= current time");
    }
  }
  return Status::OK();
}

ExtentCase TimeExtent::Classify() const {
  const bool growing = tt_end.is_uc();
  if (!vt_end.is_now()) {
    return growing ? ExtentCase::kCase1 : ExtentCase::kCase2;
  }
  const bool high_step = tt_begin.chronon() > vt_begin.chronon();
  if (growing) {
    return high_step ? ExtentCase::kCase5 : ExtentCase::kCase3;
  }
  return high_step ? ExtentCase::kCase6 : ExtentCase::kCase4;
}

Status TimeExtent::LogicalDelete(int64_t ct) {
  if (!tt_end.is_uc()) {
    return Status::InvalidArgument(
        "only current tuples (TTend = UC) can be logically deleted");
  }
  if (ct - 1 < tt_begin.chronon()) {
    return Status::InvalidArgument(
        "deletion time precedes the tuple's TTbegin");
  }
  tt_end = Timestamp::FromChronon(ct - 1);
  return Status::OK();
}

Status TimeExtent::Parse(const std::string& text, TimeExtent* out) {
  std::vector<std::string> pieces = SplitAndTrim(text, ',');
  if (pieces.size() != 4) {
    return Status::InvalidArgument(
        "time extent must have four comma-separated timestamps, got '" +
        text + "'");
  }
  TimeExtent extent;
  GRTDB_RETURN_IF_ERROR(Timestamp::Parse(pieces[0], &extent.tt_begin));
  GRTDB_RETURN_IF_ERROR(Timestamp::Parse(pieces[1], &extent.tt_end));
  GRTDB_RETURN_IF_ERROR(Timestamp::Parse(pieces[2], &extent.vt_begin));
  GRTDB_RETURN_IF_ERROR(Timestamp::Parse(pieces[3], &extent.vt_end));
  GRTDB_RETURN_IF_ERROR(extent.Validate());
  *out = extent;
  return Status::OK();
}

std::string TimeExtent::ToString() const {
  return tt_begin.ToString() + ", " + tt_end.ToString() + ", " +
         vt_begin.ToString() + ", " + vt_end.ToString();
}

std::string TimeExtent::ToChrononString() const {
  return tt_begin.ToChrononString() + ", " + tt_end.ToChrononString() + ", " +
         vt_begin.ToChrononString() + ", " + vt_end.ToChrononString();
}

namespace {

void PutLittleEndian64(uint8_t* out, int64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i));
  }
}

int64_t GetLittleEndian64(const uint8_t* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return static_cast<int64_t>(value);
}

}  // namespace

void TimeExtent::EncodeTo(uint8_t* out) const {
  PutLittleEndian64(out, tt_begin.raw());
  PutLittleEndian64(out + 8, tt_end.raw());
  PutLittleEndian64(out + 16, vt_begin.raw());
  PutLittleEndian64(out + 24, vt_end.raw());
}

TimeExtent TimeExtent::DecodeFrom(const uint8_t* in) {
  TimeExtent extent;
  extent.tt_begin = Timestamp::FromRaw(GetLittleEndian64(in));
  extent.tt_end = Timestamp::FromRaw(GetLittleEndian64(in + 8));
  extent.vt_begin = Timestamp::FromRaw(GetLittleEndian64(in + 16));
  extent.vt_end = Timestamp::FromRaw(GetLittleEndian64(in + 24));
  return extent;
}

}  // namespace grtdb
