#ifndef GRTDB_TEMPORAL_PREDICATES_H_
#define GRTDB_TEMPORAL_PREDICATES_H_

#include "temporal/extent.h"
#include "temporal/region.h"

namespace grtdb {

// The bitemporal predicates behind the GR-tree operator class's strategy
// functions (paper §5.2): each predicate resolves both extents at the same
// current time `ct` and compares the resulting regions. A bitemporal
// predicate cannot be decomposed into one valid-time and one
// transaction-time interval predicate (the "Julie" example of §5.1);
// tests/bench T6 demonstrate the failure of the decomposition.

inline bool ExtentsOverlap(const TimeExtent& a, const TimeExtent& b,
                           int64_t ct) {
  return ResolveExtent(a, ct).Overlaps(ResolveExtent(b, ct));
}

inline bool ExtentContains(const TimeExtent& a, const TimeExtent& b,
                           int64_t ct) {
  return ResolveExtent(a, ct).Contains(ResolveExtent(b, ct));
}

inline bool ExtentContainedIn(const TimeExtent& a, const TimeExtent& b,
                              int64_t ct) {
  return ResolveExtent(b, ct).Contains(ResolveExtent(a, ct));
}

inline bool ExtentsEqual(const TimeExtent& a, const TimeExtent& b,
                         int64_t ct) {
  return ResolveExtent(a, ct).Equals(ResolveExtent(b, ct));
}

}  // namespace grtdb

#endif  // GRTDB_TEMPORAL_PREDICATES_H_
