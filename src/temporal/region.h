#ifndef GRTDB_TEMPORAL_REGION_H_
#define GRTDB_TEMPORAL_REGION_H_

#include <cstdint>
#include <span>
#include <string>

#include "temporal/extent.h"

namespace grtdb {

// A *resolved* bitemporal region: concrete geometry in the (transaction
// time, valid time) plane at one evaluation time. UC/NOW variables have
// already been substituted (see BoundSpec::Resolve / ResolveExtent).
//
// Two shapes occur (paper §2-§3):
//   Rect  — [tt1, tt2] x [vt1, vt2], closed intervals;
//   Stair — {(tt, vt) : tt1 <= tt <= tt2, vt1 <= vt <= tt}, the stair shape
//           produced by VTend = NOW (valid time extends to the then-current
//           time at every transaction-time instant).
//
// Coordinates are integer chronons; Area/Margin/IntersectionArea use the
// continuous closed-interval measure, which property tests validate against
// a rasterized brute force.
class Region {
 public:
  enum class Kind { kEmpty, kRect, kStair };

  Region() : kind_(Kind::kEmpty), tt1_(0), tt2_(0), vt1_(0), vt2_(0) {}

  static Region Empty() { return Region(); }
  static Region Rect(int64_t tt1, int64_t tt2, int64_t vt1, int64_t vt2);
  static Region Stair(int64_t tt1, int64_t tt2, int64_t vt1);

  Kind kind() const { return kind_; }
  bool IsEmpty() const { return kind_ == Kind::kEmpty; }
  bool IsStair() const { return kind_ == Kind::kStair; }

  int64_t tt1() const { return tt1_; }
  int64_t tt2() const { return tt2_; }
  int64_t vt1() const { return vt1_; }
  // Highest valid-time coordinate in the region (== tt2 for stairs).
  int64_t vt2() const { return vt2_; }

  // True iff point (tt, vt) lies inside the region.
  bool ContainsPoint(int64_t tt, int64_t vt) const;

  bool Overlaps(const Region& other) const;
  bool Contains(const Region& other) const;
  bool Equals(const Region& other) const;

  double Area() const;
  // Half-perimeter (width + height) of the region's bounding rectangle; the
  // R*-style margin metric.
  double Margin() const;
  double IntersectionArea(const Region& other) const;

  // Smallest Region of either kind covering both. Produces a stair only
  // when both inputs lie entirely under the vt = tt diagonal.
  static Region Enclose(const Region& a, const Region& b);

  // The bounding rectangle of this region.
  Region BoundingRect() const;

  // Dead space of a parent region with respect to the child regions it
  // bounds: Area(parent) - Area(union of children). Children must be
  // pairwise processed; this uses inclusion-exclusion up to pairs and is
  // exact only when children overlap pairwise but not triple-wise, so the
  // bench reports it via Monte Carlo sampling instead; see DeadSpaceSampled.
  static double DeadSpaceSampled(const Region& parent,
                                 std::span<const Region> children,
                                 uint64_t samples, uint64_t seed);

  std::string ToString() const;

 private:
  Region(Kind kind, int64_t tt1, int64_t tt2, int64_t vt1, int64_t vt2)
      : kind_(kind), tt1_(tt1), tt2_(tt2), vt1_(vt1), vt2_(vt2) {}

  Kind kind_;
  int64_t tt1_, tt2_, vt1_, vt2_;
};

// Resolves a stored 4TS extent into concrete geometry at current time `ct`,
// applying the paper's §3 substitution ("IF TTend = UC THEN TTend := ct;
// IF VTend = NOW THEN VTend := TTend"). Cases 1-2 yield rectangles, cases
// 3-6 stair shapes.
Region ResolveExtent(const TimeExtent& extent, int64_t ct);

// The encoded form of a region as stored in a GR-tree entry: four
// timestamps plus the "Rectangle" and "Hidden" flags (paper §3). Leaf
// entries are encodings of data extents (flags derived); non-leaf entries
// encode minimum bounding regions of child nodes.
struct BoundSpec {
  Timestamp tt_begin;
  Timestamp tt_end;    // may be UC
  Timestamp vt_begin;
  Timestamp vt_end;    // may be NOW
  bool rectangle = true;
  bool hidden = false;

  BoundSpec() = default;

  // Leaf encoding of a data extent: stair iff VTend = NOW.
  static BoundSpec FromExtent(const TimeExtent& extent);

  // Minimum bounding region of a set of child bounds, valid at current time
  // `ct` *and at every later time*, assuming children evolve only by their
  // own UC/NOW growth. Chooses a stair shape when every child lies under
  // the vt = tt diagonal for all time; otherwise a rectangle, setting the
  // Hidden flag when a growing child is currently concealed below a fixed
  // valid-time top (paper Fig. 4(c)).
  static BoundSpec Enclose(std::span<const BoundSpec> children, int64_t ct);

  // Concrete geometry at current time `ct`. Applies the Hidden-flag
  // adjustment of §3 ("IF Hidden AND VTend fixed AND VTend < ct THEN
  // VTend := NOW") before the UC/NOW substitution.
  Region Resolve(int64_t ct) const;

  // True when the region still grows as time passes.
  bool Grows() const { return tt_end.is_uc(); }

  // True when the region lies under the vt = tt diagonal at every current
  // time (so a stair shape can bound it).
  bool UnderDiagonalForAllTime() const;

  // True when Resolve(ct).Contains(child.Resolve(ct)); the per-time
  // containment the GR-tree invariant checker samples.
  bool ContainsAt(const BoundSpec& child, int64_t ct) const;

  std::string ToString() const;

  friend bool operator==(const BoundSpec& a, const BoundSpec& b) {
    return a.tt_begin == b.tt_begin && a.tt_end == b.tt_end &&
           a.vt_begin == b.vt_begin && a.vt_end == b.vt_end &&
           a.rectangle == b.rectangle && a.hidden == b.hidden;
  }

  // Fixed-size binary encoding: 4 raw timestamps + 1 flag byte.
  static constexpr size_t kBinarySize = 33;
  void EncodeTo(uint8_t* out) const;
  static BoundSpec DecodeFrom(const uint8_t* in);
};

}  // namespace grtdb

#endif  // GRTDB_TEMPORAL_REGION_H_
