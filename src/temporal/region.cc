#include "temporal/region.h"

#include <algorithm>
#include <cassert>

#include "common/random.h"

namespace grtdb {

Region Region::Rect(int64_t tt1, int64_t tt2, int64_t vt1, int64_t vt2) {
  if (tt1 > tt2 || vt1 > vt2) return Empty();
  return Region(Kind::kRect, tt1, tt2, vt1, vt2);
}

Region Region::Stair(int64_t tt1, int64_t tt2, int64_t vt1) {
  // Points require vt1 <= vt <= tt, so the populated transaction-time range
  // starts at max(tt1, vt1); normalize so equality tests are structural.
  int64_t eff_tt1 = std::max(tt1, vt1);
  if (eff_tt1 > tt2) return Empty();
  if (eff_tt1 == tt2) {
    // Degenerate stair: a vertical segment — canonicalize to a rectangle.
    return Region(Kind::kRect, tt2, tt2, vt1, tt2);
  }
  return Region(Kind::kStair, eff_tt1, tt2, vt1, /*vt2=*/tt2);
}

bool Region::ContainsPoint(int64_t tt, int64_t vt) const {
  switch (kind_) {
    case Kind::kEmpty:
      return false;
    case Kind::kRect:
      return tt1_ <= tt && tt <= tt2_ && vt1_ <= vt && vt <= vt2_;
    case Kind::kStair:
      return tt1_ <= tt && tt <= tt2_ && vt1_ <= vt && vt <= tt;
  }
  return false;
}

bool Region::Overlaps(const Region& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  const int64_t t_lo = std::max(tt1_, other.tt1_);
  const int64_t t_hi = std::min(tt2_, other.tt2_);
  if (t_lo > t_hi) return false;
  if (kind_ == Kind::kRect && other.kind_ == Kind::kRect) {
    return vt1_ <= other.vt2_ && other.vt1_ <= vt2_;
  }
  if (kind_ == Kind::kStair && other.kind_ == Kind::kStair) {
    return std::max(vt1_, other.vt1_) <= t_hi;
  }
  // One stair, one rectangle.
  const Region& stair = (kind_ == Kind::kStair) ? *this : other;
  const Region& rect = (kind_ == Kind::kStair) ? other : *this;
  return t_hi >= stair.vt1_ && t_hi >= rect.vt1_ && rect.vt2_ >= stair.vt1_;
}

bool Region::Contains(const Region& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  if (kind_ == Kind::kRect) {
    // A rectangle contains any region iff it contains the region's bounding
    // rectangle corners (stairs are normalized, so vt2 == tt2 is the top).
    return tt1_ <= other.tt1_ && other.tt2_ <= tt2_ && vt1_ <= other.vt1_ &&
           other.vt2_ <= vt2_;
  }
  // This is a stair.
  if (other.kind_ == Kind::kRect) {
    return tt1_ <= other.tt1_ && other.tt2_ <= tt2_ && vt1_ <= other.vt1_ &&
           other.vt2_ <= other.tt1_;  // the rectangle's top-left corner must
                                      // be under the diagonal
  }
  // Stair contains stair.
  return tt1_ <= other.tt1_ && other.tt2_ <= tt2_ && vt1_ <= other.vt1_;
}

bool Region::Equals(const Region& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::kEmpty) return true;
  return tt1_ == other.tt1_ && tt2_ == other.tt2_ && vt1_ == other.vt1_ &&
         vt2_ == other.vt2_;
}

double Region::Area() const {
  switch (kind_) {
    case Kind::kEmpty:
      return 0.0;
    case Kind::kRect:
      return static_cast<double>(tt2_ - tt1_) *
             static_cast<double>(vt2_ - vt1_);
    case Kind::kStair: {
      // h(t) = t - vt1 over t in [tt1, tt2] (tt1 >= vt1 after
      // normalization).
      const double w = static_cast<double>(tt2_ - tt1_);
      const double mid = 0.5 * (static_cast<double>(tt1_) +
                                static_cast<double>(tt2_));
      return w * (mid - static_cast<double>(vt1_));
    }
  }
  return 0.0;
}

double Region::Margin() const {
  if (IsEmpty()) return 0.0;
  return static_cast<double>(tt2_ - tt1_) + static_cast<double>(vt2_ - vt1_);
}

namespace {

// Integral over [lo, hi] of h(t) = max(0, min(t, cap) - floor_vt); the
// cross-section height of a stair clipped by a rectangle top `cap` and a
// bottom `floor_vt`. Exact: h is piecewise linear with breakpoints at
// t = floor_vt and t = cap.
double IntegrateStairSection(double lo, double hi, double floor_vt,
                             double cap) {
  if (hi <= lo) {
    // Closed-interval semantics: a zero-width slice has zero area.
    return 0.0;
  }
  double breaks[4] = {lo, std::clamp(floor_vt, lo, hi),
                      std::clamp(cap, lo, hi), hi};
  std::sort(breaks, breaks + 4);
  auto h = [&](double t) {
    return std::max(0.0, std::min(t, cap) - floor_vt);
  };
  double area = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double a = breaks[i];
    const double b = breaks[i + 1];
    if (b <= a) continue;
    area += 0.5 * (h(a) + h(b)) * (b - a);
  }
  return area;
}

}  // namespace

double Region::IntersectionArea(const Region& other) const {
  if (IsEmpty() || other.IsEmpty()) return 0.0;
  const double t_lo = static_cast<double>(std::max(tt1_, other.tt1_));
  const double t_hi = static_cast<double>(std::min(tt2_, other.tt2_));
  if (t_lo > t_hi) return 0.0;
  if (kind_ == Kind::kRect && other.kind_ == Kind::kRect) {
    const double v_lo = static_cast<double>(std::max(vt1_, other.vt1_));
    const double v_hi = static_cast<double>(std::min(vt2_, other.vt2_));
    if (v_lo > v_hi) return 0.0;
    return (t_hi - t_lo) * (v_hi - v_lo);
  }
  if (kind_ == Kind::kStair && other.kind_ == Kind::kStair) {
    const double floor_vt = static_cast<double>(std::max(vt1_, other.vt1_));
    const double a0 = std::max(t_lo, floor_vt);
    if (a0 > t_hi) return 0.0;
    return (t_hi - a0) * (0.5 * (t_hi + a0) - floor_vt);
  }
  const Region& stair = (kind_ == Kind::kStair) ? *this : other;
  const Region& rect = (kind_ == Kind::kStair) ? other : *this;
  const double floor_vt =
      static_cast<double>(std::max(stair.vt1_, rect.vt1_));
  return IntegrateStairSection(t_lo, t_hi, floor_vt,
                               static_cast<double>(rect.vt2_));
}

Region Region::Enclose(const Region& a, const Region& b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  auto under_diagonal = [](const Region& r) {
    if (r.kind_ == Kind::kStair) return true;
    return r.vt2_ <= r.tt1_;
  };
  const int64_t tt1 = std::min(a.tt1_, b.tt1_);
  const int64_t tt2 = std::max(a.tt2_, b.tt2_);
  const int64_t vt1 = std::min(a.vt1_, b.vt1_);
  if (under_diagonal(a) && under_diagonal(b)) {
    return Stair(tt1, tt2, vt1);
  }
  return Rect(tt1, tt2, vt1, std::max(a.vt2_, b.vt2_));
}

Region Region::BoundingRect() const {
  if (IsEmpty()) return Empty();
  return Rect(tt1_, tt2_, vt1_, vt2_);
}

double Region::DeadSpaceSampled(const Region& parent,
                                std::span<const Region> children,
                                uint64_t samples, uint64_t seed) {
  const double parent_area = parent.Area();
  if (parent_area <= 0.0 || samples == 0) return 0.0;
  Random rng(seed);
  const double w = static_cast<double>(parent.tt2_ - parent.tt1_);
  const double h = static_cast<double>(parent.vt2_ - parent.vt1_);
  uint64_t in_parent = 0;
  uint64_t dead = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    const double tt = static_cast<double>(parent.tt1_) + rng.NextDouble() * w;
    const double vt = static_cast<double>(parent.vt1_) + rng.NextDouble() * h;
    // Continuous point-in-region test (ContainsPoint is integral; inline the
    // continuous version here).
    auto contains = [&](const Region& r) {
      if (r.IsEmpty()) return false;
      if (tt < static_cast<double>(r.tt1_) ||
          tt > static_cast<double>(r.tt2_) ||
          vt < static_cast<double>(r.vt1_)) {
        return false;
      }
      if (r.kind_ == Kind::kRect) return vt <= static_cast<double>(r.vt2_);
      return vt <= tt;
    };
    if (!contains(parent)) continue;
    ++in_parent;
    bool covered = false;
    for (const Region& child : children) {
      if (contains(child)) {
        covered = true;
        break;
      }
    }
    if (!covered) ++dead;
  }
  if (in_parent == 0) return 0.0;
  return parent_area * static_cast<double>(dead) /
         static_cast<double>(in_parent);
}

std::string Region::ToString() const {
  switch (kind_) {
    case Kind::kEmpty:
      return "empty";
    case Kind::kRect:
      return "rect[" + std::to_string(tt1_) + "," + std::to_string(tt2_) +
             "]x[" + std::to_string(vt1_) + "," + std::to_string(vt2_) + "]";
    case Kind::kStair:
      return "stair(tt=[" + std::to_string(tt1_) + "," +
             std::to_string(tt2_) + "],vt1=" + std::to_string(vt1_) + ")";
  }
  return "?";
}

Region ResolveExtent(const TimeExtent& extent, int64_t ct) {
  const int64_t tte = extent.tt_end.is_uc() ? ct : extent.tt_end.chronon();
  const int64_t tt1 = extent.tt_begin.chronon();
  const int64_t vt1 = extent.vt_begin.chronon();
  if (extent.vt_end.is_now()) {
    return Region::Stair(tt1, tte, vt1);
  }
  return Region::Rect(tt1, tte, vt1, extent.vt_end.chronon());
}

BoundSpec BoundSpec::FromExtent(const TimeExtent& extent) {
  BoundSpec spec;
  spec.tt_begin = extent.tt_begin;
  spec.tt_end = extent.tt_end;
  spec.vt_begin = extent.vt_begin;
  spec.vt_end = extent.vt_end;
  spec.rectangle = !extent.vt_end.is_now();
  spec.hidden = false;
  return spec;
}

Region BoundSpec::Resolve(int64_t ct) const {
  const int64_t tte = tt_end.is_uc() ? ct : tt_end.chronon();
  const int64_t tt1 = tt_begin.chronon();
  const int64_t vt1 = vt_begin.chronon();
  if (!rectangle) {
    return Region::Stair(tt1, tte, vt1);
  }
  int64_t vte;
  if (vt_end.is_now()) {
    vte = tte;
  } else if (hidden) {
    // Paper §3: "IF flag Hidden is set AND VTend is fixed AND VTend is less
    // than the current time THEN set VTend to NOW". Taking the max keeps the
    // fixed top while the grower is still concealed and switches to the
    // growing top once it escapes.
    vte = std::max(vt_end.chronon(), tte);
  } else {
    vte = vt_end.chronon();
  }
  return Region::Rect(tt1, tte, vt1, vte);
}

bool BoundSpec::UnderDiagonalForAllTime() const {
  if (!rectangle) return true;
  if (vt_end.is_now() || hidden) return false;
  return vt_end.chronon() <= tt_begin.chronon();
}

BoundSpec BoundSpec::Enclose(std::span<const BoundSpec> children,
                             int64_t ct) {
  assert(!children.empty());
  int64_t tt1 = children[0].tt_begin.chronon();
  int64_t vt1 = children[0].vt_begin.chronon();
  bool grows_tt = false;
  int64_t tt_fixed_max = 0;
  bool has_tt_fixed = false;
  bool all_under_diagonal = true;
  bool any_vt_grow = false;
  int64_t vt_fixed_max = 0;
  bool has_vt_fixed = false;

  for (const BoundSpec& child : children) {
    tt1 = std::min(tt1, child.tt_begin.chronon());
    vt1 = std::min(vt1, child.vt_begin.chronon());
    if (child.tt_end.is_uc()) {
      grows_tt = true;
    } else {
      tt_fixed_max = has_tt_fixed
                         ? std::max(tt_fixed_max, child.tt_end.chronon())
                         : child.tt_end.chronon();
      has_tt_fixed = true;
    }
    if (!child.UnderDiagonalForAllTime()) all_under_diagonal = false;

    // Valid-time top behaviour of the child: it either grows with the
    // current time, or is capped by a fixed value, or (hidden, frozen) by
    // max(fixed, tt-end).
    auto add_fixed = [&](int64_t v) {
      vt_fixed_max = has_vt_fixed ? std::max(vt_fixed_max, v) : v;
      has_vt_fixed = true;
    };
    if (child.vt_end.is_now() || !child.rectangle) {
      // Stairs and NOW-rectangles top out at the resolved TTend.
      if (child.tt_end.is_uc()) {
        any_vt_grow = true;
      } else {
        add_fixed(child.tt_end.chronon());
      }
    } else if (child.hidden) {
      add_fixed(child.vt_end.chronon());
      if (child.tt_end.is_uc()) {
        any_vt_grow = true;
      } else {
        add_fixed(child.tt_end.chronon());
      }
    } else {
      add_fixed(child.vt_end.chronon());
    }
  }

  BoundSpec bound;
  bound.tt_begin = Timestamp::FromChronon(tt1);
  bound.vt_begin = Timestamp::FromChronon(vt1);
  bound.tt_end = grows_tt ? Timestamp::UC()
                          : Timestamp::FromChronon(tt_fixed_max);

  if (all_under_diagonal) {
    bound.rectangle = false;
    bound.hidden = false;
    bound.vt_end = Timestamp::NOW();
    return bound;
  }

  bound.rectangle = true;
  if (!any_vt_grow) {
    bound.vt_end = Timestamp::FromChronon(vt_fixed_max);
    bound.hidden = false;
  } else if (!has_vt_fixed || vt_fixed_max <= ct) {
    // Every fixed top is already at or below the growing edge: the bound
    // simply grows (a rectangle growing in both dimensions).
    bound.vt_end = Timestamp::NOW();
    bound.hidden = false;
  } else {
    // A growing child is currently concealed below a higher fixed top —
    // the Fig. 4(c) situation. Track it with the Hidden flag.
    bound.vt_end = Timestamp::FromChronon(vt_fixed_max);
    bound.hidden = true;
  }
  return bound;
}

bool BoundSpec::ContainsAt(const BoundSpec& child, int64_t ct) const {
  return Resolve(ct).Contains(child.Resolve(ct));
}

std::string BoundSpec::ToString() const {
  std::string out = "[" + tt_begin.ToChrononString() + ", " +
                    tt_end.ToChrononString() + ", " +
                    vt_begin.ToChrononString() + ", " +
                    vt_end.ToChrononString() + "]";
  out += rectangle ? " R" : " S";
  if (hidden) out += " H";
  return out;
}

namespace {

void PutLittleEndian64(uint8_t* out, int64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i));
  }
}

int64_t GetLittleEndian64(const uint8_t* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return static_cast<int64_t>(value);
}

}  // namespace

void BoundSpec::EncodeTo(uint8_t* out) const {
  PutLittleEndian64(out, tt_begin.raw());
  PutLittleEndian64(out + 8, tt_end.raw());
  PutLittleEndian64(out + 16, vt_begin.raw());
  PutLittleEndian64(out + 24, vt_end.raw());
  out[32] = static_cast<uint8_t>((rectangle ? 1 : 0) | (hidden ? 2 : 0));
}

BoundSpec BoundSpec::DecodeFrom(const uint8_t* in) {
  BoundSpec spec;
  spec.tt_begin = Timestamp::FromRaw(GetLittleEndian64(in));
  spec.tt_end = Timestamp::FromRaw(GetLittleEndian64(in + 8));
  spec.vt_begin = Timestamp::FromRaw(GetLittleEndian64(in + 16));
  spec.vt_end = Timestamp::FromRaw(GetLittleEndian64(in + 24));
  spec.rectangle = (in[32] & 1) != 0;
  spec.hidden = (in[32] & 2) != 0;
  return spec;
}

}  // namespace grtdb
