#ifndef GRTDB_WORKLOAD_WORKLOAD_H_
#define GRTDB_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "temporal/extent.h"

namespace grtdb {

// One primitive index maintenance operation produced by the workload.
struct IndexOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  TimeExtent extent;
  uint64_t payload = 0;
  int64_t ct = 0;  // current time when the operation executes
};

struct WorkloadOptions {
  uint64_t seed = 42;
  // Simulation starts at this current time (chronons = days).
  int64_t start_time = 10000;
  // Current time advances by one chronon every `ops_per_tick` operations.
  uint64_t ops_per_tick = 10;
  // Fraction of inserted tuples that are now-relative in valid time
  // (VTend = NOW; cases 3/5 of Fig. 2). The rest get ground VTend.
  double now_relative_fraction = 0.7;
  // Of the non-now-relative tuples, VTend = VTbegin + U(1, vt_span).
  int64_t vt_span = 365;
  // How far in the past VTbegin may lie relative to the insertion time
  // (VTbegin = ct - U(0, vt_lag); cases 5/6 arise when the lag > 0).
  int64_t vt_lag = 180;
  // Probability that an operation is a logical update of a current tuple
  // (delete + re-insert, §2) rather than a fresh insertion.
  double update_fraction = 0.2;
  // Probability that an operation is a logical deletion of a current tuple.
  double delete_fraction = 0.1;
};

// Generates a stream of index operations that evolves a now-relative
// bitemporal relation over advancing current time, obeying the insertion,
// deletion, and modification constraints of paper §2. Tracks the exact
// relation contents so tests can compare index answers against brute force.
class BitemporalWorkload {
 public:
  explicit BitemporalWorkload(const WorkloadOptions& options);

  // Produces the next operation batch (one logical user action = 1..2
  // primitive index ops: an update is a delete of the UC tuple followed by
  // inserts of its frozen version and the new current version).
  std::vector<IndexOp> NextAction();

  int64_t current_time() const { return now_; }

  // Every tuple version ever created that is still in the relation
  // (bitemporal relations never physically delete).
  const std::unordered_map<uint64_t, TimeExtent>& live() const {
    return live_;
  }

  // Brute-force evaluation of Overlaps against the live relation at `ct`.
  std::vector<uint64_t> BruteForceOverlaps(const TimeExtent& query,
                                           int64_t ct) const;

  // Query generators.
  TimeExtent GroundRectQuery(int64_t max_span);         // fixed rectangle
  TimeExtent CurrentStairQuery();                       // "as of now" stair
  TimeExtent TimeSliceQuery(int64_t tt, int64_t vt);    // bitemporal point

 private:
  TimeExtent MakeInsertExtent();

  WorkloadOptions options_;
  Random rng_;
  int64_t now_;
  uint64_t ops_since_tick_ = 0;
  uint64_t next_payload_ = 1;
  // payload -> extent for every stored tuple version.
  std::unordered_map<uint64_t, TimeExtent> live_;
  // Payloads of tuples whose TTend is still UC (modifiable/deletable).
  std::vector<uint64_t> current_;
};

}  // namespace grtdb

#endif  // GRTDB_WORKLOAD_WORKLOAD_H_
