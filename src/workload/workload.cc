#include "workload/workload.h"

#include <algorithm>

#include "temporal/predicates.h"

namespace grtdb {

BitemporalWorkload::BitemporalWorkload(const WorkloadOptions& options)
    : options_(options), rng_(options.seed), now_(options.start_time) {}

TimeExtent BitemporalWorkload::MakeInsertExtent() {
  TimeExtent extent;
  extent.tt_begin = Timestamp::FromChronon(now_);
  extent.tt_end = Timestamp::UC();
  const int64_t lag = rng_.UniformRange(0, options_.vt_lag);
  extent.vt_begin = Timestamp::FromChronon(now_ - lag);
  if (rng_.Bernoulli(options_.now_relative_fraction)) {
    extent.vt_end = Timestamp::NOW();
  } else if (rng_.Bernoulli(0.5)) {
    // Information about a closed past/future period.
    extent.vt_end = Timestamp::FromChronon(
        extent.vt_begin.chronon() + rng_.UniformRange(1, options_.vt_span));
  } else {
    // Pre-recorded future information (case 2 with vt1 > ct is legal as
    // long as VTend is ground).
    const int64_t future_start = now_ + rng_.UniformRange(0, options_.vt_span);
    extent.vt_begin = Timestamp::FromChronon(future_start);
    extent.vt_end = Timestamp::FromChronon(
        future_start + rng_.UniformRange(1, options_.vt_span));
  }
  return extent;
}

std::vector<IndexOp> BitemporalWorkload::NextAction() {
  if (++ops_since_tick_ >= options_.ops_per_tick) {
    ops_since_tick_ = 0;
    ++now_;
  }
  std::vector<IndexOp> ops;
  const double roll = rng_.NextDouble();
  const bool can_mutate = !current_.empty();

  if (can_mutate && roll < options_.delete_fraction) {
    // Logical deletion: TTend: UC -> now - 1 (§2). In the index this is a
    // physical delete of the UC version plus an insert of the frozen one.
    // A tuple inserted this very chronon cannot be frozen to ct-1 <
    // TTbegin; the action becomes a no-op then.
    const size_t pick = rng_.Uniform(current_.size());
    const uint64_t payload = current_[pick];
    TimeExtent old_extent = live_[payload];
    TimeExtent frozen = old_extent;
    if (frozen.LogicalDelete(now_).ok()) {
      current_[pick] = current_.back();
      current_.pop_back();
      ops.push_back(
          IndexOp{IndexOp::Kind::kDelete, old_extent, payload, now_});
      live_[payload] = frozen;
      ops.push_back(IndexOp{IndexOp::Kind::kInsert, frozen, payload, now_});
    }
    return ops;
  }

  if (can_mutate &&
      roll < options_.delete_fraction + options_.update_fraction) {
    // Modification = logical deletion + insertion of the new version (§2).
    const size_t pick = rng_.Uniform(current_.size());
    const uint64_t payload = current_[pick];
    TimeExtent old_extent = live_[payload];
    TimeExtent frozen = old_extent;
    if (frozen.LogicalDelete(now_).ok()) {
      current_[pick] = current_.back();
      current_.pop_back();
      ops.push_back(
          IndexOp{IndexOp::Kind::kDelete, old_extent, payload, now_});
      live_[payload] = frozen;
      ops.push_back(IndexOp{IndexOp::Kind::kInsert, frozen, payload, now_});
    }
    // Insert the successor version as a fresh tuple.
    TimeExtent next = MakeInsertExtent();
    const uint64_t next_payload = next_payload_++;
    live_[next_payload] = next;
    current_.push_back(next_payload);
    ops.push_back(IndexOp{IndexOp::Kind::kInsert, next, next_payload, now_});
    return ops;
  }

  TimeExtent extent = MakeInsertExtent();
  const uint64_t payload = next_payload_++;
  live_[payload] = extent;
  current_.push_back(payload);
  ops.push_back(IndexOp{IndexOp::Kind::kInsert, extent, payload, now_});
  return ops;
}

std::vector<uint64_t> BitemporalWorkload::BruteForceOverlaps(
    const TimeExtent& query, int64_t ct) const {
  std::vector<uint64_t> out;
  for (const auto& [payload, extent] : live_) {
    if (ExtentsOverlap(extent, query, ct)) out.push_back(payload);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TimeExtent BitemporalWorkload::GroundRectQuery(int64_t max_span) {
  const int64_t tt1 =
      rng_.UniformRange(options_.start_time, std::max(options_.start_time, now_));
  const int64_t vt1 = rng_.UniformRange(options_.start_time - options_.vt_lag,
                                        now_ + options_.vt_span);
  return TimeExtent::Ground(tt1, tt1 + rng_.UniformRange(0, max_span), vt1,
                            vt1 + rng_.UniformRange(0, max_span));
}

TimeExtent BitemporalWorkload::CurrentStairQuery() {
  // "What is current in the database and valid now": [ct, UC] x [ct, NOW].
  return TimeExtent(Timestamp::FromChronon(now_), Timestamp::UC(),
                    Timestamp::FromChronon(now_), Timestamp::NOW());
}

TimeExtent BitemporalWorkload::TimeSliceQuery(int64_t tt, int64_t vt) {
  return TimeExtent::Ground(tt, tt, vt, vt);
}

}  // namespace grtdb
