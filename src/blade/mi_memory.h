#ifndef GRTDB_BLADE_MI_MEMORY_H_
#define GRTDB_BLADE_MI_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace grtdb {

// DataBlade memory durations (paper §6.2): the server frees everything
// allocated with a duration when that duration ends — PER_FUNCTION at UDR
// return, PER_STATEMENT at end of statement, PER_TRANSACTION at transaction
// end, PER_SESSION when the session closes.
enum class MiDuration {
  kPerFunction = 0,
  kPerStatement = 1,
  kPerTransaction = 2,
  kPerSession = 3,
};
inline constexpr int kMiDurationCount = 4;

// Duration-scoped allocator standing in for mi_alloc/mi_dalloc/mi_free.
// DataBlade code must not use global/static variables or plain new/delete
// (§6.2); the GR-tree blade routes all allocation through this, and tests
// assert that nothing outlives its duration.
class MiMemory {
 public:
  MiMemory() = default;

  MiMemory(const MiMemory&) = delete;
  MiMemory& operator=(const MiMemory&) = delete;

  // mi_dalloc: zeroed block with an explicit duration.
  void* Alloc(MiDuration duration, size_t size);

  // mi_free: early release of one block.
  void Free(void* ptr);

  // The server calls this when a duration ends; everything allocated under
  // it (and not explicitly freed) is released.
  void EndDuration(MiDuration duration);

  // Live blocks under a duration (test/diagnostic hook).
  size_t LiveBlocks(MiDuration duration) const;
  size_t LiveBytes() const;

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size;
    MiDuration duration;
  };

  mutable std::mutex mu_;
  std::unordered_map<void*, Block> blocks_;
};

// Named memory (paper §5.4): server-wide blocks identified by name. The
// GR-tree blade stores the per-transaction current-time value under a name
// containing the session id, and frees it from a transaction-end callback.
class MiNamedMemory {
 public:
  MiNamedMemory() = default;

  MiNamedMemory(const MiNamedMemory&) = delete;
  MiNamedMemory& operator=(const MiNamedMemory&) = delete;

  // mi_named_alloc: fails with AlreadyExists if the name is taken.
  Status NamedAlloc(const std::string& name, size_t size, void** ptr);

  // mi_named_get: fails with NotFound if absent.
  Status NamedGet(const std::string& name, void** ptr);

  // mi_named_free.
  Status NamedFree(const std::string& name);

  size_t count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<uint8_t>> blocks_;
};

}  // namespace grtdb

#endif  // GRTDB_BLADE_MI_MEMORY_H_
