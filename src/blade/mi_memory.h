#ifndef GRTDB_BLADE_MI_MEMORY_H_
#define GRTDB_BLADE_MI_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace grtdb {

// DataBlade memory durations (paper §6.2): the server frees everything
// allocated with a duration when that duration ends — PER_FUNCTION at UDR
// return, PER_STATEMENT at end of statement, PER_TRANSACTION at transaction
// end, PER_SESSION when the session closes.
enum class MiDuration {
  kPerFunction = 0,
  kPerStatement = 1,
  kPerTransaction = 2,
  kPerSession = 3,
};
inline constexpr int kMiDurationCount = 4;

const char* MiDurationName(MiDuration duration);

// True when `inner` ends no later than `outer` — i.e. a pointer to memory
// of duration `inner` stored in a structure of duration `outer` can go
// stale while the structure is still reachable. Durations are strictly
// nested (function ⊂ statement ⊂ transaction ⊂ session).
inline bool MiDurationOutlives(MiDuration outer, MiDuration inner) {
  return static_cast<int>(outer) > static_cast<int>(inner);
}

// Memory misuse detected by the allocator's debug checks — the bug classes
// the paper could only chase by crashing the server (§4): memory touched or
// retained after its duration ended, freed twice, or overrun.
enum class MiViolationKind {
  kDoubleFree,         // Free() of an already-freed block
  kForeignFree,        // Free() of a pointer this allocator never returned
  kFreeAfterEnd,       // Free() of a block whose duration already ended
  kCrossDurationFree,  // Free(ptr, d) where the block was allocated under
                       // a different duration
  kHeaderCorruption,   // block header canary / magic destroyed (underrun)
  kTrailerCorruption,  // trailing canary destroyed (overrun)
  kDurationEscape,     // pointer stored into a structure that outlives it
};

const char* MiViolationKindName(MiViolationKind kind);

struct MiViolation {
  MiViolationKind kind;
  std::string message;
};

// Duration-scoped allocator standing in for mi_alloc/mi_dalloc/mi_free.
// DataBlade code must not use global/static variables or plain new/delete
// (§6.2); the GR-tree blade routes all allocation through this, and tests
// assert that nothing outlives its duration.
//
// Debug enforcement (always on; the costs are a canary-framed header per
// block and a small free quarantine):
//   - every block is framed by a magic+canary header and a trailing
//     canary, checked on Free and at EndDuration — an overrun is caught at
//     the free that would otherwise corrupt the arena;
//   - freed and ended-duration blocks are poisoned with 0xDD (and, under
//     ASan, manually poisoned so any touch is an immediate ASan report)
//     and parked in a quarantine, so a double free or a stale duration
//     pointer dereference is detected instead of silently recycled;
//   - misuse is recorded as an MiViolation (and reported through the
//     violation handler, if set) rather than trusted, the paper's
//     signature DataBlade failure mode.
class MiMemory {
 public:
  MiMemory() = default;
  ~MiMemory();

  MiMemory(const MiMemory&) = delete;
  MiMemory& operator=(const MiMemory&) = delete;

  // mi_dalloc: zeroed block with an explicit duration.
  void* Alloc(MiDuration duration, size_t size);

  // mi_free: early release of one block. Detects double free, foreign
  // pointers, free-after-duration-end, and canary corruption.
  void Free(void* ptr);

  // mi_free with the duration the caller believes the block has: also
  // flags a cross-duration free (freeing per-statement memory from a
  // transaction-end path, say) even when the block is otherwise valid.
  void Free(void* ptr, MiDuration expected);

  // Opens a nested scope for `duration`: the matching EndDuration releases
  // only blocks allocated after this call. Scopes stack, so a UDR invoked
  // from inside another UDR brackets its own PER_FUNCTION allocations
  // without freeing its caller's. Optional — EndDuration with no open
  // scope keeps the historical "free everything under the duration"
  // behavior.
  void BeginDuration(MiDuration duration);

  // The server calls this when a duration ends; everything allocated under
  // it since the matching BeginDuration (or ever, when no scope is open)
  // and not explicitly freed is poisoned and released.
  void EndDuration(MiDuration duration);

  // Open BeginDuration scopes for a duration (test/diagnostic hook).
  size_t DurationDepth(MiDuration duration) const;

  // Duration-escape registry (§4's stale-pointer bug): record that a
  // pointer into one of this allocator's blocks was stored in a structure
  // whose lifetime is `holder` (a descriptor, named memory, ...). If the
  // block's duration ends before `holder`, a kDurationEscape violation is
  // recorded. `context` names the store site for the report. Pointers not
  // owned by this allocator are ignored. Interior pointers are resolved to
  // their block.
  void NoteStoredPointer(MiDuration holder, const void* stored,
                         const std::string& context);

  // Live blocks under a duration (test/diagnostic hook). Quarantined
  // (freed/ended) blocks are not live.
  size_t LiveBlocks(MiDuration duration) const;
  size_t LiveBytes() const;

  // Recorded misuse. The handler, if set, additionally fires on every new
  // violation (outside the allocator lock); tests install one to fail the
  // moment a seeded bug is detected.
  std::vector<MiViolation> violations() const;
  size_t violation_count() const;
  void ClearViolations();
  using ViolationHandler = std::function<void(const MiViolation&)>;
  void set_violation_handler(ViolationHandler handler);

  // Blocks parked in the free quarantine (test/diagnostic hook).
  size_t QuarantinedBlocks() const;

  // Maximum number of blocks the quarantine parks before the oldest is
  // truly released.
  static constexpr size_t kQuarantineCapacity = 64;

 private:
  enum class BlockState : uint8_t { kLive = 1, kFreed = 2, kEnded = 3 };

  struct Block {
    std::unique_ptr<uint8_t[]> raw;  // header + user data + trailer
    size_t size = 0;                 // user size
    MiDuration duration = MiDuration::kPerFunction;
    BlockState state = BlockState::kLive;
    uint64_t seq = 0;  // allocation order, for nested duration scopes
  };

  // All require mu_ held; violations are collected into `out` and
  // published (handler fired) after the lock is released.
  void CheckCanariesLocked(void* ptr, const Block& block,
                           std::vector<MiViolation>* out);
  void RetireLocked(void* ptr, Block& block, BlockState state,
                    std::deque<void*>* release);
  void FreeLocked(void* ptr, const MiDuration* expected,
                  std::vector<MiViolation>* out, std::deque<void*>* release);

  void Publish(std::vector<MiViolation> violations);

  mutable std::mutex mu_;
  std::unordered_map<void*, Block> blocks_;
  std::deque<void*> quarantine_;  // freed/ended blocks, oldest first
  uint64_t next_seq_ = 0;
  // Per-duration stacks of BeginDuration marks (the next_seq_ value at
  // scope open); EndDuration releases blocks at or past the top mark.
  std::vector<uint64_t> duration_marks_[kMiDurationCount];

  mutable std::mutex vio_mu_;
  std::vector<MiViolation> violations_;
  ViolationHandler handler_;
};

// Named memory (paper §5.4): server-wide blocks identified by name. The
// GR-tree blade stores the per-transaction current-time value under a name
// containing the session id, and frees it from a transaction-end callback.
class MiNamedMemory {
 public:
  MiNamedMemory() = default;

  MiNamedMemory(const MiNamedMemory&) = delete;
  MiNamedMemory& operator=(const MiNamedMemory&) = delete;

  // mi_named_alloc: fails with AlreadyExists if the name is taken.
  Status NamedAlloc(const std::string& name, size_t size, void** ptr);

  // mi_named_get: fails with NotFound if absent.
  Status NamedGet(const std::string& name, void** ptr);

  // mi_named_free.
  Status NamedFree(const std::string& name);

  // Stores a *pointer value* into the named block (which must hold at
  // least sizeof(void*)). Named memory outlives every duration but the
  // session, so a duration-scoped pointer stored here is the paper's
  // signature escape bug — when a duration source is attached, the store
  // is checked and flagged through its escape registry.
  Status NamedStorePointer(const std::string& name, const void* pointee);

  // Attaches a duration allocator whose blocks NamedStorePointer audits.
  // With per-session allocators there is one source per live session (plus
  // the server arena); a stored pointer is checked against every source,
  // since named memory is server-wide and any session may read it back.
  void AddDurationSource(MiMemory* memory);
  void RemoveDurationSource(MiMemory* memory);
  // Single-source convenience kept for embedded/test callers.
  void set_duration_source(MiMemory* memory) {
    AddDurationSource(memory);
  }

  size_t count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<uint8_t>> blocks_;
  std::vector<MiMemory*> duration_sources_;
};

}  // namespace grtdb

#endif  // GRTDB_BLADE_MI_MEMORY_H_
