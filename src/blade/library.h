#ifndef GRTDB_BLADE_LIBRARY_H_
#define GRTDB_BLADE_LIBRARY_H_

#include <any>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"

namespace grtdb {

// A DataBlade shared library: a symbol table mapping exported names to
// callables (we stand in for dlopen/dlsym with std::any — the server casts
// a looked-up symbol to the signature it expects, just as Informix casts
// the void* from the .bld file). CREATE FUNCTION's
//   EXTERNAL NAME "usr/functions/grtree.bld(grt_open)"
// resolves against the library registered under that path.
class BladeLibrary {
 public:
  explicit BladeLibrary(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  void Export(const std::string& symbol, std::any callable) {
    symbols_[symbol] = std::move(callable);
  }

  const std::any* Lookup(const std::string& symbol) const {
    auto it = symbols_.find(symbol);
    return it == symbols_.end() ? nullptr : &it->second;
  }

 private:
  std::string path_;
  std::map<std::string, std::any> symbols_;
};

// Registry of loaded blade libraries, keyed by path.
class BladeLibraryRegistry {
 public:
  BladeLibraryRegistry() = default;

  BladeLibraryRegistry(const BladeLibraryRegistry&) = delete;
  BladeLibraryRegistry& operator=(const BladeLibraryRegistry&) = delete;

  BladeLibrary* Load(const std::string& path) {
    auto [it, inserted] =
        libraries_.try_emplace(path, nullptr);
    if (inserted) it->second = std::make_unique<BladeLibrary>(path);
    return it->second.get();
  }

  // Resolves "path(symbol)" external names.
  Status Resolve(const std::string& external_name, std::any* out) const;

 private:
  std::map<std::string, std::unique_ptr<BladeLibrary>> libraries_;
};

}  // namespace grtdb

#endif  // GRTDB_BLADE_LIBRARY_H_
