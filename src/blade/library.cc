#include "blade/library.h"

#include "common/strings.h"

namespace grtdb {

Status BladeLibraryRegistry::Resolve(const std::string& external_name,
                                     std::any* out) const {
  const size_t open = external_name.find('(');
  const size_t close = external_name.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::InvalidArgument("EXTERNAL NAME must be 'path(symbol)': " +
                                   external_name);
  }
  std::string path(StripWhitespace(external_name.substr(0, open)));
  std::string symbol(
      StripWhitespace(external_name.substr(open + 1, close - open - 1)));
  auto it = libraries_.find(path);
  if (it == libraries_.end()) {
    return Status::NotFound("blade library '" + path + "' is not loaded");
  }
  const std::any* callable = it->second->Lookup(symbol);
  if (callable == nullptr) {
    return Status::NotFound("symbol '" + symbol + "' not found in '" + path +
                            "'");
  }
  *out = *callable;
  return Status::OK();
}

}  // namespace grtdb
