#include "blade/trace.h"

#include <cstdio>

namespace grtdb {

void TraceFacility::SetClass(const std::string& trace_class, int level) {
  std::lock_guard<std::mutex> lock(mu_);
  if (level <= 0) {
    class_levels_.erase(trace_class);
  } else {
    class_levels_[trace_class] = level;
  }
}

bool TraceFacility::Enabled(const std::string& trace_class, int level) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = class_levels_.find(trace_class);
  return it != class_levels_.end() && it->second >= level;
}

void TraceFacility::Tprintf(const std::string& trace_class, int level,
                            const char* format, ...) {
  if (!Enabled(trace_class, level)) return;
  char buffer[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(trace_class + " " + std::to_string(level) + ": " + buffer);
}

std::vector<std::string> TraceFacility::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void TraceFacility::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.clear();
}

}  // namespace grtdb
