#include "blade/trace.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

namespace grtdb {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

TraceFacility::TraceFacility(size_t capacity)
    : ring_capacity_(capacity == 0 ? 1 : capacity) {}

void TraceFacility::SetClass(std::string_view trace_class, int level) {
  if (level < 0) level = 0;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = slot_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    ClassSlot& slot = slots_[i];
    if (std::string_view(slot.name, slot.len) != trace_class) continue;
    const int old = slot.level.exchange(level, std::memory_order_relaxed);
    if (old == 0 && level > 0) {
      enabled_count_.fetch_add(1, std::memory_order_relaxed);
    } else if (old > 0 && level == 0) {
      enabled_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  if (level == 0) return;  // disabling an unknown class is a no-op
  if (count >= kMaxClasses || trace_class.size() > kMaxClassName) return;
  ClassSlot& slot = slots_[count];
  trace_class.copy(slot.name, trace_class.size());
  slot.len = trace_class.size();
  slot.level.store(level, std::memory_order_relaxed);
  // Publish the slot: readers acquire slot_count_ and then may read the
  // name bytes and level written above.
  slot_count_.store(count + 1, std::memory_order_release);
  enabled_count_.fetch_add(1, std::memory_order_relaxed);
}

bool TraceFacility::EnabledSlow(std::string_view trace_class,
                                int level) const {
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    const ClassSlot& slot = slots_[i];
    if (std::string_view(slot.name, slot.len) != trace_class) continue;
    return slot.level.load(std::memory_order_relaxed) >= level;
  }
  return false;
}

void TraceFacility::Tprintf(std::string_view trace_class, int level,
                            const char* format, ...) {
  if (!Enabled(trace_class, level)) return;
  char buffer[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  Append(trace_class, level, buffer);
}

void TraceFacility::Append(std::string_view trace_class, int level,
                           const char* message) {
  TraceRecord record;
  record.ts_us = NowMicros();
  record.thread = ThisThreadId();
  record.trace_class.assign(trace_class.data(), trace_class.size());
  record.level = level;
  record.message = message;

  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  if (ring_.size() < ring_capacity_) {
    // Still growing toward capacity; records are in order, head stays 0.
    ring_.push_back(std::move(record));
    ring_size_ = ring_.size();
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[ring_head_] = std::move(record);
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> TraceFacility::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_size_);
  for (size_t i = 0; i < ring_size_; ++i) {
    const TraceRecord& r = ring_[(ring_head_ + i) % ring_.size()];
    out.push_back(r.trace_class + " " + std::to_string(r.level) + ": " +
                  r.message);
  }
  return out;
}

std::vector<TraceRecord> TraceFacility::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_size_);
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceFacility::SetCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> kept;
  const size_t keep = ring_size_ < capacity ? ring_size_ : capacity;
  kept.reserve(keep);
  for (size_t i = ring_size_ - keep; i < ring_size_; ++i) {
    kept.push_back(std::move(ring_[(ring_head_ + i) % ring_.size()]));
  }
  ring_ = std::move(kept);
  ring_capacity_ = capacity;
  ring_head_ = 0;
  ring_size_ = ring_.size();
}

size_t TraceFacility::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void TraceFacility::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_head_ = 0;
  ring_size_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace grtdb
