#ifndef GRTDB_BLADE_TRACE_H_
#define GRTDB_BLADE_TRACE_H_

#include <cstdarg>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace grtdb {

// The DataBlade trace facility (paper §6.4): messages carry a trace class
// and level; a message is emitted only when its class is enabled at >= its
// level. Messages go to an in-memory trace log (the "trace file"), which
// tests and the debugging workflow read back.
class TraceFacility {
 public:
  TraceFacility() = default;

  TraceFacility(const TraceFacility&) = delete;
  TraceFacility& operator=(const TraceFacility&) = delete;

  // "tset": enables `trace_class` at `level` (0 disables).
  void SetClass(const std::string& trace_class, int level);

  bool Enabled(const std::string& trace_class, int level) const;

  // "gl_tprintf"/tprintf: records the message if enabled.
  void Tprintf(const std::string& trace_class, int level, const char* format,
               ...) __attribute__((format(printf, 4, 5)));

  std::vector<std::string> log() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, int> class_levels_;
  std::vector<std::string> log_;
};

}  // namespace grtdb

#endif  // GRTDB_BLADE_TRACE_H_
