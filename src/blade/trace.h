#ifndef GRTDB_BLADE_TRACE_H_
#define GRTDB_BLADE_TRACE_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace grtdb {

// One emitted trace message with its capture context.
struct TraceRecord {
  uint64_t seq = 0;      // monotonically increasing emission number
  int64_t ts_us = 0;     // wall-clock microseconds since the Unix epoch
  uint64_t thread = 0;   // hashed id of the emitting thread
  std::string trace_class;
  int level = 0;
  std::string message;
};

// The DataBlade trace facility (paper §6.4): messages carry a trace class
// and level; a message is emitted only when its class is enabled at >= its
// level. Messages go to a bounded in-memory ring (the "trace file"), which
// tests and the debugging workflow read back; once the ring is full the
// oldest record is overwritten and dropped() counts the loss.
//
// The enabled check is lock-free: class slots live in a fixed array whose
// names are immutable once published (slot_count_ is the release/acquire
// publication point) and whose levels are atomics. When no class is
// enabled at all — the production steady state — Enabled() is a single
// relaxed atomic load, and a disabled-class Tprintf does no locking, no
// formatting, and no allocation.
class TraceFacility {
 public:
  explicit TraceFacility(size_t capacity = kDefaultCapacity);

  TraceFacility(const TraceFacility&) = delete;
  TraceFacility& operator=(const TraceFacility&) = delete;

  // "tset": enables `trace_class` at `level` (0 disables).
  void SetClass(std::string_view trace_class, int level);

  bool Enabled(std::string_view trace_class, int level) const {
    if (enabled_count_.load(std::memory_order_relaxed) == 0) return false;
    return EnabledSlow(trace_class, level);
  }

  // "gl_tprintf"/tprintf: records the message if enabled.
  void Tprintf(std::string_view trace_class, int level, const char* format,
               ...) __attribute__((format(printf, 4, 5)));

  // Legacy view: the ring rendered oldest-first as
  // "<class> <level>: <message>" strings.
  std::vector<std::string> log() const;

  // The ring oldest-first with timestamps and thread ids.
  std::vector<TraceRecord> records() const;

  // Records overwritten because the ring was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Resizes the ring, keeping the newest records that fit. A capacity of 0
  // is clamped to 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  // Empties the ring and resets the dropped counter.
  void Clear();

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  // Enabled trace classes are few (the paper's tset workflow names them one
  // at a time), so a fixed array beats a map: registration is append-only,
  // names never move, and readers need no lock. Registrations beyond
  // kMaxClasses are ignored.
  static constexpr size_t kMaxClasses = 64;
  static constexpr size_t kMaxClassName = 23;

  struct ClassSlot {
    char name[kMaxClassName + 1] = {};
    size_t len = 0;
    std::atomic<int> level{0};
  };

  bool EnabledSlow(std::string_view trace_class, int level) const;
  void Append(std::string_view trace_class, int level, const char* message);

  ClassSlot slots_[kMaxClasses];
  std::atomic<size_t> slot_count_{0};
  // Number of slots with level > 0; zero means tracing is globally off.
  std::atomic<int> enabled_count_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex mu_;      // guards the ring and slot registration
  std::vector<TraceRecord> ring_;
  size_t ring_capacity_;
  size_t ring_head_ = 0;       // index of the oldest record
  size_t ring_size_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace grtdb

#endif  // GRTDB_BLADE_TRACE_H_
