#include "blade/mi_memory.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

// Manual ASan poisoning: a freed or ended-duration block stays allocated
// (quarantined) but any load/store through a stale pointer becomes an
// immediate use-after-poison report instead of silent corruption.
#if defined(__SANITIZE_ADDRESS__)
#define GRTDB_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRTDB_HAS_ASAN 1
#endif
#endif

#ifdef GRTDB_HAS_ASAN
#include <sanitizer/asan_interface.h>
#define GRTDB_ASAN_POISON(p, n) __asan_poison_memory_region((p), (n))
#define GRTDB_ASAN_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define GRTDB_ASAN_POISON(p, n) ((void)0)
#define GRTDB_ASAN_UNPOISON(p, n) ((void)0)
#endif

namespace grtdb {

namespace {

constexpr uint32_t kMagic = 0x4D69424Bu;  // "MiBK"
constexpr uint64_t kCanary = 0xCACACACACACACACAull;
constexpr uint8_t kPoisonByte = 0xDD;
constexpr size_t kTrailerSize = sizeof(uint64_t);

// Framed directly before the user bytes; 32 bytes keeps the user pointer
// on the default operator-new alignment.
struct BlockHeader {
  uint32_t magic;
  uint8_t duration;
  uint8_t state;
  uint16_t pad;
  uint64_t size;
  uint64_t canary_a;
  uint64_t canary_b;
};
static_assert(sizeof(BlockHeader) == 32, "header must preserve alignment");

BlockHeader* HeaderOf(void* user) {
  return reinterpret_cast<BlockHeader*>(static_cast<uint8_t*>(user) -
                                        sizeof(BlockHeader));
}

uint8_t* TrailerOf(void* user, size_t size) {
  return static_cast<uint8_t*>(user) + size;
}

std::string PtrString(const void* ptr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", ptr);
  return buf;
}

}  // namespace

const char* MiDurationName(MiDuration duration) {
  switch (duration) {
    case MiDuration::kPerFunction: return "PER_FUNCTION";
    case MiDuration::kPerStatement: return "PER_STATEMENT";
    case MiDuration::kPerTransaction: return "PER_TRANSACTION";
    case MiDuration::kPerSession: return "PER_SESSION";
  }
  return "?";
}

const char* MiViolationKindName(MiViolationKind kind) {
  switch (kind) {
    case MiViolationKind::kDoubleFree: return "double-free";
    case MiViolationKind::kForeignFree: return "foreign-free";
    case MiViolationKind::kFreeAfterEnd: return "free-after-duration-end";
    case MiViolationKind::kCrossDurationFree: return "cross-duration-free";
    case MiViolationKind::kHeaderCorruption: return "header-corruption";
    case MiViolationKind::kTrailerCorruption: return "trailer-corruption";
    case MiViolationKind::kDurationEscape: return "duration-escape";
  }
  return "?";
}

MiMemory::~MiMemory() {
  // Unpoison everything before the unique_ptrs hand the memory back, so
  // ASan's own allocator bookkeeping never touches poisoned bytes.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [ptr, block] : blocks_) {
    GRTDB_ASAN_UNPOISON(ptr, block.size);
  }
}

void* MiMemory::Alloc(MiDuration duration, size_t size) {
  if (size == 0) size = 1;
  auto raw = std::make_unique<uint8_t[]>(sizeof(BlockHeader) + size +
                                         kTrailerSize);
  uint8_t* user = raw.get() + sizeof(BlockHeader);
  std::memset(user, 0, size);

  auto* header = reinterpret_cast<BlockHeader*>(raw.get());
  header->magic = kMagic;
  header->duration = static_cast<uint8_t>(duration);
  header->state = static_cast<uint8_t>(BlockState::kLive);
  header->pad = 0;
  header->size = size;
  header->canary_a = kCanary;
  header->canary_b = kCanary;
  std::memcpy(TrailerOf(user, size), &kCanary, kTrailerSize);

  std::lock_guard<std::mutex> lock(mu_);
  blocks_[user] =
      Block{std::move(raw), size, duration, BlockState::kLive, next_seq_++};
  return user;
}

void MiMemory::CheckCanariesLocked(void* ptr, const Block& block,
                                   std::vector<MiViolation>* out) {
  const BlockHeader* header = HeaderOf(ptr);
  if (header->magic != kMagic || header->canary_a != kCanary ||
      header->canary_b != kCanary || header->size != block.size) {
    out->push_back(
        {MiViolationKind::kHeaderCorruption,
         "block " + PtrString(ptr) + " (" + MiDurationName(block.duration) +
             ", " + std::to_string(block.size) +
             " bytes): header canary destroyed (buffer underrun?)"});
  }
  uint64_t trailer;
  std::memcpy(&trailer, TrailerOf(ptr, block.size), kTrailerSize);
  if (trailer != kCanary) {
    out->push_back(
        {MiViolationKind::kTrailerCorruption,
         "block " + PtrString(ptr) + " (" + MiDurationName(block.duration) +
             ", " + std::to_string(block.size) +
             " bytes): trailing canary destroyed (buffer overrun)"});
  }
}

void MiMemory::RetireLocked(void* ptr, Block& block, BlockState state,
                            std::deque<void*>* release) {
  block.state = state;
  HeaderOf(ptr)->state = static_cast<uint8_t>(state);
  std::memset(ptr, kPoisonByte, block.size);
  GRTDB_ASAN_POISON(ptr, block.size);
  quarantine_.push_back(ptr);
  while (quarantine_.size() > kQuarantineCapacity) {
    void* oldest = quarantine_.front();
    quarantine_.pop_front();
    release->push_back(oldest);
  }
}

void MiMemory::FreeLocked(void* ptr, const MiDuration* expected,
                          std::vector<MiViolation>* out,
                          std::deque<void*>* release) {
  auto it = blocks_.find(ptr);
  if (it == blocks_.end()) {
    out->push_back({MiViolationKind::kForeignFree,
                    "mi_free(" + PtrString(ptr) +
                        "): pointer was never returned by this allocator"});
    return;
  }
  Block& block = it->second;
  if (block.state == BlockState::kFreed) {
    out->push_back({MiViolationKind::kDoubleFree,
                    "mi_free(" + PtrString(ptr) + "): block (" +
                        MiDurationName(block.duration) +
                        ") was already freed"});
    return;
  }
  if (block.state == BlockState::kEnded) {
    out->push_back({MiViolationKind::kFreeAfterEnd,
                    "mi_free(" + PtrString(ptr) + "): block's duration " +
                        MiDurationName(block.duration) + " already ended"});
    return;
  }
  CheckCanariesLocked(ptr, block, out);
  if (expected != nullptr && *expected != block.duration) {
    out->push_back({MiViolationKind::kCrossDurationFree,
                    "mi_free(" + PtrString(ptr) + "): block was allocated " +
                        MiDurationName(block.duration) +
                        " but freed as " + MiDurationName(*expected)});
  }
  RetireLocked(ptr, block, BlockState::kFreed, release);
}

void MiMemory::Publish(std::vector<MiViolation> violations) {
  if (violations.empty()) return;
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(vio_mu_);
    for (MiViolation& violation : violations) {
      violations_.push_back(violation);
    }
    handler = handler_;
  }
  for (const MiViolation& violation : violations) {
    if (handler) {
      handler(violation);
    } else {
      std::fprintf(stderr, "MiMemory %s: %s\n",
                   MiViolationKindName(violation.kind),
                   violation.message.c_str());
    }
  }
}

void MiMemory::Free(void* ptr) {
  if (ptr == nullptr) return;
  std::vector<MiViolation> found;
  std::deque<void*> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FreeLocked(ptr, nullptr, &found, &release);
    for (void* victim : release) {
      GRTDB_ASAN_UNPOISON(victim, blocks_[victim].size);
      blocks_.erase(victim);
    }
  }
  Publish(std::move(found));
}

void MiMemory::Free(void* ptr, MiDuration expected) {
  if (ptr == nullptr) return;
  std::vector<MiViolation> found;
  std::deque<void*> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FreeLocked(ptr, &expected, &found, &release);
    for (void* victim : release) {
      GRTDB_ASAN_UNPOISON(victim, blocks_[victim].size);
      blocks_.erase(victim);
    }
  }
  Publish(std::move(found));
}

void MiMemory::BeginDuration(MiDuration duration) {
  std::lock_guard<std::mutex> lock(mu_);
  duration_marks_[static_cast<int>(duration)].push_back(next_seq_);
}

size_t MiMemory::DurationDepth(MiDuration duration) const {
  std::lock_guard<std::mutex> lock(mu_);
  return duration_marks_[static_cast<int>(duration)].size();
}

void MiMemory::EndDuration(MiDuration duration) {
  std::vector<MiViolation> found;
  std::deque<void*> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // With no open scope the mark is 0: every live block of the duration
    // goes, the pre-BeginDuration behavior.
    std::vector<uint64_t>& marks = duration_marks_[static_cast<int>(duration)];
    uint64_t mark = 0;
    if (!marks.empty()) {
      mark = marks.back();
      marks.pop_back();
    }
    for (auto& [ptr, block] : blocks_) {
      if (block.state != BlockState::kLive || block.duration != duration ||
          block.seq < mark) {
        continue;
      }
      CheckCanariesLocked(ptr, block, &found);
      RetireLocked(ptr, block, BlockState::kEnded, &release);
    }
    for (void* victim : release) {
      GRTDB_ASAN_UNPOISON(victim, blocks_[victim].size);
      blocks_.erase(victim);
    }
  }
  Publish(std::move(found));
}

void MiMemory::NoteStoredPointer(MiDuration holder, const void* stored,
                                 const std::string& context) {
  if (stored == nullptr) return;
  std::vector<MiViolation> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [ptr, block] : blocks_) {
      const auto* base = static_cast<const uint8_t*>(ptr);
      const auto* p = static_cast<const uint8_t*>(stored);
      if (p < base || p >= base + block.size) continue;
      if (block.state == BlockState::kLive &&
          MiDurationOutlives(holder, block.duration)) {
        found.push_back(
            {MiViolationKind::kDurationEscape,
             "pointer " + PtrString(stored) + " into a " +
                 MiDurationName(block.duration) + " block stored in " +
                 context + " (lifetime " + MiDurationName(holder) +
                 "): it will dangle when the shorter duration ends"});
      }
      break;
    }
  }
  Publish(std::move(found));
}

size_t MiMemory::LiveBlocks(MiDuration duration) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [ptr, block] : blocks_) {
    if (block.state == BlockState::kLive && block.duration == duration) {
      ++count;
    }
  }
  return count;
}

size_t MiMemory::LiveBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [ptr, block] : blocks_) {
    if (block.state == BlockState::kLive) total += block.size;
  }
  return total;
}

std::vector<MiViolation> MiMemory::violations() const {
  std::lock_guard<std::mutex> lock(vio_mu_);
  return violations_;
}

size_t MiMemory::violation_count() const {
  std::lock_guard<std::mutex> lock(vio_mu_);
  return violations_.size();
}

void MiMemory::ClearViolations() {
  std::lock_guard<std::mutex> lock(vio_mu_);
  violations_.clear();
}

void MiMemory::set_violation_handler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(vio_mu_);
  handler_ = std::move(handler);
}

size_t MiMemory::QuarantinedBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_.size();
}

Status MiNamedMemory::NamedAlloc(const std::string& name, size_t size,
                                 void** ptr) {
  // Clamp like MiMemory::Alloc: data() of an empty vector is not a valid
  // pointer to hand a caller who will write through it.
  if (size == 0) size = 1;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = blocks_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("named memory '" + name + "'");
  }
  it->second.assign(size, 0);
  *ptr = it->second.data();
  return Status::OK();
}

Status MiNamedMemory::NamedGet(const std::string& name, void** ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(name);
  if (it == blocks_.end()) {
    return Status::NotFound("named memory '" + name + "'");
  }
  *ptr = it->second.data();
  return Status::OK();
}

Status MiNamedMemory::NamedFree(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocks_.erase(name) == 0) {
    return Status::NotFound("named memory '" + name + "'");
  }
  return Status::OK();
}

Status MiNamedMemory::NamedStorePointer(const std::string& name,
                                        const void* pointee) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(name);
    if (it == blocks_.end()) {
      return Status::NotFound("named memory '" + name + "'");
    }
    if (it->second.size() < sizeof(void*)) {
      return Status::InvalidArgument("named memory '" + name +
                                     "' is smaller than a pointer");
    }
    std::memcpy(it->second.data(), &pointee, sizeof(void*));
  }
  // Named memory lives until it is explicitly freed — at best to session
  // end — so audit the store against the longest duration of every
  // attached allocator: the pointee may have come from any session.
  std::vector<MiMemory*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources = duration_sources_;
  }
  for (MiMemory* source : sources) {
    source->NoteStoredPointer(MiDuration::kPerSession, pointee,
                              "named memory '" + name + "'");
  }
  return Status::OK();
}

void MiNamedMemory::AddDurationSource(MiMemory* memory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (MiMemory* source : duration_sources_) {
    if (source == memory) return;
  }
  duration_sources_.push_back(memory);
}

void MiNamedMemory::RemoveDurationSource(MiMemory* memory) {
  std::lock_guard<std::mutex> lock(mu_);
  duration_sources_.erase(
      std::remove(duration_sources_.begin(), duration_sources_.end(), memory),
      duration_sources_.end());
}

size_t MiNamedMemory::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace grtdb
