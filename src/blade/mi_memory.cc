#include "blade/mi_memory.h"

namespace grtdb {

void* MiMemory::Alloc(MiDuration duration, size_t size) {
  if (size == 0) size = 1;
  auto data = std::make_unique<uint8_t[]>(size);
  std::memset(data.get(), 0, size);
  void* ptr = data.get();
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[ptr] = Block{std::move(data), size, duration};
  return ptr;
}

void MiMemory::Free(void* ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.erase(ptr);
}

void MiMemory::EndDuration(MiDuration duration) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second.duration == duration) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t MiMemory::LiveBlocks(MiDuration duration) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [ptr, block] : blocks_) {
    if (block.duration == duration) ++count;
  }
  return count;
}

size_t MiMemory::LiveBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [ptr, block] : blocks_) total += block.size;
  return total;
}

Status MiNamedMemory::NamedAlloc(const std::string& name, size_t size,
                                 void** ptr) {
  // Clamp like MiMemory::Alloc: data() of an empty vector is not a valid
  // pointer to hand a caller who will write through it.
  if (size == 0) size = 1;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = blocks_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("named memory '" + name + "'");
  }
  it->second.assign(size, 0);
  *ptr = it->second.data();
  return Status::OK();
}

Status MiNamedMemory::NamedGet(const std::string& name, void** ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(name);
  if (it == blocks_.end()) {
    return Status::NotFound("named memory '" + name + "'");
  }
  *ptr = it->second.data();
  return Status::OK();
}

Status MiNamedMemory::NamedFree(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocks_.erase(name) == 0) {
    return Status::NotFound("named memory '" + name + "'");
  }
  return Status::OK();
}

size_t MiNamedMemory::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace grtdb
