#include "blades/gist_blade.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "blades/locking_store.h"
#include "common/strings.h"
#include "storage/layout.h"

namespace grtdb {

namespace {

constexpr char kGistLibrary[] = "usr/functions/gist.bld";

struct GsScanState {
  GistKey query;
  int strategy = 0;
  std::vector<GistTree::Entry> results;
  size_t next = 0;
};

struct GsTreeState {
  std::unique_ptr<NodeStore> base_store;
  std::unique_ptr<LockingNodeStore> locking_store;
  NodeStore* store = nullptr;
  std::unique_ptr<GistTree> tree;
  GistExtension ext;
  GistCompressFn compress;
  const OpClassDef* opclass = nullptr;
};

GsTreeState* StateOf(MiAmTableDesc* desc) {
  return static_cast<GsTreeState*>(desc->user_data);
}

// Resolves the five extension primitives from the operator class's SUPPORT
// list — the dynamic dispatch §7 envisions ("specially designed operator
// classes").
Status ResolveExtension(MiCallContext& ctx, const IndexDef* index,
                        GsTreeState* state) {
  const OpClassDef* opclass =
      ctx.server->catalog().FindOpClass(index->opclasses[0]);
  if (opclass == nullptr || opclass->supports.size() < 5) {
    return Status::InvalidArgument(
        "gist_am operator classes declare five support functions: "
        "consistent, union, penalty, picksplit, compress");
  }
  state->opclass = opclass;
  auto symbol_of = [&](size_t position) -> const std::any* {
    const UdrDef* udr = ctx.server->udrs().FindAny(opclass->supports[position]);
    return udr == nullptr ? nullptr : &udr->symbol;
  };
  const std::any* consistent = symbol_of(0);
  const std::any* unite = symbol_of(1);
  const std::any* penalty = symbol_of(2);
  const std::any* pick_split = symbol_of(3);
  const std::any* compress = symbol_of(4);
  auto cast_error = [&](size_t position, const char* kind) {
    return Status::InvalidArgument("support function '" +
                                   opclass->supports[position] +
                                   "' is not a Gist" + kind + "Fn");
  };
  if (consistent == nullptr ||
      std::any_cast<GistConsistentFn>(consistent) == nullptr) {
    return cast_error(0, "Consistent");
  }
  if (unite == nullptr || std::any_cast<GistUnionFn>(unite) == nullptr) {
    return cast_error(1, "Union");
  }
  if (penalty == nullptr ||
      std::any_cast<GistPenaltyFn>(penalty) == nullptr) {
    return cast_error(2, "Penalty");
  }
  if (pick_split == nullptr ||
      std::any_cast<GistPickSplitFn>(pick_split) == nullptr) {
    return cast_error(3, "PickSplit");
  }
  if (compress == nullptr ||
      std::any_cast<GistCompressFn>(compress) == nullptr) {
    return cast_error(4, "Compress");
  }
  state->ext.consistent = *std::any_cast<GistConsistentFn>(consistent);
  state->ext.unite = *std::any_cast<GistUnionFn>(unite);
  state->ext.penalty = *std::any_cast<GistPenaltyFn>(penalty);
  state->ext.pick_split = *std::any_cast<GistPickSplitFn>(pick_split);
  state->compress = *std::any_cast<GistCompressFn>(compress);
  return Status::OK();
}

// Strategy number = 1-based position of the qualification's function in
// the operator class's STRATEGIES list.
Status StrategyOf(const OpClassDef* opclass, const MiAmQualDesc& qual,
                  int* strategy, const QualTerm** term) {
  if (qual.op == MiAmQualDesc::Op::kAnd) {
    // Scan with the first term; the executor re-checks residuals.
    if (qual.children.empty()) {
      return Status::InvalidArgument("empty qualification");
    }
    return StrategyOf(opclass, qual.children[0], strategy, term);
  }
  if (qual.op != MiAmQualDesc::Op::kTerm) {
    return Status::NotSupported(
        "gist_am scans do not accept disjunctive qualifications");
  }
  for (size_t i = 0; i < opclass->strategies.size(); ++i) {
    if (EqualsIgnoreCase(opclass->strategies[i], qual.term.func->name)) {
      *strategy = static_cast<int>(i) + 1;
      *term = &qual.term;
      return Status::OK();
    }
  }
  return Status::NotSupported("strategy function '" + qual.term.func->name +
                              "' is not in the operator class");
}

struct BladeFns {
  AmSimpleFn create, drop, open, close, check, stats;
  AmScanFn beginscan, endscan, rescan;
  AmGetNextFn getnext;
  AmModifyFn insert, remove;
  AmUpdateFn update;
  AmScanCostFn scancost;
};

BladeFns MakeBladeFns(const GistBladeOptions& options) {
  BladeFns fns;
  const std::string am_name = options.am_name;

  auto make_state = [am_name](MiCallContext& ctx, MiAmTableDesc* desc,
                              bool creating) -> Status {
    auto state = std::make_unique<GsTreeState>();
    GRTDB_RETURN_IF_ERROR(ResolveExtension(ctx, desc->index, state.get()));
    Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
    if (sbspace == nullptr) {
      return Status::NotFound("sbspace '" + desc->index->space + "'");
    }
    LoHandle handle;
    NodeId anchor = kInvalidNodeId;
    if (!creating) {
      std::vector<uint8_t> record;
      GRTDB_RETURN_IF_ERROR(
          ctx.server->AmCatalogGet(am_name, desc->index->name, &record));
      if (record.size() != 16) {
        return Status::Corruption("bad gist_am catalog record");
      }
      handle.id = LoadU64(record.data());
      anchor = LoadU64(record.data() + 8);
    }
    auto store_or = SingleLoNodeStore::Open(sbspace, handle);
    if (!store_or.ok()) return store_or.status();
    const LoHandle opened = store_or.value()->handle();
    state->base_store = std::move(store_or).value();
    state->locking_store = std::make_unique<LockingNodeStore>(
        state->base_store.get(), &ctx.server->lock_manager(), ctx.session);
    state->store = state->locking_store.get();
    if (creating) {
      NodeId new_anchor;
      auto tree_or = GistTree::Create(state->store, &new_anchor);
      if (!tree_or.ok()) return tree_or.status();
      state->tree = std::move(tree_or).value();
      std::vector<uint8_t> record(16);
      StoreU64(record.data(), opened.id);
      StoreU64(record.data() + 8, new_anchor);
      GRTDB_RETURN_IF_ERROR(
          ctx.server->AmCatalogPut(am_name, desc->index->name, record));
    } else {
      auto tree_or = GistTree::Open(state->store, anchor);
      if (!tree_or.ok()) return tree_or.status();
      state->tree = std::move(tree_or).value();
    }
    desc->user_data = state.release();
    return Status::OK();
  };

  fns.create = [make_state](MiCallContext& ctx,
                            MiAmTableDesc* desc) -> Status {
    return make_state(ctx, desc, /*creating=*/true);
  };

  fns.open = [make_state](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    if (desc->just_created || desc->user_data != nullptr) return Status::OK();
    return make_state(ctx, desc, /*creating=*/false);
  };

  fns.close = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::OK();
    if (state->locking_store != nullptr) {
      state->locking_store->ReleaseSharedOnClose();
    }
    delete state;
    desc->user_data = nullptr;
    return Status::OK();
  };

  fns.drop = [make_state, am_name](MiCallContext& ctx,
                                   MiAmTableDesc* desc) -> Status {
    if (desc->user_data == nullptr) {
      GRTDB_RETURN_IF_ERROR(make_state(ctx, desc, /*creating=*/false));
    }
    GsTreeState* state = StateOf(desc);
    Status status = state->tree->Drop();
    std::vector<uint8_t> record;
    if (status.ok() &&
        ctx.server->AmCatalogGet(am_name, desc->index->name, &record).ok() &&
        record.size() == 16) {
      Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
      if (sbspace != nullptr) {
        status = sbspace->DropLo(LoHandle{LoadU64(record.data())});
      }
    }
    Status forget = ctx.server->AmCatalogDelete(am_name, desc->index->name);
    if (status.ok()) status = forget;
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.beginscan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    GsTreeState* state = StateOf(sd->table_desc);
    if (state == nullptr) return Status::Internal("index not open");
    auto scan = std::make_unique<GsScanState>();
    const QualTerm* term = nullptr;
    GRTDB_RETURN_IF_ERROR(
        StrategyOf(state->opclass, *sd->qual, &scan->strategy, &term));
    auto key_or = state->compress(term->constant);
    if (!key_or.ok()) return key_or.status();
    scan->query = std::move(key_or).value();
    GRTDB_RETURN_IF_ERROR(state->tree->SearchAll(
        scan->query, scan->strategy, state->ext, &scan->results));
    sd->user_data = scan.release();
    return Status::OK();
  };

  fns.getnext = [](MiCallContext& ctx, MiAmScanDesc* sd, bool* has,
                   uint64_t* retrowid, Row* retrow) -> Status {
    auto* scan = static_cast<GsScanState*>(sd->user_data);
    if (scan == nullptr) {
      return Status::Internal("gs_getnext without gs_beginscan");
    }
    *has = false;
    Table* table = sd->table_desc->table;
    const int key_column = sd->table_desc->key_columns.at(0);
    while (scan->next < scan->results.size()) {
      const auto& entry = scan->results[scan->next++];
      // Verify the full qualification on the base tuple (compressed keys
      // may over-approximate, and conjunctions carry residual terms).
      Row base_row;
      GRTDB_RETURN_IF_ERROR(
          table->Get(RecordId::Unpack(entry.payload), &base_row));
      const Value& key = base_row.at(static_cast<size_t>(key_column));
      bool matches = false;
      GRTDB_RETURN_IF_ERROR(
          EvaluateQualOnValue(ctx, *sd->qual, key, &matches));
      if (!matches) continue;
      *retrowid = entry.payload;
      retrow->clear();
      retrow->push_back(key);
      *has = true;
      return Status::OK();
    }
    return Status::OK();
  };

  fns.rescan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    auto* scan = static_cast<GsScanState*>(sd->user_data);
    if (scan == nullptr) return Status::Internal("rescan without beginscan");
    scan->next = 0;
    return Status::OK();
  };

  fns.endscan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    delete static_cast<GsScanState*>(sd->user_data);
    sd->user_data = nullptr;
    return Status::OK();
  };

  fns.insert = [](MiCallContext&, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    auto key_or = state->compress(keyrow.at(0));
    if (!key_or.ok()) return key_or.status();
    return state->tree->Insert(key_or.value(), rowid, state->ext);
  };

  fns.remove = [](MiCallContext&, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    auto key_or = state->compress(keyrow.at(0));
    if (!key_or.ok()) return key_or.status();
    bool found = false;
    GRTDB_RETURN_IF_ERROR(
        state->tree->Delete(key_or.value(), rowid, state->ext, &found));
    if (!found) return Status::NotFound("GiST entry to delete not found");
    return Status::OK();
  };

  fns.update = [fns](MiCallContext& ctx, MiAmTableDesc* desc,
                     const Row& oldrow, uint64_t oldrowid, const Row& newrow,
                     uint64_t newrowid) -> Status {
    GRTDB_RETURN_IF_ERROR(fns.remove(ctx, desc, oldrow, oldrowid));
    return fns.insert(ctx, desc, newrow, newrowid);
  };

  fns.scancost = [](MiCallContext& ctx, MiAmTableDesc* desc,
                    const MiAmQualDesc* qual, double* cost) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    int strategy = 0;
    const QualTerm* term = nullptr;
    GRTDB_RETURN_IF_ERROR(StrategyOf(state->opclass, *qual, &strategy, &term));
    auto key_or = state->compress(term->constant);
    if (!key_or.ok()) return key_or.status();
    auto cost_or =
        state->tree->EstimateScanCost(key_or.value(), strategy, state->ext);
    if (!cost_or.ok()) return cost_or.status();
    *cost = cost_or.value();
    // Cap the estimate at the node count measured by UPDATE STATISTICS.
    IndexStatsReport measured;
    if (ctx.server->GetIndexStats(desc->index->name, &measured)) {
      *cost = std::min(*cost, static_cast<double>(measured.nodes));
    }
    return Status::OK();
  };

  fns.check = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    return state->tree->CheckConsistency(state->ext);
  };

  fns.stats = [](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    GsTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    std::vector<GistLevelStats> levels;
    GRTDB_RETURN_IF_ERROR(state->tree->LevelStats(&levels));
    IndexStatsReport report;
    report.index = desc->index->name;
    report.access_method = desc->index->access_method;
    report.size = state->tree->size();
    report.height = state->tree->height();
    report.free_list = state->store->FreeListLength();
    report.computed_at = ctx.statement_time;
    for (const GistLevelStats& level : levels) {
      report.nodes += level.nodes;
      if (level.level == 0) report.entries = level.entries;
      IndexLevelStats out;
      out.level = level.level;
      out.nodes = level.nodes;
      out.entries = level.entries;
      // Keys are variable-length, so a per-entry capacity (and thus an
      // occupancy ratio) is undefined for this blade.
      report.levels.push_back(out);
    }
    ctx.server->ReportIndexStats(report);
    return Status::OK();
  };

  return fns;
}

// --------------------------------------------------------- registration ---

std::string PurposeSql(const std::string& prefix) {
  std::string script;
  for (const char* suffix :
       {"_create", "_drop", "_open", "_close", "_beginscan", "_endscan",
        "_rescan", "_getnext", "_insert", "_delete", "_update", "_stats",
        "_check"}) {
    script += "CREATE FUNCTION " + prefix + suffix +
              "(pointer) RETURNING int EXTERNAL NAME '" +
              std::string(kGistLibrary) + "(" + prefix + suffix +
              ")' LANGUAGE c;\n";
  }
  script += "CREATE FUNCTION " + prefix +
            "_scancost(pointer) RETURNING float EXTERNAL NAME '" +
            std::string(kGistLibrary) + "(" + prefix +
            "_scancost)' LANGUAGE c;\n";
  return script;
}

}  // namespace

Status RegisterGistBlade(Server* server, const GistBladeOptions& options) {
  if (server->catalog().FindAccessMethod(options.am_name) != nullptr) {
    return Status::AlreadyExists("access method '" + options.am_name + "'");
  }
  BladeFns fns = MakeBladeFns(options);
  BladeLibrary* library = server->blade_libraries().Load(kGistLibrary);
  const std::string& p = options.prefix;
  library->Export(p + "_create", std::any(AmSimpleFn(fns.create)));
  library->Export(p + "_drop", std::any(AmSimpleFn(fns.drop)));
  library->Export(p + "_open", std::any(AmSimpleFn(fns.open)));
  library->Export(p + "_close", std::any(AmSimpleFn(fns.close)));
  library->Export(p + "_beginscan", std::any(AmScanFn(fns.beginscan)));
  library->Export(p + "_endscan", std::any(AmScanFn(fns.endscan)));
  library->Export(p + "_rescan", std::any(AmScanFn(fns.rescan)));
  library->Export(p + "_getnext", std::any(AmGetNextFn(fns.getnext)));
  library->Export(p + "_insert", std::any(AmModifyFn(fns.insert)));
  library->Export(p + "_delete", std::any(AmModifyFn(fns.remove)));
  library->Export(p + "_update", std::any(AmUpdateFn(fns.update)));
  library->Export(p + "_scancost", std::any(AmScanCostFn(fns.scancost)));
  library->Export(p + "_stats", std::any(AmSimpleFn(fns.stats)));
  library->Export(p + "_check", std::any(AmSimpleFn(fns.check)));

  std::string script = PurposeSql(p);
  script += "CREATE SECONDARY ACCESS_METHOD " + options.am_name + " (\n";
  script += "  am_create = " + p + "_create,\n";
  script += "  am_drop = " + p + "_drop,\n";
  script += "  am_open = " + p + "_open,\n";
  script += "  am_close = " + p + "_close,\n";
  script += "  am_beginscan = " + p + "_beginscan,\n";
  script += "  am_endscan = " + p + "_endscan,\n";
  script += "  am_rescan = " + p + "_rescan,\n";
  script += "  am_getnext = " + p + "_getnext,\n";
  script += "  am_insert = " + p + "_insert,\n";
  script += "  am_delete = " + p + "_delete,\n";
  script += "  am_update = " + p + "_update,\n";
  script += "  am_scancost = " + p + "_scancost,\n";
  script += "  am_stats = " + p + "_stats,\n";
  script += "  am_check = " + p + "_check,\n";
  script += "  am_sptype = 'S'\n);\n";
  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, script, &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

// ----------------------------------------------- extension 1: intrange ---

namespace {

struct IntRange {
  int64_t lo = 0;
  int64_t hi = 0;
};

IntRange DecodeRange(const GistKey& key) {
  IntRange range;
  range.lo = LoadI64(key.data());
  range.hi = LoadI64(key.data() + 8);
  return range;
}

GistKey EncodeRange(IntRange range) {
  GistKey key(16);
  StoreI64(key.data(), range.lo);
  StoreI64(key.data() + 8, range.hi);
  return key;
}

Status ParseRangeText(const std::string& text, IntRange* out) {
  // "[lo,hi]"
  const std::string stripped(StripWhitespace(text));
  if (stripped.size() < 5 || stripped.front() != '[' ||
      stripped.back() != ']') {
    return Status::InvalidArgument("intrange expects '[lo,hi]', got '" +
                                   text + "'");
  }
  const std::vector<std::string> pieces =
      SplitAndTrim(stripped.substr(1, stripped.size() - 2), ',');
  if (pieces.size() != 2) {
    return Status::InvalidArgument("intrange expects two bounds");
  }
  out->lo = std::strtoll(pieces[0].c_str(), nullptr, 10);
  out->hi = std::strtoll(pieces[1].c_str(), nullptr, 10);
  if (out->lo > out->hi) {
    return Status::InvalidArgument("intrange bounds inverted");
  }
  return Status::OK();
}

// intrange strategy numbers: 1 = RangeOverlaps, 2 = RangeContains.
bool IntRangeConsistent(const GistKey& key, const GistKey& query,
                        int strategy, bool leaf) {
  const IntRange k = DecodeRange(key);
  const IntRange q = DecodeRange(query);
  switch (strategy) {
    case 0:  // maintenance: could the exact key `query` live under `key`?
      return k.lo <= q.lo && q.hi <= k.hi;
    case 1:  // overlaps
      return k.lo <= q.hi && q.lo <= k.hi;
    case 2:  // key contains query (internal: containment still required of
             // the union key, so the same test prunes correctly)
      return k.lo <= q.lo && q.hi <= k.hi;
    default:
      return leaf ? false : true;  // unknown strategy: never match leaves
  }
}

}  // namespace

Status RegisterIntRangeOpclass(Server* server, const std::string& am_name) {
  if (server->catalog().FindAccessMethod(am_name) == nullptr) {
    return Status::NotFound("access method '" + am_name + "'");
  }
  // The opaque type.
  if (server->types().FindOpaqueByName("intrange") == nullptr) {
    OpaqueType type;
    type.name = "intrange";
    type.input = [](const std::string& text, std::vector<uint8_t>* out) {
      IntRange range;
      GRTDB_RETURN_IF_ERROR(ParseRangeText(text, &range));
      *out = EncodeRange(range);
      return Status::OK();
    };
    type.output = [](const std::vector<uint8_t>& bytes, std::string* out) {
      if (bytes.size() != 16) return Status::Corruption("bad intrange");
      const IntRange range = DecodeRange(bytes);
      *out = "[" + std::to_string(range.lo) + "," +
             std::to_string(range.hi) + "]";
      return Status::OK();
    };
    uint32_t id = 0;
    GRTDB_RETURN_IF_ERROR(server->types().RegisterOpaque(std::move(type),
                                                         &id));
  }
  const uint32_t type_id = server->types().FindOpaqueByName("intrange")->id;

  BladeLibrary* library = server->blade_libraries().Load(kGistLibrary);
  library->Export("ir_consistent",
                  std::any(GistConsistentFn(IntRangeConsistent)));
  library->Export(
      "ir_union", std::any(GistUnionFn([](std::span<const GistKey> keys) {
        IntRange acc = DecodeRange(keys[0]);
        for (const GistKey& key : keys.subspan(1)) {
          const IntRange range = DecodeRange(key);
          acc.lo = std::min(acc.lo, range.lo);
          acc.hi = std::max(acc.hi, range.hi);
        }
        return EncodeRange(acc);
      })));
  library->Export(
      "ir_penalty",
      std::any(GistPenaltyFn([](const GistKey& existing, const GistKey& key) {
        const IntRange a = DecodeRange(existing);
        const IntRange b = DecodeRange(key);
        const int64_t lo = std::min(a.lo, b.lo);
        const int64_t hi = std::max(a.hi, b.hi);
        return static_cast<double>((hi - lo) - (a.hi - a.lo));
      })));
  library->Export(
      "ir_picksplit",
      std::any(GistPickSplitFn([](std::span<const GistKey> keys) {
        std::vector<size_t> order(keys.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return DecodeRange(keys[a]).lo < DecodeRange(keys[b]).lo;
        });
        std::vector<size_t> right(order.begin() + order.size() / 2,
                                  order.end());
        return right;
      })));
  library->Export(
      "ir_compress",
      std::any(GistCompressFn([type_id](const Value& value)
                                  -> StatusOr<GistKey> {
        if (value.is_null()) {
          return Status::InvalidArgument("NULL is not indexable");
        }
        if (value.base() == TypeDesc::Base::kInteger) {
          return EncodeRange(IntRange{value.integer(), value.integer()});
        }
        if (value.base() == TypeDesc::Base::kOpaque &&
            value.type().opaque_id == type_id &&
            value.opaque().size() == 16) {
          return GistKey(value.opaque());
        }
        return Status::InvalidArgument("expected intrange or integer");
      })));
  // SQL-callable strategy functions (sequential-scan evaluation).
  auto strategy_udr = [type_id](bool contains) {
    return UdrFunction([contains, type_id](MiCallContext&,
                                           std::span<const Value> args)
                           -> StatusOr<Value> {
      auto to_range = [type_id](const Value& value,
                                IntRange* out) -> Status {
        if (value.base() == TypeDesc::Base::kInteger) {
          *out = IntRange{value.integer(), value.integer()};
          return Status::OK();
        }
        if (value.base() == TypeDesc::Base::kOpaque &&
            value.type().opaque_id == type_id && value.opaque().size() == 16) {
          *out = DecodeRange(value.opaque());
          return Status::OK();
        }
        return Status::InvalidArgument("expected intrange");
      };
      IntRange a;
      IntRange b;
      GRTDB_RETURN_IF_ERROR(to_range(args[0], &a));
      GRTDB_RETURN_IF_ERROR(to_range(args[1], &b));
      if (contains) return Value::Boolean(a.lo <= b.lo && b.hi <= a.hi);
      return Value::Boolean(a.lo <= b.hi && b.lo <= a.hi);
    });
  };
  library->Export("ir_overlaps_fn", std::any(strategy_udr(false)));
  library->Export("ir_contains_fn", std::any(strategy_udr(true)));

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, R"SQL(
    CREATE FUNCTION RangeOverlaps(intrange, intrange) RETURNING boolean
      EXTERNAL NAME 'usr/functions/gist.bld(ir_overlaps_fn)' LANGUAGE c;
    CREATE FUNCTION RangeContains(intrange, intrange) RETURNING boolean
      EXTERNAL NAME 'usr/functions/gist.bld(ir_contains_fn)' LANGUAGE c;
    CREATE FUNCTION ir_consistent(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(ir_consistent)' LANGUAGE c;
    CREATE FUNCTION ir_union(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(ir_union)' LANGUAGE c;
    CREATE FUNCTION ir_penalty(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(ir_penalty)' LANGUAGE c;
    CREATE FUNCTION ir_picksplit(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(ir_picksplit)' LANGUAGE c;
    CREATE FUNCTION ir_compress(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(ir_compress)' LANGUAGE c;
  )SQL",
                                        &result);
  if (status.ok()) {
    status = server->ExecuteScript(
        session,
        "CREATE OPCLASS ir_opclass FOR " + am_name +
            " STRATEGIES(RangeOverlaps, RangeContains)"
            " SUPPORT(ir_consistent, ir_union, ir_penalty, ir_picksplit, "
            "ir_compress);",
        &result);
  }
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

// ------------------------------------------------ extension 2: prefixes ---

namespace {

size_t CommonPrefixLength(const GistKey& a, const GistKey& b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

bool StartsWith(const GistKey& value, const GistKey& prefix) {
  return value.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), value.begin());
}

// Prefix-GiST keys: leaves hold the full string; internal keys hold the
// longest common prefix of their subtree. Strategies: 1 = PrefixMatch,
// 2 = TextEquals.
bool PrefixConsistent(const GistKey& key, const GistKey& query, int strategy,
                      bool leaf) {
  switch (strategy) {
    case 0:  // maintenance: the internal prefix must prefix the target
      return leaf ? key == query : StartsWith(query, key);
    case 1:  // PrefixMatch(col, q): col starts with q
      if (leaf) return StartsWith(key, query);
      // Internal: the subtree can hold matches iff its common prefix and
      // the query prefix agree on their overlap.
      return CommonPrefixLength(key, query) >=
             std::min(key.size(), query.size());
    case 2:  // TextEquals
      if (leaf) return key == query;
      return StartsWith(query, key);
    default:
      return !leaf;
  }
}

}  // namespace

Status RegisterPrefixOpclass(Server* server, const std::string& am_name) {
  if (server->catalog().FindAccessMethod(am_name) == nullptr) {
    return Status::NotFound("access method '" + am_name + "'");
  }
  BladeLibrary* library = server->blade_libraries().Load(kGistLibrary);
  library->Export("px_consistent",
                  std::any(GistConsistentFn(PrefixConsistent)));
  library->Export(
      "px_union", std::any(GistUnionFn([](std::span<const GistKey> keys) {
        GistKey prefix = keys[0];
        for (const GistKey& key : keys.subspan(1)) {
          prefix.resize(CommonPrefixLength(prefix, key));
        }
        return prefix;
      })));
  library->Export(
      "px_penalty",
      std::any(GistPenaltyFn([](const GistKey& existing, const GistKey& key) {
        // Cost = how much of the existing prefix would be lost.
        return static_cast<double>(existing.size() -
                                   CommonPrefixLength(existing, key));
      })));
  library->Export(
      "px_picksplit",
      std::any(GistPickSplitFn([](std::span<const GistKey> keys) {
        std::vector<size_t> order(keys.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return keys[a] < keys[b]; });
        return std::vector<size_t>(order.begin() + order.size() / 2,
                                   order.end());
      })));
  library->Export(
      "px_compress",
      std::any(GistCompressFn([](const Value& value) -> StatusOr<GistKey> {
        if (value.is_null() || value.base() != TypeDesc::Base::kText) {
          return Status::InvalidArgument("expected text");
        }
        if (value.text().size() > GistTree::kMaxKeySize) {
          return Status::InvalidArgument("text too long for the index");
        }
        return GistKey(value.text().begin(), value.text().end());
      })));
  library->Export(
      "px_prefix_fn",
      std::any(UdrFunction([](MiCallContext&, std::span<const Value> args)
                               -> StatusOr<Value> {
        const std::string& value = args[0].text();
        const std::string& prefix = args[1].text();
        return Value::Boolean(value.size() >= prefix.size() &&
                              value.compare(0, prefix.size(), prefix) == 0);
      })));
  library->Export(
      "px_equals_fn",
      std::any(UdrFunction([](MiCallContext&, std::span<const Value> args)
                               -> StatusOr<Value> {
        return Value::Boolean(args[0].text() == args[1].text());
      })));

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, R"SQL(
    CREATE FUNCTION PrefixMatch(text, text) RETURNING boolean
      EXTERNAL NAME 'usr/functions/gist.bld(px_prefix_fn)' LANGUAGE c;
    CREATE FUNCTION TextEquals(text, text) RETURNING boolean
      EXTERNAL NAME 'usr/functions/gist.bld(px_equals_fn)' LANGUAGE c;
    CREATE FUNCTION px_consistent(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(px_consistent)' LANGUAGE c;
    CREATE FUNCTION px_union(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(px_union)' LANGUAGE c;
    CREATE FUNCTION px_penalty(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(px_penalty)' LANGUAGE c;
    CREATE FUNCTION px_picksplit(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(px_picksplit)' LANGUAGE c;
    CREATE FUNCTION px_compress(pointer) RETURNING int
      EXTERNAL NAME 'usr/functions/gist.bld(px_compress)' LANGUAGE c;
  )SQL",
                                        &result);
  if (status.ok()) {
    status = server->ExecuteScript(
        session,
        "CREATE OPCLASS px_opclass FOR " + am_name +
            " STRATEGIES(PrefixMatch, TextEquals)"
            " SUPPORT(px_consistent, px_union, px_penalty, px_picksplit, "
            "px_compress);",
        &result);
  }
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

}  // namespace grtdb
