#ifndef GRTDB_BLADES_RSTAR_BLADE_H_
#define GRTDB_BLADES_RSTAR_BLADE_H_

#include <string>

#include "common/status.h"
#include "rstar/rstar_tree.h"
#include "server/server.h"
#include "temporal/extent.h"

namespace grtdb {

// The comparison baseline: an R*-tree access method over the same
// grt_timeextent column using the maximum-timestamp transform — UC and NOW
// are replaced with a fixed maximum timestamp before indexing, which is how
// a plain spatial index must cope with growing bitemporal regions. Index
// hits are verified against the exact geometry of the base tuples (the
// "check using the exact geometry" step of paper §3), so answers stay
// correct at the price of false index positives and huge dead space —
// precisely what the GR-tree removes (bench T5).
struct RStarBladeOptions {
  std::string am_name = "rstar_am";
  std::string prefix = "rst";
  RStarTree::Options tree;
  // The substitute for UC/NOW; must exceed every ground timestamp in the
  // workload.
  int64_t max_timestamp = 200000;  // ~ year 2517
  // Frames in the buffer-managed node cache above the single-LO store;
  // 0 disables caching.
  size_t node_cache_pages = 64;
};

Status RegisterRStarBlade(Server* server,
                          const RStarBladeOptions& options = {});

// The transform itself, exposed for tests and benches.
Rect TransformExtent(const TimeExtent& extent, int64_t max_timestamp);

}  // namespace grtdb

#endif  // GRTDB_BLADES_RSTAR_BLADE_H_
