#ifndef GRTDB_BLADES_LOCKING_STORE_H_
#define GRTDB_BLADES_LOCKING_STORE_H_

#include <map>
#include <memory>

#include "server/server.h"
#include "storage/node_store.h"
#include "txn/lock_manager.h"

namespace grtdb {

// Decorates a large-object-backed NodeStore with the locking Informix
// applies to sbspace smart large objects (paper §5.3): touching a node
// acquires a lock on the *whole large object* that holds it — shared for
// reads, exclusive for writes — under two-phase locking. Exclusive locks
// always live to transaction end; shared locks are released when the
// DataBlade closes the index unless the isolation level is Repeatable
// Read. The developer has no control over this locking, which is exactly
// the limitation bench T8 quantifies.
class LockingNodeStore final : public NodeStore {
 public:
  LockingNodeStore(NodeStore* inner, LockManager* lock_manager,
                   ServerSession* session)
      : inner_(inner), lock_manager_(lock_manager), session_(session) {}

  Status AllocateNode(NodeId* id) override { return inner_->AllocateNode(id); }
  Status FreeNode(NodeId id) override { return inner_->FreeNode(id); }

  Status ReadNode(NodeId id, uint8_t* out) override {
    GRTDB_RETURN_IF_ERROR(LockFor(id, LockMode::kShared));
    return inner_->ReadNode(id, out);
  }

  Status WriteNode(NodeId id, const uint8_t* data) override {
    GRTDB_RETURN_IF_ERROR(LockFor(id, LockMode::kExclusive));
    return inner_->WriteNode(id, data);
  }

  Status ViewNode(NodeId id, NodeView* view) override {
    GRTDB_RETURN_IF_ERROR(LockFor(id, LockMode::kShared));
    return inner_->ViewNode(id, view);  // zero-copy when inner is a cache
  }

  uint64_t LoOfNode(NodeId id) const override { return inner_->LoOfNode(id); }
  uint64_t FreeListLength() override { return inner_->FreeListLength(); }
  Status Flush() override { return inner_->Flush(); }

  // Called from am_close: drops the shared LO locks when the isolation
  // level allows it (Committed/Dirty Read); exclusive locks stay until the
  // transaction ends (released by the transaction manager), so their
  // acquired_ entries are kept — a reopen in the same transaction must not
  // re-acquire (and re-nest) locks it already holds.
  void ReleaseSharedOnClose() {
    if (session_->txn_session().isolation() ==
        IsolationLevel::kRepeatableRead) {
      return;
    }
    Transaction* txn = session_->txn_session().current_txn();
    if (txn == nullptr) return;
    for (auto it = acquired_.begin(); it != acquired_.end();) {
      if (it->second == LockMode::kShared) {
        lock_manager_->Release(txn->id(), it->first);
        it = acquired_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  Status LockFor(NodeId id, LockMode mode) {
    const uint64_t lo = inner_->LoOfNode(id);
    if (lo == 0) return Status::OK();  // not an LO-backed layout
    Transaction* txn = session_->txn_session().current_txn();
    if (txn == nullptr) return Status::OK();
    const ResourceId resource{ResourceKind::kLargeObject, lo};
    auto it = acquired_.find(resource);
    if (it != acquired_.end() &&
        (it->second == LockMode::kExclusive || mode == LockMode::kShared)) {
      return Status::OK();  // already held strongly enough this open
    }
    // May fail with LockTimeout — or, for a shared→exclusive upgrade that
    // collides with another upgrader, Status::Deadlock. Both propagate to
    // the executor, which aborts the statement's transaction.
    GRTDB_RETURN_IF_ERROR(lock_manager_->Acquire(txn->id(), resource, mode));
    acquired_[resource] = mode;
    return Status::OK();
  }

  NodeStore* inner_;
  LockManager* lock_manager_;
  ServerSession* session_;
  std::map<ResourceId, LockMode> acquired_;
};

}  // namespace grtdb

#endif  // GRTDB_BLADES_LOCKING_STORE_H_
