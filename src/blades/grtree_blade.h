#ifndef GRTDB_BLADES_GRTREE_BLADE_H_
#define GRTDB_BLADES_GRTREE_BLADE_H_

#include <string>

#include "common/status.h"
#include "core/grtree.h"
#include "server/server.h"

namespace grtdb {

// Build-time options of the GR-tree DataBlade. The defaults reproduce the
// paper's prototype decisions: hard-coded internal functions (§5.2), the
// whole index in a single smart large object (§5.3), per-statement current
// time unless the session chose SET TIME MODE TRANSACTION (§5.4), and
// scan restart only on condensation (§5.5). The alternatives exist so the
// benches can measure each design discussion.
struct GRTreeBladeOptions {
  // Registered access-method/opclass/purpose-function naming. Changing the
  // prefix lets several blade variants coexist in one server.
  std::string am_name = "grtree_am";
  std::string prefix = "grt";

  GRTree::Options tree;

  // §5.2: false = strategy/support functions are hard-coded inside
  // am_getnext (the paper's choice); true = am_getnext dynamically resolves
  // and invokes the registered strategy UDRs on every candidate entry.
  bool dynamic_dispatch = false;

  // §5.3 storage options.
  enum class Storage { kSingleLo, kLoPerNode, kLoPerSubtree, kExternalFile };
  Storage storage = Storage::kSingleLo;
  uint64_t nodes_per_lo = 16;          // kLoPerSubtree cluster size
  std::string external_dir = "/tmp";   // kExternalFile directory
  // Informix's automatic LO-granularity two-phase locking; irrelevant (and
  // absent, as §5.3 laments) for kExternalFile.
  bool lock_large_objects = true;

  // Frames in the buffer-managed node cache placed directly above the
  // layout's base store (below locking and the WAL); 0 disables caching.
  size_t node_cache_pages = 64;
};

// Installs the GR-tree DataBlade into `server`: exports the purpose
// functions and support routines into the blade library, registers the
// grt_timeextent opaque type if needed, and runs the registration SQL
// (CREATE FUNCTION / CREATE SECONDARY ACCESS_METHOD / CREATE OPCLASS) —
// the job BladeManager performs for a real DataBlade.
Status RegisterGRTreeBlade(Server* server,
                           const GRTreeBladeOptions& options = {});

}  // namespace grtdb

#endif  // GRTDB_BLADES_GRTREE_BLADE_H_
