#include "blades/timeextent.h"

#include <cstring>

#include "temporal/predicates.h"

namespace grtdb {

namespace {

Status InputFn(const std::string& text, std::vector<uint8_t>* out) {
  TimeExtent extent;
  GRTDB_RETURN_IF_ERROR(TimeExtent::Parse(text, &extent));
  out->resize(TimeExtent::kBinarySize);
  extent.EncodeTo(out->data());
  return Status::OK();
}

Status OutputFn(const std::vector<uint8_t>& bytes, std::string* out) {
  if (bytes.size() != TimeExtent::kBinarySize) {
    return Status::Corruption("grt_timeextent value has wrong size");
  }
  *out = TimeExtent::DecodeFrom(bytes.data()).ToString();
  return Status::OK();
}

// Binds one of the four bitemporal predicates as a strategy UDR. Both
// arguments are grt_timeextent; UC/NOW resolve at the blade current time.
UdrFunction MakeStrategy(bool (*predicate)(const TimeExtent&,
                                           const TimeExtent&, int64_t)) {
  return [predicate](MiCallContext& ctx,
                     std::span<const Value> args) -> StatusOr<Value> {
    if (args.size() != 2) {
      return Status::InvalidArgument("strategy functions take two extents");
    }
    TimeExtent a;
    TimeExtent b;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[0], &a));
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[1], &b));
    return Value::Boolean(predicate(a, b, BladeCurrentTime(ctx)));
  };
}

bool OverlapsPred(const TimeExtent& a, const TimeExtent& b, int64_t ct) {
  return ExtentsOverlap(a, b, ct);
}
bool ContainsPred(const TimeExtent& a, const TimeExtent& b, int64_t ct) {
  return ExtentContains(a, b, ct);
}
bool ContainedInPred(const TimeExtent& a, const TimeExtent& b, int64_t ct) {
  return ExtentContainedIn(a, b, ct);
}
bool EqualPred(const TimeExtent& a, const TimeExtent& b, int64_t ct) {
  return ExtentsEqual(a, b, ct);
}

}  // namespace

uint32_t TimeExtentTypeId(Server* server) {
  const OpaqueType* type =
      server->types().FindOpaqueByName(kTimeExtentTypeName);
  return type != nullptr ? type->id : 0;
}

Status ExtentFromValue(const Value& value, TimeExtent* out) {
  if (value.is_null() || value.base() != TypeDesc::Base::kOpaque ||
      value.opaque().size() != TimeExtent::kBinarySize) {
    return Status::InvalidArgument("value is not a grt_timeextent");
  }
  *out = TimeExtent::DecodeFrom(value.opaque().data());
  return Status::OK();
}

Value ValueFromExtent(Server* server, const TimeExtent& extent) {
  std::vector<uint8_t> bytes(TimeExtent::kBinarySize);
  extent.EncodeTo(bytes.data());
  return Value::Opaque(TimeExtentTypeId(server), std::move(bytes));
}

int64_t BladeCurrentTime(MiCallContext& ctx) {
  if (ctx.session == nullptr ||
      ctx.session->time_mode() == CurrentTimeMode::kPerStatement) {
    return ctx.statement_time;
  }
  // Per-transaction mode (§5.4): capture the current time the first time
  // the blade runs inside this transaction, in named memory keyed by the
  // session id, and free it from a transaction-end callback.
  Server* server = ctx.server;
  const std::string name =
      "grt_ct_session_" + std::to_string(ctx.session->id());
  void* ptr = nullptr;
  if (server->named_memory().NamedGet(name, &ptr).ok()) {
    int64_t value;
    std::memcpy(&value, ptr, sizeof(value));
    return value;
  }
  const int64_t now = ctx.statement_time;
  if (!server->named_memory().NamedAlloc(name, sizeof(now), &ptr).ok()) {
    return now;  // lost the race; fall back to statement time
  }
  std::memcpy(ptr, &now, sizeof(now));
  Transaction* txn = ctx.session->txn_session().current_txn();
  if (txn != nullptr) {
    txn->AddEndCallback([server, name](bool) {
      Status st = server->named_memory().NamedFree(name);
      (void)st;
    });
  }
  return now;
}

Status RegisterTimeExtentType(Server* server) {
  if (TimeExtentTypeId(server) != 0) return Status::OK();

  OpaqueType type;
  type.name = kTimeExtentTypeName;
  type.input = InputFn;
  type.output = OutputFn;
  // send/receive and import/export default to the internal structure and
  // the text format respectively (BladeSmith's generated pairs performed
  // "very similar tasks", §6.3).
  uint32_t id = 0;
  GRTDB_RETURN_IF_ERROR(server->types().RegisterOpaque(std::move(type), &id));

  BladeLibrary* library = server->blade_libraries().Load(kGrtBladeLibrary);
  library->Export("grt_overlaps", std::any(MakeStrategy(OverlapsPred)));
  library->Export("grt_contains", std::any(MakeStrategy(ContainsPred)));
  library->Export("grt_containedin",
                  std::any(MakeStrategy(ContainedInPred)));
  library->Export("grt_equal", std::any(MakeStrategy(EqualPred)));

  // Support functions (Union/Size/Inter of §5.2): the trees hard-code
  // their logic internally, but registered UDR counterparts exist and are
  // declared in the operator classes, as in the paper's CREATE OPCLASS
  // example.
  library->Export(
      "grt_union_fn",
      std::any(UdrFunction([](MiCallContext& ctx, std::span<const Value> args)
                               -> StatusOr<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("Union takes two extents");
        }
        TimeExtent a;
        TimeExtent b;
        GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[0], &a));
        GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[1], &b));
        const BoundSpec pair[2] = {BoundSpec::FromExtent(a),
                                   BoundSpec::FromExtent(b)};
        const BoundSpec bound =
            BoundSpec::Enclose(pair, BladeCurrentTime(ctx));
        // Rendered back as a 4TS extent: the SQL-visible union is the
        // timestamp envelope (the flags are an index internal).
        const TimeExtent envelope(bound.tt_begin, bound.tt_end,
                                  bound.vt_begin, bound.vt_end);
        return ValueFromExtent(ctx.server, envelope);
      })));
  library->Export(
      "grt_size_fn",
      std::any(UdrFunction([](MiCallContext& ctx, std::span<const Value> args)
                               -> StatusOr<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("Size takes one extent");
        }
        TimeExtent a;
        GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[0], &a));
        return Value::Float(ResolveExtent(a, BladeCurrentTime(ctx)).Area());
      })));
  library->Export(
      "grt_inter_fn",
      std::any(UdrFunction([](MiCallContext& ctx, std::span<const Value> args)
                               -> StatusOr<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("Intersection takes two extents");
        }
        TimeExtent a;
        TimeExtent b;
        GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[0], &a));
        GRTDB_RETURN_IF_ERROR(ExtentFromValue(args[1], &b));
        const int64_t ct = BladeCurrentTime(ctx);
        return Value::Float(
            ResolveExtent(a, ct).IntersectionArea(ResolveExtent(b, ct)));
      })));

  // Register the strategy functions as SQL-callable UDRs (paper §4 Step 2:
  // CREATE FUNCTION ... EXTERNAL NAME "usr/functions/grtree.bld(...)").
  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, R"SQL(
    CREATE FUNCTION Overlaps(grt_timeextent, grt_timeextent) RETURNING boolean
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_overlaps)' LANGUAGE c NOT VARIANT;
    CREATE FUNCTION Contains(grt_timeextent, grt_timeextent) RETURNING boolean
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_contains)' LANGUAGE c NOT VARIANT;
    CREATE FUNCTION ContainedIn(grt_timeextent, grt_timeextent) RETURNING boolean
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_containedin)' LANGUAGE c NOT VARIANT;
    CREATE FUNCTION Equal(grt_timeextent, grt_timeextent) RETURNING boolean
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_equal)' LANGUAGE c NOT VARIANT;
    CREATE FUNCTION grt_union(grt_timeextent, grt_timeextent) RETURNING grt_timeextent
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_union_fn)' LANGUAGE c;
    CREATE FUNCTION grt_size(grt_timeextent) RETURNING float
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_size_fn)' LANGUAGE c;
    CREATE FUNCTION grt_intersection(grt_timeextent, grt_timeextent) RETURNING float
      EXTERNAL NAME 'usr/functions/grtree.bld(grt_inter_fn)' LANGUAGE c;
  )SQL",
                                        &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

}  // namespace grtdb
