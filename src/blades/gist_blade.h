#ifndef GRTDB_BLADES_GIST_BLADE_H_
#define GRTDB_BLADES_GIST_BLADE_H_

#include <string>

#include "common/status.h"
#include "gist/gist.h"
#include "server/server.h"

namespace grtdb {

// The paper's conclusion (§7) proposes "a generic extendible tree-based
// access method" following Hellerstein et al. [HNP95] and Aoki [AOK98],
// possibly "as a DataBlade, using specially designed operator classes to
// extend it". This blade is that proposal, built: ONE set of purpose
// functions drives a generalized search tree whose behaviour comes
// entirely from the operator class. The class's SUPPORT list names, in
// order, the extension's primitives:
//   1: consistent   2: union   3: penalty   4: picksplit   5: compress
// exported by the extension's library as the Gist*Fn types below; its
// STRATEGIES list gives the query predicates (matched by position, as for
// the B-tree). Registering a new operator class = supporting a new data
// type, with zero purpose-function changes.
using GistConsistentFn = decltype(GistExtension::consistent);
using GistUnionFn = decltype(GistExtension::unite);
using GistPenaltyFn = decltype(GistExtension::penalty);
using GistPickSplitFn = decltype(GistExtension::pick_split);
// Compress: SQL value (column or query constant) -> GiST key bytes.
using GistCompressFn = std::function<StatusOr<GistKey>(const Value&)>;

struct GistBladeOptions {
  std::string am_name = "gist_am";
  std::string prefix = "gs";
};

Status RegisterGistBlade(Server* server, const GistBladeOptions& options = {});

// Extension 1: 1-D integer ranges. Registers the opaque type `intrange`
// ("[lo,hi]" text form), the strategy functions RangeOverlaps and
// RangeContains, the five extension primitives, and the operator class
// ir_opclass for `am_name`.
Status RegisterIntRangeOpclass(Server* server,
                               const std::string& am_name = "gist_am");

// Extension 2: text with longest-common-prefix keys. Registers the
// strategy functions PrefixMatch and TextEquals plus px_opclass — a second
// data type through the same purpose functions.
Status RegisterPrefixOpclass(Server* server,
                             const std::string& am_name = "gist_am");

}  // namespace grtdb

#endif  // GRTDB_BLADES_GIST_BLADE_H_
