#ifndef GRTDB_BLADES_TIMEEXTENT_H_
#define GRTDB_BLADES_TIMEEXTENT_H_

#include <string>

#include "common/status.h"
#include "server/server.h"
#include "temporal/extent.h"

namespace grtdb {

// Path under which the GR-tree blade's shared library is registered; the
// paper's CREATE FUNCTION examples use exactly this name.
inline constexpr char kGrtBladeLibrary[] = "usr/functions/grtree.bld";

// SQL name of the opaque type (GRT_TimeExtent_t in the paper's C code).
inline constexpr char kTimeExtentTypeName[] = "grt_timeextent";

// Registers the opaque type grt_timeextent with its type support functions
// (text input/output with UC/NOW handling and the §2 constraint checks,
// binary send/receive, text-file import/export) and registers the four
// bitemporal strategy functions Overlaps/Equal/Contains/ContainedIn as
// UDRs backed by symbols in kGrtBladeLibrary. Idempotent.
Status RegisterTimeExtentType(Server* server);

// The opaque-type id assigned to grt_timeextent (0 if not registered).
uint32_t TimeExtentTypeId(Server* server);

// Converts between the SQL Value and the C struct behind the opaque type.
Status ExtentFromValue(const Value& value, TimeExtent* out);
Value ValueFromExtent(Server* server, const TimeExtent& extent);

// The current time a DataBlade routine must use (paper §5.4): the
// statement time, or — in per-transaction mode — the value captured in
// named memory the first time the transaction touched the blade (a
// transaction-end callback frees it).
int64_t BladeCurrentTime(MiCallContext& ctx);

}  // namespace grtdb

#endif  // GRTDB_BLADES_TIMEEXTENT_H_
