#include "blades/grtree_blade.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "blades/locking_store.h"
#include "blades/timeextent.h"
#include "common/strings.h"
#include "storage/layout.h"
#include "storage/node_cache.h"
#include "storage/wal_store.h"
#include "temporal/predicates.h"

namespace grtdb {

namespace {

// ------------------------------------------------------------ scan state --

struct GrtScanState {
  std::unique_ptr<GRTree::Cursor> cursor;
  PredicateOp first_op = PredicateOp::kOverlaps;
  TimeExtent first_query;
  // Hard-coded residual checks for AND terms beyond the first (§5.2).
  std::vector<std::pair<PredicateOp, TimeExtent>> residual;
  // Dynamic-dispatch mode re-evaluates the registered strategy UDRs on
  // every candidate instead.
  const MiAmQualDesc* qual = nullptr;
  bool dynamic = false;
  int64_t ct = 0;
};

// The Tree object of Table 5, stashed in the index descriptor's user data.
struct GrtTreeState {
  GRTreeBladeOptions options;
  std::unique_ptr<NodeStore> base_store;
  // Buffer-managed frame pool directly above the base layout; the WAL and
  // lock decorators sit on top so their semantics are unchanged. Declared
  // here so destruction (reverse order) tears down locking → WAL → cache
  // → base and the cache's write-back lands in a live base store.
  std::unique_ptr<NodeCache> node_cache;
  // kExternalFile only: the developer-built recovery layer of §5.3 — the
  // server's own logging covers sbspace LOs, an OS file gets nothing.
  std::unique_ptr<WalNodeStore> wal_store;
  std::unique_ptr<LockingNodeStore> locking_store;
  NodeStore* store = nullptr;
  std::unique_ptr<GRTree> tree;
  GrtScanState* active_scan = nullptr;
};

// Brackets one index mutation in a WAL transaction when the index lives in
// an external file: the statement's node writes hit the log first, so a
// mid-statement crash can no longer tear the tree.
Status WithWalTxn(GrtTreeState* state, const std::function<Status()>& body) {
  if (state->wal_store == nullptr) return body();
  GRTDB_RETURN_IF_ERROR(state->wal_store->Begin());
  Status status = body();
  if (!status.ok()) {
    (void)state->wal_store->Rollback();
    return status;
  }
  return state->wal_store->Commit();
}

// ---------------------------------------------------- AM catalog records --
// The record grt_create() inserts "in the table associated with the
// grtree_am access method": which storage layout, the anchor node, and the
// layout's handles.

struct StorageRecord {
  GRTreeBladeOptions::Storage kind = GRTreeBladeOptions::Storage::kSingleLo;
  NodeId anchor = kInvalidNodeId;
  uint64_t lo = 0;                     // kSingleLo
  std::vector<LoHandle> clusters;      // kLoPerNode / kLoPerSubtree
  uint64_t node_count = 0;             // ditto
  std::string path;                    // kExternalFile
};

std::vector<uint8_t> EncodeRecord(const StorageRecord& record) {
  std::vector<uint8_t> out(1 + 8 + 8 + 8 + 4 + record.clusters.size() * 8 +
                           4 + record.path.size());
  uint8_t* p = out.data();
  *p++ = static_cast<uint8_t>(record.kind);
  StoreU64(p, record.anchor);
  p += 8;
  StoreU64(p, record.lo);
  p += 8;
  StoreU64(p, record.node_count);
  p += 8;
  StoreU32(p, static_cast<uint32_t>(record.clusters.size()));
  p += 4;
  for (const LoHandle& handle : record.clusters) {
    StoreU64(p, handle.id);
    p += 8;
  }
  StoreU32(p, static_cast<uint32_t>(record.path.size()));
  p += 4;
  std::memcpy(p, record.path.data(), record.path.size());
  return out;
}

Status DecodeRecord(const std::vector<uint8_t>& bytes,
                    StorageRecord* record) {
  if (bytes.size() < 29) {
    return Status::Corruption("short grtree_am catalog record");
  }
  const uint8_t* p = bytes.data();
  record->kind = static_cast<GRTreeBladeOptions::Storage>(*p++);
  record->anchor = LoadU64(p);
  p += 8;
  record->lo = LoadU64(p);
  p += 8;
  record->node_count = LoadU64(p);
  p += 8;
  const uint32_t clusters = LoadU32(p);
  p += 4;
  record->clusters.clear();
  for (uint32_t i = 0; i < clusters; ++i) {
    record->clusters.push_back(LoHandle{LoadU64(p)});
    p += 8;
  }
  const uint32_t path_len = LoadU32(p);
  p += 4;
  record->path.assign(reinterpret_cast<const char*>(p), path_len);
  return Status::OK();
}

// ------------------------------------------------------------- utilities --

std::string ExternalPath(const GRTreeBladeOptions& options,
                         const IndexDef* index) {
  return options.external_dir + "/grtree_" + ToLower(index->name) + ".dat";
}

// Builds the NodeStore for `index` according to the blade's storage option
// (§5.3). When `creating`, fresh storage is allocated and `record` filled
// in; otherwise storage is reattached from `record`.
Status MakeStore(MiCallContext& ctx, GrtTreeState* state,
                 const IndexDef* index, bool creating,
                 StorageRecord* record) {
  const GRTreeBladeOptions& options = state->options;
  if (options.storage == GRTreeBladeOptions::Storage::kExternalFile) {
    const std::string path =
        creating ? ExternalPath(options, index) : record->path;
    if (creating) {
      std::remove(path.c_str());
      std::remove((path + ".wal").c_str());
      record->kind = options.storage;
      record->path = path;
    }
    auto store_or = ExternalFileNodeStore::Open(path);
    if (!store_or.ok()) return store_or.status();
    state->base_store = std::move(store_or).value();
    NodeStore* wal_inner = state->base_store.get();
    if (options.node_cache_pages > 0) {
      // Cache below the WAL: safe because the WAL flushes its inner store
      // (here: the cache, which writes back) before every log truncation.
      state->node_cache = std::make_unique<NodeCache>(
          wal_inner, options.node_cache_pages);
      state->node_cache->set_trace(&ctx.server->trace());
      state->node_cache->set_heat(&ctx.server->heat_tracker(), index->name);
      if (ctx.server->observability_enabled()) {
        state->node_cache->set_metrics(&ctx.server->metrics());
      }
      wal_inner = state->node_cache.get();
    }
    // §5.3: with an OS file the DataBlade must provide all recovery
    // itself. Every open replays whatever a previous crash left behind.
    auto wal_or = WalNodeStore::Open(wal_inner, path + ".wal");
    if (!wal_or.ok()) return wal_or.status();
    state->wal_store = std::move(wal_or).value();
    state->wal_store->set_trace(&ctx.server->trace());
    if (ctx.server->observability_enabled()) {
      state->wal_store->set_metrics(&ctx.server->metrics());
    }
    GRTDB_RETURN_IF_ERROR(state->wal_store->Recover());
    state->store = state->wal_store.get();
    return Status::OK();
  }

  Sbspace* sbspace = ctx.server->FindSbspace(index->space);
  if (sbspace == nullptr) {
    return Status::NotFound("sbspace '" + index->space + "'");
  }
  switch (options.storage) {
    case GRTreeBladeOptions::Storage::kSingleLo: {
      LoHandle handle;
      if (!creating) handle.id = record->lo;
      auto store_or = SingleLoNodeStore::Open(sbspace, handle);
      if (!store_or.ok()) return store_or.status();
      if (creating) {
        record->kind = options.storage;
        record->lo = store_or.value()->handle().id;
      }
      state->base_store = std::move(store_or).value();
      break;
    }
    case GRTreeBladeOptions::Storage::kLoPerNode:
    case GRTreeBladeOptions::Storage::kLoPerSubtree: {
      const uint64_t nodes_per_lo =
          options.storage == GRTreeBladeOptions::Storage::kLoPerNode
              ? 1
              : options.nodes_per_lo;
      auto store = std::make_unique<ClusteredLoNodeStore>(sbspace,
                                                          nodes_per_lo);
      if (creating) {
        record->kind = options.storage;
      } else {
        store->RestoreState(record->clusters, record->node_count);
      }
      state->base_store = std::move(store);
      break;
    }
    case GRTreeBladeOptions::Storage::kExternalFile:
      break;  // handled above
  }
  NodeStore* tree_store = state->base_store.get();
  if (options.node_cache_pages > 0) {
    state->node_cache =
        std::make_unique<NodeCache>(tree_store, options.node_cache_pages);
    state->node_cache->set_trace(&ctx.server->trace());
    state->node_cache->set_heat(&ctx.server->heat_tracker(), index->name);
    if (ctx.server->observability_enabled()) {
      state->node_cache->set_metrics(&ctx.server->metrics());
    }
    tree_store = state->node_cache.get();
  }
  if (options.lock_large_objects) {
    state->locking_store = std::make_unique<LockingNodeStore>(
        tree_store, &ctx.server->lock_manager(), ctx.session);
    state->store = state->locking_store.get();
  } else {
    state->store = tree_store;
  }
  return Status::OK();
}

// Persists mutable layout state back into the AM catalog record (clustered
// layouts grow their LO map as the tree grows).
Status PersistRecord(MiCallContext& ctx, GrtTreeState* state,
                     const IndexDef* index, const std::string& am_name) {
  auto* clustered =
      dynamic_cast<ClusteredLoNodeStore*>(state->base_store.get());
  if (clustered == nullptr) return Status::OK();
  std::vector<uint8_t> bytes;
  GRTDB_RETURN_IF_ERROR(
      ctx.server->AmCatalogGet(am_name, index->name, &bytes));
  StorageRecord record;
  GRTDB_RETURN_IF_ERROR(DecodeRecord(bytes, &record));
  record.clusters = clustered->cluster_handles();
  record.node_count = clustered->node_count();
  return ctx.server->AmCatalogPut(am_name, index->name,
                                  EncodeRecord(record));
}

StatusOr<PredicateOp> OpFromStrategyName(const std::string& name,
                                         bool column_first) {
  PredicateOp op;
  if (EqualsIgnoreCase(name, "Overlaps")) {
    op = PredicateOp::kOverlaps;
  } else if (EqualsIgnoreCase(name, "Contains")) {
    op = PredicateOp::kContains;
  } else if (EqualsIgnoreCase(name, "ContainedIn")) {
    op = PredicateOp::kContainedIn;
  } else if (EqualsIgnoreCase(name, "Equal")) {
    op = PredicateOp::kEqual;
  } else {
    return Status::NotSupported("strategy function '" + name +
                                "' is not known to the GR-tree");
  }
  if (!column_first) {
    // f(const, column): the data extent is the *second* argument, so the
    // containment predicates flip.
    if (op == PredicateOp::kContains) {
      op = PredicateOp::kContainedIn;
    } else if (op == PredicateOp::kContainedIn) {
      op = PredicateOp::kContains;
    }
  }
  return op;
}

// Breaks the qualification into simple (op, query) predicates (§6.3: "how
// to break a complex qualification into simple ones"). Supported shapes:
// one term, or a conjunction of terms; disjunctions never reach a virtual
// index in this server's optimizer.
Status TranslateQual(const MiAmQualDesc& qual,
                     std::vector<std::pair<PredicateOp, TimeExtent>>* terms) {
  if (qual.op == MiAmQualDesc::Op::kTerm) {
    if (qual.term.unary) {
      return Status::NotSupported("GR-tree has no unary strategy functions");
    }
    auto op_or = OpFromStrategyName(qual.term.func->name,
                                    qual.term.column_first);
    if (!op_or.ok()) return op_or.status();
    TimeExtent query;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(qual.term.constant, &query));
    terms->emplace_back(op_or.value(), query);
    return Status::OK();
  }
  if (qual.op == MiAmQualDesc::Op::kAnd) {
    for (const MiAmQualDesc& child : qual.children) {
      GRTDB_RETURN_IF_ERROR(TranslateQual(child, terms));
    }
    return Status::OK();
  }
  return Status::NotSupported(
      "GR-tree scans do not accept disjunctive qualifications");
}

GrtTreeState* StateOf(MiAmTableDesc* desc) {
  return static_cast<GrtTreeState*>(desc->user_data);
}

int64_t ScanTime(MiCallContext& ctx) { return BladeCurrentTime(ctx); }

// -------------------------------------------------------- purpose bodies --
// Each purpose function is a closure over the blade options; the factory
// below exports them under the registration prefix.

struct BladeFns {
  AmSimpleFn create, drop, open, close, stats, check;
  AmScanFn beginscan, endscan, rescan;
  AmGetNextFn getnext;
  AmModifyFn insert, remove;
  AmUpdateFn update;
  AmScanCostFn scancost;
};

BladeFns MakeBladeFns(const GRTreeBladeOptions& options) {
  BladeFns fns;
  const std::string am_name = options.am_name;

  auto open_tree = [options, am_name](MiCallContext& ctx,
                                      MiAmTableDesc* desc) -> Status {
    auto state = std::make_unique<GrtTreeState>();
    state->options = options;
    std::vector<uint8_t> bytes;
    GRTDB_RETURN_IF_ERROR(
        ctx.server->AmCatalogGet(am_name, desc->index->name, &bytes));
    StorageRecord record;
    GRTDB_RETURN_IF_ERROR(DecodeRecord(bytes, &record));
    GRTDB_RETURN_IF_ERROR(
        MakeStore(ctx, state.get(), desc->index, /*creating=*/false,
                  &record));
    auto tree_or = GRTree::Open(state->store, record.anchor, options.tree);
    if (!tree_or.ok()) return tree_or.status();
    state->tree = std::move(tree_or).value();
    desc->user_data = state.release();
    return Status::OK();
  };

  fns.create = [options, am_name](MiCallContext& ctx,
                                  MiAmTableDesc* desc) -> Status {
    const IndexDef* index = desc->index;
    // Table 5, grt_create steps 2-4: column type, operator class, and
    // duplicate-index checks.
    if (desc->key_types.size() != 1 ||
        desc->key_types[0].base != TypeDesc::Base::kOpaque ||
        desc->key_types[0].opaque_id != TimeExtentTypeId(ctx.server)) {
      return Status::InvalidArgument(
          am_name + " indexes exactly one grt_timeextent column");
    }
    const OpClassDef* opclass =
        ctx.server->catalog().FindOpClass(index->opclasses[0]);
    if (opclass == nullptr ||
        !EqualsIgnoreCase(opclass->access_method, index->access_method)) {
      return Status::InvalidArgument("operator class '" +
                                     index->opclasses[0] +
                                     "' cannot be used with " + am_name);
    }
    for (IndexDef* other :
         ctx.server->catalog().IndexesOnTable(index->table)) {
      if (!EqualsIgnoreCase(other->name, index->name) &&
          EqualsIgnoreCase(other->access_method, index->access_method) &&
          other->key_columns == index->key_columns) {
        return Status::AlreadyExists(
            "an index using " + am_name +
            " already exists on the same column(s): " + other->name);
      }
    }
    // Steps 5-7: create the BLOB(s), record them in the AM's table, open.
    auto state = std::make_unique<GrtTreeState>();
    state->options = options;
    StorageRecord record;
    GRTDB_RETURN_IF_ERROR(
        MakeStore(ctx, state.get(), index, /*creating=*/true, &record));
    NodeId anchor;
    auto tree_or = GRTree::Create(state->store, options.tree, &anchor);
    if (!tree_or.ok()) return tree_or.status();
    state->tree = std::move(tree_or).value();
    record.anchor = anchor;
    if (auto* clustered =
            dynamic_cast<ClusteredLoNodeStore*>(state->base_store.get())) {
      record.clusters = clustered->cluster_handles();
      record.node_count = clustered->node_count();
    }
    GRTDB_RETURN_IF_ERROR(
        ctx.server->AmCatalogPut(am_name, index->name, EncodeRecord(record)));
    desc->user_data = state.release();
    ctx.server->trace().Tprintf("grtree", 1, "created index %s",
                                index->name.c_str());
    return Status::OK();
  };

  fns.open = [open_tree](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    // Table 5, grt_open step 1: invoked right after grt_create -> exit
    // (the descriptor already carries the Tree object).
    if (desc->just_created) return Status::OK();
    if (desc->user_data != nullptr) return Status::OK();
    return open_tree(ctx, desc);
  };

  fns.close = [am_name](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::OK();
    Status status = Status::OK();
    if (state->tree != nullptr) {
      status = state->tree->FlushPending(ScanTime(ctx));
    }
    Status persist = PersistRecord(ctx, state, desc->index, am_name);
    if (status.ok()) status = persist;
    // Write dirty cached nodes back to the (server-shared) base storage
    // while this statement's exclusive LO locks are still held — the next
    // opener builds a fresh cache and must see them.
    if (state->node_cache != nullptr) {
      Status flushed = state->node_cache->Flush();
      if (status.ok()) status = flushed;
    }
    if (state->locking_store != nullptr) {
      state->locking_store->ReleaseSharedOnClose();
    }
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.drop = [options, am_name, open_tree](MiCallContext& ctx,
                                           MiAmTableDesc* desc) -> Status {
    if (desc->user_data == nullptr) {
      GRTDB_RETURN_IF_ERROR(open_tree(ctx, desc));
    }
    GrtTreeState* state = StateOf(desc);
    Status status = state->tree->Drop();
    // Release the storage: the single LO, the cluster LOs, or the file.
    std::vector<uint8_t> bytes;
    if (status.ok()) {
      status = ctx.server->AmCatalogGet(am_name, desc->index->name, &bytes);
    }
    if (status.ok()) {
      StorageRecord record;
      status = DecodeRecord(bytes, &record);
      if (status.ok()) {
        Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
        switch (record.kind) {
          case GRTreeBladeOptions::Storage::kSingleLo:
            if (sbspace != nullptr) {
              status = sbspace->DropLo(LoHandle{record.lo});
            }
            break;
          case GRTreeBladeOptions::Storage::kLoPerNode:
          case GRTreeBladeOptions::Storage::kLoPerSubtree:
            if (sbspace != nullptr) {
              for (const LoHandle& handle : record.clusters) {
                if (handle.valid()) {
                  Status drop = sbspace->DropLo(handle);
                  if (status.ok()) status = drop;
                }
              }
            }
            break;
          case GRTreeBladeOptions::Storage::kExternalFile:
            std::remove(record.path.c_str());
            std::remove((record.path + ".wal").c_str());
            break;
        }
      }
    }
    Status forget = ctx.server->AmCatalogDelete(am_name, desc->index->name);
    if (status.ok()) status = forget;
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.beginscan = [](MiCallContext& ctx, MiAmScanDesc* sd) -> Status {
    GrtTreeState* state = StateOf(sd->table_desc);
    if (state == nullptr || state->tree == nullptr) {
      return Status::Internal("grt_beginscan on unopened index");
    }
    auto scan = std::make_unique<GrtScanState>();
    scan->ct = ScanTime(ctx);
    scan->qual = sd->qual;
    scan->dynamic = state->options.dynamic_dispatch;
    std::vector<std::pair<PredicateOp, TimeExtent>> terms;
    GRTDB_RETURN_IF_ERROR(TranslateQual(*sd->qual, &terms));
    if (terms.empty()) {
      return Status::InvalidArgument("empty qualification");
    }
    scan->first_op = terms[0].first;
    scan->first_query = terms[0].second;
    scan->residual.assign(terms.begin() + 1, terms.end());
    auto cursor_or =
        state->tree->Search(scan->first_op, scan->first_query, scan->ct);
    if (!cursor_or.ok()) return cursor_or.status();
    scan->cursor = std::move(cursor_or).value();
    state->active_scan = scan.get();
    sd->user_data = scan.release();
    return Status::OK();
  };

  fns.getnext = [](MiCallContext& ctx, MiAmScanDesc* sd, bool* has,
                   uint64_t* retrowid, Row* retrow) -> Status {
    GrtTreeState* state = StateOf(sd->table_desc);
    auto* scan = static_cast<GrtScanState*>(sd->user_data);
    if (scan == nullptr) {
      return Status::Internal("grt_getnext without grt_beginscan");
    }
    *has = false;
    while (true) {
      bool cursor_has = false;
      GRTree::Entry entry;
      GRTDB_RETURN_IF_ERROR(scan->cursor->Next(&cursor_has, &entry));
      if (!cursor_has) return Status::OK();
      bool matches = true;
      if (scan->dynamic) {
        // §5.2 extensible variant: resolve and invoke the registered
        // strategy UDRs on the candidate (costing dynamic dispatch).
        Value key = ValueFromExtent(ctx.server, entry.extent);
        GRTDB_RETURN_IF_ERROR(
            EvaluateQualOnValue(ctx, *scan->qual, key, &matches));
      } else {
        // Hard-coded residual checks (the paper's choice).
        const Region data = ResolveExtent(entry.extent, scan->ct);
        for (const auto& [op, query] : scan->residual) {
          if (!GRTree::LeafTest(op, data,
                                ResolveExtent(query, scan->ct))) {
            matches = false;
            break;
          }
        }
      }
      if (!matches) continue;
      *retrowid = entry.payload;
      retrow->clear();
      retrow->push_back(ValueFromExtent(ctx.server, entry.extent));
      *has = true;
      (void)state;
      return Status::OK();
    }
  };

  fns.rescan = [](MiCallContext& ctx, MiAmScanDesc* sd) -> Status {
    GrtTreeState* state = StateOf(sd->table_desc);
    auto* scan = static_cast<GrtScanState*>(sd->user_data);
    if (scan == nullptr || state == nullptr) {
      return Status::Internal("grt_rescan without grt_beginscan");
    }
    // A rescan restarts the scan from scratch (fresh cursor, fresh
    // duplicate filter).
    auto cursor_or =
        state->tree->Search(scan->first_op, scan->first_query, scan->ct);
    if (!cursor_or.ok()) return cursor_or.status();
    scan->cursor = std::move(cursor_or).value();
    (void)ctx;
    return Status::OK();
  };

  fns.endscan = [](MiCallContext& ctx, MiAmScanDesc* sd) -> Status {
    GrtTreeState* state = StateOf(sd->table_desc);
    auto* scan = static_cast<GrtScanState*>(sd->user_data);
    Status status = Status::OK();
    if (state != nullptr && state->tree != nullptr &&
        state->options.tree.deletion_policy ==
            DeletionPolicy::kPostponeReinsert) {
      // Deferred re-insertions happen once the scan no longer needs a
      // stable tree (§5.5).
      status = state->tree->FlushPending(ScanTime(ctx));
    }
    if (state != nullptr) state->active_scan = nullptr;
    delete scan;
    sd->user_data = nullptr;
    return status;
  };

  fns.insert = [](MiCallContext& ctx, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    TimeExtent extent;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(keyrow.at(0), &extent));
    return WithWalTxn(state, [&] {
      return state->tree->Insert(extent, rowid, BladeCurrentTime(ctx));
    });
  };

  fns.remove = [](MiCallContext& ctx, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    TimeExtent extent;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(keyrow.at(0), &extent));
    bool found = false;
    const uint64_t epoch_before = state->tree->condense_epoch();
    GRTDB_RETURN_IF_ERROR(WithWalTxn(state, [&] {
      return state->tree->Delete(extent, rowid, BladeCurrentTime(ctx), &found);
    }));
    if (!found) {
      return Status::NotFound("index entry to delete was not found");
    }
    if (state->active_scan != nullptr) {
      // §5.5 deletion policies: restart the open scan always, or only when
      // the tree actually condensed (the cursor detects epoch changes
      // itself, so only kRestartAlways needs a push here).
      if (state->options.tree.deletion_policy ==
              DeletionPolicy::kRestartAlways &&
          epoch_before == state->tree->condense_epoch()) {
        state->active_scan->cursor->Reset();
      }
    }
    return Status::OK();
  };

  fns.update = [fns](MiCallContext& ctx, MiAmTableDesc* desc,
                     const Row& oldrow, uint64_t oldrowid, const Row& newrow,
                     uint64_t newrowid) -> Status {
    // Table 5: grt_update = grt_delete + grt_insert.
    GRTDB_RETURN_IF_ERROR(fns.remove(ctx, desc, oldrow, oldrowid));
    return fns.insert(ctx, desc, newrow, newrowid);
  };

  fns.scancost = [](MiCallContext& ctx, MiAmTableDesc* desc,
                    const MiAmQualDesc* qual, double* cost) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    std::vector<std::pair<PredicateOp, TimeExtent>> terms;
    GRTDB_RETURN_IF_ERROR(TranslateQual(*qual, &terms));
    if (terms.empty()) {
      return Status::InvalidArgument("empty qualification");
    }
    auto cost_or = state->tree->EstimateScanCost(terms[0].first,
                                                 terms[0].second,
                                                 BladeCurrentTime(ctx));
    if (!cost_or.ok()) return cost_or.status();
    *cost = cost_or.value();
    // A scan never reads more nodes than the tree holds; the measured count
    // from the last UPDATE STATISTICS caps the estimate.
    IndexStatsReport measured;
    if (ctx.server->GetIndexStats(desc->index->name, &measured)) {
      *cost = std::min(*cost, static_cast<double>(measured.nodes));
    }
    return Status::OK();
  };

  fns.check = [](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    return state->tree->CheckConsistency(BladeCurrentTime(ctx));
  };

  fns.stats = [](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    GrtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    const int64_t ct = BladeCurrentTime(ctx);
    GRTreeStats stats;
    GRTDB_RETURN_IF_ERROR(
        state->tree->ComputeStats(ct, /*dead_space_samples=*/0, &stats));
    IndexStatsReport report;
    report.index = desc->index->name;
    report.access_method = desc->index->access_method;
    report.size = stats.size;
    report.height = stats.height;
    report.nodes = stats.nodes;
    report.free_list = state->store->FreeListLength();
    report.computed_at = ct;
    const size_t max_entries = state->tree->max_entries();
    uint64_t total_entries = 0;
    for (const GRTreeLevelStats& level : stats.levels) {
      total_entries += level.entries;
      IndexLevelStats out;
      out.level = level.level;
      out.nodes = level.nodes;
      out.entries = level.entries;
      if (level.nodes > 0 && max_entries > 0) {
        out.occupancy = static_cast<double>(level.entries) /
                        static_cast<double>(level.nodes * max_entries);
      }
      out.total_area = level.total_area;
      out.overlap_area = level.overlap_area;
      report.levels.push_back(out);
      if (level.level == 0) {
        report.entries = level.entries;
        report.dead_entries = level.dead_entries;
        report.growing_regions = level.growing_entries;
        report.growing_area = level.growing_area;
      }
    }
    if (stats.nodes > 0 && max_entries > 0) {
      report.occupancy = static_cast<double>(total_entries) /
                         static_cast<double>(stats.nodes * max_entries);
    }
    ctx.server->ReportIndexStats(report);
    ctx.server->trace().Tprintf(
        "grtree", 1, "stats %s: size=%llu height=%u nodes=%llu growing=%llu",
        desc->index->name.c_str(),
        static_cast<unsigned long long>(stats.size), stats.height,
        static_cast<unsigned long long>(stats.nodes),
        static_cast<unsigned long long>(report.growing_regions));
    return Status::OK();
  };

  return fns;
}

}  // namespace

Status RegisterGRTreeBlade(Server* server,
                           const GRTreeBladeOptions& options) {
  GRTDB_RETURN_IF_ERROR(RegisterTimeExtentType(server));
  if (server->catalog().FindAccessMethod(options.am_name) != nullptr) {
    return Status::AlreadyExists("access method '" + options.am_name + "'");
  }

  BladeFns fns = MakeBladeFns(options);
  BladeLibrary* library = server->blade_libraries().Load(kGrtBladeLibrary);
  const std::string& p = options.prefix;
  library->Export(p + "_create", std::any(AmSimpleFn(fns.create)));
  library->Export(p + "_drop", std::any(AmSimpleFn(fns.drop)));
  library->Export(p + "_open", std::any(AmSimpleFn(fns.open)));
  library->Export(p + "_close", std::any(AmSimpleFn(fns.close)));
  library->Export(p + "_beginscan", std::any(AmScanFn(fns.beginscan)));
  library->Export(p + "_endscan", std::any(AmScanFn(fns.endscan)));
  library->Export(p + "_rescan", std::any(AmScanFn(fns.rescan)));
  library->Export(p + "_getnext", std::any(AmGetNextFn(fns.getnext)));
  library->Export(p + "_insert", std::any(AmModifyFn(fns.insert)));
  library->Export(p + "_delete", std::any(AmModifyFn(fns.remove)));
  library->Export(p + "_update", std::any(AmUpdateFn(fns.update)));
  library->Export(p + "_scancost", std::any(AmScanCostFn(fns.scancost)));
  library->Export(p + "_stats", std::any(AmSimpleFn(fns.stats)));
  library->Export(p + "_check", std::any(AmSimpleFn(fns.check)));

  // Registration SQL — the script BladeManager runs (paper §4 Steps 2-4).
  // The support functions grt_union/grt_size/grt_intersection are shared
  // routines registered with the opaque type: the tree hard-codes their
  // logic internally (§5.2 decision), but they are declared in the
  // operator class exactly as the paper's CREATE OPCLASS example shows.
  auto fn = [&](const std::string& name, const std::string& args,
                const std::string& ret, const std::string& symbol) {
    return "CREATE FUNCTION " + name + "(" + args + ") RETURNING " + ret +
           " EXTERNAL NAME '" + std::string(kGrtBladeLibrary) + "(" + symbol +
           ")' LANGUAGE c;\n";
  };
  std::string script;
  script += fn(p + "_create", "pointer", "int", p + "_create");
  script += fn(p + "_drop", "pointer", "int", p + "_drop");
  script += fn(p + "_open", "pointer", "int", p + "_open");
  script += fn(p + "_close", "pointer", "int", p + "_close");
  script += fn(p + "_beginscan", "pointer", "int", p + "_beginscan");
  script += fn(p + "_endscan", "pointer", "int", p + "_endscan");
  script += fn(p + "_rescan", "pointer", "int", p + "_rescan");
  script += fn(p + "_getnext", "pointer", "int", p + "_getnext");
  script += fn(p + "_insert", "pointer", "int", p + "_insert");
  script += fn(p + "_delete", "pointer", "int", p + "_delete");
  script += fn(p + "_update", "pointer", "int", p + "_update");
  script += fn(p + "_scancost", "pointer", "float", p + "_scancost");
  script += fn(p + "_stats", "pointer", "int", p + "_stats");
  script += fn(p + "_check", "pointer", "int", p + "_check");
  script += "CREATE SECONDARY ACCESS_METHOD " + options.am_name + " (\n";
  script += "  am_create = " + p + "_create,\n";
  script += "  am_drop = " + p + "_drop,\n";
  script += "  am_open = " + p + "_open,\n";
  script += "  am_close = " + p + "_close,\n";
  script += "  am_beginscan = " + p + "_beginscan,\n";
  script += "  am_endscan = " + p + "_endscan,\n";
  script += "  am_rescan = " + p + "_rescan,\n";
  script += "  am_getnext = " + p + "_getnext,\n";
  script += "  am_insert = " + p + "_insert,\n";
  script += "  am_delete = " + p + "_delete,\n";
  script += "  am_update = " + p + "_update,\n";
  script += "  am_scancost = " + p + "_scancost,\n";
  script += "  am_stats = " + p + "_stats,\n";
  script += "  am_check = " + p + "_check,\n";
  script += "  am_sptype = 'S'\n);\n";
  script += "CREATE DEFAULT OPCLASS " + p + "_opclass FOR " +
            options.am_name +
            " STRATEGIES(Overlaps, Contains, ContainedIn, Equal)"
            " SUPPORT(grt_union, grt_size, grt_intersection);\n";

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, script, &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

}  // namespace grtdb
