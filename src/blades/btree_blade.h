#ifndef GRTDB_BLADES_BTREE_BLADE_H_
#define GRTDB_BLADES_BTREE_BLADE_H_

#include <string>

#include "btree/btree.h"
#include "common/status.h"
#include "server/server.h"

namespace grtdb {

// A B+-tree secondary access method over integer/date columns, built the
// way the paper describes Informix's own B-tree (§4): the operator class
// declares five strategy functions whose *positions* carry the meaning
//   1: LessThan   2: LessThanOrEqual   3: Equal
//   4: GreaterThanOrEqual   5: GreaterThan
// and one support function, compare(), which the access method resolves
// and invokes *dynamically*. Registering a substitute compare() (and
// matching strategy UDRs) under a new operator class re-orders the index —
// the paper's "0, -1, 1, -2, 2" example. RegisterAbsOpclass() installs
// exactly that ordering (by absolute value, negatives first on ties).
struct BtreeBladeOptions {
  std::string am_name = "btree_am";
  std::string prefix = "bt";
  BtreeIndex::Options tree;
};

Status RegisterBtreeBlade(Server* server,
                          const BtreeBladeOptions& options = {});

// Registers the alternative operator class bt_abs_opclass (strategies
// AbsLessThan .. AbsGreaterThan, support abs_compare) for an already
// registered btree_am — no purpose-function changes required, as §4
// promises.
Status RegisterAbsOpclass(Server* server,
                          const std::string& am_name = "btree_am");

}  // namespace grtdb

#endif  // GRTDB_BLADES_BTREE_BLADE_H_
