#include "blades/rstar_blade.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "blades/locking_store.h"
#include "blades/timeextent.h"
#include "storage/layout.h"
#include "storage/node_cache.h"
#include "temporal/predicates.h"

namespace grtdb {

Rect TransformExtent(const TimeExtent& extent, int64_t max_timestamp) {
  return Rect::Of(
      extent.tt_begin.chronon(),
      extent.tt_end.is_uc() ? max_timestamp : extent.tt_end.chronon(),
      extent.vt_begin.chronon(),
      extent.vt_end.is_now() ? max_timestamp : extent.vt_end.chronon());
}

namespace {

struct RstScanState {
  // The R*-tree interface is callback-based; the scan materializes the
  // candidate rowids at beginscan and verifies exact geometry in getnext.
  std::vector<std::pair<Rect, uint64_t>> candidates;
  size_t next = 0;
  const MiAmQualDesc* qual = nullptr;
  int64_t ct = 0;
};

struct RstTreeState {
  RStarBladeOptions options;
  std::unique_ptr<NodeStore> base_store;
  // Frame pool above the base store; locking decorates the cache so the
  // destruction order (locking → cache → base) keeps write-back safe.
  std::unique_ptr<NodeCache> node_cache;
  std::unique_ptr<LockingNodeStore> locking_store;
  NodeStore* store = nullptr;
  std::unique_ptr<RStarTree> tree;
};

RstTreeState* StateOf(MiAmTableDesc* desc) {
  return static_cast<RstTreeState*>(desc->user_data);
}

std::vector<uint8_t> EncodeRecord(uint64_t lo, NodeId anchor) {
  std::vector<uint8_t> out(16);
  StoreU64(out.data(), lo);
  StoreU64(out.data() + 8, anchor);
  return out;
}

// Conservative index filter: both the data's and the query's transformed
// rectangles cover their true regions, so rectangle intersection is
// necessary for every predicate; the exact check runs on the base tuples.
Status QueryRectOf(const MiAmQualDesc& qual, int64_t max_timestamp,
                   Rect* out, std::vector<const QualTerm*>* terms) {
  switch (qual.op) {
    case MiAmQualDesc::Op::kTerm: {
      TimeExtent query;
      GRTDB_RETURN_IF_ERROR(ExtentFromValue(qual.term.constant, &query));
      const Rect rect = TransformExtent(query, max_timestamp);
      // For conjunctions the index filters with the *first* term's
      // rectangle only (intersecting the query rectangles would not be
      // conservative); getnext verifies the full qualification exactly.
      if (out->IsEmpty()) *out = rect;
      terms->push_back(&qual.term);
      return Status::OK();
    }
    case MiAmQualDesc::Op::kAnd:
      for (const MiAmQualDesc& child : qual.children) {
        GRTDB_RETURN_IF_ERROR(
            QueryRectOf(child, max_timestamp, out, terms));
      }
      return Status::OK();
    case MiAmQualDesc::Op::kOr:
      return Status::NotSupported(
          "rstar_am scans do not accept disjunctive qualifications");
  }
  return Status::Internal("bad qualification");
}

struct BladeFns {
  AmSimpleFn create, drop, open, close, check, stats;
  AmScanFn beginscan, endscan, rescan;
  AmGetNextFn getnext;
  AmModifyFn insert, remove;
  AmUpdateFn update;
  AmScanCostFn scancost;
};

BladeFns MakeBladeFns(const RStarBladeOptions& options) {
  BladeFns fns;
  const std::string am_name = options.am_name;

  auto make_store = [options](MiCallContext& ctx, RstTreeState* state,
                              const IndexDef* index, LoHandle handle,
                              LoHandle* out_handle) -> Status {
    Sbspace* sbspace = ctx.server->FindSbspace(index->space);
    if (sbspace == nullptr) {
      return Status::NotFound("sbspace '" + index->space + "'");
    }
    auto store_or = SingleLoNodeStore::Open(sbspace, handle);
    if (!store_or.ok()) return store_or.status();
    *out_handle = store_or.value()->handle();
    state->base_store = std::move(store_or).value();
    NodeStore* tree_store = state->base_store.get();
    if (options.node_cache_pages > 0) {
      state->node_cache =
          std::make_unique<NodeCache>(tree_store, options.node_cache_pages);
      state->node_cache->set_trace(&ctx.server->trace());
      state->node_cache->set_heat(&ctx.server->heat_tracker(), index->name);
      if (ctx.server->observability_enabled()) {
        state->node_cache->set_metrics(&ctx.server->metrics());
      }
      tree_store = state->node_cache.get();
    }
    state->locking_store = std::make_unique<LockingNodeStore>(
        tree_store, &ctx.server->lock_manager(), ctx.session);
    state->store = state->locking_store.get();
    return Status::OK();
  };

  auto open_tree = [options, am_name, make_store](
                       MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    auto state = std::make_unique<RstTreeState>();
    state->options = options;
    std::vector<uint8_t> bytes;
    GRTDB_RETURN_IF_ERROR(
        ctx.server->AmCatalogGet(am_name, desc->index->name, &bytes));
    if (bytes.size() != 16) {
      return Status::Corruption("bad rstar_am catalog record");
    }
    LoHandle handle{LoadU64(bytes.data())};
    const NodeId anchor = LoadU64(bytes.data() + 8);
    LoHandle out_handle;
    GRTDB_RETURN_IF_ERROR(
        make_store(ctx, state.get(), desc->index, handle, &out_handle));
    auto tree_or =
        RStarTree::Open(state->store, anchor, options.tree);
    if (!tree_or.ok()) return tree_or.status();
    state->tree = std::move(tree_or).value();
    desc->user_data = state.release();
    return Status::OK();
  };

  fns.create = [options, am_name, make_store](MiCallContext& ctx,
                                              MiAmTableDesc* desc) -> Status {
    if (desc->key_types.size() != 1 ||
        desc->key_types[0].base != TypeDesc::Base::kOpaque ||
        desc->key_types[0].opaque_id != TimeExtentTypeId(ctx.server)) {
      return Status::InvalidArgument(
          am_name + " indexes exactly one grt_timeextent column");
    }
    auto state = std::make_unique<RstTreeState>();
    state->options = options;
    LoHandle handle;
    GRTDB_RETURN_IF_ERROR(
        make_store(ctx, state.get(), desc->index, LoHandle{}, &handle));
    NodeId anchor;
    auto tree_or = RStarTree::Create(state->store, options.tree, &anchor);
    if (!tree_or.ok()) return tree_or.status();
    state->tree = std::move(tree_or).value();
    GRTDB_RETURN_IF_ERROR(ctx.server->AmCatalogPut(
        am_name, desc->index->name, EncodeRecord(handle.id, anchor)));
    desc->user_data = state.release();
    return Status::OK();
  };

  fns.open = [open_tree](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    if (desc->just_created || desc->user_data != nullptr) return Status::OK();
    return open_tree(ctx, desc);
  };

  fns.close = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::OK();
    Status status = Status::OK();
    // Write back dirty cached nodes while this statement's exclusive LO
    // locks are still held; the next opener builds a fresh cache.
    if (state->node_cache != nullptr) {
      status = state->node_cache->Flush();
    }
    if (state->locking_store != nullptr) {
      state->locking_store->ReleaseSharedOnClose();
    }
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.drop = [am_name, open_tree](MiCallContext& ctx,
                                  MiAmTableDesc* desc) -> Status {
    if (desc->user_data == nullptr) {
      GRTDB_RETURN_IF_ERROR(open_tree(ctx, desc));
    }
    RstTreeState* state = StateOf(desc);
    Status status = state->tree->Drop();
    std::vector<uint8_t> bytes;
    if (status.ok() &&
        ctx.server->AmCatalogGet(am_name, desc->index->name, &bytes).ok() &&
        bytes.size() == 16) {
      Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
      if (sbspace != nullptr) {
        status = sbspace->DropLo(LoHandle{LoadU64(bytes.data())});
      }
    }
    Status forget = ctx.server->AmCatalogDelete(am_name, desc->index->name);
    if (status.ok()) status = forget;
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.beginscan = [options](MiCallContext& ctx, MiAmScanDesc* sd) -> Status {
    RstTreeState* state = StateOf(sd->table_desc);
    if (state == nullptr || state->tree == nullptr) {
      return Status::Internal("rst_beginscan on unopened index");
    }
    auto scan = std::make_unique<RstScanState>();
    scan->ct = BladeCurrentTime(ctx);
    scan->qual = sd->qual;
    Rect query;
    std::vector<const QualTerm*> terms;
    GRTDB_RETURN_IF_ERROR(
        QueryRectOf(*sd->qual, options.max_timestamp, &query, &terms));
    GRTDB_RETURN_IF_ERROR(state->tree->Search(
        query, [&scan](const RStarTree::Entry& entry) {
          scan->candidates.emplace_back(entry.rect, entry.payload);
          return true;
        }));
    sd->user_data = scan.release();
    return Status::OK();
  };

  fns.getnext = [](MiCallContext& ctx, MiAmScanDesc* sd, bool* has,
                   uint64_t* retrowid, Row* retrow) -> Status {
    auto* scan = static_cast<RstScanState*>(sd->user_data);
    if (scan == nullptr) {
      return Status::Internal("rst_getnext without rst_beginscan");
    }
    *has = false;
    Table* table = sd->table_desc->table;
    const int key_column = sd->table_desc->key_columns.at(0);
    while (scan->next < scan->candidates.size()) {
      const auto& [rect, rowid] = scan->candidates[scan->next++];
      // The transformed leaf rectangles over-approximate, so every
      // candidate is verified against the exact geometry of the data
      // tuple (§3's final step).
      Row base_row;
      GRTDB_RETURN_IF_ERROR(
          table->Get(RecordId::Unpack(rowid), &base_row));
      const Value& key = base_row.at(static_cast<size_t>(key_column));
      bool matches = false;
      GRTDB_RETURN_IF_ERROR(
          EvaluateQualOnValue(ctx, *scan->qual, key, &matches));
      if (!matches) continue;
      *retrowid = rowid;
      retrow->clear();
      retrow->push_back(key);
      *has = true;
      return Status::OK();
    }
    return Status::OK();
  };

  fns.rescan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    auto* scan = static_cast<RstScanState*>(sd->user_data);
    if (scan == nullptr) return Status::Internal("rescan without beginscan");
    scan->next = 0;
    return Status::OK();
  };

  fns.endscan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    delete static_cast<RstScanState*>(sd->user_data);
    sd->user_data = nullptr;
    return Status::OK();
  };

  fns.insert = [options](MiCallContext&, MiAmTableDesc* desc,
                         const Row& keyrow, uint64_t rowid) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    TimeExtent extent;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(keyrow.at(0), &extent));
    return state->tree->Insert(
        TransformExtent(extent, options.max_timestamp), rowid);
  };

  fns.remove = [options](MiCallContext&, MiAmTableDesc* desc,
                         const Row& keyrow, uint64_t rowid) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    TimeExtent extent;
    GRTDB_RETURN_IF_ERROR(ExtentFromValue(keyrow.at(0), &extent));
    bool found = false;
    GRTDB_RETURN_IF_ERROR(state->tree->Delete(
        TransformExtent(extent, options.max_timestamp), rowid, &found));
    if (!found) {
      return Status::NotFound("index entry to delete was not found");
    }
    return Status::OK();
  };

  fns.update = [fns](MiCallContext& ctx, MiAmTableDesc* desc,
                     const Row& oldrow, uint64_t oldrowid, const Row& newrow,
                     uint64_t newrowid) -> Status {
    GRTDB_RETURN_IF_ERROR(fns.remove(ctx, desc, oldrow, oldrowid));
    return fns.insert(ctx, desc, newrow, newrowid);
  };

  fns.scancost = [options](MiCallContext& ctx, MiAmTableDesc* desc,
                           const MiAmQualDesc* qual, double* cost) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    Rect query;
    std::vector<const QualTerm*> terms;
    GRTDB_RETURN_IF_ERROR(
        QueryRectOf(*qual, options.max_timestamp, &query, &terms));
    auto cost_or = state->tree->EstimateScanCost(query);
    if (!cost_or.ok()) return cost_or.status();
    *cost = cost_or.value();
    // Cap the estimate at the node count measured by UPDATE STATISTICS.
    IndexStatsReport measured;
    if (ctx.server->GetIndexStats(desc->index->name, &measured)) {
      *cost = std::min(*cost, static_cast<double>(measured.nodes));
    }
    return Status::OK();
  };

  fns.check = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    return state->tree->CheckConsistency();
  };

  fns.stats = [](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    RstTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    std::vector<RStarLevelStats> levels;
    GRTDB_RETURN_IF_ERROR(state->tree->LevelStats(&levels));
    IndexStatsReport report;
    report.index = desc->index->name;
    report.access_method = desc->index->access_method;
    report.size = state->tree->size();
    report.height = state->tree->height();
    report.free_list = state->store->FreeListLength();
    report.computed_at = BladeCurrentTime(ctx);
    const size_t max_entries = state->tree->max_entries();
    uint64_t total_entries = 0;
    for (const RStarLevelStats& level : levels) {
      report.nodes += level.nodes;
      total_entries += level.entries;
      if (level.level == 0) report.entries = level.entries;
      IndexLevelStats out;
      out.level = level.level;
      out.nodes = level.nodes;
      out.entries = level.entries;
      if (level.nodes > 0 && max_entries > 0) {
        out.occupancy = static_cast<double>(level.entries) /
                        static_cast<double>(level.nodes * max_entries);
      }
      out.total_area = level.total_area;
      out.overlap_area = level.overlap_area;
      report.levels.push_back(out);
    }
    if (report.nodes > 0 && max_entries > 0) {
      report.occupancy = static_cast<double>(total_entries) /
                         static_cast<double>(report.nodes * max_entries);
    }
    ctx.server->ReportIndexStats(report);
    return Status::OK();
  };

  return fns;
}

}  // namespace

Status RegisterRStarBlade(Server* server, const RStarBladeOptions& options) {
  GRTDB_RETURN_IF_ERROR(RegisterTimeExtentType(server));
  if (server->catalog().FindAccessMethod(options.am_name) != nullptr) {
    return Status::AlreadyExists("access method '" + options.am_name + "'");
  }

  BladeFns fns = MakeBladeFns(options);
  BladeLibrary* library = server->blade_libraries().Load(kGrtBladeLibrary);
  const std::string& p = options.prefix;
  library->Export(p + "_create", std::any(AmSimpleFn(fns.create)));
  library->Export(p + "_drop", std::any(AmSimpleFn(fns.drop)));
  library->Export(p + "_open", std::any(AmSimpleFn(fns.open)));
  library->Export(p + "_close", std::any(AmSimpleFn(fns.close)));
  library->Export(p + "_beginscan", std::any(AmScanFn(fns.beginscan)));
  library->Export(p + "_endscan", std::any(AmScanFn(fns.endscan)));
  library->Export(p + "_rescan", std::any(AmScanFn(fns.rescan)));
  library->Export(p + "_getnext", std::any(AmGetNextFn(fns.getnext)));
  library->Export(p + "_insert", std::any(AmModifyFn(fns.insert)));
  library->Export(p + "_delete", std::any(AmModifyFn(fns.remove)));
  library->Export(p + "_update", std::any(AmUpdateFn(fns.update)));
  library->Export(p + "_scancost", std::any(AmScanCostFn(fns.scancost)));
  library->Export(p + "_stats", std::any(AmSimpleFn(fns.stats)));
  library->Export(p + "_check", std::any(AmSimpleFn(fns.check)));

  auto fn = [&](const std::string& name, const std::string& symbol) {
    return "CREATE FUNCTION " + name +
           "(pointer) RETURNING int EXTERNAL NAME '" +
           std::string(kGrtBladeLibrary) + "(" + symbol +
           ")' LANGUAGE c;\n";
  };
  std::string script;
  for (const char* suffix :
       {"_create", "_drop", "_open", "_close", "_beginscan", "_endscan",
        "_rescan", "_getnext", "_insert", "_delete", "_update", "_scancost",
        "_stats", "_check"}) {
    script += fn(p + suffix, p + suffix);
  }
  script += "CREATE SECONDARY ACCESS_METHOD " + options.am_name + " (\n";
  script += "  am_create = " + p + "_create,\n";
  script += "  am_drop = " + p + "_drop,\n";
  script += "  am_open = " + p + "_open,\n";
  script += "  am_close = " + p + "_close,\n";
  script += "  am_beginscan = " + p + "_beginscan,\n";
  script += "  am_endscan = " + p + "_endscan,\n";
  script += "  am_rescan = " + p + "_rescan,\n";
  script += "  am_getnext = " + p + "_getnext,\n";
  script += "  am_insert = " + p + "_insert,\n";
  script += "  am_delete = " + p + "_delete,\n";
  script += "  am_update = " + p + "_update,\n";
  script += "  am_scancost = " + p + "_scancost,\n";
  script += "  am_stats = " + p + "_stats,\n";
  script += "  am_check = " + p + "_check,\n";
  script += "  am_sptype = 'S'\n);\n";
  script += "CREATE DEFAULT OPCLASS " + p + "_opclass FOR " +
            options.am_name +
            " STRATEGIES(Overlaps, Contains, ContainedIn, Equal) SUPPORT(" +
            "grt_union, grt_size, grt_intersection);\n";

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, script, &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

}  // namespace grtdb
