#include "blades/btree_blade.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "blades/locking_store.h"
#include "common/strings.h"
#include "storage/layout.h"

namespace grtdb {

namespace {

// B-tree strategy slots (Informix numbering; position in the opclass's
// STRATEGIES list is what matters, not the function name).
enum class Slot {
  kLessThan = 1,
  kLessThanOrEqual = 2,
  kEqual = 3,
  kGreaterThanOrEqual = 4,
  kGreaterThan = 5,
};

struct BtScanState {
  BtreeIndex::Range range;
  std::vector<BtreeIndex::Entry> results;
  size_t next = 0;
};

struct BtTreeState {
  std::unique_ptr<NodeStore> base_store;
  std::unique_ptr<LockingNodeStore> locking_store;
  NodeStore* store = nullptr;
  std::unique_ptr<BtreeIndex> tree;
  // The dynamically resolved compare() of the index's operator class.
  BtreeCompare cmp;
  TypeDesc key_type;
};

BtTreeState* StateOf(MiAmTableDesc* desc) {
  return static_cast<BtTreeState*>(desc->user_data);
}

Status KeyFromValue(const Value& value, int64_t* out) {
  if (value.is_null()) {
    return Status::InvalidArgument("NULL keys are not indexable");
  }
  switch (value.base()) {
    case TypeDesc::Base::kInteger:
      *out = value.integer();
      return Status::OK();
    case TypeDesc::Base::kDate:
      *out = value.date();
      return Status::OK();
    default:
      return Status::InvalidArgument(
          "btree_am indexes integer or date columns");
  }
}

Value ValueFromKey(const TypeDesc& type, int64_t key) {
  return type.base == TypeDesc::Base::kDate ? Value::Date(key)
                                            : Value::Integer(key);
}

// Resolves the operator class's compare() support function and wraps it
// as a BtreeCompare. Every key comparison goes through the registered UDR
// — the dynamic resolution the paper describes for Informix's B-tree.
Status ResolveCompare(MiCallContext& ctx, const IndexDef* index,
                      const TypeDesc& key_type, BtreeCompare* out) {
  const OpClassDef* opclass =
      ctx.server->catalog().FindOpClass(index->opclasses[0]);
  if (opclass == nullptr || opclass->supports.empty()) {
    return Status::InvalidArgument(
        "btree_am requires an operator class with a compare() support "
        "function");
  }
  const TypeDesc arg_types[2] = {key_type, key_type};
  const UdrDef* compare =
      ctx.server->udrs().Find(opclass->supports[0], arg_types);
  if (compare == nullptr || !compare->fn) {
    return Status::NotFound("support function '" + opclass->supports[0] +
                            "(" + ctx.server->types().NameOf(key_type) +
                            ", ...)' is not registered");
  }
  Server* server = ctx.server;
  ServerSession* session = ctx.session;
  const int64_t statement_time = ctx.statement_time;
  UdrFunction fn = compare->fn;
  *out = [server, session, statement_time, fn,
          key_type](int64_t a, int64_t b) -> int {
    MiCallContext call_ctx{server, session, statement_time};
    const Value args[2] = {ValueFromKey(key_type, a),
                           ValueFromKey(key_type, b)};
    StatusOr<Value> result = fn(call_ctx, args);
    if (!result.ok() || result.value().is_null()) {
      // compare() must be total; treat failures as equality so scans
      // degrade to over-delivery rather than corruption.
      return 0;
    }
    return static_cast<int>(result.value().integer());
  };
  return Status::OK();
}

// Translates a qualification into a key range using the strategy's
// *position* in the index's operator class.
Status TranslateQual(MiCallContext& ctx, const IndexDef* index,
                     const MiAmQualDesc& qual, const BtreeCompare& cmp,
                     BtreeIndex::Range* range) {
  switch (qual.op) {
    case MiAmQualDesc::Op::kTerm: {
      const OpClassDef* opclass =
          ctx.server->catalog().FindOpClass(index->opclasses[0]);
      if (opclass == nullptr) {
        return Status::Internal("index lost its operator class");
      }
      int position = 0;
      for (size_t i = 0; i < opclass->strategies.size(); ++i) {
        if (EqualsIgnoreCase(opclass->strategies[i],
                             qual.term.func->name)) {
          position = static_cast<int>(i) + 1;
          break;
        }
      }
      if (position < 1 || position > 5) {
        return Status::NotSupported("strategy function '" +
                                    qual.term.func->name +
                                    "' has no B-tree slot");
      }
      Slot slot = static_cast<Slot>(position);
      if (!qual.term.column_first) {
        // f(const, column) mirrors the comparison.
        switch (slot) {
          case Slot::kLessThan:
            slot = Slot::kGreaterThan;
            break;
          case Slot::kLessThanOrEqual:
            slot = Slot::kGreaterThanOrEqual;
            break;
          case Slot::kGreaterThanOrEqual:
            slot = Slot::kLessThanOrEqual;
            break;
          case Slot::kGreaterThan:
            slot = Slot::kLessThan;
            break;
          case Slot::kEqual:
            break;
        }
      }
      int64_t key = 0;
      GRTDB_RETURN_IF_ERROR(KeyFromValue(qual.term.constant, &key));
      auto tighten_lo = [&](int64_t value, bool strict) {
        if (!range->lo.has_value() || cmp(value, *range->lo) > 0 ||
            (cmp(value, *range->lo) == 0 && strict)) {
          range->lo = value;
          range->lo_strict = strict;
        }
      };
      auto tighten_hi = [&](int64_t value, bool strict) {
        if (!range->hi.has_value() || cmp(value, *range->hi) < 0 ||
            (cmp(value, *range->hi) == 0 && strict)) {
          range->hi = value;
          range->hi_strict = strict;
        }
      };
      switch (slot) {
        case Slot::kLessThan:
          tighten_hi(key, true);
          break;
        case Slot::kLessThanOrEqual:
          tighten_hi(key, false);
          break;
        case Slot::kEqual:
          tighten_lo(key, false);
          tighten_hi(key, false);
          break;
        case Slot::kGreaterThanOrEqual:
          tighten_lo(key, false);
          break;
        case Slot::kGreaterThan:
          tighten_lo(key, true);
          break;
      }
      return Status::OK();
    }
    case MiAmQualDesc::Op::kAnd:
      for (const MiAmQualDesc& child : qual.children) {
        GRTDB_RETURN_IF_ERROR(TranslateQual(ctx, index, child, cmp, range));
      }
      return Status::OK();
    case MiAmQualDesc::Op::kOr:
      return Status::NotSupported(
          "btree_am scans do not accept disjunctive qualifications");
  }
  return Status::Internal("bad qualification");
}

struct BladeFns {
  AmSimpleFn create, drop, open, close, check, stats;
  AmScanFn beginscan, endscan, rescan;
  AmGetNextFn getnext;
  AmModifyFn insert, remove;
  AmUpdateFn update;
  AmScanCostFn scancost;
};

BladeFns MakeBladeFns(const BtreeBladeOptions& options) {
  BladeFns fns;
  const std::string am_name = options.am_name;

  auto make_state = [options, am_name](MiCallContext& ctx,
                                       MiAmTableDesc* desc, bool creating,
                                       LoHandle handle,
                                       NodeId anchor) -> Status {
    auto state = std::make_unique<BtTreeState>();
    state->key_type = desc->key_types.at(0);
    GRTDB_RETURN_IF_ERROR(
        ResolveCompare(ctx, desc->index, state->key_type, &state->cmp));
    Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
    if (sbspace == nullptr) {
      return Status::NotFound("sbspace '" + desc->index->space + "'");
    }
    auto store_or = SingleLoNodeStore::Open(sbspace, handle);
    if (!store_or.ok()) return store_or.status();
    const LoHandle opened = store_or.value()->handle();
    state->base_store = std::move(store_or).value();
    state->locking_store = std::make_unique<LockingNodeStore>(
        state->base_store.get(), &ctx.server->lock_manager(), ctx.session);
    state->store = state->locking_store.get();
    if (creating) {
      NodeId new_anchor;
      auto tree_or =
          BtreeIndex::Create(state->store, options.tree, &new_anchor);
      if (!tree_or.ok()) return tree_or.status();
      state->tree = std::move(tree_or).value();
      std::vector<uint8_t> record(16);
      StoreU64(record.data(), opened.id);
      StoreU64(record.data() + 8, new_anchor);
      GRTDB_RETURN_IF_ERROR(
          ctx.server->AmCatalogPut(am_name, desc->index->name, record));
    } else {
      auto tree_or = BtreeIndex::Open(state->store, anchor, options.tree);
      if (!tree_or.ok()) return tree_or.status();
      state->tree = std::move(tree_or).value();
    }
    desc->user_data = state.release();
    return Status::OK();
  };

  fns.create = [make_state, am_name](MiCallContext& ctx,
                                     MiAmTableDesc* desc) -> Status {
    if (desc->key_types.size() != 1 ||
        (desc->key_types[0].base != TypeDesc::Base::kInteger &&
         desc->key_types[0].base != TypeDesc::Base::kDate)) {
      return Status::InvalidArgument(
          am_name + " indexes exactly one integer or date column");
    }
    return make_state(ctx, desc, /*creating=*/true, LoHandle{},
                      kInvalidNodeId);
  };

  auto open_existing = [make_state, am_name](MiCallContext& ctx,
                                             MiAmTableDesc* desc) -> Status {
    std::vector<uint8_t> record;
    GRTDB_RETURN_IF_ERROR(
        ctx.server->AmCatalogGet(am_name, desc->index->name, &record));
    if (record.size() != 16) {
      return Status::Corruption("bad btree_am catalog record");
    }
    return make_state(ctx, desc, /*creating=*/false,
                      LoHandle{LoadU64(record.data())},
                      LoadU64(record.data() + 8));
  };

  fns.open = [open_existing](MiCallContext& ctx,
                             MiAmTableDesc* desc) -> Status {
    if (desc->just_created || desc->user_data != nullptr) return Status::OK();
    return open_existing(ctx, desc);
  };

  fns.close = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::OK();
    if (state->locking_store != nullptr) {
      state->locking_store->ReleaseSharedOnClose();
    }
    delete state;
    desc->user_data = nullptr;
    return Status::OK();
  };

  fns.drop = [open_existing, am_name](MiCallContext& ctx,
                                      MiAmTableDesc* desc) -> Status {
    if (desc->user_data == nullptr) {
      GRTDB_RETURN_IF_ERROR(open_existing(ctx, desc));
    }
    BtTreeState* state = StateOf(desc);
    Status status = state->tree->Drop();
    std::vector<uint8_t> record;
    if (status.ok() &&
        ctx.server->AmCatalogGet(am_name, desc->index->name, &record).ok() &&
        record.size() == 16) {
      Sbspace* sbspace = ctx.server->FindSbspace(desc->index->space);
      if (sbspace != nullptr) {
        status = sbspace->DropLo(LoHandle{LoadU64(record.data())});
      }
    }
    Status forget = ctx.server->AmCatalogDelete(am_name, desc->index->name);
    if (status.ok()) status = forget;
    delete state;
    desc->user_data = nullptr;
    return status;
  };

  fns.beginscan = [](MiCallContext& ctx, MiAmScanDesc* sd) -> Status {
    BtTreeState* state = StateOf(sd->table_desc);
    if (state == nullptr) return Status::Internal("index not open");
    auto scan = std::make_unique<BtScanState>();
    GRTDB_RETURN_IF_ERROR(TranslateQual(ctx, sd->table_desc->index,
                                        *sd->qual, state->cmp,
                                        &scan->range));
    GRTDB_RETURN_IF_ERROR(
        state->tree->ScanAll(scan->range, state->cmp, &scan->results));
    sd->user_data = scan.release();
    return Status::OK();
  };

  fns.getnext = [](MiCallContext& ctx, MiAmScanDesc* sd, bool* has,
                   uint64_t* retrowid, Row* retrow) -> Status {
    BtTreeState* state = StateOf(sd->table_desc);
    auto* scan = static_cast<BtScanState*>(sd->user_data);
    if (scan == nullptr || state == nullptr) {
      return Status::Internal("bt_getnext without bt_beginscan");
    }
    (void)ctx;
    *has = false;
    if (scan->next >= scan->results.size()) return Status::OK();
    const BtreeIndex::Entry& entry = scan->results[scan->next++];
    *retrowid = entry.payload;
    retrow->clear();
    retrow->push_back(ValueFromKey(state->key_type, entry.key));
    *has = true;
    return Status::OK();
  };

  fns.rescan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    auto* scan = static_cast<BtScanState*>(sd->user_data);
    if (scan == nullptr) return Status::Internal("rescan without beginscan");
    scan->next = 0;
    return Status::OK();
  };

  fns.endscan = [](MiCallContext&, MiAmScanDesc* sd) -> Status {
    delete static_cast<BtScanState*>(sd->user_data);
    sd->user_data = nullptr;
    return Status::OK();
  };

  fns.insert = [](MiCallContext&, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    int64_t key = 0;
    GRTDB_RETURN_IF_ERROR(KeyFromValue(keyrow.at(0), &key));
    return state->tree->Insert(key, rowid, state->cmp);
  };

  fns.remove = [](MiCallContext&, MiAmTableDesc* desc, const Row& keyrow,
                  uint64_t rowid) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    int64_t key = 0;
    GRTDB_RETURN_IF_ERROR(KeyFromValue(keyrow.at(0), &key));
    bool found = false;
    GRTDB_RETURN_IF_ERROR(state->tree->Delete(key, rowid, state->cmp,
                                              &found));
    if (!found) return Status::NotFound("B+-tree entry to delete not found");
    return Status::OK();
  };

  fns.update = [fns](MiCallContext& ctx, MiAmTableDesc* desc,
                     const Row& oldrow, uint64_t oldrowid, const Row& newrow,
                     uint64_t newrowid) -> Status {
    GRTDB_RETURN_IF_ERROR(fns.remove(ctx, desc, oldrow, oldrowid));
    return fns.insert(ctx, desc, newrow, newrowid);
  };

  fns.scancost = [](MiCallContext& ctx, MiAmTableDesc* desc,
                    const MiAmQualDesc* qual, double* cost) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    BtreeIndex::Range range;
    GRTDB_RETURN_IF_ERROR(
        TranslateQual(ctx, desc->index, *qual, state->cmp, &range));
    auto cost_or = state->tree->EstimateScanCost(range, state->cmp);
    if (!cost_or.ok()) return cost_or.status();
    *cost = cost_or.value();
    // Cap the estimate at the node count measured by UPDATE STATISTICS.
    IndexStatsReport measured;
    if (ctx.server->GetIndexStats(desc->index->name, &measured)) {
      *cost = std::min(*cost, static_cast<double>(measured.nodes));
    }
    return Status::OK();
  };

  fns.check = [](MiCallContext&, MiAmTableDesc* desc) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    return state->tree->CheckConsistency(state->cmp);
  };

  fns.stats = [](MiCallContext& ctx, MiAmTableDesc* desc) -> Status {
    BtTreeState* state = StateOf(desc);
    if (state == nullptr) return Status::Internal("index not open");
    std::vector<BtreeLevelStats> levels;
    GRTDB_RETURN_IF_ERROR(state->tree->LevelStats(&levels));
    IndexStatsReport report;
    report.index = desc->index->name;
    report.access_method = desc->index->access_method;
    report.size = state->tree->size();
    report.height = state->tree->height();
    report.free_list = state->store->FreeListLength();
    report.computed_at = ctx.statement_time;
    const size_t max_entries = state->tree->max_entries();
    uint64_t total_entries = 0;
    for (const BtreeLevelStats& level : levels) {
      report.nodes += level.nodes;
      total_entries += level.entries;
      if (level.level == 0) report.entries = level.entries;
      IndexLevelStats out;
      out.level = level.level;
      out.nodes = level.nodes;
      out.entries = level.entries;
      if (level.nodes > 0 && max_entries > 0) {
        out.occupancy = static_cast<double>(level.entries) /
                        static_cast<double>(level.nodes * max_entries);
      }
      report.levels.push_back(out);
    }
    if (report.nodes > 0 && max_entries > 0) {
      report.occupancy = static_cast<double>(total_entries) /
                         static_cast<double>(report.nodes * max_entries);
    }
    ctx.server->ReportIndexStats(report);
    return Status::OK();
  };

  return fns;
}

// A comparison UDR over two same-typed arguments (integer or date).
UdrFunction MakeComparisonUdr(int want_sign, bool or_equal,
                              int (*order)(int64_t, int64_t)) {
  return [want_sign, or_equal, order](
             MiCallContext&, std::span<const Value> args) -> StatusOr<Value> {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Status::InvalidArgument("comparison takes two non-null keys");
    }
    const int64_t a = args[0].base() == TypeDesc::Base::kDate
                          ? args[0].date()
                          : args[0].integer();
    const int64_t b = args[1].base() == TypeDesc::Base::kDate
                          ? args[1].date()
                          : args[1].integer();
    const int sign = order(a, b);
    return Value::Boolean(sign == want_sign || (or_equal && sign == 0));
  };
}

UdrFunction MakeCompareUdr(int (*order)(int64_t, int64_t)) {
  return [order](MiCallContext&,
                 std::span<const Value> args) -> StatusOr<Value> {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Status::InvalidArgument("compare takes two non-null keys");
    }
    const int64_t a = args[0].base() == TypeDesc::Base::kDate
                          ? args[0].date()
                          : args[0].integer();
    const int64_t b = args[1].base() == TypeDesc::Base::kDate
                          ? args[1].date()
                          : args[1].integer();
    return Value::Integer(order(a, b));
  };
}

// The paper's alternative ordering "0, -1, 1, -2, 2": by absolute value,
// negatives before positives on ties.
int AbsOrder(int64_t a, int64_t b) {
  const int64_t abs_a = a < 0 ? -a : a;
  const int64_t abs_b = b < 0 ? -b : b;
  if (abs_a != abs_b) return abs_a < abs_b ? -1 : 1;
  return NaturalCompare(a, b);
}

Status RegisterComparisonFamily(Server* server, const std::string& library,
                                const std::string& symbol_prefix,
                                const std::string& sql_prefix,
                                int (*order)(int64_t, int64_t),
                                std::string* script) {
  BladeLibrary* blade_library = server->blade_libraries().Load(library);
  struct Spec {
    const char* name;
    int sign;
    bool or_equal;
  };
  const Spec specs[] = {
      {"LessThan", -1, false},          {"LessThanOrEqual", -1, true},
      {"Equal", 0, true},               {"GreaterThanOrEqual", 1, true},
      {"GreaterThan", 1, false},
  };
  for (const Spec& spec : specs) {
    blade_library->Export(symbol_prefix + "_" + ToLower(spec.name),
                          std::any(MakeComparisonUdr(spec.sign, spec.or_equal,
                                                     order)));
    for (const char* type : {"integer", "date"}) {
      *script += "CREATE FUNCTION " + sql_prefix + spec.name + "(" + type +
                 ", " + type + ") RETURNING boolean EXTERNAL NAME '" +
                 library + "(" + symbol_prefix + "_" + ToLower(spec.name) +
                 ")' LANGUAGE c;\n";
    }
  }
  blade_library->Export(symbol_prefix + "_compare",
                        std::any(MakeCompareUdr(order)));
  for (const char* type : {"integer", "date"}) {
    *script += "CREATE FUNCTION " + sql_prefix + "compare(" +
               std::string(type) + ", " + type +
               ") RETURNING int EXTERNAL NAME '" + library + "(" +
               symbol_prefix + "_compare)' LANGUAGE c;\n";
  }
  return Status::OK();
}

constexpr char kBtreeLibrary[] = "usr/functions/btree.bld";

}  // namespace

Status RegisterBtreeBlade(Server* server, const BtreeBladeOptions& options) {
  if (server->catalog().FindAccessMethod(options.am_name) != nullptr) {
    return Status::AlreadyExists("access method '" + options.am_name + "'");
  }
  BladeFns fns = MakeBladeFns(options);
  BladeLibrary* library = server->blade_libraries().Load(kBtreeLibrary);
  const std::string& p = options.prefix;
  library->Export(p + "_create", std::any(AmSimpleFn(fns.create)));
  library->Export(p + "_drop", std::any(AmSimpleFn(fns.drop)));
  library->Export(p + "_open", std::any(AmSimpleFn(fns.open)));
  library->Export(p + "_close", std::any(AmSimpleFn(fns.close)));
  library->Export(p + "_beginscan", std::any(AmScanFn(fns.beginscan)));
  library->Export(p + "_endscan", std::any(AmScanFn(fns.endscan)));
  library->Export(p + "_rescan", std::any(AmScanFn(fns.rescan)));
  library->Export(p + "_getnext", std::any(AmGetNextFn(fns.getnext)));
  library->Export(p + "_insert", std::any(AmModifyFn(fns.insert)));
  library->Export(p + "_delete", std::any(AmModifyFn(fns.remove)));
  library->Export(p + "_update", std::any(AmUpdateFn(fns.update)));
  library->Export(p + "_scancost", std::any(AmScanCostFn(fns.scancost)));
  library->Export(p + "_stats", std::any(AmSimpleFn(fns.stats)));
  library->Export(p + "_check", std::any(AmSimpleFn(fns.check)));

  std::string script;
  GRTDB_RETURN_IF_ERROR(RegisterComparisonFamily(
      server, kBtreeLibrary, "bt_natural", "", NaturalCompare, &script));
  auto fn = [&](const std::string& name, const std::string& symbol,
                const std::string& ret) {
    return "CREATE FUNCTION " + name + "(pointer) RETURNING " + ret +
           " EXTERNAL NAME '" + std::string(kBtreeLibrary) + "(" + symbol +
           ")' LANGUAGE c;\n";
  };
  for (const char* suffix :
       {"_create", "_drop", "_open", "_close", "_beginscan", "_endscan",
        "_rescan", "_getnext", "_insert", "_delete", "_update", "_stats",
        "_check"}) {
    script += fn(p + suffix, p + suffix, "int");
  }
  script += fn(p + "_scancost", p + "_scancost", "float");
  script += "CREATE SECONDARY ACCESS_METHOD " + options.am_name + " (\n";
  script += "  am_create = " + p + "_create,\n";
  script += "  am_drop = " + p + "_drop,\n";
  script += "  am_open = " + p + "_open,\n";
  script += "  am_close = " + p + "_close,\n";
  script += "  am_beginscan = " + p + "_beginscan,\n";
  script += "  am_endscan = " + p + "_endscan,\n";
  script += "  am_rescan = " + p + "_rescan,\n";
  script += "  am_getnext = " + p + "_getnext,\n";
  script += "  am_insert = " + p + "_insert,\n";
  script += "  am_delete = " + p + "_delete,\n";
  script += "  am_update = " + p + "_update,\n";
  script += "  am_scancost = " + p + "_scancost,\n";
  script += "  am_stats = " + p + "_stats,\n";
  script += "  am_check = " + p + "_check,\n";
  script += "  am_sptype = 'S'\n);\n";
  // Strategy positions 1..5 carry the slot semantics; compare is the
  // first (and only) support function.
  script += "CREATE DEFAULT OPCLASS " + p + "_opclass FOR " +
            options.am_name +
            " STRATEGIES(LessThan, LessThanOrEqual, Equal, "
            "GreaterThanOrEqual, GreaterThan) SUPPORT(compare);\n";

  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, script, &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

Status RegisterAbsOpclass(Server* server, const std::string& am_name) {
  if (server->catalog().FindAccessMethod(am_name) == nullptr) {
    return Status::NotFound("access method '" + am_name + "'");
  }
  std::string script;
  GRTDB_RETURN_IF_ERROR(RegisterComparisonFamily(
      server, kBtreeLibrary, "bt_abs", "Abs", AbsOrder, &script));
  script += "CREATE OPCLASS bt_abs_opclass FOR " + am_name +
            " STRATEGIES(AbsLessThan, AbsLessThanOrEqual, AbsEqual, "
            "AbsGreaterThanOrEqual, AbsGreaterThan) SUPPORT(Abscompare);\n";
  ServerSession* session = server->CreateSession();
  ResultSet result;
  Status status = server->ExecuteScript(session, script, &result);
  Status close = server->CloseSession(session);
  if (status.ok()) status = close;
  return status;
}

}  // namespace grtdb
