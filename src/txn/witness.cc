#include "txn/witness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace grtdb {
namespace witness {
namespace {

// The calling thread's held-set: one entry per held class, with the site
// of the outermost acquisition and a nesting count.
struct Held {
  int cls;
  uint32_t count;
  Site site;
};

thread_local std::vector<Held> t_held;

std::string SiteString(const Site& site) {
  return std::string(site.file) + ":" + std::to_string(site.line);
}

}  // namespace

std::string CycleReport::ToString() const {
  std::string s = "witness: lock-order inversion: acquiring '";
  s += acquiring_class;
  s += "' at " + SiteString(acquiring_site);
  s += " while holding '" + held_class;
  s += "' (acquired at " + SiteString(held_site) + ")";
  s += ", but the established order is " + path;
  return s;
}

Witness& Witness::Global() {
  static Witness* instance = new Witness();
  return *instance;
}

int Witness::RegisterClass(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < class_count_; ++i) {
    if (std::strcmp(names_[i], name) == 0) return i;
  }
  if (class_count_ >= kMaxClasses) return -1;
  names_[class_count_] = name;
  return class_count_++;
}

bool Witness::ReachableLocked(int from, int to) const {
  if (from == to) return true;
  bool visited[kMaxClasses] = {};
  int stack[kMaxClasses];
  int depth = 0;
  stack[depth++] = from;
  visited[from] = true;
  while (depth > 0) {
    const int node = stack[--depth];
    for (int next = 0; next < class_count_; ++next) {
      if (!edges_[node][next].present || visited[next]) continue;
      if (next == to) return true;
      visited[next] = true;
      stack[depth++] = next;
    }
  }
  return false;
}

void Witness::ReportLocked(int held, Site held_site, int acquiring,
                          Site acquiring_site) {
  if (reported_[held][acquiring]) return;
  reported_[held][acquiring] = true;

  // Render the pre-existing ordering acquiring -> ... -> held that the new
  // edge inverts, with the sites that established each hop.
  std::string path;
  int node = acquiring;
  bool visited[kMaxClasses] = {};
  visited[node] = true;
  path += "'" + std::string(names_[node]) + "'";
  // Greedy walk: follow any edge that still reaches `held`.
  while (node != held) {
    int step = -1;
    for (int next = 0; next < class_count_; ++next) {
      if (!edges_[node][next].present || visited[next]) continue;
      if (next == held || ReachableLocked(next, held)) {
        step = next;
        break;
      }
    }
    if (step < 0) break;  // defensive; caller proved reachability
    path += " -> '" + std::string(names_[step]) + "' (at " +
            SiteString(edges_[node][step].to_site) + ")";
    visited[step] = true;
    node = step;
  }

  CycleReport report;
  report.held_class = names_[held];
  report.held_site = held_site;
  report.acquiring_class = names_[acquiring];
  report.acquiring_site = acquiring_site;
  report.path = path;
  reports_.push_back(std::move(report));
  pending_.push_back(reports_.size() - 1);
}

void Witness::OnAcquire(int cls, const char* file, int line) {
  if (cls < 0) return;
  for (Held& held : t_held) {
    if (held.cls == cls) {
      ++held.count;
      return;
    }
  }
  const Site site{file, line};
  std::vector<CycleReport> fire;  // handler runs outside mu_
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Held& held : t_held) {
      if (held.cls == cls) continue;
      Edge& edge = edges_[held.cls][cls];
      if (!edge.present) {
        // New ordering held -> cls. If cls already precedes held somewhere
        // in the graph, this acquisition closes a cycle: report it now,
        // *before* the caller blocks, and keep the graph acyclic by not
        // inserting the reversing edge.
        if (ReachableLocked(cls, held.cls)) {
          ReportLocked(held.cls, held.site, cls, site);
          continue;
        }
        edge.present = true;
        edge.from_site = held.site;
        edge.to_site = site;
      }
    }
    for (size_t index : pending_) fire.push_back(reports_[index]);
    pending_.clear();
    handler = handler_;
  }
  t_held.push_back(Held{cls, 1, site});
  for (const CycleReport& report : fire) {
    if (handler) {
      handler(report);
    } else {
      std::fprintf(stderr, "%s\n", report.ToString().c_str());
      std::abort();
    }
  }
}

void Witness::OnRelease(int cls) {
  if (cls < 0) return;
  for (auto it = t_held.begin(); it != t_held.end(); ++it) {
    if (it->cls != cls) continue;
    if (--it->count == 0) t_held.erase(it);
    return;
  }
}

void Witness::OnReleaseAll(int cls) {
  if (cls < 0) return;
  for (auto it = t_held.begin(); it != t_held.end(); ++it) {
    if (it->cls == cls) {
      t_held.erase(it);
      return;
    }
  }
}

uint64_t Witness::cycles_reported() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

std::vector<CycleReport> Witness::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

void Witness::set_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handler_ = std::move(handler);
}

void Witness::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kMaxClasses; ++i) {
    for (int j = 0; j < kMaxClasses; ++j) {
      edges_[i][j] = Edge();
      reported_[i][j] = false;
    }
  }
  reports_.clear();
}

}  // namespace witness
}  // namespace grtdb
