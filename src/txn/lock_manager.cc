#include "txn/lock_manager.h"

#include <algorithm>

#include "obs/fast_clock.h"
#include "obs/flight_recorder.h"
#include "obs/query_profile.h"
#include "obs/span_tracer.h"
#include "txn/witness.h"

namespace grtdb {

namespace {

// Witness lock classes, one per resource kind: ordering between two locks
// of the same kind (row vs row) is legitimate and not tracked, but a
// table-after-row or lock-after-latch inversion is.
[[maybe_unused]] witness::LockClass& WitnessClassFor(ResourceKind kind) {
  static witness::LockClass lo("lockmgr.lo");
  static witness::LockClass table("lockmgr.table");
  static witness::LockClass row("lockmgr.row");
  switch (kind) {
    case ResourceKind::kLargeObject:
      return lo;
    case ResourceKind::kTable:
      return table;
    case ResourceKind::kRow:
      break;
  }
  return row;
}

}  // namespace

bool LockManager::CompatibleLocked(const LockState& state, TxnId txn,
                                   LockMode mode) {
  for (const auto& [holder_txn, holder] : state.holders) {
    if (holder_txn == txn) continue;
    if (mode == LockMode::kExclusive || holder.mode == LockMode::kExclusive) {
      return false;
    }
  }
  // Writer-priority fence: while an S→X upgrader or a fresh exclusive
  // request waits, *new* shared acquirers are held back (existing holders
  // still nest via the early-return in AcquireWithTimeout). Without this,
  // overlapping reader churn keeps the resource share-locked forever and
  // the writer starves to LockTimeout despite no deadlock.
  if (mode == LockMode::kShared &&
      state.holders.find(txn) == state.holders.end() &&
      (state.has_upgrader || state.waiting_exclusive > 0)) {
    return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode) {
  return AcquireWithTimeout(txn, resource, mode, default_timeout_);
}

LockManager::Contention* LockManager::ContentionFor(ResourceId resource) {
  auto it = contention_.find(resource);
  if (it == contention_.end()) {
    if (contention_.size() >= kMaxContentionEntries) {
      ++contention_dropped_;
      return nullptr;
    }
    it = contention_.emplace(resource, Contention{}).first;
  }
  return &it->second;
}

Status LockManager::AcquireWithTimeout(TxnId txn, ResourceId resource,
                                       LockMode mode,
                                       std::chrono::milliseconds timeout) {
  // Witness sees the acquisition *attempt*, before any blocking, so an
  // ordering inversion is flagged even when this call would have been
  // granted immediately. Failure paths below undo the record; on success
  // the record transfers to the holder and ReleaseAll balances it.
  GRTDB_WITNESS_ACQUIRE(WitnessClassFor(resource.kind));  // NOLINT(grtdb-resource-balance)
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquisitions;
  if (m_acquisitions_ != nullptr) m_acquisitions_->Add();
  // Never hold a reference into locks_ across a wait: other transactions
  // release (and erase empty) lock states while this thread is blocked.
  bool upgrading = false;
  {
    LockState& state = locks_[resource];
    auto self = state.holders.find(txn);
    if (self != state.holders.end()) {
      if (self->second.mode == LockMode::kExclusive ||
          mode == LockMode::kShared) {
        // Already strong enough; nest.
        ++self->second.count;
        return Status::OK();
      }
      // Shared -> exclusive upgrade: wait until we are the sole holder.
      // If another shared holder is already waiting for *its* upgrade,
      // neither can proceed until the other releases — a guaranteed
      // deadlock. Fail the newcomer now instead of burning its timeout.
      if (state.has_upgrader && state.upgrader != txn) {
        ++stats_.deadlocks;
        if (m_deadlocks_ != nullptr) m_deadlocks_->Add();
        if (Contention* c = ContentionFor(resource)) ++c->deadlocks;
        obs::FlightRecorder::Global().RecordEvent(
            obs::FlightEvent::kLockDeadlock, resource.id, txn);
        GRTDB_WITNESS_RELEASE(WitnessClassFor(resource.kind));
        return Status::Deadlock(
            "upgrade-upgrade deadlock (resource kind " +
            std::to_string(static_cast<int>(resource.kind)) + ", id " +
            std::to_string(resource.id) + "): another shared holder is " +
            "already waiting to upgrade");
      }
      upgrading = true;
      state.has_upgrader = true;
      state.upgrader = txn;
    }
  }

  auto clear_upgrader = [&] {
    if (!upgrading) return;
    auto it = locks_.find(resource);
    if (it != locks_.end() && it->second.has_upgrader &&
        it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
  };

  // A blocked fresh-exclusive request registers itself so CompatibleLocked
  // can fence new shared grants while it waits.
  const bool fresh_exclusive = mode == LockMode::kExclusive && !upgrading;
  bool counted_waiter = false;
  auto uncount_waiter = [&] {
    if (!counted_waiter) return;
    counted_waiter = false;
    auto it = locks_.find(resource);
    if (it != locks_.end() && it->second.waiting_exclusive > 0) {
      --it->second.waiting_exclusive;
    }
  };

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool waited = false;
  std::chrono::steady_clock::time_point wait_start;
  uint64_t wait_start_ticks = 0;
  TxnId blocking_holder = 0;
  // A registered waiter is an edge of WaitsDump's wait-for graph; it also
  // pins the lock state (the erase conditions check waiters.empty()).
  bool registered_waiter = false;
  auto unregister_waiter = [&] {
    if (!registered_waiter) return;
    registered_waiter = false;
    auto it = locks_.find(resource);
    if (it != locks_.end()) it->second.waiters.erase(txn);
  };
  // The conflicting holder observed when the wait begins — sys_contention's
  // last_holder, the "who was in the way" attribution.
  auto conflicting_holder = [&]() -> TxnId {
    auto it = locks_.find(resource);
    if (it == locks_.end()) return 0;
    for (const auto& [holder_txn, holder] : it->second.holders) {
      if (holder_txn == txn) continue;
      if (mode == LockMode::kExclusive ||
          holder.mode == LockMode::kExclusive) {
        return holder_txn;
      }
    }
    return 0;
  };
  // Charges the blocked interval to stats, the wait histogram, the
  // per-resource contention row, the running statement's profile, and —
  // when the request is traced — a kLockWait span; called once on grant or
  // timeout.
  auto account_wait = [&] {
    if (!waited) return;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    ++stats_.waits;
    stats_.wait_ns += ns;
    if (m_waits_ != nullptr) m_waits_->Add();
    if (m_wait_us_ != nullptr) m_wait_us_->Record(ns / 1000);
    if (Contention* c = ContentionFor(resource)) {
      ++c->waits;
      c->wait_ns += ns;
      if (ns > c->max_wait_ns) c->max_wait_ns = ns;
      if (blocking_holder != 0) c->last_holder = blocking_holder;
    }
    if (obs::QueryProfile* profile = obs::CurrentProfile()) {
      ++profile->lock_waits;
      profile->lock_wait_ns += ns;
    }
    const obs::TraceHandle trace = obs::CurrentTraceHandle();
    if (trace.active()) {
      trace.tracer->EmitSpan(trace, obs::SpanName::kLockWait,
                             wait_start_ticks, obs::Ticks(), resource.id,
                             txn);
    }
  };
  while (!CompatibleLocked(locks_[resource], txn, mode)) {
    if (!waited) {
      waited = true;
      wait_start = std::chrono::steady_clock::now();
      wait_start_ticks = obs::Ticks();
      blocking_holder = conflicting_holder();
    }
    if (!registered_waiter) {
      locks_[resource].waiters[txn] = Waiter{mode, wait_start};
      registered_waiter = true;
    }
    if (fresh_exclusive && !counted_waiter) {
      ++locks_[resource].waiting_exclusive;
      counted_waiter = true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !CompatibleLocked(locks_[resource], txn, mode)) {
      ++stats_.timeouts;
      if (m_timeouts_ != nullptr) m_timeouts_->Add();
      if (Contention* c = ContentionFor(resource)) ++c->timeouts;
      obs::FlightRecorder::Global().RecordEvent(
          obs::FlightEvent::kLockTimeout, resource.id, txn);
      account_wait();
      clear_upgrader();
      uncount_waiter();
      unregister_waiter();
      auto it = locks_.find(resource);
      if (it != locks_.end() && it->second.holders.empty() &&
          !it->second.has_upgrader && it->second.waiting_exclusive == 0 &&
          it->second.waiters.empty()) {
        locks_.erase(it);
      }
      // The fence this request held is gone — wake blocked shared
      // requests so they can re-evaluate.
      cv_.notify_all();
      GRTDB_WITNESS_RELEASE(WitnessClassFor(resource.kind));
      return Status::LockTimeout("lock wait timeout (resource kind " +
                                 std::to_string(static_cast<int>(
                                     resource.kind)) +
                                 ", id " + std::to_string(resource.id) + ")");
    }
  }
  account_wait();
  clear_upgrader();
  uncount_waiter();
  unregister_waiter();

  LockState& state = locks_[resource];
  auto self = state.holders.find(txn);
  if (self != state.holders.end()) {
    // Upgrade in place; keep the nesting count.
    self->second.mode = LockMode::kExclusive;
    ++self->second.count;
  } else {
    state.holders[txn] = Holder{mode, 1};
  }
  return Status::OK();
}

void LockManager::Release(TxnId txn, ResourceId resource) {
  GRTDB_WITNESS_RELEASE(WitnessClassFor(resource.kind));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  auto self = it->second.holders.find(txn);
  if (self == it->second.holders.end()) return;
  if (--self->second.count == 0) {
    it->second.holders.erase(self);
    if (it->second.has_upgrader && it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
    if (it->second.holders.empty() && it->second.waiting_exclusive == 0 &&
        it->second.waiters.empty()) {
      locks_.erase(it);
    }
    cv_.notify_all();
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  // A transaction's locks can be torn down in one sweep with arbitrary
  // nesting counts; drop the calling thread's whole witness record.
  GRTDB_WITNESS_RELEASE_ALL(WitnessClassFor(ResourceKind::kLargeObject));
  GRTDB_WITNESS_RELEASE_ALL(WitnessClassFor(ResourceKind::kTable));
  GRTDB_WITNESS_RELEASE_ALL(WitnessClassFor(ResourceKind::kRow));
  std::lock_guard<std::mutex> lock(mu_);
  bool released = false;
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.holders.erase(txn) > 0) released = true;
    if (it->second.has_upgrader && it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
    if (it->second.holders.empty() && it->second.waiting_exclusive == 0 &&
        it->second.waiters.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  if (released) cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, ResourceId resource, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(resource);
  if (it == locks_.end()) return false;
  auto self = it->second.holders.find(txn);
  if (self == it->second.holders.end()) return false;
  return mode == LockMode::kShared ||
         self->second.mode == LockMode::kExclusive;
}

LockManagerStats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = LockManagerStats();
  contention_.clear();
  contention_dropped_ = 0;
}

std::vector<LockDumpRow> LockManager::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockDumpRow> rows;
  for (const auto& [resource, state] : locks_) {
    LockDumpRow base;
    base.kind = resource.kind;
    base.resource = resource.id;
    base.upgrader_waiting = state.has_upgrader;
    base.waiting_exclusive = state.waiting_exclusive;
    if (state.holders.empty()) {
      // Only a fenced waiter keeps an empty state alive; show it.
      rows.push_back(base);
      continue;
    }
    for (const auto& [txn, holder] : state.holders) {
      LockDumpRow row = base;
      row.txn = txn;
      row.mode = holder.mode;
      row.count = holder.count;
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<ContentionRow> LockManager::ContentionDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ContentionRow> rows;
  rows.reserve(contention_.size());
  for (const auto& [resource, c] : contention_) {
    ContentionRow row;
    row.kind = resource.kind;
    row.resource = resource.id;
    row.waits = c.waits;
    row.wait_ns = c.wait_ns;
    row.max_wait_ns = c.max_wait_ns;
    row.timeouts = c.timeouts;
    row.deadlocks = c.deadlocks;
    row.last_holder = c.last_holder;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ContentionRow& a, const ContentionRow& b) {
              if (a.wait_ns != b.wait_ns) return a.wait_ns > b.wait_ns;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.resource < b.resource;
            });
  return rows;
}

std::vector<WaitEdge> LockManager::WaitsDump() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WaitEdge> edges;
  for (const auto& [resource, state] : locks_) {
    for (const auto& [waiter_txn, waiter] : state.waiters) {
      WaitEdge base;
      base.kind = resource.kind;
      base.resource = resource.id;
      base.waiter = waiter_txn;
      base.mode = waiter.mode;
      base.waited_ns = now <= waiter.since
                           ? 0
                           : static_cast<uint64_t>(
                                 std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(now -
                                                               waiter.since)
                                     .count());
      bool any_edge = false;
      for (const auto& [holder_txn, holder] : state.holders) {
        if (holder_txn == waiter_txn) continue;
        if (waiter.mode != LockMode::kExclusive &&
            holder.mode != LockMode::kExclusive) {
          continue;  // S waiter vs S holder: blocked by a fence, not them
        }
        WaitEdge edge = base;
        edge.holder = holder_txn;
        edges.push_back(edge);
        any_edge = true;
      }
      // A shared waiter held back by the writer-priority fence (or an
      // exclusive waiter racing a just-released holder) blocks on no
      // specific transaction; keep the waiter visible anyway.
      if (!any_edge) edges.push_back(base);
    }
  }
  return edges;
}

void LockManager::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    m_acquisitions_ = m_waits_ = m_timeouts_ = m_deadlocks_ = nullptr;
    m_wait_us_ = nullptr;
    return;
  }
  m_acquisitions_ = metrics->GetCounter("lock.acquisitions");
  m_waits_ = metrics->GetCounter("lock.waits");
  m_timeouts_ = metrics->GetCounter("lock.timeouts");
  m_deadlocks_ = metrics->GetCounter("lock.deadlocks");
  m_wait_us_ = metrics->GetHistogram("lock.wait_us");
}

}  // namespace grtdb
