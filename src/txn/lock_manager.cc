#include "txn/lock_manager.h"

namespace grtdb {

bool LockManager::CompatibleLocked(const LockState& state, TxnId txn,
                                   LockMode mode) {
  for (const auto& [holder_txn, holder] : state.holders) {
    if (holder_txn == txn) continue;
    if (mode == LockMode::kExclusive || holder.mode == LockMode::kExclusive) {
      return false;
    }
  }
  // Writer-priority fence: while an S→X upgrader or a fresh exclusive
  // request waits, *new* shared acquirers are held back (existing holders
  // still nest via the early-return in AcquireWithTimeout). Without this,
  // overlapping reader churn keeps the resource share-locked forever and
  // the writer starves to LockTimeout despite no deadlock.
  if (mode == LockMode::kShared &&
      state.holders.find(txn) == state.holders.end() &&
      (state.has_upgrader || state.waiting_exclusive > 0)) {
    return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode) {
  return AcquireWithTimeout(txn, resource, mode, default_timeout_);
}

Status LockManager::AcquireWithTimeout(TxnId txn, ResourceId resource,
                                       LockMode mode,
                                       std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquisitions;
  // Never hold a reference into locks_ across a wait: other transactions
  // release (and erase empty) lock states while this thread is blocked.
  bool upgrading = false;
  {
    LockState& state = locks_[resource];
    auto self = state.holders.find(txn);
    if (self != state.holders.end()) {
      if (self->second.mode == LockMode::kExclusive ||
          mode == LockMode::kShared) {
        // Already strong enough; nest.
        ++self->second.count;
        return Status::OK();
      }
      // Shared -> exclusive upgrade: wait until we are the sole holder.
      // If another shared holder is already waiting for *its* upgrade,
      // neither can proceed until the other releases — a guaranteed
      // deadlock. Fail the newcomer now instead of burning its timeout.
      if (state.has_upgrader && state.upgrader != txn) {
        ++stats_.deadlocks;
        return Status::Deadlock(
            "upgrade-upgrade deadlock (resource kind " +
            std::to_string(static_cast<int>(resource.kind)) + ", id " +
            std::to_string(resource.id) + "): another shared holder is " +
            "already waiting to upgrade");
      }
      upgrading = true;
      state.has_upgrader = true;
      state.upgrader = txn;
    }
  }

  auto clear_upgrader = [&] {
    if (!upgrading) return;
    auto it = locks_.find(resource);
    if (it != locks_.end() && it->second.has_upgrader &&
        it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
  };

  // A blocked fresh-exclusive request registers itself so CompatibleLocked
  // can fence new shared grants while it waits.
  const bool fresh_exclusive = mode == LockMode::kExclusive && !upgrading;
  bool counted_waiter = false;
  auto uncount_waiter = [&] {
    if (!counted_waiter) return;
    counted_waiter = false;
    auto it = locks_.find(resource);
    if (it != locks_.end() && it->second.waiting_exclusive > 0) {
      --it->second.waiting_exclusive;
    }
  };

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool waited = false;
  while (!CompatibleLocked(locks_[resource], txn, mode)) {
    waited = true;
    if (fresh_exclusive && !counted_waiter) {
      ++locks_[resource].waiting_exclusive;
      counted_waiter = true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !CompatibleLocked(locks_[resource], txn, mode)) {
      ++stats_.timeouts;
      clear_upgrader();
      uncount_waiter();
      auto it = locks_.find(resource);
      if (it != locks_.end() && it->second.holders.empty() &&
          !it->second.has_upgrader && it->second.waiting_exclusive == 0) {
        locks_.erase(it);
      }
      // The fence this request held is gone — wake blocked shared
      // requests so they can re-evaluate.
      cv_.notify_all();
      return Status::LockTimeout("lock wait timeout (resource kind " +
                                 std::to_string(static_cast<int>(
                                     resource.kind)) +
                                 ", id " + std::to_string(resource.id) + ")");
    }
  }
  if (waited) ++stats_.waits;
  clear_upgrader();
  uncount_waiter();

  LockState& state = locks_[resource];
  auto self = state.holders.find(txn);
  if (self != state.holders.end()) {
    // Upgrade in place; keep the nesting count.
    self->second.mode = LockMode::kExclusive;
    ++self->second.count;
  } else {
    state.holders[txn] = Holder{mode, 1};
  }
  return Status::OK();
}

void LockManager::Release(TxnId txn, ResourceId resource) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  auto self = it->second.holders.find(txn);
  if (self == it->second.holders.end()) return;
  if (--self->second.count == 0) {
    it->second.holders.erase(self);
    if (it->second.has_upgrader && it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
    if (it->second.holders.empty() && it->second.waiting_exclusive == 0) {
      locks_.erase(it);
    }
    cv_.notify_all();
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  bool released = false;
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.holders.erase(txn) > 0) released = true;
    if (it->second.has_upgrader && it->second.upgrader == txn) {
      it->second.has_upgrader = false;
    }
    if (it->second.holders.empty() && it->second.waiting_exclusive == 0) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  if (released) cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, ResourceId resource, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(resource);
  if (it == locks_.end()) return false;
  auto self = it->second.holders.find(txn);
  if (self == it->second.holders.end()) return false;
  return mode == LockMode::kShared ||
         self->second.mode == LockMode::kExclusive;
}

LockManagerStats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = LockManagerStats();
}

}  // namespace grtdb
