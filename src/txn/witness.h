#ifndef GRTDB_TXN_WITNESS_H_
#define GRTDB_TXN_WITNESS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace grtdb {
namespace witness {

// A FreeBSD-witness-style lock-order checker. Every latch and lock in the
// server belongs to a *class* ("cache.latch", "wal.commit_mu",
// "lockmgr.row", ...). Threads report each acquisition and release; the
// checker keeps a per-thread held-set and a global order graph over
// classes. The first time class B is acquired while class A is held, the
// edge A -> B is recorded together with both acquisition sites. If the
// graph already proves B must precede A (a path B -> ... -> A exists), the
// A -> B acquisition is a lock-order inversion — a *potential* deadlock —
// and it is reported immediately, at the acquisition attempt, before any
// thread has actually blocked on the cycle.
//
// The checker core is always compiled so tests can drive it directly; the
// instrumentation call sites in LockManager / NodeCache / Pager /
// WalNodeStore are compiled in only under the GRTDB_WITNESS CMake option
// (the GRTDB_WITNESS_* macros below expand to nothing otherwise), so
// release builds pay nothing.
//
// Caveats (same family as FreeBSD witness): ordering is tracked per lock
// class, not per instance, so self-edges (re-acquiring a class already
// held, e.g. two different row locks) are deliberately ignored; and the
// held-set is per thread, so a lock released on a different thread than
// acquired it is balanced with OnReleaseAll rather than pairwise.

inline constexpr int kMaxClasses = 64;

// Where a lock of some class was acquired (static strings only).
struct Site {
  const char* file = "";
  int line = 0;
};

// One detected lock-order inversion. `held` is the lock that was already
// held (with its acquisition site), `acquiring` the one whose acquisition
// closed the cycle; `path` renders the pre-existing ordering
// acquiring -> ... -> held that makes the new edge an inversion.
struct CycleReport {
  std::string held_class;
  Site held_site;
  std::string acquiring_class;
  Site acquiring_site;
  std::string path;
  std::string ToString() const;
};

class Witness {
 public:
  Witness() = default;
  Witness(const Witness&) = delete;
  Witness& operator=(const Witness&) = delete;

  // The process-wide instance the instrumentation macros use.
  static Witness& Global();

  // Interns a class name (stable pointer required; use string literals)
  // and returns its id. Idempotent per name. Beyond kMaxClasses, returns
  // -1 and the class is never tracked.
  int RegisterClass(const char* name);

  // Reports that the calling thread is about to acquire a lock of class
  // `cls`. Call *before* the potentially blocking acquisition so an
  // inversion is flagged even when no thread ever blocks. Re-acquisitions
  // of an already-held class nest and add no edges.
  void OnAcquire(int cls, const char* file, int line);

  // Reports one release of `cls` by the calling thread (undoes one
  // OnAcquire nesting level). Unknown/unheld classes are ignored.
  void OnRelease(int cls);

  // Drops every nesting level of `cls` held by the calling thread (for
  // release paths that tear down an unknown number of acquisitions at
  // once, e.g. LockManager::ReleaseAll).
  void OnReleaseAll(int cls);

  // Number of distinct inversions reported since construction/Reset.
  uint64_t cycles_reported() const;
  std::vector<CycleReport> reports() const;

  // A handler invoked on every newly detected inversion, replacing the
  // default (print the report to stderr and abort()). Tests install a
  // capturing handler. Pass nullptr to restore the default.
  using Handler = std::function<void(const CycleReport&)>;
  void set_handler(Handler handler);

  // Clears the order graph and the reports (not per-thread held-sets:
  // callers must have balanced their acquisitions first).
  void Reset();

 private:
  struct Edge {
    bool present = false;
    Site from_site;  // where `from` was held when the edge was recorded
    Site to_site;    // where `to` was acquired, creating the edge
  };

  // Requires mu_. True if a path from -> ... -> to exists in the graph.
  bool ReachableLocked(int from, int to) const;
  void ReportLocked(int held, Site held_site, int acquiring,
                    Site acquiring_site);

  mutable std::mutex mu_;
  const char* names_[kMaxClasses] = {};
  int class_count_ = 0;
  Edge edges_[kMaxClasses][kMaxClasses];
  bool reported_[kMaxClasses][kMaxClasses] = {};
  std::vector<CycleReport> reports_;
  std::vector<size_t> pending_;  // indices into reports_ not yet handled
  Handler handler_;
};

// A lock class handle: interned on first use, cheap to pass around.
// Intended pattern:
//   static witness::LockClass cls("cache.latch");
//   GRTDB_WITNESS_ACQUIRE(cls);
class LockClass {
 public:
  explicit LockClass(const char* name) : name_(name) {}
  int id() {
    int id = id_;
    if (id == kUnresolved) {
      id = Witness::Global().RegisterClass(name_);
      id_ = id;
    }
    return id;
  }
  const char* name() const { return name_; }

 private:
  static constexpr int kUnresolved = -2;
  const char* name_;
  int id_ = kUnresolved;
};

// RAII acquire/release of a witness class (tracks the scope of a
// lock_guard/unique_lock that lives for a whole block).
class Scoped {
 public:
  Scoped(LockClass& cls, const char* file, int line) : cls_(cls.id()) {
    Witness::Global().OnAcquire(cls_, file, line);
  }
  ~Scoped() { Witness::Global().OnRelease(cls_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  int cls_;
};

}  // namespace witness
}  // namespace grtdb

// Instrumentation macros: active only under -DGRTDB_WITNESS (the
// GRTDB_WITNESS CMake option). `cls` is a witness::LockClass lvalue.
#ifdef GRTDB_WITNESS
#define GRTDB_WITNESS_ACQUIRE(cls) \
  ::grtdb::witness::Witness::Global().OnAcquire((cls).id(), __FILE__, __LINE__)
#define GRTDB_WITNESS_RELEASE(cls) \
  ::grtdb::witness::Witness::Global().OnRelease((cls).id())
#define GRTDB_WITNESS_RELEASE_ALL(cls) \
  ::grtdb::witness::Witness::Global().OnReleaseAll((cls).id())
#define GRTDB_WITNESS_SCOPE(cls) \
  ::grtdb::witness::Scoped grtdb_witness_scope_##__LINE__(cls, __FILE__, \
                                                          __LINE__)
#else
#define GRTDB_WITNESS_ACQUIRE(cls) ((void)0)
#define GRTDB_WITNESS_RELEASE(cls) ((void)0)
#define GRTDB_WITNESS_RELEASE_ALL(cls) ((void)0)
#define GRTDB_WITNESS_SCOPE(cls) ((void)0)
#endif

#endif  // GRTDB_TXN_WITNESS_H_
