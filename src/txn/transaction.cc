#include "txn/transaction.h"

#include "obs/flight_recorder.h"

namespace grtdb {

Status TransactionManager::Begin(Session* session, bool explicit_txn) {
  if (session->current_txn_ != nullptr) {
    if (explicit_txn) {
      return Status::InvalidArgument("transaction already in progress");
    }
    return Status::OK();
  }
  session->current_txn_ = std::make_unique<Transaction>(
      next_txn_id_.fetch_add(1), session->id(), session->isolation());
  session->explicit_txn_ = explicit_txn;
  obs::FlightRecorder::Global().RecordEvent(obs::FlightEvent::kTxnBegin,
                                            session->current_txn_->id());
  return Status::OK();
}

Status TransactionManager::End(Session* session, bool committed) {
  Transaction* txn = session->current_txn_.get();
  if (txn == nullptr) {
    return Status::InvalidArgument("no transaction in progress");
  }
  // Callbacks run before lock release so they can still touch locked state
  // (the paper's §5.4 callback frees named memory holding the transaction's
  // current-time value).
  for (TxnEndCallback& callback : txn->end_callbacks_) {
    callback(committed);
  }
  lock_manager_->ReleaseAll(txn->id());
  obs::FlightRecorder::Global().RecordEvent(
      committed ? obs::FlightEvent::kTxnCommit : obs::FlightEvent::kTxnAbort,
      txn->id());
  session->current_txn_.reset();
  session->explicit_txn_ = false;
  return Status::OK();
}

Status TransactionManager::Commit(Session* session) {
  return End(session, /*committed=*/true);
}

Status TransactionManager::Rollback(Session* session) {
  return End(session, /*committed=*/false);
}

Status TransactionManager::EnsureTxn(Session* session,
                                     bool* started_implicit) {
  if (session->current_txn_ != nullptr) {
    *started_implicit = false;
    return Status::OK();
  }
  GRTDB_RETURN_IF_ERROR(Begin(session, /*explicit_txn=*/false));
  *started_implicit = true;
  return Status::OK();
}

}  // namespace grtdb
