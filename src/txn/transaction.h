#ifndef GRTDB_TXN_TRANSACTION_H_
#define GRTDB_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"

namespace grtdb {

using SessionId = uint64_t;

enum class IsolationLevel {
  kDirtyRead,
  kCommittedRead,
  kRepeatableRead,
};

// Fired at transaction end. `committed` distinguishes COMMIT from ROLLBACK —
// the DataBlade API's MI_EVENT_END_XACT callback the paper relies on in §5.4
// to free per-transaction named memory.
using TxnEndCallback = std::function<void(bool committed)>;

class Transaction {
 public:
  Transaction(TxnId id, SessionId session, IsolationLevel isolation)
      : id_(id), session_(session), isolation_(isolation) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  SessionId session() const { return session_; }
  IsolationLevel isolation() const { return isolation_; }

  void AddEndCallback(TxnEndCallback callback) {
    end_callbacks_.push_back(std::move(callback));
  }

 private:
  friend class TransactionManager;

  TxnId id_;
  SessionId session_;
  IsolationLevel isolation_;
  std::vector<TxnEndCallback> end_callbacks_;
};

// A client session: identity, isolation setting, and the transaction it is
// running (every statement runs inside one; singleton statements run in an
// auto-committed transaction).
class Session {
 public:
  explicit Session(SessionId id) : id_(id) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }

  IsolationLevel isolation() const { return isolation_; }
  void set_isolation(IsolationLevel isolation) { isolation_ = isolation; }

  Transaction* current_txn() const { return current_txn_.get(); }
  bool in_explicit_txn() const { return explicit_txn_; }

 private:
  friend class TransactionManager;

  SessionId id_;
  IsolationLevel isolation_ = IsolationLevel::kCommittedRead;
  std::unique_ptr<Transaction> current_txn_;
  bool explicit_txn_ = false;
};

// Hands out transactions and runs the end-of-transaction protocol:
// callbacks fire, then every lock is released (strict two-phase locking).
class TransactionManager {
 public:
  explicit TransactionManager(LockManager* lock_manager)
      : lock_manager_(lock_manager) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Starts a transaction on `session`. `explicit_txn` marks BEGIN WORK
  // transactions (auto-commit statements pass false).
  Status Begin(Session* session, bool explicit_txn);

  Status Commit(Session* session);
  Status Rollback(Session* session);

  // Ensures `session` has a running transaction; returns whether this call
  // started an implicit one (which the statement executor must commit).
  Status EnsureTxn(Session* session, bool* started_implicit);

  LockManager* lock_manager() { return lock_manager_; }

 private:
  Status End(Session* session, bool committed);

  LockManager* lock_manager_;
  std::atomic<TxnId> next_txn_id_{1};
};

}  // namespace grtdb

#endif  // GRTDB_TXN_TRANSACTION_H_
