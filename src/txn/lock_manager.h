#ifndef GRTDB_TXN_LOCK_MANAGER_H_
#define GRTDB_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace grtdb {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

// Lockable resources. The server locks large objects (this is the
// granularity Informix gives sbspace users, §5.3), tables, and rows.
enum class ResourceKind : uint8_t {
  kLargeObject = 1,
  kTable = 2,
  kRow = 3,
};

struct ResourceId {
  ResourceKind kind;
  uint64_t id;

  friend bool operator==(ResourceId a, ResourceId b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator<(ResourceId a, ResourceId b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;      // acquisitions that had to block
  uint64_t timeouts = 0;   // acquisitions that failed with LockTimeout
  uint64_t deadlocks = 0;  // acquisitions that failed with Status::Deadlock
  uint64_t wait_ns = 0;    // total time spent blocked (granted or not)
};

// One granted lock at Dump() time (the sys_locks view).
struct LockDumpRow {
  ResourceKind kind;
  uint64_t resource = 0;
  TxnId txn = 0;
  LockMode mode = LockMode::kShared;
  uint32_t count = 0;            // nesting depth
  bool upgrader_waiting = false; // an S→X upgrade is pending on the resource
  uint32_t waiting_exclusive = 0;
};

// Per-resource contention tallies at ContentionDump() time (the
// sys_contention view). Unlike LockDumpRow this is *history*: the row
// persists after the last lock on the resource is released, so a
// post-mortem read still sees where the waits went.
struct ContentionRow {
  ResourceKind kind;
  uint64_t resource = 0;
  uint64_t waits = 0;        // acquisitions that blocked on this resource
  uint64_t wait_ns = 0;      // cumulative blocked time
  uint64_t max_wait_ns = 0;  // worst single blocked interval
  uint64_t timeouts = 0;     // waits that ended in LockTimeout
  uint64_t deadlocks = 0;    // upgrade-upgrade fast-fails on this resource
  TxnId last_holder = 0;     // conflicting holder seen at the last wait
};

// One waiter→holder edge of the wait-for graph at WaitsDump() time (the
// sys_waits view). A waiter blocked by a writer-priority fence rather than
// a holder appears once with holder = 0.
struct WaitEdge {
  ResourceKind kind;
  uint64_t resource = 0;
  TxnId waiter = 0;
  LockMode mode = LockMode::kShared;  // the mode the waiter wants
  uint64_t waited_ns = 0;             // blocked so far, at snapshot time
  TxnId holder = 0;
};

// A strict two-phase lock manager with shared/exclusive modes, lock
// upgrades, and timeout-based deadlock resolution (a blocked request that
// exceeds its timeout returns Status::LockTimeout and the caller aborts).
// The one deadlock shape a timeout cannot resolve cheaply — two shared
// holders that both request a shared→exclusive upgrade and so can never
// grant each other — is detected eagerly: the second upgrader fails
// immediately with Status::Deadlock instead of burning its full timeout.
class LockManager {
 public:
  explicit LockManager(
      std::chrono::milliseconds default_timeout = std::chrono::milliseconds(
          500))
      : default_timeout_(default_timeout) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires (or upgrades to) `mode` on `resource` for `txn`. Re-entrant:
  // lock counts nest, and Release undoes one level.
  Status Acquire(TxnId txn, ResourceId resource, LockMode mode);
  Status AcquireWithTimeout(TxnId txn, ResourceId resource, LockMode mode,
                            std::chrono::milliseconds timeout);

  // Releases one nesting level; the lock is dropped when the count hits 0.
  void Release(TxnId txn, ResourceId resource);

  // Drops every lock held by `txn` (end of transaction).
  void ReleaseAll(TxnId txn);

  // True if `txn` currently holds `resource` in at least `mode`.
  bool Holds(TxnId txn, ResourceId resource, LockMode mode) const;

  LockManagerStats stats() const;
  // Clears the aggregate stats and the per-resource contention history.
  void ResetStats();

  // Every granted lock, one row per (resource, holder). Waiting-only
  // resource states (a fenced writer with no holders yet) appear with
  // txn = 0 and count = 0 so a stuck waiter is visible.
  std::vector<LockDumpRow> Dump() const;

  // Per-resource contention history, hottest (by wait_ns) first. Bounded:
  // at most kMaxContentionEntries distinct resources are tracked; waits on
  // further resources still feed the aggregate stats but not a row.
  std::vector<ContentionRow> ContentionDump() const;

  // The wait-for graph right now: one edge per (waiter, conflicting
  // holder) pair, built from the registered waiters. Empty on an
  // uncontended server.
  std::vector<WaitEdge> WaitsDump() const;

  // Mirrors acquisition/wait/timeout/deadlock counts and a wait-latency
  // histogram into server-wide lock.* metrics; handles cached here.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Holder {
    LockMode mode;
    uint32_t count;
  };
  // A blocked acquisition, registered for the duration of its wait so
  // WaitsDump can draw the wait-for graph without instrumenting waiters
  // from outside.
  struct Waiter {
    LockMode mode;
    std::chrono::steady_clock::time_point since;
  };
  struct LockState {
    std::map<TxnId, Holder> holders;
    // The shared holder currently waiting on an upgrade to exclusive, if
    // any. A second holder requesting an upgrade while this is set is in
    // an upgrade–upgrade cycle and fails fast with Status::Deadlock.
    bool has_upgrader = false;
    TxnId upgrader = 0;
    // Fresh (non-upgrade) exclusive requests currently blocked on this
    // resource. Together with has_upgrader it fences *new* shared grants,
    // so a stream of reader churn cannot starve a waiting writer. A state
    // with a positive count must not be erased even when holders is empty.
    uint32_t waiting_exclusive = 0;
    // Every transaction currently blocked in AcquireWithTimeout on this
    // resource (exclusive *and* shared waiters). A state with registered
    // waiters must not be erased: the blocked thread re-reads it through
    // locks_[resource] after every wake-up.
    std::map<TxnId, Waiter> waiters;
  };
  // Contention history value; keyed by ResourceId in contention_.
  struct Contention {
    uint64_t waits = 0;
    uint64_t wait_ns = 0;
    uint64_t max_wait_ns = 0;
    uint64_t timeouts = 0;
    uint64_t deadlocks = 0;
    TxnId last_holder = 0;
  };
  static constexpr size_t kMaxContentionEntries = 4096;

  // Requires mu_ held; nullptr when the entry cap is reached.
  Contention* ContentionFor(ResourceId resource);

  // True if `txn` may be granted `mode` given current holders.
  static bool CompatibleLocked(const LockState& state, TxnId txn,
                               LockMode mode);

  std::chrono::milliseconds default_timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<ResourceId, LockState> locks_;
  LockManagerStats stats_;
  std::map<ResourceId, Contention> contention_;
  uint64_t contention_dropped_ = 0;  // waits beyond the entry cap

  // Cached registry handles (null when no registry is wired).
  obs::Counter* m_acquisitions_ = nullptr;
  obs::Counter* m_waits_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
  obs::Counter* m_deadlocks_ = nullptr;
  obs::Histogram* m_wait_us_ = nullptr;
};

}  // namespace grtdb

#endif  // GRTDB_TXN_LOCK_MANAGER_H_
