#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/protocol.h"

namespace grtdb {
namespace net {

NetServer::NetServer(Server* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stopping_.store(false, std::memory_order_relaxed);
  int workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (listen_fd_ < 0 && workers_.empty()) return;
  stopping_.store(true, std::memory_order_relaxed);

  // Unblock accept(): shutdown makes the blocked call return with an
  // error even on platforms where close alone leaves it sleeping.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  {
    // Close connections that never got a worker, then post one sentinel
    // per worker so every WorkerLoop drains and exits.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_) {
      if (fd >= 0) ::close(fd);
    }
    pending_.clear();
    for (size_t i = 0; i < workers_.size(); ++i) pending_.push_back(-1);
  }
  queue_cv_.notify_all();

  {
    // Workers sit in blocking reads on their connections; shut those
    // down so the reads return and ServeConnection unwinds (rollback +
    // CloseSession included).
    std::lock_guard<std::mutex> lock(active_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void NetServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down, or it broke; either way, done.
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void NetServer::WorkerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      fd = pending_.front();
      pending_.pop_front();
    }
    if (fd < 0) return;  // shutdown sentinel
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_.insert(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void NetServer::ServeConnection(int fd) {
  ServerSession* session = server_->CreateSession();
  std::string payload;
  Response response;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Status io = ReadFrame(fd, &payload);
    if (!io.ok()) break;  // disconnect (clean or otherwise)

    Request request;
    Status parsed = DecodeRequest(payload, &request);
    response.result.Clear();
    if (!parsed.ok()) {
      // Malformed frame: report it, then drop the connection — framing
      // may be out of sync, so nothing after this byte can be trusted.
      response.status = parsed;
      WriteFrame(fd, EncodeResponse(response));
      break;
    }

    switch (request.opcode) {
      case Opcode::kExecute:
        response.status = server_->Execute(session, request.sql,
                                           &response.result);
        break;
      case Opcode::kScript:
        response.status = server_->ExecuteScript(session, request.sql,
                                                 &response.result);
        break;
      case Opcode::kPing:
        response.status = Status::OK();
        break;
      case Opcode::kPrepare:
        response.status = server_->Prepare(session, request.stmt_name,
                                           request.sql, &response.result);
        break;
      case Opcode::kExecutePrepared:
        response.status = server_->ExecutePrepared(
            session, request.stmt_name, request.params, &response.result);
        break;
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    std::string encoded = EncodeResponse(response);
    if (encoded.size() > kMaxFrameBytes) {
      // The result is too large to frame. WriteFrame would refuse it and
      // previously the connection was silently dropped mid-conversation;
      // instead tell the client what happened with a well-formed error
      // frame. The statement already executed — framing is intact and the
      // transaction state is whatever the statement left — so the
      // connection stays usable.
      response.status = Status::InvalidArgument(
          "response of " + std::to_string(encoded.size()) +
          " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
          "-byte frame limit; narrow the query");
      response.result.Clear();
      encoded = EncodeResponse(response);
      oversized_responses_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteFrame(fd, encoded).ok()) break;
  }
  // Disconnect is the session's end: CloseSession rolls back whatever
  // transaction the client left open and ends its memory durations.
  server_->CloseSession(session);
}

}  // namespace net
}  // namespace grtdb
