#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/protocol.h"
#include "obs/fast_clock.h"
#include "obs/span_tracer.h"

namespace grtdb {
namespace net {

NetServer::NetServer(Server* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  obs::MetricsRegistry& metrics = server_->metrics();
  m_connections_accepted_ = metrics.GetCounter("net.connections_accepted");
  m_connections_closed_ = metrics.GetCounter("net.connections_closed");
  m_frames_in_ = metrics.GetCounter("net.frames_in");
  m_frames_out_ = metrics.GetCounter("net.frames_out");
  m_bytes_in_ = metrics.GetCounter("net.bytes_in");
  m_bytes_out_ = metrics.GetCounter("net.bytes_out");
  m_oversized_responses_metric_ =
      metrics.GetCounter("net.oversized_responses");
  m_session_close_failures_ =
      metrics.GetCounter("net.session_close_failures");
  m_queue_depth_ = metrics.GetGauge("net.queue_depth");

  stopping_.store(false, std::memory_order_relaxed);
  int workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (listen_fd_ < 0 && workers_.empty()) return;
  stopping_.store(true, std::memory_order_relaxed);

  // Unblock accept(): shutdown makes the blocked call return with an
  // error even on platforms where close alone leaves it sleeping.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  {
    // Close connections that never got a worker, then post one sentinel
    // per worker so every WorkerLoop drains and exits.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const PendingConn& conn : pending_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    pending_.clear();
    for (size_t i = 0; i < workers_.size(); ++i) {
      pending_.push_back(PendingConn{});
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->Set(0);
  }
  queue_cv_.notify_all();

  {
    // Workers sit in blocking reads on their connections; shut those
    // down so the reads return and ServeConnection unwinds (rollback +
    // CloseSession included).
    std::lock_guard<std::mutex> lock(active_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void NetServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down, or it broke; either way, done.
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (m_connections_accepted_ != nullptr) m_connections_accepted_->Add();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(
          PendingConn{fd, obs::Ticks(), pending_.size() + 1});
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
      }
    }
    queue_cv_.notify_one();
  }
}

void NetServer::WorkerLoop() {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      conn = pending_.front();
      pending_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
      }
    }
    if (conn.fd < 0) return;  // shutdown sentinel
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_.insert(conn.fd);
    }
    ServeConnection(conn.fd, conn.enqueue_ticks, obs::Ticks(), conn.depth);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_.erase(conn.fd);
    }
    ::close(conn.fd);
    if (m_connections_closed_ != nullptr) m_connections_closed_->Add();
  }
}

void NetServer::ServeConnection(int fd, uint64_t queue_enqueue_ticks,
                                uint64_t queue_dequeue_ticks,
                                uint64_t queue_depth) {
  ServerSession* session = server_->CreateSession();
  // Stamp the remote endpoint on the session so sys_sessions can tell the
  // connections apart; best-effort (a vanished peer just shows no address).
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len) == 0 &&
      peer.sin_family == AF_INET) {
    char host[INET_ADDRSTRLEN] = {};
    if (::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host)) != nullptr) {
      session->set_peer(std::string(host) + ":" +
                        std::to_string(ntohs(peer.sin_port)));
    }
  }
  obs::SpanTracer& tracer = server_->span_tracer();
  // The accept-queue wait happened once, before any frame; it is charged
  // to the connection's first traced request.
  bool queue_wait_reported = false;
  std::string payload;
  Response response;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Status io = ReadFrame(fd, &payload);
    if (!io.ok()) break;  // disconnect (clean or otherwise)
    // Frame arrival is the traced request's start; taken before decode so
    // the decode span nests fully inside the root.
    const uint64_t frame_ticks = obs::Ticks();
    if (m_frames_in_ != nullptr) m_frames_in_->Add();
    if (m_bytes_in_ != nullptr) m_bytes_in_->Add(4 + payload.size());

    Request request;
    Status parsed = DecodeRequest(payload, &request);
    const uint64_t decoded_ticks = obs::Ticks();
    response.result.Clear();
    if (!parsed.ok()) {
      // Malformed frame: report it, then drop the connection — framing
      // may be out of sync, so nothing after this byte can be trusted.
      response.status = parsed;
      std::string encoded = EncodeResponse(response);
      if (m_frames_out_ != nullptr) m_frames_out_->Add();
      if (m_bytes_out_ != nullptr) m_bytes_out_->Add(4 + encoded.size());
      // Best-effort error report: the connection is being dropped either
      // way, so a failed write changes nothing the server can act on.
      (void)WriteFrame(fd, encoded);
      break;
    }

    // Root the trace at frame arrival. A nonzero wire id (client-set) is
    // always sampled under that id; otherwise the tracer's 1-in-N gate
    // decides. When not sampled the handle is inactive and every tracing
    // touch below — here and all the way down to the WAL — is a
    // thread-local read and a branch.
    obs::TraceHandle trace = tracer.StartTrace(request.trace_id);
    bool write_failed = false;
    {
      obs::TraceScope root(trace, obs::SpanName::kRequest, frame_ticks,
                           static_cast<uint64_t>(request.opcode),
                           session->id());
      if (root.active()) {
        // Decode necessarily preceded the root (the trace id lives inside
        // the frame), so its span — and, once, the accept-queue wait — is
        // emitted retroactively under the fresh root.
        obs::TraceHandle here = obs::CurrentTraceHandle();
        tracer.EmitSpan(here, obs::SpanName::kWireDecode, frame_ticks,
                        decoded_ticks, payload.size());
        if (!queue_wait_reported) {
          tracer.EmitSpan(here, obs::SpanName::kQueueWait,
                          queue_enqueue_ticks, queue_dequeue_ticks,
                          queue_depth);
        }
      }
      queue_wait_reported = true;

      switch (request.opcode) {
        case Opcode::kExecute:
          response.status = server_->Execute(session, request.sql,
                                             &response.result);
          break;
        case Opcode::kScript:
          response.status = server_->ExecuteScript(session, request.sql,
                                                   &response.result);
          break;
        case Opcode::kPing:
          response.status = Status::OK();
          break;
        case Opcode::kPrepare:
          response.status = server_->Prepare(session, request.stmt_name,
                                             request.sql, &response.result);
          break;
        case Opcode::kExecutePrepared:
          response.status = server_->ExecutePrepared(
              session, request.stmt_name, request.params, &response.result);
          break;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);

      obs::SpanScope respond(obs::SpanName::kRespond);
      std::string encoded = EncodeResponse(response);
      if (encoded.size() > kMaxFrameBytes) {
        // The result is too large to frame. WriteFrame would refuse it and
        // previously the connection was silently dropped mid-conversation;
        // instead tell the client what happened with a well-formed error
        // frame. The statement already executed — framing is intact and the
        // transaction state is whatever the statement left — so the
        // connection stays usable.
        response.status = Status::InvalidArgument(
            "response of " + std::to_string(encoded.size()) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte frame limit; narrow the query");
        response.result.Clear();
        encoded = EncodeResponse(response);
        oversized_responses_.fetch_add(1, std::memory_order_relaxed);
        if (m_oversized_responses_metric_ != nullptr) {
          m_oversized_responses_metric_->Add();
        }
      }
      respond.set_operands(encoded.size(), 0);
      if (m_frames_out_ != nullptr) m_frames_out_->Add();
      if (m_bytes_out_ != nullptr) m_bytes_out_->Add(4 + encoded.size());
      write_failed = !WriteFrame(fd, encoded).ok();
      // The respond span and the request root close here, before the
      // next frame is awaited.
    }
    if (write_failed) break;
  }
  // Disconnect is the session's end: CloseSession rolls back whatever
  // transaction the client left open and ends its memory durations. A
  // failing close means that teardown did NOT happen — there is no client
  // left to tell, so it surfaces through the metrics endpoint instead.
  Status closed = server_->CloseSession(session);
  if (!closed.ok() && m_session_close_failures_ != nullptr) {
    m_session_close_failures_->Add();
  }
}

}  // namespace net
}  // namespace grtdb
