#ifndef GRTDB_NET_PROTOCOL_H_
#define GRTDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/result.h"
#include "sql/ast.h"

namespace grtdb {
namespace net {

// Wire protocol (DESIGN.md "Wire protocol"): every message is one frame,
//
//   u32-LE payload-length | payload bytes
//
// Request payload:  u8 opcode, u32-LE sql-length, sql bytes.
//   kPrepare additionally carries: string stmt_name (the sql field holds
//   the statement text to prepare).
//   kExecutePrepared carries: string stmt_name, u32-LE param count, then
//   per parameter a u8 kind tag (0 null, 1 integer, 2 float, 3 string)
//   followed by the value (u64 two's-complement, u64 IEEE-754 bits, or a
//   string). The sql field stays empty.
//   Any request may end with an optional trailing u64-LE trace id; it is
//   encoded only when nonzero, so frames from clients that never set one
//   are byte-identical to the pre-tracing format. A nonzero id forces the
//   server to sample the request into its span buffer under that id.
// Response payload: u8 status-code, string message, u64 affected,
//                   string-list columns, row-list rows, string-list
//                   messages — where string = u32-LE length + bytes and
//                   each list is u32-LE count + elements.
//
// The format is deliberately dumb: no negotiation, no versioning byte
// beyond the opcode space, everything little-endian. A frame larger than
// kMaxFrameBytes is a protocol error and closes the connection — the cap
// bounds what one malformed or hostile client can make the server buffer.

constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

enum class Opcode : uint8_t {
  kExecute = 1,          // one statement, Server::Execute
  kScript = 2,           // semicolon-separated script, Server::ExecuteScript
  kPing = 3,             // liveness probe, empty sql
  kPrepare = 4,          // PREPARE stmt_name AS sql, Server::Prepare
  kExecutePrepared = 5,  // EXECUTE stmt_name (params), Server::ExecutePrepared
};

struct Request {
  Opcode opcode = Opcode::kExecute;
  std::string sql;        // kExecute / kScript / kPrepare (statement text)
  std::string stmt_name;  // kPrepare / kExecutePrepared
  std::vector<sql::Literal> params;  // kExecutePrepared
  // Client-chosen trace id; 0 means "not set" (omitted from the wire).
  uint64_t trace_id = 0;
};

struct Response {
  Status status;
  ResultSet result;
};

// Payload (not frame) encode/decode. Decode returns InvalidArgument on a
// truncated or malformed payload and never reads out of bounds.
std::string EncodeRequest(const Request& request);
Status DecodeRequest(const std::string& payload, Request* out);
std::string EncodeResponse(const Response& response);
Status DecodeResponse(const std::string& payload, Response* out);

// Rebuilds a Status from its wire (code, message) pair. Unknown codes map
// to Internal, so a newer peer degrades loudly instead of silently-OK.
Status MakeStatus(uint8_t code, std::string message);

// Blocking frame I/O over a connected socket. Loops over partial
// reads/writes and EINTR. ReadFrame returns Aborted on clean EOF at a
// frame boundary (peer closed), IOError on anything else.
Status ReadFrame(int fd, std::string* payload);
Status WriteFrame(int fd, const std::string& payload);

}  // namespace net
}  // namespace grtdb

#endif  // GRTDB_NET_PROTOCOL_H_
