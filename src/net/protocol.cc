#include "net/protocol.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace grtdb {
namespace net {

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutStringList(std::string* out, const std::vector<std::string>& list) {
  PutU32(out, static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) PutString(out, s);
}

// Bounds-checked cursor over a received payload. Every getter returns
// false once the payload runs short; callers bail to InvalidArgument.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
            << shift;
    }
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
            << shift;
    }
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

  bool GetStringList(std::vector<std::string>* list) {
    uint32_t count = 0;
    if (!GetU32(&count)) return false;
    // An honest count can never exceed the bytes left (each element
    // carries at least its 4-byte length); reject early so a hostile
    // count cannot drive a huge reserve.
    if (count > data_.size() - pos_) return false;
    list->clear();
    list->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string s;
      if (!GetString(&s)) return false;
      list->push_back(std::move(s));
    }
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

// Parameter kind tags for kExecutePrepared. Only concrete literal kinds
// travel the wire — a kParam placeholder can never be its own binding.
constexpr uint8_t kParamNull = 0;
constexpr uint8_t kParamInteger = 1;
constexpr uint8_t kParamFloat = 2;
constexpr uint8_t kParamString = 3;

void PutParam(std::string* out, const sql::Literal& param) {
  switch (param.kind) {
    case sql::Literal::Kind::kInteger:
      PutU8(out, kParamInteger);
      PutU64(out, static_cast<uint64_t>(param.integer));
      return;
    case sql::Literal::Kind::kFloat: {
      PutU8(out, kParamFloat);
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(param.real));
      std::memcpy(&bits, &param.real, sizeof(bits));
      PutU64(out, bits);
      return;
    }
    case sql::Literal::Kind::kString:
      PutU8(out, kParamString);
      PutString(out, param.text);
      return;
    case sql::Literal::Kind::kNull:
    case sql::Literal::Kind::kParam:  // unreachable; encode as NULL
      PutU8(out, kParamNull);
      return;
  }
}

bool GetParam(Reader* reader, sql::Literal* out) {
  uint8_t kind = 0;
  if (!reader->GetU8(&kind)) return false;
  switch (kind) {
    case kParamNull:
      out->kind = sql::Literal::Kind::kNull;
      return true;
    case kParamInteger: {
      uint64_t bits = 0;
      if (!reader->GetU64(&bits)) return false;
      out->kind = sql::Literal::Kind::kInteger;
      out->integer = static_cast<int64_t>(bits);
      return true;
    }
    case kParamFloat: {
      uint64_t bits = 0;
      if (!reader->GetU64(&bits)) return false;
      out->kind = sql::Literal::Kind::kFloat;
      std::memcpy(&out->real, &bits, sizeof(out->real));
      return true;
    }
    case kParamString:
      out->kind = sql::Literal::Kind::kString;
      return reader->GetString(&out->text);
    default:
      return false;
  }
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(request.opcode));
  PutString(&out, request.sql);
  if (request.opcode == Opcode::kPrepare) {
    PutString(&out, request.stmt_name);
  } else if (request.opcode == Opcode::kExecutePrepared) {
    PutString(&out, request.stmt_name);
    PutU32(&out, static_cast<uint32_t>(request.params.size()));
    for (const sql::Literal& param : request.params) {
      PutParam(&out, param);
    }
  }
  // Trailing trace id, only when set — a zero id encodes as nothing, so
  // untraced requests keep the pre-tracing wire format byte for byte.
  if (request.trace_id != 0) PutU64(&out, request.trace_id);
  return out;
}

Status DecodeRequest(const std::string& payload, Request* out) {
  Reader reader(payload);
  uint8_t opcode = 0;
  out->stmt_name.clear();
  out->params.clear();
  if (!reader.GetU8(&opcode) || !reader.GetString(&out->sql)) {
    return Status::InvalidArgument("malformed request payload");
  }
  switch (opcode) {
    case static_cast<uint8_t>(Opcode::kExecute):
    case static_cast<uint8_t>(Opcode::kScript):
    case static_cast<uint8_t>(Opcode::kPing):
      break;
    case static_cast<uint8_t>(Opcode::kPrepare):
      if (!reader.GetString(&out->stmt_name)) {
        return Status::InvalidArgument("malformed request payload");
      }
      break;
    case static_cast<uint8_t>(Opcode::kExecutePrepared): {
      uint32_t count = 0;
      if (!reader.GetString(&out->stmt_name) || !reader.GetU32(&count)) {
        return Status::InvalidArgument("malformed request payload");
      }
      // Each parameter occupies at least its 1-byte tag; an honest count
      // never exceeds what is left of the payload.
      if (count > payload.size()) {
        return Status::InvalidArgument("malformed request payload");
      }
      out->params.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        sql::Literal param;
        if (!GetParam(&reader, &param)) {
          return Status::InvalidArgument(
              "malformed parameter " + std::to_string(i + 1) +
              " in request payload");
        }
        out->params.push_back(std::move(param));
      }
      break;
    }
    default:
      return Status::InvalidArgument("unknown opcode " +
                                     std::to_string(opcode));
  }
  out->trace_id = 0;
  if (!reader.AtEnd()) {
    // The only thing allowed after the opcode-specific fields is the
    // optional trace id — exactly eight more bytes.
    if (!reader.GetU64(&out->trace_id) || !reader.AtEnd()) {
      return Status::InvalidArgument("malformed request payload");
    }
  }
  out->opcode = static_cast<Opcode>(opcode);
  return Status::OK();
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(response.status.code()));
  PutString(&out, response.status.message());
  PutU64(&out, response.result.affected);
  PutStringList(&out, response.result.columns);
  PutU32(&out, static_cast<uint32_t>(response.result.rows.size()));
  for (const std::vector<std::string>& row : response.result.rows) {
    PutStringList(&out, row);
  }
  PutStringList(&out, response.result.messages);
  return out;
}

Status DecodeResponse(const std::string& payload, Response* out) {
  Reader reader(payload);
  uint8_t code = 0;
  std::string message;
  uint32_t row_count = 0;
  out->result.Clear();
  if (!reader.GetU8(&code) || !reader.GetString(&message) ||
      !reader.GetU64(&out->result.affected) ||
      !reader.GetStringList(&out->result.columns) ||
      !reader.GetU32(&row_count)) {
    return Status::InvalidArgument("malformed response payload");
  }
  out->result.rows.clear();
  out->result.rows.reserve(std::min<size_t>(row_count, 1024));
  for (uint32_t i = 0; i < row_count; ++i) {
    std::vector<std::string> row;
    if (!reader.GetStringList(&row)) {
      return Status::InvalidArgument("malformed response payload");
    }
    out->result.rows.push_back(std::move(row));
  }
  if (!reader.GetStringList(&out->result.messages) || !reader.AtEnd()) {
    return Status::InvalidArgument("malformed response payload");
  }
  out->status = MakeStatus(code, std::move(message));
  return Status::OK();
}

Status MakeStatus(uint8_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case Status::Code::kLockTimeout:
      return Status::LockTimeout(std::move(message));
    case Status::Code::kDeadlock:
      return Status::Deadlock(std::move(message));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(message));
    case Status::Code::kInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal("unknown status code " + std::to_string(code) +
                          ": " + message);
}

namespace {

Status ReadExact(int fd, char* buf, size_t n, bool* clean_eof) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (clean_eof != nullptr && got == 0) {
        *clean_eof = true;
        return Status::Aborted("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload) {
  char header[4];
  bool clean_eof = false;
  GRTDB_RETURN_IF_ERROR(ReadExact(fd, header, 4, &clean_eof));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
              << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(length) +
                                   " bytes exceeds limit");
  }
  payload->resize(length);
  if (length == 0) return Status::OK();
  return ReadExact(fd, payload->data(), length, nullptr);
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds limit");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace grtdb
