#ifndef GRTDB_NET_NET_SERVER_H_
#define GRTDB_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <condition_variable>

#include "common/status.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace grtdb {
namespace net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; port() reports the real one.
  uint16_t port = 0;
  // Worker pool size = maximum concurrent connections. A worker owns its
  // connection for the connection's whole life, so connection N+1 queues
  // until a session ends — the paper's session model (one server thread
  // per client session), not a request-multiplexing front end.
  int num_workers = 4;
  int backlog = 64;
};

// TCP front end over an embedded Server. Lifecycle per connection:
// accept → CreateSession → serve frames → (disconnect | Stop) →
// CloseSession, which rolls back any transaction the client left open.
class NetServer {
 public:
  NetServer(Server* server, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and launches the accept loop + worker pool.
  Status Start();

  // Idempotent. Unblocks the accept loop, shuts down every live
  // connection (the peer sees EOF), and joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  // Responses that exceeded kMaxFrameBytes and were replaced by an error
  // frame (the connection survives; the count is for tests/monitoring).
  uint64_t oversized_responses() const {
    return oversized_responses_.load(std::memory_order_relaxed);
  }

 private:
  // One accepted connection waiting for a free worker. The accept thread
  // stamps the enqueue tick so the adopting worker can attribute the
  // accept-queue wait to the connection's first traced request.
  struct PendingConn {
    int fd = -1;  // -1 = shutdown sentinel
    uint64_t enqueue_ticks = 0;
    uint64_t depth = 0;  // queue depth at enqueue, this entry included
  };

  void AcceptLoop();
  void WorkerLoop();
  // Runs one connection to completion; owns fd and the session. The
  // queue_* arguments describe the accept-queue wait this connection
  // already paid, reported as a kQueueWait span on its first traced
  // request.
  void ServeConnection(int fd, uint64_t queue_enqueue_ticks,
                       uint64_t queue_dequeue_ticks, uint64_t queue_depth);

  Server* server_;
  NetServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> oversized_responses_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  // Accepted fds waiting for a free worker; fd -1 is the shutdown
  // sentinel.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> pending_;

  // Cached get-or-create handles into the embedded server's
  // MetricsRegistry, registered at Start() so EXPORT METRICS shows every
  // net.* series from the first scrape. Null until Start().
  obs::Counter* m_connections_accepted_ = nullptr;
  obs::Counter* m_connections_closed_ = nullptr;
  obs::Counter* m_frames_in_ = nullptr;
  obs::Counter* m_frames_out_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_oversized_responses_metric_ = nullptr;
  obs::Counter* m_session_close_failures_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;

  // Fds currently owned by workers, so Stop can shut them down and
  // unblock the blocking reads.
  std::mutex active_mu_;
  std::unordered_set<int> active_fds_;
};

}  // namespace net
}  // namespace grtdb

#endif  // GRTDB_NET_NET_SERVER_H_
