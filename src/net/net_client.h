#ifndef GRTDB_NET_NET_CLIENT_H_
#define GRTDB_NET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "server/result.h"
#include "sql/ast.h"

namespace grtdb {
namespace net {

// Blocking single-connection client. One NetClient is one server-side
// session; statements sent through it share that session's transaction
// and SET state. Not thread-safe — one thread per client, like one
// connection per application thread.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Round-trips one statement (or script). The returned Status is the
  // server's verdict on the SQL; transport failures surface as IOError
  // and close the connection (the server has rolled the session back).
  Status Execute(const std::string& sql, ResultSet* out);
  Status ExecuteScript(const std::string& sql, ResultSet* out);
  Status Ping();

  // Server-side prepared statements. Prepare registers `sql` (with `?`
  // placeholders) under `name` in this connection's session;
  // ExecutePrepared binds the parameters and runs it. Names live until
  // DEALLOCATE or disconnect.
  Status Prepare(const std::string& name, const std::string& sql,
                 ResultSet* out);
  Status ExecutePrepared(const std::string& name,
                         const std::vector<sql::Literal>& params,
                         ResultSet* out);

  // Trace id stamped on every subsequent request; the server samples a
  // traced request into sys_spans under this id regardless of its
  // TRACE_SAMPLE setting. 0 (the default) sends no id — the server
  // decides sampling itself. Set per operation for per-op attribution.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  Status RoundTrip(Request* request, ResultSet* out);

  int fd_ = -1;
  uint64_t trace_id_ = 0;
};

}  // namespace net
}  // namespace grtdb

#endif  // GRTDB_NET_NET_CLIENT_H_
