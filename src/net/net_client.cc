#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace grtdb {
namespace net {

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::RoundTrip(Request* request, ResultSet* out) {
  if (fd_ < 0) return Status::IOError("not connected");
  request->trace_id = trace_id_;
  Status io = WriteFrame(fd_, EncodeRequest(*request));
  if (io.ok()) {
    std::string payload;
    io = ReadFrame(fd_, &payload);
    if (io.ok()) {
      Response response;
      io = DecodeResponse(payload, &response);
      if (io.ok()) {
        if (out != nullptr) *out = std::move(response.result);
        return response.status;
      }
    }
  }
  // Transport broke mid-exchange: the connection's framing state is
  // unknown, so it is dead from here on.
  Close();
  return io;
}

Status NetClient::Execute(const std::string& sql, ResultSet* out) {
  Request request;
  request.opcode = Opcode::kExecute;
  request.sql = sql;
  return RoundTrip(&request, out);
}

Status NetClient::ExecuteScript(const std::string& sql, ResultSet* out) {
  Request request;
  request.opcode = Opcode::kScript;
  request.sql = sql;
  return RoundTrip(&request, out);
}

Status NetClient::Ping() {
  Request request;
  request.opcode = Opcode::kPing;
  return RoundTrip(&request, nullptr);
}

Status NetClient::Prepare(const std::string& name, const std::string& sql,
                          ResultSet* out) {
  Request request;
  request.opcode = Opcode::kPrepare;
  request.sql = sql;
  request.stmt_name = name;
  return RoundTrip(&request, out);
}

Status NetClient::ExecutePrepared(const std::string& name,
                                  const std::vector<sql::Literal>& params,
                                  ResultSet* out) {
  Request request;
  request.opcode = Opcode::kExecutePrepared;
  request.stmt_name = name;
  request.params = params;
  return RoundTrip(&request, out);
}

}  // namespace net
}  // namespace grtdb
