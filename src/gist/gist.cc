#include "gist/gist.h"

#include <algorithm>
#include <cstring>

#include "storage/layout.h"

namespace grtdb {

namespace {

constexpr uint32_t kAnchorMagic = 0x47495354;  // "GIST"
constexpr size_t kNodeHeaderSize = 8;          // level u32 + count u32
constexpr size_t kEntryOverhead = 2 + 8;       // key length u16 + payload u64

}  // namespace

StatusOr<std::unique_ptr<GistTree>> GistTree::Create(NodeStore* store,
                                                     NodeId* anchor) {
  std::unique_ptr<GistTree> tree(new GistTree(store));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->anchor_));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->root_));
  Node root;
  root.level = 0;
  GRTDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, root));
  GRTDB_RETURN_IF_ERROR(tree->SaveAnchor());
  *anchor = tree->anchor_;
  return tree;
}

StatusOr<std::unique_ptr<GistTree>> GistTree::Open(NodeStore* store,
                                                   NodeId anchor) {
  std::unique_ptr<GistTree> tree(new GistTree(store));
  tree->anchor_ = anchor;
  GRTDB_RETURN_IF_ERROR(tree->LoadAnchor());
  return tree;
}

Status GistTree::LoadAnchor() {
  uint8_t page[kPageSize];
  GRTDB_RETURN_IF_ERROR(store_->ReadNode(anchor_, page));
  if (LoadU32(page) != kAnchorMagic) {
    return Status::Corruption("bad GiST anchor magic");
  }
  root_ = LoadU64(page + 4);
  height_ = LoadU32(page + 12);
  size_ = LoadU64(page + 16);
  return Status::OK();
}

Status GistTree::SaveAnchor() {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, kAnchorMagic);
  StoreU64(page + 4, root_);
  StoreU32(page + 12, height_);
  StoreU64(page + 16, size_);
  return store_->WriteNode(anchor_, page);
}

size_t GistTree::NodeBytes(const Node& node) {
  size_t bytes = kNodeHeaderSize;
  for (const NodeEntry& entry : node.entries) {
    bytes += kEntryOverhead + entry.key.size();
  }
  return bytes;
}

bool GistTree::Overflows(const Node& node) {
  return NodeBytes(node) > kPageSize;
}

Status GistTree::ReadNode(NodeId id, Node* node) const {
  uint8_t page[kPageSize];
  GRTDB_RETURN_IF_ERROR(store_->ReadNode(id, page));
  node->level = LoadU32(page);
  const uint32_t count = LoadU32(page + 4);
  node->entries.clear();
  node->entries.reserve(count);
  size_t offset = kNodeHeaderSize;
  for (uint32_t i = 0; i < count; ++i) {
    if (offset + kEntryOverhead > kPageSize) {
      return Status::Corruption("GiST entry runs off the page");
    }
    uint16_t key_len;
    std::memcpy(&key_len, page + offset, 2);
    if (offset + kEntryOverhead + key_len > kPageSize) {
      return Status::Corruption("GiST key runs off the page");
    }
    NodeEntry entry;
    entry.key.assign(page + offset + 2, page + offset + 2 + key_len);
    entry.payload = LoadU64(page + offset + 2 + key_len);
    node->entries.push_back(std::move(entry));
    offset += kEntryOverhead + key_len;
  }
  return Status::OK();
}

Status GistTree::WriteNode(NodeId id, const Node& node) {
  if (NodeBytes(node) > kPageSize) {
    return Status::Internal("GiST node exceeds page size");
  }
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, node.level);
  StoreU32(page + 4, static_cast<uint32_t>(node.entries.size()));
  size_t offset = kNodeHeaderSize;
  for (const NodeEntry& entry : node.entries) {
    const uint16_t key_len = static_cast<uint16_t>(entry.key.size());
    std::memcpy(page + offset, &key_len, 2);
    std::memcpy(page + offset + 2, entry.key.data(), key_len);
    StoreU64(page + offset + 2 + key_len, entry.payload);
    offset += kEntryOverhead + key_len;
  }
  return store_->WriteNode(id, page);
}

GistKey GistTree::NodeUnion(const Node& node, const GistExtension& ext) const {
  std::vector<GistKey> keys;
  keys.reserve(node.entries.size());
  for (const NodeEntry& entry : node.entries) keys.push_back(entry.key);
  return ext.unite(keys);
}

Status GistTree::Insert(const GistKey& key, uint64_t payload,
                        const GistExtension& ext) {
  if (key.size() > kMaxKeySize) {
    return Status::InvalidArgument("GiST key exceeds kMaxKeySize");
  }
  GRTDB_RETURN_IF_ERROR(InsertAtLevel(NodeEntry{key, payload}, 0, ext));
  ++size_;
  return SaveAnchor();
}

Status GistTree::InsertAtLevel(const NodeEntry& entry, uint32_t level,
                               const GistExtension& ext) {
  bool split = false;
  NodeEntry split_entry;
  GistKey new_key;
  GRTDB_RETURN_IF_ERROR(InsertRecursive(root_, entry, level, ext, &split,
                                        &split_entry, &new_key));
  if (split) {
    Node probe;
    GRTDB_RETURN_IF_ERROR(ReadNode(root_, &probe));
    Node new_root;
    new_root.level = probe.level + 1;
    new_root.entries.push_back(NodeEntry{new_key, root_});
    new_root.entries.push_back(split_entry);
    NodeId new_root_id;
    GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&new_root_id));
    GRTDB_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
    root_ = new_root_id;
    ++height_;
    GRTDB_RETURN_IF_ERROR(SaveAnchor());
  }
  return Status::OK();
}

Status GistTree::InsertRecursive(NodeId node_id, const NodeEntry& entry,
                                 uint32_t level, const GistExtension& ext,
                                 bool* split, NodeEntry* split_entry,
                                 GistKey* new_key) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *split = false;
  if (node.level != level) {
    // ChooseSubtree: minimal penalty.
    size_t best = 0;
    double best_penalty = 0.0;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double candidate = ext.penalty(node.entries[i].key, entry.key);
      if (i == 0 || candidate < best_penalty) {
        best = i;
        best_penalty = candidate;
      }
    }
    const NodeId child_id = node.entries[best].payload;
    bool child_split = false;
    NodeEntry child_split_entry;
    GistKey child_key;
    GRTDB_RETURN_IF_ERROR(InsertRecursive(child_id, entry, level, ext,
                                          &child_split, &child_split_entry,
                                          &child_key));
    node.entries[best].key = std::move(child_key);
    if (child_split) node.entries.push_back(child_split_entry);
    if (!Overflows(node)) {
      GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
      *new_key = NodeUnion(node, ext);
      return Status::OK();
    }
  } else {
    node.entries.push_back(entry);
    if (!Overflows(node)) {
      GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
      *new_key = NodeUnion(node, ext);
      return Status::OK();
    }
  }

  // PickSplit.
  std::vector<GistKey> keys;
  keys.reserve(node.entries.size());
  for (const NodeEntry& e : node.entries) keys.push_back(e.key);
  std::vector<size_t> right_indices = ext.pick_split(keys);
  if (right_indices.empty() || right_indices.size() >= node.entries.size()) {
    return Status::Internal("pick_split produced an empty side");
  }
  std::vector<bool> goes_right(node.entries.size(), false);
  for (size_t index : right_indices) {
    if (index >= node.entries.size()) {
      return Status::Internal("pick_split index out of range");
    }
    goes_right[index] = true;
  }
  Node right;
  right.level = node.level;
  std::vector<NodeEntry> left_entries;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (goes_right[i]) {
      right.entries.push_back(std::move(node.entries[i]));
    } else {
      left_entries.push_back(std::move(node.entries[i]));
    }
  }
  node.entries = std::move(left_entries);
  if (Overflows(node) || Overflows(right)) {
    return Status::Internal("pick_split left an overfull side");
  }
  NodeId right_id;
  GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&right_id));
  GRTDB_RETURN_IF_ERROR(WriteNode(right_id, right));
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
  *split = true;
  *split_entry = NodeEntry{NodeUnion(right, ext), right_id};
  *new_key = NodeUnion(node, ext);
  return Status::OK();
}

Status GistTree::Delete(const GistKey& key, uint64_t payload,
                        const GistExtension& ext, bool* found) {
  *found = false;
  bool removed_node = false;
  std::vector<std::pair<NodeEntry, uint32_t>> orphans;
  GistKey new_key;
  GRTDB_RETURN_IF_ERROR(DeleteRecursive(root_, key, payload, ext, found,
                                        &removed_node, &orphans, &new_key));
  if (!*found) return Status::OK();
  --size_;
  // Re-insert orphans (highest level first), then shrink the root.
  std::stable_sort(
      orphans.begin(), orphans.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  for (auto& [entry, level] : orphans) {
    GRTDB_RETURN_IF_ERROR(InsertAtLevel(entry, level, ext));
  }
  while (true) {
    Node root_node;
    GRTDB_RETURN_IF_ERROR(ReadNode(root_, &root_node));
    if (root_node.level == 0) break;
    if (root_node.entries.empty()) {
      root_node.level = 0;
      GRTDB_RETURN_IF_ERROR(WriteNode(root_, root_node));
      height_ = 1;
      break;
    }
    if (root_node.entries.size() != 1) break;
    const NodeId child = root_node.entries[0].payload;
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(root_));
    root_ = child;
    --height_;
  }
  return SaveAnchor();
}

Status GistTree::DeleteRecursive(
    NodeId node_id, const GistKey& key, uint64_t payload,
    const GistExtension& ext, bool* found, bool* removed_node,
    std::vector<std::pair<NodeEntry, uint32_t>>* orphans, GistKey* new_key) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *removed_node = false;

  auto finish = [&]() -> Status {
    if (node_id != root_ && node.entries.size() < kMinEntries) {
      for (const NodeEntry& entry : node.entries) {
        orphans->emplace_back(entry, node.level);
      }
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(node_id));
      *removed_node = true;
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    if (!node.entries.empty()) *new_key = NodeUnion(node, ext);
    return Status::OK();
  };

  if (node.level == 0) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].payload == payload && node.entries[i].key == key) {
        node.entries.erase(node.entries.begin() + i);
        *found = true;
        break;
      }
    }
    if (!*found) return Status::OK();
    return finish();
  }

  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!ext.consistent(node.entries[i].key, key, /*strategy=*/0,
                        /*leaf=*/false)) {
      continue;
    }
    bool child_removed = false;
    GistKey child_key;
    GRTDB_RETURN_IF_ERROR(DeleteRecursive(node.entries[i].payload, key,
                                          payload, ext, found, &child_removed,
                                          orphans, &child_key));
    if (!*found) continue;
    if (child_removed) {
      node.entries.erase(node.entries.begin() + i);
    } else {
      node.entries[i].key = std::move(child_key);
    }
    return finish();
  }
  return Status::OK();
}

Status GistTree::Search(const GistKey& query, int strategy,
                        const GistExtension& ext,
                        const std::function<bool(const Entry&)>& fn) const {
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
    for (const NodeEntry& entry : node.entries) {
      if (!ext.consistent(entry.key, query, strategy, node.level == 0)) {
        continue;
      }
      if (node.level == 0) {
        if (!fn(Entry{entry.key, entry.payload})) return Status::OK();
      } else {
        stack.push_back(entry.payload);
      }
    }
  }
  return Status::OK();
}

Status GistTree::SearchAll(const GistKey& query, int strategy,
                           const GistExtension& ext,
                           std::vector<Entry>* out) const {
  out->clear();
  return Search(query, strategy, ext, [out](const Entry& entry) {
    out->push_back(entry);
    return true;
  });
}

StatusOr<double> GistTree::EstimateScanCost(const GistKey& query,
                                            int strategy,
                                            const GistExtension& ext) const {
  double cost = 1.0;
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    bool children_are_leaves = false;
    uint64_t matching = 0;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      if (node.level == 0) return cost;
      children_are_leaves = node.level == 1;
      for (const NodeEntry& entry : node.entries) {
        if (ext.consistent(entry.key, query, strategy, false)) {
          ++matching;
          if (!children_are_leaves) next.push_back(entry.payload);
        }
      }
    }
    cost += static_cast<double>(matching);
    if (children_are_leaves) break;
    frontier = std::move(next);
  }
  return cost;
}

Status GistTree::CheckConsistency(const GistExtension& ext) const {
  uint64_t leaf_entries = 0;
  GRTDB_RETURN_IF_ERROR(
      CheckRecursive(root_, height_ - 1, nullptr, ext, &leaf_entries));
  if (leaf_entries != size_) {
    return Status::Corruption("GiST size mismatch");
  }
  return Status::OK();
}

Status GistTree::CheckRecursive(NodeId node_id, uint32_t expected_level,
                                const NodeEntry* parent,
                                const GistExtension& ext,
                                uint64_t* leaf_entries) const {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.level != expected_level) {
    return Status::Corruption("GiST level mismatch");
  }
  if (node_id != root_ && node.entries.size() < kMinEntries) {
    return Status::Corruption("underfull GiST node");
  }
  if (parent != nullptr) {
    for (const NodeEntry& entry : node.entries) {
      if (!ext.consistent(parent->key, entry.key, /*strategy=*/0,
                          /*leaf=*/false)) {
        return Status::Corruption("parent key inconsistent with child");
      }
    }
  }
  if (node.level == 0) {
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const NodeEntry& entry : node.entries) {
    GRTDB_RETURN_IF_ERROR(CheckRecursive(entry.payload, node.level - 1,
                                         &entry, ext, leaf_entries));
  }
  return Status::OK();
}

Status GistTree::LevelStats(std::vector<GistLevelStats>* out) const {
  out->assign(height_, GistLevelStats{});
  for (uint32_t i = 0; i < height_; ++i) (*out)[i].level = i;
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      if (node.level >= height_) {
        return Status::Corruption("GiST node above its anchor height");
      }
      GistLevelStats& stats = (*out)[node.level];
      ++stats.nodes;
      stats.entries += node.entries.size();
      if (node.level > 0) {
        for (const NodeEntry& entry : node.entries) {
          next.push_back(entry.payload);
        }
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

Status GistTree::Drop() {
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
    if (node.level > 0) {
      for (const NodeEntry& entry : node.entries) {
        frontier.push_back(entry.payload);
      }
    }
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(id));
  }
  GRTDB_RETURN_IF_ERROR(store_->FreeNode(anchor_));
  root_ = kInvalidNodeId;
  anchor_ = kInvalidNodeId;
  size_ = 0;
  height_ = 1;
  return Status::OK();
}

}  // namespace grtdb
