#ifndef GRTDB_GIST_GIST_H_
#define GRTDB_GIST_GIST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/node_store.h"

namespace grtdb {

// A GiST key: an opaque byte string interpreted only by the extension.
using GistKey = std::vector<uint8_t>;

// Per-level structure statistics (leaf = level 0). Keys are opaque, so
// only structural counts are available — no areas. Backs am_stats.
struct GistLevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;
};

// The extension interface of a generalized search tree [HNP95, AOK98] —
// the paper's §7 proposal: "a generic extendible tree-based access method
// ... providing a simple, high-level extension interface that isolates the
// primitive operations required to construct new access methods". The four
// methods below are exactly those primitives; the GiST DataBlade resolves
// them from the operator class, so new data types plug in without touching
// any purpose function.
struct GistExtension {
  // Could an entry with `key` contain matches for `query` under strategy
  // number `strategy` (1-based position in the operator class)? Strategy 0
  // is reserved for maintenance descent: "could the exact key `query` live
  // under `key`?".
  std::function<bool(const GistKey& key, const GistKey& query, int strategy,
                     bool leaf)>
      consistent;
  // The smallest key covering all of `keys`.
  std::function<GistKey(std::span<const GistKey> keys)> unite;
  // Cost of placing `key` under the subtree keyed `existing` (smaller =
  // better).
  std::function<double(const GistKey& existing, const GistKey& key)> penalty;
  // Splits entries into two non-empty groups; returns the indices that go
  // right.
  std::function<std::vector<size_t>(std::span<const GistKey> keys)>
      pick_split;
};

// Disk-resident generalized search tree over a NodeStore. Keys are
// variable-length (up to kMaxKeySize bytes); every operation takes the
// extension, which the caller (the GiST DataBlade) resolves dynamically.
class GistTree {
 public:
  static constexpr size_t kMaxKeySize = 512;

  struct Entry {
    GistKey key;
    uint64_t payload = 0;
  };

  static StatusOr<std::unique_ptr<GistTree>> Create(NodeStore* store,
                                                    NodeId* anchor);
  static StatusOr<std::unique_ptr<GistTree>> Open(NodeStore* store,
                                                  NodeId anchor);

  GistTree(const GistTree&) = delete;
  GistTree& operator=(const GistTree&) = delete;

  Status Insert(const GistKey& key, uint64_t payload,
                const GistExtension& ext);

  // Removes one entry matching (key, payload) exactly; condenses underfull
  // nodes by re-inserting their entries.
  Status Delete(const GistKey& key, uint64_t payload,
                const GistExtension& ext, bool* found);

  // Calls fn for every leaf entry consistent with (query, strategy);
  // return false to stop.
  Status Search(const GistKey& query, int strategy, const GistExtension& ext,
                const std::function<bool(const Entry&)>& fn) const;
  Status SearchAll(const GistKey& query, int strategy,
                   const GistExtension& ext, std::vector<Entry>* out) const;

  // Estimated node reads for a search.
  StatusOr<double> EstimateScanCost(const GistKey& query, int strategy,
                                    const GistExtension& ext) const;

  // Structural invariants: levels, parent keys consistent with children
  // (via strategy 0), entry count.
  Status CheckConsistency(const GistExtension& ext) const;

  Status LevelStats(std::vector<GistLevelStats>* out) const;

  Status Drop();

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  NodeId anchor() const { return anchor_; }

 private:
  struct NodeEntry {
    GistKey key;
    uint64_t payload = 0;
  };
  struct Node {
    uint32_t level = 0;
    std::vector<NodeEntry> entries;
  };

  explicit GistTree(NodeStore* store) : store_(store) {}

  Status LoadAnchor();
  Status SaveAnchor();
  Status ReadNode(NodeId id, Node* node) const;
  Status WriteNode(NodeId id, const Node& node);
  static size_t NodeBytes(const Node& node);
  static bool Overflows(const Node& node);

  GistKey NodeUnion(const Node& node, const GistExtension& ext) const;
  Status InsertAtLevel(const NodeEntry& entry, uint32_t level,
                       const GistExtension& ext);
  Status InsertRecursive(NodeId node_id, const NodeEntry& entry,
                         uint32_t level, const GistExtension& ext,
                         bool* split, NodeEntry* split_entry,
                         GistKey* new_key);
  Status DeleteRecursive(NodeId node_id, const GistKey& key,
                         uint64_t payload, const GistExtension& ext,
                         bool* found, bool* removed_node,
                         std::vector<std::pair<NodeEntry, uint32_t>>* orphans,
                         GistKey* new_key);
  Status CheckRecursive(NodeId node_id, uint32_t expected_level,
                        const NodeEntry* parent, const GistExtension& ext,
                        uint64_t* leaf_entries) const;

  NodeStore* store_;
  NodeId anchor_ = kInvalidNodeId;
  NodeId root_ = kInvalidNodeId;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
  // Minimum entries per non-root node (condense threshold).
  static constexpr size_t kMinEntries = 2;
};

}  // namespace grtdb

#endif  // GRTDB_GIST_GIST_H_
