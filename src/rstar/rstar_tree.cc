#include "rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>

#include "storage/layout.h"

namespace grtdb {

namespace {

constexpr uint32_t kAnchorMagic = 0x52535452;  // "RSTR"
constexpr size_t kNodeHeaderSize = 8;          // level u32 + count u32
constexpr size_t kEntrySize = 40;              // 4 x i64 + payload u64

size_t MaxEntriesForPage() {
  return (kPageSize - kNodeHeaderSize) / kEntrySize;
}

}  // namespace

StatusOr<std::unique_ptr<RStarTree>> RStarTree::Create(NodeStore* store,
                                                       const Options& options,
                                                       NodeId* anchor) {
  std::unique_ptr<RStarTree> tree(new RStarTree(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  if (tree->max_entries_ > MaxEntriesForPage()) {
    return Status::InvalidArgument("max_entries exceeds page capacity");
  }
  if (tree->max_entries_ < 4) {
    return Status::InvalidArgument("max_entries must be >= 4");
  }
  tree->min_entries_ = std::max<size_t>(
      1, static_cast<size_t>(options.min_fill *
                             static_cast<double>(tree->max_entries_)));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->anchor_));
  GRTDB_RETURN_IF_ERROR(store->AllocateNode(&tree->root_));
  Node root;
  root.level = 0;
  GRTDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, root));
  GRTDB_RETURN_IF_ERROR(tree->SaveAnchor());
  *anchor = tree->anchor_;
  return tree;
}

StatusOr<std::unique_ptr<RStarTree>> RStarTree::Open(NodeStore* store,
                                                     NodeId anchor,
                                                     const Options& options) {
  std::unique_ptr<RStarTree> tree(new RStarTree(store, options));
  tree->max_entries_ =
      options.max_entries != 0 ? options.max_entries : MaxEntriesForPage();
  tree->min_entries_ = std::max<size_t>(
      1, static_cast<size_t>(options.min_fill *
                             static_cast<double>(tree->max_entries_)));
  tree->anchor_ = anchor;
  GRTDB_RETURN_IF_ERROR(tree->LoadAnchor());
  return tree;
}

Status RStarTree::LoadAnchor() {
  NodeView view;
  GRTDB_RETURN_IF_ERROR(store_->ViewNode(anchor_, &view));
  const uint8_t* page = view.data();
  if (LoadU32(page) != kAnchorMagic) {
    return Status::Corruption("bad R*-tree anchor magic");
  }
  root_ = LoadU64(page + 4);
  height_ = LoadU32(page + 12);
  size_ = LoadU64(page + 16);
  return Status::OK();
}

Status RStarTree::SaveAnchor() {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, kAnchorMagic);
  StoreU64(page + 4, root_);
  StoreU32(page + 12, height_);
  StoreU64(page + 16, size_);
  return store_->WriteNode(anchor_, page);
}

Status RStarTree::ReadNode(NodeId id, Node* node) const {
  // Zero-copy on cached stores: decode straight out of the pinned frame.
  NodeView view;
  GRTDB_RETURN_IF_ERROR(store_->ViewNode(id, &view));
  const uint8_t* page = view.data();
  node->level = LoadU32(page);
  const uint32_t count = LoadU32(page + 4);
  if (count > MaxEntriesForPage()) {
    return Status::Corruption("node entry count out of range");
  }
  node->entries.clear();
  node->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* p = page + kNodeHeaderSize + i * kEntrySize;
    Entry entry;
    entry.rect.x1 = LoadI64(p);
    entry.rect.x2 = LoadI64(p + 8);
    entry.rect.y1 = LoadI64(p + 16);
    entry.rect.y2 = LoadI64(p + 24);
    entry.payload = LoadU64(p + 32);
    node->entries.push_back(entry);
  }
  return Status::OK();
}

Status RStarTree::WriteNode(NodeId id, const Node& node) {
  uint8_t page[kPageSize];
  std::memset(page, 0, sizeof(page));
  StoreU32(page, node.level);
  StoreU32(page + 4, static_cast<uint32_t>(node.entries.size()));
  for (size_t i = 0; i < node.entries.size(); ++i) {
    uint8_t* p = page + kNodeHeaderSize + i * kEntrySize;
    const Entry& entry = node.entries[i];
    StoreI64(p, entry.rect.x1);
    StoreI64(p + 8, entry.rect.x2);
    StoreI64(p + 16, entry.rect.y1);
    StoreI64(p + 24, entry.rect.y2);
    StoreU64(p + 32, entry.payload);
  }
  return store_->WriteNode(id, page);
}

Rect RStarTree::NodeBound(const Node& node) const {
  Rect bound;
  for (const Entry& entry : node.entries) {
    bound = Rect::Enclose(bound, entry.rect);
  }
  return bound;
}

Status RStarTree::ChooseSubtree(const Node& node, const Rect& rect,
                                size_t* best) {
  const bool children_are_leaves = node.level == 1;
  double best_primary = 0.0;
  double best_secondary = 0.0;
  double best_area = 0.0;
  size_t best_index = 0;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Rect& child = node.entries[i].rect;
    const Rect enlarged = Rect::Enclose(child, rect);
    const double area = child.Area();
    const double area_enlargement = enlarged.Area() - area;
    double primary;
    if (children_are_leaves) {
      // Minimum overlap enlargement [BEC90 §4.1].
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += child.IntersectionArea(node.entries[j].rect);
        overlap_after += enlarged.IntersectionArea(node.entries[j].rect);
      }
      primary = overlap_after - overlap_before;
    } else {
      primary = area_enlargement;
    }
    const double secondary = children_are_leaves ? area_enlargement : area;
    if (i == 0 || primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary &&
         area < best_area)) {
      best_primary = primary;
      best_secondary = secondary;
      best_area = area;
      best_index = i;
    }
  }
  *best = best_index;
  return Status::OK();
}

Status RStarTree::Insert(const Rect& rect, uint64_t payload) {
  if (rect.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  std::vector<bool> reinsert_done(height_, false);
  GRTDB_RETURN_IF_ERROR(
      InsertAtLevel(Entry{rect, payload}, 0, &reinsert_done));
  ++size_;
  return SaveAnchor();
}

Status RStarTree::InsertAtLevel(const Entry& entry, uint32_t level,
                                std::vector<bool>* reinsert_done) {
  struct Pending {
    Entry entry;
    uint32_t level;
  };
  std::deque<Pending> work;
  work.push_back(Pending{entry, level});
  while (!work.empty()) {
    Pending item = work.front();
    work.pop_front();
    bool split = false;
    Entry split_entry;
    Rect new_bound;
    // InsertRecursive may push forced-reinsert evictions onto `work` via
    // the pending vector.
    std::vector<std::pair<Entry, uint32_t>> evicted;
    GRTDB_RETURN_IF_ERROR(InsertRecursiveImpl(root_, item.entry, item.level,
                                              reinsert_done, &split,
                                              &split_entry, &new_bound,
                                              &evicted));
    for (auto& [evicted_entry, evicted_level] : evicted) {
      work.push_back(Pending{evicted_entry, evicted_level});
    }
    if (split) {
      // Grow a new root over the two halves.
      Node old_root_probe;
      GRTDB_RETURN_IF_ERROR(ReadNode(root_, &old_root_probe));
      Node new_root;
      new_root.level = old_root_probe.level + 1;
      new_root.entries.push_back(Entry{new_bound, root_});
      new_root.entries.push_back(split_entry);
      NodeId new_root_id;
      GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&new_root_id));
      GRTDB_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
      root_ = new_root_id;
      ++height_;
      reinsert_done->resize(height_, false);
      GRTDB_RETURN_IF_ERROR(SaveAnchor());
    }
  }
  return Status::OK();
}

Status RStarTree::InsertRecursiveImpl(
    NodeId node_id, const Entry& entry, uint32_t level,
    std::vector<bool>* reinsert_done, bool* split, Entry* split_entry,
    Rect* new_bound, std::vector<std::pair<Entry, uint32_t>>* evicted) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *split = false;
  if (node.level == level) {
    node.entries.push_back(entry);
    if (node.entries.size() > max_entries_) {
      return HandleOverflowImpl(node_id, &node, reinsert_done, split,
                                split_entry, new_bound, evicted);
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *new_bound = NodeBound(node);
    return Status::OK();
  }

  size_t child_index;
  GRTDB_RETURN_IF_ERROR(ChooseSubtree(node, entry.rect, &child_index));
  const NodeId child_id = node.entries[child_index].payload;
  bool child_split = false;
  Entry child_split_entry;
  Rect child_bound;
  GRTDB_RETURN_IF_ERROR(InsertRecursiveImpl(child_id, entry, level,
                                            reinsert_done, &child_split,
                                            &child_split_entry, &child_bound,
                                            evicted));
  node.entries[child_index].rect = child_bound;
  if (child_split) {
    node.entries.push_back(child_split_entry);
    if (node.entries.size() > max_entries_) {
      return HandleOverflowImpl(node_id, &node, reinsert_done, split,
                                split_entry, new_bound, evicted);
    }
  }
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
  *new_bound = NodeBound(node);
  return Status::OK();
}

Status RStarTree::HandleOverflowImpl(
    NodeId node_id, Node* node, std::vector<bool>* reinsert_done, bool* split,
    Entry* split_entry, Rect* new_bound,
    std::vector<std::pair<Entry, uint32_t>>* evicted) {
  const bool is_root = node_id == root_;
  if (options_.forced_reinsert && !is_root && node->level < height_ &&
      !(*reinsert_done)[node->level]) {
    (*reinsert_done)[node->level] = true;
    // Evict the reinsert_fraction entries farthest from the node center and
    // defer their reinsertion (close-reinsert order: nearest first).
    const Rect bound = NodeBound(*node);
    std::vector<size_t> order(node->entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return node->entries[a].rect.CenterDistance2(bound) <
             node->entries[b].rect.CenterDistance2(bound);
    });
    const size_t evict_count = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction *
                               static_cast<double>(node->entries.size())));
    const size_t keep = node->entries.size() - evict_count;
    std::vector<Entry> kept;
    kept.reserve(keep);
    for (size_t i = 0; i < keep; ++i) kept.push_back(node->entries[order[i]]);
    for (size_t i = keep; i < order.size(); ++i) {
      evicted->emplace_back(node->entries[order[i]], node->level);
    }
    node->entries = std::move(kept);
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, *node));
    *split = false;
    *new_bound = NodeBound(*node);
    return Status::OK();
  }

  // Topological split.
  std::vector<Entry> left;
  std::vector<Entry> right;
  SplitEntries(&node->entries, &left, &right);
  Node right_node;
  right_node.level = node->level;
  right_node.entries = std::move(right);
  NodeId right_id;
  GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&right_id));
  GRTDB_RETURN_IF_ERROR(WriteNode(right_id, right_node));
  node->entries = std::move(left);
  GRTDB_RETURN_IF_ERROR(WriteNode(node_id, *node));
  *split = true;
  *split_entry = Entry{NodeBound(right_node), right_id};
  *new_bound = NodeBound(*node);
  return Status::OK();
}

void RStarTree::SplitEntries(std::vector<Entry>* entries,
                             std::vector<Entry>* left,
                             std::vector<Entry>* right) const {
  const size_t total = entries->size();
  const size_t m = min_entries_;

  struct Candidate {
    std::vector<size_t> order;
    size_t split_at = 0;  // left gets order[0 .. split_at)
    double overlap = 0.0;
    double area = 0.0;
  };

  auto evaluate_axis = [&](bool x_axis, double* margin_sum,
                           Candidate* best_candidate) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<size_t> order(total);
      for (size_t i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Rect& ra = (*entries)[a].rect;
        const Rect& rb = (*entries)[b].rect;
        const int64_t ka = x_axis ? (by_upper ? ra.x2 : ra.x1)
                                  : (by_upper ? ra.y2 : ra.y1);
        const int64_t kb = x_axis ? (by_upper ? rb.x2 : rb.x1)
                                  : (by_upper ? rb.y2 : rb.y1);
        return ka < kb;
      });
      // Prefix/suffix bounds.
      std::vector<Rect> prefix(total);
      std::vector<Rect> suffix(total);
      Rect acc;
      for (size_t i = 0; i < total; ++i) {
        acc = Rect::Enclose(acc, (*entries)[order[i]].rect);
        prefix[i] = acc;
      }
      acc = Rect();
      for (size_t i = total; i-- > 0;) {
        acc = Rect::Enclose(acc, (*entries)[order[i]].rect);
        suffix[i] = acc;
      }
      for (size_t k = m; k + m <= total; ++k) {
        const Rect& lb = prefix[k - 1];
        const Rect& rb = suffix[k];
        *margin_sum += lb.Margin() + rb.Margin();
        const double overlap = lb.IntersectionArea(rb);
        const double area = lb.Area() + rb.Area();
        if (best_candidate->order.empty() ||
            overlap < best_candidate->overlap ||
            (overlap == best_candidate->overlap &&
             area < best_candidate->area)) {
          best_candidate->order = order;
          best_candidate->split_at = k;
          best_candidate->overlap = overlap;
          best_candidate->area = area;
        }
      }
    }
  };

  double x_margin = 0.0;
  double y_margin = 0.0;
  Candidate x_best;
  Candidate y_best;
  evaluate_axis(true, &x_margin, &x_best);
  evaluate_axis(false, &y_margin, &y_best);
  const Candidate& chosen = (x_margin <= y_margin) ? x_best : y_best;

  left->clear();
  right->clear();
  for (size_t i = 0; i < chosen.split_at; ++i) {
    left->push_back((*entries)[chosen.order[i]]);
  }
  for (size_t i = chosen.split_at; i < total; ++i) {
    right->push_back((*entries)[chosen.order[i]]);
  }
}

Status RStarTree::Delete(const Rect& rect, uint64_t payload, bool* found) {
  *found = false;
  bool removed_node = false;
  std::vector<std::pair<Entry, uint32_t>> orphans;
  Rect new_bound;
  GRTDB_RETURN_IF_ERROR(DeleteRecursiveImpl(root_, rect, payload, found,
                                            &removed_node, &orphans,
                                            &new_bound));
  if (!*found) return Status::OK();
  --size_;
  if (removed_node) {
    // The root itself went underfull only in the leaf-root case, which we
    // never remove; removed_node true here would be a logic error.
    return Status::Internal("root unexpectedly removed");
  }
  // Re-insert orphaned entries at their original levels, highest level
  // first and before any root shrink so every target level still exists.
  // Forced reinsertion is disabled to keep condensation bounded.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::vector<bool> reinsert_done(height_, true);
  for (auto& [entry, level] : orphans) {
    GRTDB_RETURN_IF_ERROR(InsertAtLevel(entry, level, &reinsert_done));
  }
  // Shrink the root while it is an internal node with a single child; an
  // internal root drained of all children degenerates to an empty leaf.
  while (true) {
    Node root_node;
    GRTDB_RETURN_IF_ERROR(ReadNode(root_, &root_node));
    if (root_node.level == 0) break;
    if (root_node.entries.empty()) {
      root_node.level = 0;
      GRTDB_RETURN_IF_ERROR(WriteNode(root_, root_node));
      height_ = 1;
      break;
    }
    if (root_node.entries.size() != 1) break;
    const NodeId child = root_node.entries[0].payload;
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(root_));
    root_ = child;
    --height_;
  }
  return SaveAnchor();
}

Status RStarTree::DeleteRecursiveImpl(
    NodeId node_id, const Rect& rect, uint64_t payload, bool* found,
    bool* removed_node, std::vector<std::pair<Entry, uint32_t>>* orphans,
    Rect* new_bound) {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  *removed_node = false;
  if (node.level == 0) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].rect == rect && node.entries[i].payload == payload) {
        node.entries.erase(node.entries.begin() + i);
        *found = true;
        break;
      }
    }
    if (!*found) return Status::OK();
    if (node_id != root_ && node.entries.size() < min_entries_) {
      for (const Entry& entry : node.entries) {
        orphans->emplace_back(entry, 0);
      }
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(node_id));
      *removed_node = true;
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *new_bound = NodeBound(node);
    return Status::OK();
  }

  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].rect.Contains(rect)) continue;
    bool child_removed = false;
    Rect child_bound;
    GRTDB_RETURN_IF_ERROR(DeleteRecursiveImpl(node.entries[i].payload, rect,
                                              payload, found, &child_removed,
                                              orphans, &child_bound));
    if (!*found) continue;
    if (child_removed) {
      node.entries.erase(node.entries.begin() + i);
    } else {
      node.entries[i].rect = child_bound;
    }
    if (node_id != root_ && node.entries.size() < min_entries_) {
      for (const Entry& entry : node.entries) {
        orphans->emplace_back(entry, node.level);
      }
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(node_id));
      *removed_node = true;
      return Status::OK();
    }
    GRTDB_RETURN_IF_ERROR(WriteNode(node_id, node));
    *new_bound = NodeBound(node);
    return Status::OK();
  }
  return Status::OK();
}

Status RStarTree::Search(const Rect& query,
                         const std::function<bool(const Entry&)>& fn) const {
  bool keep_going = true;
  return SearchRecursive(root_, query, fn, &keep_going);
}

Status RStarTree::SearchRecursive(NodeId node_id, const Rect& query,
                                  const std::function<bool(const Entry&)>& fn,
                                  bool* keep_going) const {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  for (const Entry& entry : node.entries) {
    if (!*keep_going) return Status::OK();
    if (!entry.rect.Intersects(query)) continue;
    if (node.level == 0) {
      if (!fn(entry)) {
        *keep_going = false;
        return Status::OK();
      }
    } else {
      GRTDB_RETURN_IF_ERROR(
          SearchRecursive(entry.payload, query, fn, keep_going));
    }
  }
  return Status::OK();
}

Status RStarTree::SearchAll(const Rect& query, std::vector<Entry>* out) const {
  out->clear();
  return Search(query, [out](const Entry& entry) {
    out->push_back(entry);
    return true;
  });
}

StatusOr<double> RStarTree::EstimateScanCost(const Rect& query) const {
  // Walk the internal levels, counting every node whose bound intersects
  // the query; leaf visits are estimated from the last internal level.
  double cost = 1.0;  // root
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    uint64_t overlapping_children = 0;
    bool children_are_leaves = false;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      if (node.level == 0) return cost;
      children_are_leaves = node.level == 1;
      for (const Entry& entry : node.entries) {
        if (entry.rect.Intersects(query)) {
          ++overlapping_children;
          if (!children_are_leaves) next.push_back(entry.payload);
        }
      }
    }
    cost += static_cast<double>(overlapping_children);
    if (children_are_leaves) break;
    frontier = std::move(next);
  }
  return cost;
}

Status RStarTree::CheckConsistency() const {
  uint64_t leaf_entries = 0;
  GRTDB_RETURN_IF_ERROR(
      CheckRecursive(root_, height_ - 1, nullptr, &leaf_entries));
  if (leaf_entries != size_) {
    return Status::Corruption("size mismatch: anchor says " +
                              std::to_string(size_) + ", tree holds " +
                              std::to_string(leaf_entries));
  }
  return Status::OK();
}

Status RStarTree::CheckRecursive(NodeId node_id, uint32_t expected_level,
                                 const Rect* parent_bound,
                                 uint64_t* leaf_entries) const {
  Node node;
  GRTDB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node_id != root_ && node.entries.size() < min_entries_) {
    return Status::Corruption("underfull node");
  }
  if (node.entries.size() > max_entries_) {
    return Status::Corruption("overfull node");
  }
  if (parent_bound != nullptr) {
    for (const Entry& entry : node.entries) {
      if (!parent_bound->Contains(entry.rect)) {
        return Status::Corruption("parent bound does not contain entry");
      }
    }
  }
  if (node.level == 0) {
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const Entry& entry : node.entries) {
    GRTDB_RETURN_IF_ERROR(CheckRecursive(entry.payload, node.level - 1,
                                         &entry.rect, leaf_entries));
  }
  return Status::OK();
}

Status RStarTree::LevelStats(std::vector<RStarLevelStats>* out) const {
  out->assign(height_, RStarLevelStats{});
  for (uint32_t i = 0; i < height_; ++i) (*out)[i].level = i;
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId id : frontier) {
      Node node;
      GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
      RStarLevelStats& stats = (*out)[node.level];
      ++stats.nodes;
      stats.entries += node.entries.size();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        stats.total_area += node.entries[i].rect.Area();
        for (size_t j = i + 1; j < node.entries.size(); ++j) {
          stats.overlap_area +=
              node.entries[i].rect.IntersectionArea(node.entries[j].rect);
        }
      }
      if (node.level > 0) {
        for (const Entry& entry : node.entries) {
          next.push_back(entry.payload);
        }
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

Status RStarTree::Drop() {
  std::vector<NodeId> frontier = {root_};
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    Node node;
    GRTDB_RETURN_IF_ERROR(ReadNode(id, &node));
    if (node.level > 0) {
      for (const Entry& entry : node.entries) {
        frontier.push_back(entry.payload);
      }
    }
    GRTDB_RETURN_IF_ERROR(store_->FreeNode(id));
  }
  GRTDB_RETURN_IF_ERROR(store_->FreeNode(anchor_));
  root_ = kInvalidNodeId;
  anchor_ = kInvalidNodeId;
  size_ = 0;
  height_ = 1;
  return Status::OK();
}

Status RStarTree::BulkLoad(std::vector<Entry> entries) {
  if (size_ != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (entries.empty()) return Status::OK();
  const size_t fill = std::max<size_t>(
      2, static_cast<size_t>(0.7 * static_cast<double>(max_entries_)));
  size_ = entries.size();

  // Sort-Tile-Recursive packing, one tree level at a time.
  uint32_t level = 0;
  std::vector<Entry> current = std::move(entries);
  NodeId last_node = kInvalidNodeId;
  while (true) {
    const size_t node_count = (current.size() + fill - 1) / fill;
    const size_t slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    const size_t slab_size = slabs * fill;
    std::sort(current.begin(), current.end(),
              [](const Entry& a, const Entry& b) {
                return a.rect.x1 + a.rect.x2 < b.rect.x1 + b.rect.x2;
              });
    std::vector<std::vector<Entry>> groups;
    for (size_t s = 0; s * slab_size < current.size(); ++s) {
      const size_t begin = s * slab_size;
      const size_t end = std::min(current.size(), begin + slab_size);
      std::sort(current.begin() + begin, current.begin() + end,
                [](const Entry& a, const Entry& b) {
                  return a.rect.y1 + a.rect.y2 < b.rect.y1 + b.rect.y2;
                });
      for (size_t i = begin; i < end; i += fill) {
        groups.emplace_back(current.begin() + i,
                            current.begin() + std::min(end, i + fill));
      }
    }
    // Rebalance STR remainders so no non-root node is underfull.
    for (size_t i = 0; groups.size() > 1 && i < groups.size();) {
      if (groups[i].size() >= min_entries_) {
        ++i;
        continue;
      }
      const size_t neighbor = i > 0 ? i - 1 : i + 1;
      std::vector<Entry> merged = std::move(groups[std::min(i, neighbor)]);
      std::vector<Entry>& other = groups[std::max(i, neighbor)];
      merged.insert(merged.end(), other.begin(), other.end());
      groups.erase(groups.begin() + std::max(i, neighbor));
      if (merged.size() <= max_entries_) {
        groups[std::min(i, neighbor)] = std::move(merged);
      } else {
        const size_t half = merged.size() / 2;
        groups[std::min(i, neighbor)].assign(merged.begin(),
                                             merged.begin() + half);
        groups.insert(
            groups.begin() + std::min(i, neighbor) + 1,
            std::vector<Entry>(merged.begin() + half, merged.end()));
      }
      i = std::min(i, neighbor);
    }
    std::vector<Entry> next_level;
    for (std::vector<Entry>& group : groups) {
      Node node;
      node.level = level;
      node.entries = std::move(group);
      NodeId id;
      GRTDB_RETURN_IF_ERROR(store_->AllocateNode(&id));
      GRTDB_RETURN_IF_ERROR(WriteNode(id, node));
      next_level.push_back(Entry{NodeBound(node), id});
      last_node = id;
    }
    if (next_level.size() == 1) {
      GRTDB_RETURN_IF_ERROR(store_->FreeNode(root_));
      root_ = last_node;
      height_ = level + 1;
      return SaveAnchor();
    }
    current = std::move(next_level);
    ++level;
  }
}

}  // namespace grtdb
