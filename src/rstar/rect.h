#ifndef GRTDB_RSTAR_RECT_H_
#define GRTDB_RSTAR_RECT_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace grtdb {

// Axis-aligned rectangle with closed integer coordinates; the entry
// geometry of the classic R*-tree [BEC90]. In the bitemporal baseline the
// axes are (transaction time, valid time) and UC/NOW have been transformed
// to a fixed maximum timestamp before indexing.
struct Rect {
  int64_t x1 = 0;
  int64_t x2 = -1;  // default-constructed rect is empty (x1 > x2)
  int64_t y1 = 0;
  int64_t y2 = -1;

  static Rect Of(int64_t x1, int64_t x2, int64_t y1, int64_t y2) {
    return Rect{x1, x2, y1, y2};
  }

  bool IsEmpty() const { return x1 > x2 || y1 > y2; }

  double Area() const {
    if (IsEmpty()) return 0.0;
    return static_cast<double>(x2 - x1) * static_cast<double>(y2 - y1);
  }

  double Margin() const {
    if (IsEmpty()) return 0.0;
    return static_cast<double>(x2 - x1) + static_cast<double>(y2 - y1);
  }

  bool Intersects(const Rect& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
  }

  bool Contains(const Rect& o) const {
    if (o.IsEmpty()) return true;
    if (IsEmpty()) return false;
    return x1 <= o.x1 && o.x2 <= x2 && y1 <= o.y1 && o.y2 <= y2;
  }

  double IntersectionArea(const Rect& o) const {
    if (!Intersects(o)) return 0.0;
    return static_cast<double>(std::min(x2, o.x2) - std::max(x1, o.x1)) *
           static_cast<double>(std::min(y2, o.y2) - std::max(y1, o.y1));
  }

  static Rect Enclose(const Rect& a, const Rect& b) {
    if (a.IsEmpty()) return b;
    if (b.IsEmpty()) return a;
    return Rect{std::min(a.x1, b.x1), std::max(a.x2, b.x2),
                std::min(a.y1, b.y1), std::max(a.y2, b.y2)};
  }

  // Squared distance between centers (for R* forced-reinsert ordering).
  double CenterDistance2(const Rect& o) const {
    const double dx = 0.5 * (static_cast<double>(x1 + x2) -
                             static_cast<double>(o.x1 + o.x2));
    const double dy = 0.5 * (static_cast<double>(y1 + y2) -
                             static_cast<double>(o.y1 + o.y2));
    return dx * dx + dy * dy;
  }

  std::string ToString() const {
    return "[" + std::to_string(x1) + "," + std::to_string(x2) + "]x[" +
           std::to_string(y1) + "," + std::to_string(y2) + "]";
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x1 == b.x1 && a.x2 == b.x2 && a.y1 == b.y1 && a.y2 == b.y2;
  }
};

}  // namespace grtdb

#endif  // GRTDB_RSTAR_RECT_H_
