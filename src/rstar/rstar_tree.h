#ifndef GRTDB_RSTAR_RSTAR_TREE_H_
#define GRTDB_RSTAR_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "rstar/rect.h"
#include "storage/node_store.h"

namespace grtdb {

// Per-level structure statistics (bench T3 reports these).
struct RStarLevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;
  double total_area = 0.0;
  double overlap_area = 0.0;  // sum of pairwise entry-overlap per node
};

// A disk-based R*-tree [BEC90] over a NodeStore: ChooseSubtree with
// minimum-overlap enlargement at the leaf level, margin-driven topological
// split, forced reinsertion on first overflow per level, and deletion with
// tree condensation. This is both the substrate the GR-tree derives from
// (paper §3) and the comparison baseline (via the maximum-timestamp
// transform, bench T5).
class RStarTree {
 public:
  struct Options {
    // 0 derives the maximum from the page size.
    size_t max_entries = 0;
    double min_fill = 0.4;
    double reinsert_fraction = 0.3;
    bool forced_reinsert = true;
  };

  struct Entry {
    Rect rect;
    uint64_t payload = 0;
  };

  // Creates an empty tree; `*anchor` receives the node id that persists the
  // tree's root pointer (pass it to Open later).
  static StatusOr<std::unique_ptr<RStarTree>> Create(NodeStore* store,
                                                     const Options& options,
                                                     NodeId* anchor);
  static StatusOr<std::unique_ptr<RStarTree>> Open(NodeStore* store,
                                                   NodeId anchor,
                                                   const Options& options);

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  Status Insert(const Rect& rect, uint64_t payload);

  // Removes one entry matching (rect, payload); *found reports whether one
  // existed. Underfull nodes are condensed and their entries re-inserted.
  Status Delete(const Rect& rect, uint64_t payload, bool* found);

  // Calls `fn` for every leaf entry whose rect intersects `query`; return
  // false from `fn` to stop early.
  Status Search(const Rect& query,
                const std::function<bool(const Entry&)>& fn) const;
  Status SearchAll(const Rect& query, std::vector<Entry>* out) const;

  // Estimated node reads for an intersection query (am_scancost): walks
  // internal levels counting overlapping branches.
  StatusOr<double> EstimateScanCost(const Rect& query) const;

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  NodeId anchor() const { return anchor_; }
  size_t max_entries() const { return max_entries_; }

  // Structural invariants: bounds contain children, fill factors, entry
  // count. Backs am_check.
  Status CheckConsistency() const;

  Status LevelStats(std::vector<RStarLevelStats>* out) const;

  // Frees every node including the anchor.
  Status Drop();

  // Bulk-loads `entries` bottom-up (Sort-Tile-Recursive); the tree must be
  // empty. Used by the vacuum/rebuild path of bench T9.
  Status BulkLoad(std::vector<Entry> entries);

 private:
  struct Node {
    uint32_t level = 0;  // 0 = leaf
    std::vector<Entry> entries;
  };

  RStarTree(NodeStore* store, const Options& options)
      : store_(store), options_(options) {}

  Status LoadAnchor();
  Status SaveAnchor();
  Status ReadNode(NodeId id, Node* node) const;
  Status WriteNode(NodeId id, const Node& node);

  Rect NodeBound(const Node& node) const;
  Status ChooseSubtree(const Node& node, const Rect& rect, size_t* best);

  // Inserts `entry` at `level`, splitting/reinserting as needed.
  // `reinsert_done` tracks which levels already did forced reinsertion for
  // this logical insertion (R* OverflowTreatment).
  Status InsertAtLevel(const Entry& entry, uint32_t level,
                       std::vector<bool>* reinsert_done);
  Status InsertRecursiveImpl(
      NodeId node_id, const Entry& entry, uint32_t level,
      std::vector<bool>* reinsert_done, bool* split, Entry* split_entry,
      Rect* new_bound, std::vector<std::pair<Entry, uint32_t>>* evicted);
  Status HandleOverflowImpl(
      NodeId node_id, Node* node, std::vector<bool>* reinsert_done,
      bool* split, Entry* split_entry, Rect* new_bound,
      std::vector<std::pair<Entry, uint32_t>>* evicted);
  void SplitEntries(std::vector<Entry>* entries, std::vector<Entry>* left,
                    std::vector<Entry>* right) const;

  Status DeleteRecursiveImpl(NodeId node_id, const Rect& rect,
                             uint64_t payload, bool* found,
                             bool* removed_node,
                             std::vector<std::pair<Entry, uint32_t>>* orphans,
                             Rect* new_bound);
  Status SearchRecursive(NodeId node_id, const Rect& query,
                         const std::function<bool(const Entry&)>& fn,
                         bool* keep_going) const;
  Status CheckRecursive(NodeId node_id, uint32_t expected_level,
                        const Rect* parent_bound,
                        uint64_t* leaf_entries) const;

  NodeStore* store_;
  Options options_;
  size_t max_entries_ = 0;
  size_t min_entries_ = 0;
  NodeId anchor_ = kInvalidNodeId;
  NodeId root_ = kInvalidNodeId;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
};

}  // namespace grtdb

#endif  // GRTDB_RSTAR_RSTAR_TREE_H_
