#include "server/vii.h"

namespace grtdb {

std::string MiAmQualDesc::ToString(
    const std::string& column_name,
    const std::function<std::string(const Value&)>& render) const {
  switch (op) {
    case Op::kTerm: {
      std::string fn = term.func != nullptr ? term.func->name : "?";
      if (term.unary) return fn + "(" + column_name + ")";
      const std::string constant =
          render ? render(term.constant) : term.constant.ToString();
      if (term.column_first) {
        return fn + "(" + column_name + ", '" + constant + "')";
      }
      return fn + "('" + constant + "', " + column_name + ")";
    }
    case Op::kAnd:
    case Op::kOr: {
      std::string sep = op == Op::kAnd ? " AND " : " OR ";
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += sep;
        out += "(" + children[i].ToString(column_name, render) + ")";
      }
      return out;
    }
  }
  return "?";
}

Status EvaluateQualOnValue(MiCallContext& ctx, const MiAmQualDesc& qual,
                           const Value& key, bool* matches) {
  switch (qual.op) {
    case MiAmQualDesc::Op::kTerm: {
      if (qual.term.func == nullptr || !qual.term.func->fn) {
        return Status::Internal("qualification term has no bound routine");
      }
      std::vector<Value> args;
      if (qual.term.unary) {
        args = {key};
      } else if (qual.term.column_first) {
        args = {key, qual.term.constant};
      } else {
        args = {qual.term.constant, key};
      }
      StatusOr<Value> result = qual.term.func->fn(ctx, args);
      if (!result.ok()) return result.status();
      if (result.value().base() != TypeDesc::Base::kBoolean) {
        return Status::InvalidArgument("strategy function '" +
                                       qual.term.func->name +
                                       "' did not return boolean");
      }
      *matches = result.value().boolean();
      return Status::OK();
    }
    case MiAmQualDesc::Op::kAnd: {
      for (const MiAmQualDesc& child : qual.children) {
        bool child_matches = false;
        GRTDB_RETURN_IF_ERROR(
            EvaluateQualOnValue(ctx, child, key, &child_matches));
        if (!child_matches) {
          *matches = false;
          return Status::OK();
        }
      }
      *matches = true;
      return Status::OK();
    }
    case MiAmQualDesc::Op::kOr: {
      for (const MiAmQualDesc& child : qual.children) {
        bool child_matches = false;
        GRTDB_RETURN_IF_ERROR(
            EvaluateQualOnValue(ctx, child, key, &child_matches));
        if (child_matches) {
          *matches = true;
          return Status::OK();
        }
      }
      *matches = false;
      return Status::OK();
    }
  }
  return Status::Internal("bad qualification op");
}

}  // namespace grtdb
