#ifndef GRTDB_SERVER_CATALOG_H_
#define GRTDB_SERVER_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/table.h"
#include "server/vii.h"

namespace grtdb {

// SYSAMS row: a secondary access method created with CREATE SECONDARY
// ACCESS_METHOD — purpose-function names as registered plus the resolved
// hook table.
struct AccessMethodDef {
  std::string name;
  char sptype = 'S';  // 'S': index lives in an sbspace (paper §4 Step 3)
  // am_create -> grt_create, ... (the names used in purpose-call logs).
  std::map<std::string, std::string> purpose_names;
  PurposeFunctions hooks;
  std::string default_opclass;
};

// A row of SYSOPCLASSES.
struct OpClassDef {
  std::string name;
  std::string access_method;
  std::vector<std::string> strategies;
  std::vector<std::string> supports;
};

// A row of SYSINDICES (+ SYSFRAGMENTS): one virtual index instance.
struct IndexDef {
  std::string name;
  std::string table;
  std::string access_method;
  std::string space;  // sbspace name from CREATE INDEX ... IN <space>
  std::vector<std::string> columns;
  std::vector<std::string> opclasses;  // parallel to columns
  std::vector<int> key_columns;        // resolved column numbers
  std::vector<TypeDesc> key_types;
};

// The system catalog: tables plus the SYSAMS / SYSOPCLASSES / SYSINDICES
// registries the CREATE statements populate.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status AddTable(std::unique_ptr<Table> table);
  Table* FindTable(const std::string& name);
  Status DropTable(const std::string& name);
  std::vector<const Table*> AllTables() const;

  Status AddAccessMethod(AccessMethodDef am);
  AccessMethodDef* FindAccessMethod(const std::string& name);
  Status DropAccessMethod(const std::string& name);
  std::vector<const AccessMethodDef*> AllAccessMethods() const;

  Status AddOpClass(OpClassDef opclass);
  const OpClassDef* FindOpClass(const std::string& name) const;
  Status DropOpClass(const std::string& name);
  std::vector<const OpClassDef*> OpClassesOfAccessMethod(
      const std::string& am) const;
  std::vector<const OpClassDef*> AllOpClasses() const;

  Status AddIndex(IndexDef index);
  IndexDef* FindIndex(const std::string& name);
  Status DropIndex(const std::string& name);
  std::vector<IndexDef*> IndexesOnTable(const std::string& table);
  std::vector<const IndexDef*> AllIndexes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;     // lower-case key
  std::map<std::string, AccessMethodDef> access_methods_;    // lower-case key
  std::map<std::string, OpClassDef> opclasses_;              // lower-case key
  std::map<std::string, IndexDef> indices_;                  // lower-case key
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_CATALOG_H_
