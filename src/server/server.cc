#include "server/server.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/date.h"
#include "common/strings.h"
#include "obs/fast_clock.h"
#include "obs/flight_recorder.h"
#include "server/purpose_call.h"
#include "sql/parser.h"

namespace grtdb {

namespace {

// Holds the statement gate for the duration of one statement: DDL runs
// exclusive (it mutates the catalog/type/UDR registries every concurrent
// reader walks lock-free), everything else shared. Re-entrant per thread
// (EXPLAIN PROFILE re-enters ExecuteStatement for its inner statement):
// only the outermost frame acquires, so a nested statement runs under the
// outer statement's grip.
class StatementGateScope {
 public:
  StatementGateScope(std::shared_mutex* gate, bool exclusive)
      : gate_(depth_ == 0 ? gate : nullptr), exclusive_(exclusive) {
    ++depth_;
    if (gate_ == nullptr) return;
    // The span covers only the acquisition: under concurrent sessions this
    // is the time a statement sat blocked behind DDL (or, for DDL, behind
    // every in-flight reader).
    obs::SpanScope span(obs::SpanName::kGateWait, exclusive_ ? 1 : 0);
    if (exclusive_) {
      gate_->lock();
    } else {
      gate_->lock_shared();
    }
  }
  ~StatementGateScope() {
    --depth_;
    if (gate_ == nullptr) return;
    if (exclusive_) {
      gate_->unlock();
    } else {
      gate_->unlock_shared();
    }
  }

  StatementGateScope(const StatementGateScope&) = delete;
  StatementGateScope& operator=(const StatementGateScope&) = delete;

 private:
  static thread_local int depth_;
  std::shared_mutex* gate_;
  bool exclusive_;
};

thread_local int StatementGateScope::depth_ = 0;

// Statements that mutate shared definition state (catalog, types, UDRs,
// access methods) and therefore need the gate exclusively.
bool IsDefinitionStatement(const sql::Statement& stmt) {
  return std::holds_alternative<sql::CreateTableStmt>(stmt) ||
         std::holds_alternative<sql::DropTableStmt>(stmt) ||
         std::holds_alternative<sql::CreateFunctionStmt>(stmt) ||
         std::holds_alternative<sql::DropFunctionStmt>(stmt) ||
         std::holds_alternative<sql::CreateAccessMethodStmt>(stmt) ||
         std::holds_alternative<sql::DropAccessMethodStmt>(stmt) ||
         std::holds_alternative<sql::CreateOpclassStmt>(stmt) ||
         std::holds_alternative<sql::DropOpclassStmt>(stmt) ||
         std::holds_alternative<sql::CreateIndexStmt>(stmt) ||
         std::holds_alternative<sql::DropIndexStmt>(stmt);
}

// Marks the session busy for sys_sessions for the duration of one
// statement, recording the statement text and trace id; the destructor
// flips it back to idle and re-mirrors the transaction state. Nesting
// (EXPLAIN PROFILE, EXECUTE) is handled inside Begin/EndStatement.
class SessionStatementScope {
 public:
  SessionStatementScope(ServerSession* session, const std::string& sql)
      : session_(session) {
    session_->BeginStatement(sql, obs::CurrentTraceHandle().trace_id);
  }
  ~SessionStatementScope() { session_->EndStatement(); }

  SessionStatementScope(const SessionStatementScope&) = delete;
  SessionStatementScope& operator=(const SessionStatementScope&) = delete;

 private:
  ServerSession* session_;
};

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      lock_manager_(options.lock_timeout),
      txn_manager_(&lock_manager_),
      current_time_(options.initial_time),
      span_tracer_(options.span_capacity) {
  trace_.SetCapacity(options.trace_capacity);
  // Pointer stores into named memory are audited against the duration
  // allocator: a per-statement pointer parked in session-lifetime named
  // memory is the paper's §4 stale-pointer bug, flagged at the store.
  named_memory_.set_duration_source(&memory_);
  if (options_.observability) {
    for (size_t i = 0; i < obs::kPurposeFnCount; ++i) {
      const std::string fn = obs::PurposeFnName(static_cast<obs::PurposeFn>(i));
      vii_calls_[i] = metrics_.GetCounter("vii." + fn + ".calls");
      vii_us_[i] = metrics_.GetHistogram("vii." + fn + ".us");
    }
    lock_manager_.set_metrics(&metrics_);
    plan_cache_hits_ = metrics_.GetCounter("plan_cache.hits");
    plan_cache_misses_ = metrics_.GetCounter("plan_cache.misses");
    plan_cache_invalidations_ =
        metrics_.GetCounter("plan_cache.invalidations");
  }
  // A default sbspace so CREATE INDEX without IN <space> works.
  Status st = CreateSbspace("default");
  (void)st;  // cannot fail on a fresh server
  // The flight recorder's crash dump: process-wide and independent of the
  // observability option — the black box must already be on when the fatal
  // signal arrives. Idempotent across servers.
  obs::FlightRecorder::InstallSignalHandler();
}

Server::~Server() = default;

Status Server::CreateSbspace(const std::string& name) {
  const std::string key = ToLower(name);
  if (sbspaces_.count(key) != 0) {
    return Status::AlreadyExists("sbspace '" + name + "'");
  }
  auto backend = std::make_unique<MemorySpace>();
  auto sbspace_or = Sbspace::Open(backend.get(), options_.sbspace_pool_pages);
  if (!sbspace_or.ok()) return sbspace_or.status();
  space_backends_[key] = std::move(backend);
  sbspaces_[key] = std::move(sbspace_or).value();
  if (options_.observability) {
    sbspaces_[key]->pager().set_metrics(&metrics_);
  }
  return Status::OK();
}

Sbspace* Server::FindSbspace(const std::string& name) {
  auto it = sbspaces_.find(ToLower(name));
  return it == sbspaces_.end() ? nullptr : it->second.get();
}

Status Server::AmCatalogPut(const std::string& am, const std::string& index,
                            std::vector<uint8_t> record) {
  std::lock_guard<std::mutex> lock(am_catalog_mu_);
  am_catalog_[ToLower(am) + "/" + ToLower(index)] = std::move(record);
  return Status::OK();
}

Status Server::AmCatalogGet(const std::string& am, const std::string& index,
                            std::vector<uint8_t>* record) {
  std::lock_guard<std::mutex> lock(am_catalog_mu_);
  auto it = am_catalog_.find(ToLower(am) + "/" + ToLower(index));
  if (it == am_catalog_.end()) {
    return Status::NotFound("no AM catalog record for index '" + index +
                            "'");
  }
  *record = it->second;
  return Status::OK();
}

Status Server::AmCatalogDelete(const std::string& am,
                               const std::string& index) {
  std::lock_guard<std::mutex> lock(am_catalog_mu_);
  if (am_catalog_.erase(ToLower(am) + "/" + ToLower(index)) == 0) {
    return Status::NotFound("no AM catalog record for index '" + index +
                            "'");
  }
  return Status::OK();
}

ServerSession* Server::CreateSession() {
  ServerSession* session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.push_back(std::make_unique<ServerSession>(next_session_id_++));
    session = sessions_.back().get();
  }
  // Named memory is server-wide; pointer stores into it are audited
  // against every live session's allocator (see NamedStorePointer).
  named_memory_.AddDurationSource(&session->memory());
  // The session-long duration scope; CloseSession ends it.
  session->memory().BeginDuration(MiDuration::kPerSession);
  return session;
}

Status Server::CloseSession(ServerSession* session) {
  // Registration is checked FIRST: closing a foreign or already-closed
  // session must not roll back or free anything. Unregistering while
  // keeping ownership also means a racing CloseSession for the same
  // pointer cannot double-tear-down.
  std::unique_ptr<ServerSession> owned;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->get() == session) {
        owned = std::move(*it);
        sessions_.erase(it);
        break;
      }
    }
  }
  if (owned == nullptr) return Status::NotFound("session not registered");
  Status status = Status::OK();
  if (owned->txn_session().current_txn() != nullptr) {
    status = txn_manager_.Rollback(&owned->txn_session());
    owned->memory().EndDuration(MiDuration::kPerTransaction);
  }
  // Duration teardown is scoped to the closing session's allocator —
  // other sessions' PER_SESSION memory stays live.
  owned->memory().EndDuration(MiDuration::kPerFunction);
  owned->memory().EndDuration(MiDuration::kPerStatement);
  owned->memory().EndDuration(MiDuration::kPerSession);
  named_memory_.RemoveDurationSource(&owned->memory());
  return status;
}

std::unique_ptr<Table> Server::BuildSystemTable(const std::string& name) {
  auto text_cols = [](std::initializer_list<const char*> names) {
    std::vector<ColumnDef> cols;
    for (const char* col : names) {
      cols.push_back(ColumnDef{col, TypeDesc::Text()});
    }
    return cols;
  };
  RecordId ignored;
  if (EqualsIgnoreCase(name, "systables")) {
    std::vector<ColumnDef> cols = {{"tabname", TypeDesc::Text()},
                                   {"ncols", TypeDesc::Integer()},
                                   {"nrows", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const Table* t : catalog_.AllTables()) {
      Status st = table->Insert(
          {Value::Text(t->name()),
           Value::Integer(static_cast<int64_t>(t->columns().size())),
           Value::Integer(static_cast<int64_t>(t->row_count()))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sysams")) {
    auto table = std::make_unique<Table>(
        name, text_cols({"amname", "am_sptype", "am_getnext",
                         "defaultopclass"}));
    for (const AccessMethodDef* am : catalog_.AllAccessMethods()) {
      auto purpose = am->purpose_names.find("am_getnext");
      Status st = table->Insert(
          {Value::Text(am->name), Value::Text(std::string(1, am->sptype)),
           Value::Text(purpose != am->purpose_names.end() ? purpose->second
                                                          : ""),
           Value::Text(am->default_opclass)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sysopclasses")) {
    auto table = std::make_unique<Table>(
        name, text_cols({"opclassname", "amname", "strategies", "support"}));
    for (const OpClassDef* opclass : catalog_.AllOpClasses()) {
      Status st = table->Insert(
          {Value::Text(opclass->name), Value::Text(opclass->access_method),
           Value::Text(Join(opclass->strategies, ", ")),
           Value::Text(Join(opclass->supports, ", "))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sysindices")) {
    auto table = std::make_unique<Table>(
        name, text_cols({"idxname", "tabname", "amname", "colname",
                         "opclassname", "spacename"}));
    for (const IndexDef* index : catalog_.AllIndexes()) {
      Status st = table->Insert(
          {Value::Text(index->name), Value::Text(index->table),
           Value::Text(index->access_method),
           Value::Text(Join(index->columns, ", ")),
           Value::Text(Join(index->opclasses, ", ")),
           Value::Text(index->space)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sysprocedures")) {
    std::vector<ColumnDef> cols = {{"procname", TypeDesc::Text()},
                                   {"numargs", TypeDesc::Integer()},
                                   {"argtypes", TypeDesc::Text()},
                                   {"rettype", TypeDesc::Text()},
                                   {"externalname", TypeDesc::Text()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const UdrDef* def : udrs_.AllDefs()) {
      std::vector<std::string> arg_names;
      for (const TypeDesc& type : def->arg_types) {
        arg_names.push_back(types_.NameOf(type));
      }
      Status st = table->Insert(
          {Value::Text(def->name),
           Value::Integer(static_cast<int64_t>(def->arg_types.size())),
           Value::Text(Join(arg_names, ", ")),
           Value::Text(types_.NameOf(def->return_type)),
           Value::Text(def->external_name)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_metrics")) {
    std::vector<ColumnDef> cols = {{"name", TypeDesc::Text()},
                                   {"kind", TypeDesc::Text()},
                                   {"value", TypeDesc::Integer()},
                                   {"count", TypeDesc::Integer()},
                                   {"sum", TypeDesc::Integer()},
                                   {"buckets", TypeDesc::Text()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    auto insert = [&](const obs::MetricSample& sample) {
      Status st = table->Insert(
          {Value::Text(sample.name), Value::Text(sample.KindName()),
           Value::Integer(sample.value),
           Value::Integer(static_cast<int64_t>(sample.count)),
           Value::Integer(static_cast<int64_t>(sample.sum)),
           Value::Text(sample.buckets)},
          &ignored);
      (void)st;
    };
    for (const obs::MetricSample& sample : metrics_.Snapshot()) {
      insert(sample);
    }
    // The trace facility keeps its own counter (the blade layer cannot
    // depend on the registry); surface it as a synthetic row.
    obs::MetricSample dropped;
    dropped.name = "trace.dropped";
    dropped.kind = obs::MetricSample::Kind::kCounter;
    dropped.value = static_cast<int64_t>(trace_.dropped());
    insert(dropped);
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_trace")) {
    std::vector<ColumnDef> cols = {{"seq", TypeDesc::Integer()},
                                   {"ts_us", TypeDesc::Integer()},
                                   {"thread", TypeDesc::Integer()},
                                   {"class", TypeDesc::Text()},
                                   {"level", TypeDesc::Integer()},
                                   {"message", TypeDesc::Text()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const TraceRecord& record : trace_.records()) {
      Status st = table->Insert(
          {Value::Integer(static_cast<int64_t>(record.seq)),
           Value::Integer(record.ts_us),
           Value::Integer(static_cast<int64_t>(record.thread)),
           Value::Text(record.trace_class),
           Value::Integer(record.level), Value::Text(record.message)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_locks")) {
    std::vector<ColumnDef> cols = {{"kind", TypeDesc::Text()},
                                   {"resource", TypeDesc::Integer()},
                                   {"txn", TypeDesc::Integer()},
                                   {"mode", TypeDesc::Text()},
                                   {"depth", TypeDesc::Integer()},
                                   {"upgrader_waiting", TypeDesc::Integer()},
                                   {"waiting_exclusive", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    auto kind_name = [](ResourceKind kind) -> const char* {
      switch (kind) {
        case ResourceKind::kLargeObject: return "large_object";
        case ResourceKind::kTable: return "table";
        case ResourceKind::kRow: return "row";
      }
      return "?";
    };
    for (const LockDumpRow& row : lock_manager_.Dump()) {
      Status st = table->Insert(
          {Value::Text(kind_name(row.kind)),
           Value::Integer(static_cast<int64_t>(row.resource)),
           Value::Integer(static_cast<int64_t>(row.txn)),
           Value::Text(row.count == 0
                           ? ""
                           : (row.mode == LockMode::kExclusive ? "X" : "S")),
           Value::Integer(row.count),
           Value::Integer(row.upgrader_waiting ? 1 : 0),
           Value::Integer(row.waiting_exclusive)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_index_stats")) {
    std::vector<ColumnDef> cols = {{"idxname", TypeDesc::Text()},
                                   {"amname", TypeDesc::Text()},
                                   {"level", TypeDesc::Text()},
                                   {"height", TypeDesc::Integer()},
                                   {"nodes", TypeDesc::Integer()},
                                   {"entries", TypeDesc::Integer()},
                                   {"occupancy", TypeDesc::Float()},
                                   {"free_list", TypeDesc::Integer()},
                                   {"dead_entries", TypeDesc::Integer()},
                                   {"growing_regions", TypeDesc::Integer()},
                                   {"growing_area", TypeDesc::Float()},
                                   {"computed_at", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const IndexStatsReport& report : AllIndexStats()) {
      // One summary row (level "all") followed by the walker's per-level
      // breakdown, root level first.
      Status st = table->Insert(
          {Value::Text(report.index), Value::Text(report.access_method),
           Value::Text("all"), Value::Integer(report.height),
           Value::Integer(static_cast<int64_t>(report.nodes)),
           Value::Integer(static_cast<int64_t>(report.entries)),
           Value::Float(report.occupancy),
           Value::Integer(static_cast<int64_t>(report.free_list)),
           Value::Integer(static_cast<int64_t>(report.dead_entries)),
           Value::Integer(static_cast<int64_t>(report.growing_regions)),
           Value::Float(report.growing_area),
           Value::Integer(report.computed_at)},
          &ignored);
      (void)st;
      for (const IndexLevelStats& level : report.levels) {
        st = table->Insert(
            {Value::Text(report.index), Value::Text(report.access_method),
             Value::Text(std::to_string(level.level)),
             Value::Integer(report.height),
             Value::Integer(static_cast<int64_t>(level.nodes)),
             Value::Integer(static_cast<int64_t>(level.entries)),
             Value::Float(level.occupancy), Value::Integer(0),
             Value::Integer(0), Value::Integer(0),
             Value::Float(level.total_area),
             Value::Integer(report.computed_at)},
            &ignored);
        (void)st;
      }
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_spans")) {
    std::vector<ColumnDef> cols = {{"seq", TypeDesc::Integer()},
                                   {"trace_id", TypeDesc::Integer()},
                                   {"span_id", TypeDesc::Integer()},
                                   {"parent_id", TypeDesc::Integer()},
                                   {"name", TypeDesc::Text()},
                                   {"start_ns", TypeDesc::Integer()},
                                   {"dur_ns", TypeDesc::Integer()},
                                   {"thread", TypeDesc::Integer()},
                                   {"a", TypeDesc::Integer()},
                                   {"b", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    const uint64_t base = span_tracer_.base_ticks();
    for (const obs::SpanRecord& span : span_tracer_.Snapshot()) {
      Status st = table->Insert(
          {Value::Integer(static_cast<int64_t>(span.seq)),
           Value::Integer(static_cast<int64_t>(span.trace_id)),
           Value::Integer(static_cast<int64_t>(span.span_id)),
           Value::Integer(static_cast<int64_t>(span.parent_id)),
           Value::Text(obs::SpanNameString(span.name)),
           Value::Integer(static_cast<int64_t>(
               obs::TicksToNs(span.start_ticks - base))),
           Value::Integer(static_cast<int64_t>(
               obs::TicksToNs(span.end_ticks - span.start_ticks))),
           Value::Integer(static_cast<int64_t>(span.thread)),
           Value::Integer(static_cast<int64_t>(span.a)),
           Value::Integer(static_cast<int64_t>(span.b))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_slow_queries")) {
    std::vector<ColumnDef> cols = {{"seq", TypeDesc::Integer()},
                                   {"session", TypeDesc::Integer()},
                                   {"trace_id", TypeDesc::Integer()},
                                   {"total_ns", TypeDesc::Integer()},
                                   {"rows_scanned", TypeDesc::Integer()},
                                   {"rows_returned", TypeDesc::Integer()},
                                   {"node_reads", TypeDesc::Integer()},
                                   {"cache_hits", TypeDesc::Integer()},
                                   {"lock_waits", TypeDesc::Integer()},
                                   {"lock_wait_ns", TypeDesc::Integer()},
                                   {"purpose_calls", TypeDesc::Text()},
                                   {"sql", TypeDesc::Text()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const obs::SlowQueryEntry& entry : slow_query_log_.Snapshot()) {
      // The retained profile's Fig. 6 breakdown, one clause per purpose
      // function that was actually called: "am_getnext calls=41 us=103".
      std::string breakdown;
      for (size_t i = 0; i < obs::kPurposeFnCount; ++i) {
        if (entry.calls[i] == 0) continue;
        if (!breakdown.empty()) breakdown += "; ";
        breakdown += std::string(
                         obs::PurposeFnName(static_cast<obs::PurposeFn>(i))) +
                     " calls=" + std::to_string(entry.calls[i]) +
                     " ns=" + std::to_string(entry.ns[i]);
      }
      Status st = table->Insert(
          {Value::Integer(static_cast<int64_t>(entry.seq)),
           Value::Integer(static_cast<int64_t>(entry.session_id)),
           Value::Integer(static_cast<int64_t>(entry.trace_id)),
           Value::Integer(static_cast<int64_t>(entry.total_ns)),
           Value::Integer(static_cast<int64_t>(entry.rows_scanned)),
           Value::Integer(static_cast<int64_t>(entry.rows_returned)),
           Value::Integer(static_cast<int64_t>(entry.node_reads)),
           Value::Integer(static_cast<int64_t>(entry.cache_hits)),
           Value::Integer(static_cast<int64_t>(entry.lock_waits)),
           Value::Integer(static_cast<int64_t>(entry.lock_wait_ns)),
           Value::Text(breakdown), Value::Text(entry.sql)},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_prepared")) {
    std::vector<ColumnDef> cols = {{"session", TypeDesc::Integer()},
                                   {"name", TypeDesc::Text()},
                                   {"params", TypeDesc::Integer()},
                                   {"executions", TypeDesc::Integer()},
                                   {"plan", TypeDesc::Text()},
                                   {"statement", TypeDesc::Text()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      for (const ServerSession::PreparedHandle& handle :
           session->AllPrepared()) {
        // The handle is text-only; whether a plan exists for it (and what
        // the planner decided) comes from peeking the shared cache.
        int64_t executions = 0;
        std::string plan_text = "uncached";
        if (std::shared_ptr<CachedPlan> plan = plan_cache_.Peek(handle.sql)) {
          executions = static_cast<int64_t>(
              plan->executions.load(std::memory_order_relaxed));
          std::lock_guard<std::mutex> memo_lock(plan->memo_mu);
          if (!plan->planned) {
            plan_text = "unplanned";
          } else if (plan->memo.use_index) {
            plan_text = "index " + plan->memo.index->name;
          } else {
            plan_text = "seq scan";
          }
        }
        Status st = table->Insert(
            {Value::Integer(static_cast<int64_t>(session->id())),
             Value::Text(handle.name),
             Value::Integer(static_cast<int64_t>(handle.param_count)),
             Value::Integer(executions), Value::Text(plan_text),
             Value::Text(handle.sql)},
            &ignored);
        (void)st;
      }
    }
    return table;
  }
  auto kind_name = [](ResourceKind kind) -> const char* {
    switch (kind) {
      case ResourceKind::kLargeObject: return "large_object";
      case ResourceKind::kTable: return "table";
      case ResourceKind::kRow: return "row";
    }
    return "?";
  };
  if (EqualsIgnoreCase(name, "sys_contention")) {
    // Where the lock waits went, hottest resource first. History, not a
    // snapshot: rows persist after the last lock is released, so a
    // post-mortem read still sees the contended rows.
    std::vector<ColumnDef> cols = {{"kind", TypeDesc::Text()},
                                   {"resource", TypeDesc::Integer()},
                                   {"waits", TypeDesc::Integer()},
                                   {"wait_ns", TypeDesc::Integer()},
                                   {"max_wait_ns", TypeDesc::Integer()},
                                   {"timeouts", TypeDesc::Integer()},
                                   {"deadlocks", TypeDesc::Integer()},
                                   {"last_holder", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const ContentionRow& row : lock_manager_.ContentionDump()) {
      Status st = table->Insert(
          {Value::Text(kind_name(row.kind)),
           Value::Integer(static_cast<int64_t>(row.resource)),
           Value::Integer(static_cast<int64_t>(row.waits)),
           Value::Integer(static_cast<int64_t>(row.wait_ns)),
           Value::Integer(static_cast<int64_t>(row.max_wait_ns)),
           Value::Integer(static_cast<int64_t>(row.timeouts)),
           Value::Integer(static_cast<int64_t>(row.deadlocks)),
           Value::Integer(static_cast<int64_t>(row.last_holder))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_waits")) {
    // The wait-for graph right now: one row per (waiter, conflicting
    // holder). A waiter blocked only by the writer-priority fence shows
    // holder = 0. Empty on an uncontended server.
    std::vector<ColumnDef> cols = {{"kind", TypeDesc::Text()},
                                   {"resource", TypeDesc::Integer()},
                                   {"waiter", TypeDesc::Integer()},
                                   {"mode", TypeDesc::Text()},
                                   {"waited_ns", TypeDesc::Integer()},
                                   {"holder", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const WaitEdge& edge : lock_manager_.WaitsDump()) {
      Status st = table->Insert(
          {Value::Text(kind_name(edge.kind)),
           Value::Integer(static_cast<int64_t>(edge.resource)),
           Value::Integer(static_cast<int64_t>(edge.waiter)),
           Value::Text(edge.mode == LockMode::kExclusive ? "X" : "S"),
           Value::Integer(static_cast<int64_t>(edge.waited_ns)),
           Value::Integer(static_cast<int64_t>(edge.holder))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_hot_nodes")) {
    // The heat tracker's ranked access map, hottest node first. Empty
    // until SET HEAT_TRACK = 1 arms the tracker. The store column carries
    // the index name, so it joins against sys_index_stats.idxname.
    std::vector<ColumnDef> cols = {{"store", TypeDesc::Text()},
                                   {"node", TypeDesc::Integer()},
                                   {"heat", TypeDesc::Float()},
                                   {"reads", TypeDesc::Integer()},
                                   {"writes", TypeDesc::Integer()},
                                   {"pin_wait_ns", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    for (const obs::HotNode& node : heat_tracker_.Snapshot()) {
      Status st = table->Insert(
          {Value::Text(node.store),
           Value::Integer(static_cast<int64_t>(node.node)),
           Value::Float(node.heat),
           Value::Integer(static_cast<int64_t>(node.reads)),
           Value::Integer(static_cast<int64_t>(node.writes)),
           Value::Integer(static_cast<int64_t>(node.pin_wait_ns))},
          &ignored);
      (void)st;
    }
    return table;
  }
  if (EqualsIgnoreCase(name, "sys_sessions")) {
    // Every live session and what it is doing. The info mirror is written
    // at statement boundaries by the owning thread; locks held comes from
    // grouping the lock manager's dump by the mirrored transaction id.
    std::vector<ColumnDef> cols = {{"session", TypeDesc::Integer()},
                                   {"peer", TypeDesc::Text()},
                                   {"state", TypeDesc::Text()},
                                   {"statement", TypeDesc::Text()},
                                   {"txn", TypeDesc::Integer()},
                                   {"explicit_txn", TypeDesc::Integer()},
                                   {"locks", TypeDesc::Integer()},
                                   {"trace_id", TypeDesc::Integer()},
                                   {"statements", TypeDesc::Integer()}};
    auto table = std::make_unique<Table>(name, std::move(cols));
    std::map<TxnId, int64_t> locks_by_txn;
    for (const LockDumpRow& row : lock_manager_.Dump()) {
      if (row.txn != 0) ++locks_by_txn[row.txn];
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      const ServerSession::SessionInfo info = session->info();
      auto held = locks_by_txn.find(info.txn);
      Status st = table->Insert(
          {Value::Integer(static_cast<int64_t>(session->id())),
           Value::Text(info.peer.empty() ? "embedded" : info.peer),
           Value::Text(info.active ? "active" : "idle"),
           Value::Text(info.statement),
           Value::Integer(static_cast<int64_t>(info.txn)),
           Value::Integer(info.explicit_txn ? 1 : 0),
           Value::Integer(held != locks_by_txn.end() ? held->second : 0),
           Value::Integer(static_cast<int64_t>(info.trace_id)),
           Value::Integer(static_cast<int64_t>(info.statements))},
          &ignored);
      (void)st;
    }
    return table;
  }
  return nullptr;
}

std::vector<std::string> Server::SystemTableNames() {
  return {"systables",   "sysams",         "sysopclasses",
          "sysindices",  "sysprocedures",  "sys_metrics",
          "sys_trace",   "sys_locks",      "sys_index_stats",
          "sys_slow_queries", "sys_prepared", "sys_spans",
          "sys_contention", "sys_waits", "sys_hot_nodes", "sys_sessions"};
}

bool Server::IsSystemViewName(const std::string& name) {
  for (const std::string& sys : SystemTableNames()) {
    if (EqualsIgnoreCase(name, sys)) return true;
  }
  return false;
}

void Server::ReportIndexStats(IndexStatsReport report) {
  std::lock_guard<std::mutex> lock(index_stats_mu_);
  index_stats_[ToLower(report.index)] = std::move(report);
}

bool Server::GetIndexStats(const std::string& index,
                           IndexStatsReport* out) const {
  std::lock_guard<std::mutex> lock(index_stats_mu_);
  auto it = index_stats_.find(ToLower(index));
  if (it == index_stats_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<IndexStatsReport> Server::AllIndexStats() const {
  std::lock_guard<std::mutex> lock(index_stats_mu_);
  std::vector<IndexStatsReport> out;
  out.reserve(index_stats_.size());
  for (const auto& [key, report] : index_stats_) out.push_back(report);
  return out;
}

std::string Server::RenderValue(const Value& value) const {
  if (!value.is_null() && value.base() == TypeDesc::Base::kOpaque) {
    const OpaqueType* type = types_.FindOpaque(value.type().opaque_id);
    if (type != nullptr) {
      std::string text;
      if (type->output(value.opaque(), &text).ok()) return text;
    }
  }
  return value.ToString();
}

Status Server::Execute(ServerSession* session, const std::string& sql,
                       ResultSet* out) {
  // Root the request trace here unless one is already installed on this
  // thread (the net front end roots at frame arrival so decode and queue
  // wait are covered; EXPLAIN TRACE roots its own). When sampling is off —
  // the default — StartTrace is one relaxed load and the scope is inert.
  const obs::TraceHandle ambient = obs::CurrentTraceHandle();
  obs::TraceScope root_scope(
      ambient.active() ? obs::TraceHandle{} : span_tracer_.StartTrace(),
      obs::SpanName::kRequest);
  SessionStatementScope stmt_scope(session, sql);
  sql::Statement stmt;
  {
    obs::SpanScope parse_span(obs::SpanName::kParse);
    GRTDB_RETURN_IF_ERROR(sql::Parser::Parse(sql, &stmt));
  }
  out->Clear();
  const uint64_t start_ticks = obs::Ticks();
  // Statement-scoped durations open here and close unconditionally below,
  // so a UDR that re-enters Execute only tears down its own nested scope.
  session->memory().BeginDuration(MiDuration::kPerFunction);
  session->memory().BeginDuration(MiDuration::kPerStatement);
  Status status = ExecuteStatement(session, stmt, out);
  // Slow-query retention sees every statement, successful or not; its
  // threshold check is one relaxed load, so the disabled default costs
  // nothing beyond the two tick reads.
  slow_query_log_.MaybeRecord(sql, obs::TicksToNs(obs::Ticks() - start_ticks),
                              session->profile(), session->id(),
                              obs::CurrentTraceHandle().trace_id);
  // PER_FUNCTION and PER_STATEMENT memory die with the statement (§6.2).
  // Teardown is scoped to the executing session's allocator, so two
  // concurrent statements cannot free each other's blocks.
  session->memory().EndDuration(MiDuration::kPerFunction);
  session->memory().EndDuration(MiDuration::kPerStatement);
  return status;
}

Status Server::ExecuteScript(ServerSession* session,
                             const std::string& script, ResultSet* out) {
  // One root spans the whole script (a script arrives as one request).
  const obs::TraceHandle ambient = obs::CurrentTraceHandle();
  obs::TraceScope root_scope(
      ambient.active() ? obs::TraceHandle{} : span_tracer_.StartTrace(),
      obs::SpanName::kRequest);
  SessionStatementScope stmt_scope(session, script);
  std::vector<sql::Statement> statements;
  GRTDB_RETURN_IF_ERROR(sql::Parser::ParseScript(script, &statements));
  for (const sql::Statement& stmt : statements) {
    out->Clear();
    session->memory().BeginDuration(MiDuration::kPerFunction);
    session->memory().BeginDuration(MiDuration::kPerStatement);
    Status status = ExecuteStatement(session, stmt, out);
    // Durations end for the failing statement too — Execute ends them
    // unconditionally, and a mid-script error must not leak every
    // per-statement block allocated before it.
    session->memory().EndDuration(MiDuration::kPerFunction);
    session->memory().EndDuration(MiDuration::kPerStatement);
    GRTDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Status Server::ExecuteStatement(ServerSession* session,
                                const sql::Statement& stmt, ResultSet* out) {
  struct Visitor {
    Server* server;
    ServerSession* session;
    ResultSet* out;

    Status operator()(const sql::CreateTableStmt& s) {
      return server->ExecCreateTable(s);
    }
    Status operator()(const sql::DropTableStmt& s) {
      return server->ExecDropTable(s);
    }
    Status operator()(const sql::CreateFunctionStmt& s) {
      return server->ExecCreateFunction(s);
    }
    Status operator()(const sql::CreateAccessMethodStmt& s) {
      return server->ExecCreateAccessMethod(s);
    }
    Status operator()(const sql::CreateOpclassStmt& s) {
      return server->ExecCreateOpclass(s);
    }
    Status operator()(const sql::CreateIndexStmt& s) {
      return server->ExecCreateIndex(session, s, out);
    }
    Status operator()(const sql::DropIndexStmt& s) {
      return server->ExecDropIndex(session, s);
    }
    Status operator()(const sql::DropFunctionStmt& s) {
      return server->ExecDropFunction(s);
    }
    Status operator()(const sql::DropAccessMethodStmt& s) {
      return server->ExecDropAccessMethod(s);
    }
    Status operator()(const sql::DropOpclassStmt& s) {
      return server->ExecDropOpclass(s);
    }
    Status operator()(const sql::InsertStmt& s) {
      return server->ExecInsert(session, s, out);
    }
    Status operator()(const sql::SelectStmt& s) {
      return server->ExecSelect(session, s, out);
    }
    Status operator()(const sql::DeleteStmt& s) {
      return server->ExecDelete(session, s, out);
    }
    Status operator()(const sql::UpdateStmt& s) {
      return server->ExecUpdate(session, s, out);
    }
    Status operator()(const sql::BeginWorkStmt&) {
      return server->txn_manager_.Begin(&session->txn_session(),
                                        /*explicit_txn=*/true);
    }
    Status operator()(const sql::CommitWorkStmt&) {
      Status end = server->txn_manager_.Commit(&session->txn_session());
      // The duration ends even when the commit errors (COMMIT WORK with
      // no open transaction): per-transaction allocations must never
      // survive an attempted transaction end.
      session->memory().EndDuration(MiDuration::kPerTransaction);
      return end;
    }
    Status operator()(const sql::RollbackWorkStmt&) {
      Status end = server->txn_manager_.Rollback(&session->txn_session());
      session->memory().EndDuration(MiDuration::kPerTransaction);
      return end;
    }
    Status operator()(const sql::SetStmt& s) {
      return server->ExecSet(session, s, out);
    }
    Status operator()(const sql::CheckIndexStmt& s) {
      return server->ExecCheckIndex(session, s, out);
    }
    Status operator()(const sql::UpdateStatisticsStmt& s) {
      return server->ExecUpdateStatistics(session, s, out);
    }
    Status operator()(const sql::LoadStmt& s) {
      return server->ExecLoad(session, s, out);
    }
    Status operator()(const sql::UnloadStmt& s) {
      return server->ExecUnload(session, s, out);
    }
    Status operator()(const sql::ExplainProfileStmt& s) {
      return server->ExecExplainProfile(session, s, out);
    }
    Status operator()(const sql::ExplainTraceStmt& s) {
      return server->ExecExplainTrace(session, s, out);
    }
    Status operator()(const sql::DumpFlightStmt&) {
      return server->ExecDumpFlight(out);
    }
    Status operator()(const sql::DumpTraceStmt& s) {
      return server->ExecDumpTrace(s, out);
    }
    Status operator()(const sql::DumpHeatStmt& s) {
      return server->ExecDumpHeat(s, out);
    }
    Status operator()(const sql::ExportMetricsStmt&) {
      return server->ExecExportMetrics(out);
    }
    Status operator()(const sql::PrepareStmt& s) {
      return server->ExecPrepare(session, s, out);
    }
    Status operator()(const sql::ExecuteStmt& s) {
      return server->ExecExecute(session, s, out);
    }
    Status operator()(const sql::DeallocateStmt& s) {
      return server->ExecDeallocate(session, s, out);
    }
  };
  // Definition statements exclude every other session; DML and queries
  // run concurrently (shared) and settle conflicts in the lock manager.
  const bool is_definition = IsDefinitionStatement(stmt);
  StatementGateScope gate(&statement_gate_, is_definition);
  // Fresh per-statement profile, installed as this thread's attribution
  // point so the node cache and lock manager can charge work to it. An
  // EXPLAIN PROFILE wrapper re-enters here for its inner statement; the
  // inner reset is exactly what gives the wrapper a clean profile to
  // report.
  session->profile().Reset();
  obs::ScopedProfile profile_scope(&session->profile());
  Status status;
  {
    obs::SpanScope exec_span(obs::SpanName::kExec);
    status = std::visit(Visitor{this, session, out}, stmt);
  }
  if (is_definition) {
    // Every definition change — successful or not (a failed CREATE INDEX
    // still touched the catalog on the way) — drops every cached plan.
    // The gate is held exclusively here, so no session is mid-execution
    // on a plan this clears; the next EXECUTE re-parses and re-plans
    // against the new catalog.
    plan_cache_.InvalidateAll();
    if (plan_cache_invalidations_ != nullptr) {
      plan_cache_invalidations_->Add(1);
    }
  }
  return status;
}

Status Server::ExecExplainProfile(ServerSession* session,
                                  const sql::ExplainProfileStmt& stmt,
                                  ResultSet* out) {
  // Execute re-parses and runs the inner statement; its ExecuteStatement
  // resets the session profile, so what is left afterwards is exactly the
  // inner statement's accounting.
  GRTDB_RETURN_IF_ERROR(Execute(session, stmt.inner_sql, out));
  for (std::string& line : session->profile().Report()) {
    out->messages.push_back(std::move(line));
  }
  return Status::OK();
}

Status Server::ExecExplainTrace(ServerSession* session,
                                const sql::ExplainTraceStmt& stmt,
                                ResultSet* out) {
  // Force-sample a fresh trace and run the inner statement under it; every
  // instrumented layer nests its spans below this root automatically. The
  // inner Execute sees the ambient trace and does not re-sample.
  const obs::TraceHandle handle = span_tracer_.StartTraceForced();
  Status status;
  {
    obs::TraceScope root(handle, obs::SpanName::kRequest);
    status = Execute(session, stmt.inner_sql, out);
  }
  GRTDB_RETURN_IF_ERROR(status);
  std::vector<obs::SpanRecord> spans =
      span_tracer_.SnapshotTrace(handle.trace_id);
  // Stitch the parent/child tree and render it depth-first, children in
  // start order. Spans evicted by ring wrap under heavy sampling simply
  // don't appear; the root always survives (it was recorded last).
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> children;
  for (const obs::SpanRecord& span : spans) {
    children[span.parent_id].push_back(&span);
  }
  for (auto& [parent, list] : children) {
    std::sort(list.begin(), list.end(),
              [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
                return a->start_ticks < b->start_ticks;
              });
  }
  out->messages.push_back("TRACE trace_id=" +
                          std::to_string(handle.trace_id) + " spans=" +
                          std::to_string(spans.size()));
  struct Frame {
    const obs::SpanRecord* span;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const obs::SpanRecord& span = *frame.span;
    char line[160];
    std::snprintf(line, sizeof(line), "TRACE %*s%s %.1fus a=%llu b=%llu",
                  frame.depth * 2, "", obs::SpanNameString(span.name),
                  static_cast<double>(
                      obs::TicksToNs(span.end_ticks - span.start_ticks)) /
                      1000.0,
                  static_cast<unsigned long long>(span.a),
                  static_cast<unsigned long long>(span.b));
    out->messages.push_back(line);
    auto kids = children.find(span.span_id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back({*it, frame.depth + 1});
      }
    }
  }
  return Status::OK();
}

Status Server::ExecDumpTrace(const sql::DumpTraceStmt& stmt, ResultSet* out) {
  const std::vector<obs::SpanRecord> spans = span_tracer_.Snapshot();
  const uint64_t base = span_tracer_.base_ticks();
  if (!stmt.json) {
    out->columns = {"seq",      "trace_id", "span_id", "parent_id", "name",
                    "start_ns", "dur_ns",   "thread",  "a",         "b"};
    for (const obs::SpanRecord& span : spans) {
      out->rows.push_back(
          {std::to_string(span.seq), std::to_string(span.trace_id),
           std::to_string(span.span_id), std::to_string(span.parent_id),
           obs::SpanNameString(span.name),
           std::to_string(obs::TicksToNs(span.start_ticks - base)),
           std::to_string(obs::TicksToNs(span.end_ticks - span.start_ticks)),
           std::to_string(span.thread), std::to_string(span.a),
           std::to_string(span.b)});
    }
    out->messages.push_back("span tracer: " + std::to_string(spans.size()) +
                            " spans retained, " +
                            std::to_string(span_tracer_.evicted()) +
                            " evicted");
    return Status::OK();
  }
  // Chrome trace-event JSON (the "JSON Object Format"): complete events
  // ("ph":"X"), timestamps and durations in fractional microseconds,
  // loadable in Perfetto / chrome://tracing. One result row per line so
  // wire clients reassemble with newlines.
  out->columns = {"json"};
  out->rows.push_back({"{\"displayTimeUnit\":\"ms\",\"traceEvents\":["});
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanRecord& span = spans[i];
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"grtdb\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%llu,\"args\":{\"trace_id\":%llu,"
        "\"span_id\":%llu,\"parent_id\":%llu,\"a\":%llu,\"b\":%llu}}%s",
        obs::SpanNameString(span.name),
        static_cast<double>(obs::TicksToNs(span.start_ticks - base)) / 1000.0,
        static_cast<double>(obs::TicksToNs(span.end_ticks -
                                           span.start_ticks)) /
            1000.0,
        static_cast<unsigned long long>(span.thread % 1000000),
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_id),
        static_cast<unsigned long long>(span.a),
        static_cast<unsigned long long>(span.b),
        i + 1 == spans.size() ? "" : ",");
    out->rows.push_back({line});
  }
  out->rows.push_back({"]}"});
  return Status::OK();
}

Status Server::ExecDumpHeat(const sql::DumpHeatStmt& stmt, ResultSet* out) {
  const std::vector<obs::HotNode> nodes = heat_tracker_.Snapshot();
  if (!stmt.json) {
    out->columns = {"store", "node",   "heat",
                    "reads", "writes", "pin_wait_ns"};
    for (const obs::HotNode& node : nodes) {
      char heat[32];
      std::snprintf(heat, sizeof(heat), "%.3f", node.heat);
      out->rows.push_back(
          {node.store, std::to_string(node.node), heat,
           std::to_string(node.reads), std::to_string(node.writes),
           std::to_string(node.pin_wait_ns)});
    }
    out->messages.push_back(
        "heat tracker: " + std::string(heat_tracker_.enabled() ? "on" : "off") +
        ", " + std::to_string(nodes.size()) + " nodes tracked" +
        (heat_tracker_.dropped() != 0
             ? ", " + std::to_string(heat_tracker_.dropped()) +
                   " dropped at capacity"
             : ""));
    return Status::OK();
  }
  // One JSON document for offline heat-map rendering, one result row per
  // line (the DUMP TRACE JSON convention: wire clients join with newlines).
  out->columns = {"json"};
  out->rows.push_back({"{\"enabled\":" +
                       std::string(heat_tracker_.enabled() ? "true" : "false") +
                       ",\"dropped\":" + std::to_string(heat_tracker_.dropped()) +
                       ",\"nodes\":["});
  for (size_t i = 0; i < nodes.size(); ++i) {
    const obs::HotNode& node = nodes[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"store\":\"%s\",\"node\":%llu,\"heat\":%.3f,"
                  "\"reads\":%llu,\"writes\":%llu,\"pin_wait_ns\":%llu}%s",
                  node.store.c_str(),
                  static_cast<unsigned long long>(node.node), node.heat,
                  static_cast<unsigned long long>(node.reads),
                  static_cast<unsigned long long>(node.writes),
                  static_cast<unsigned long long>(node.pin_wait_ns),
                  i + 1 == nodes.size() ? "" : ",");
    out->rows.push_back({line});
  }
  out->rows.push_back({"]}"});
  return Status::OK();
}

// ------------------------------------------------ prepared statements ---

Status Server::GetCachedPlan(const std::string& sql,
                             std::shared_ptr<CachedPlan>* out) {
  obs::SpanScope plan_span(obs::SpanName::kPlan);
  bool hit = false;
  GRTDB_RETURN_IF_ERROR(plan_cache_.Get(sql, out, &hit));
  plan_span.set_operands(hit ? 1 : 0, 0);
  obs::Counter* counter = hit ? plan_cache_hits_ : plan_cache_misses_;
  if (counter != nullptr) counter->Add(1);
  return Status::OK();
}

Status Server::ExecPrepare(ServerSession* session,
                           const sql::PrepareStmt& stmt, ResultSet* out) {
  std::shared_ptr<CachedPlan> plan;
  GRTDB_RETURN_IF_ERROR(GetCachedPlan(stmt.inner_sql, &plan));
  // The SQL parser enforces this for PREPARE ... AS, but the kPrepare wire
  // opcode carries raw statement text; repeat the check on the parsed AST.
  if (!std::holds_alternative<sql::SelectStmt>(plan->ast) &&
      !std::holds_alternative<sql::InsertStmt>(plan->ast) &&
      !std::holds_alternative<sql::DeleteStmt>(plan->ast) &&
      !std::holds_alternative<sql::UpdateStmt>(plan->ast)) {
    return Status::InvalidArgument(
        "PREPARE supports SELECT, INSERT, DELETE, and UPDATE statements");
  }
  ServerSession::PreparedHandle handle;
  handle.name = stmt.name;
  handle.sql = stmt.inner_sql;
  handle.param_count = plan->param_count;
  // Re-PREPARE under the same name replaces the previous statement.
  session->PutPrepared(std::move(handle));
  out->messages.push_back("prepared '" + stmt.name + "' (" +
                          std::to_string(plan->param_count) + " parameter" +
                          (plan->param_count == 1 ? "" : "s") + ")");
  return Status::OK();
}

Status Server::ExecExecute(ServerSession* session,
                           const sql::ExecuteStmt& stmt, ResultSet* out) {
  ServerSession::PreparedHandle handle;
  if (!session->GetPrepared(stmt.name, &handle)) {
    return Status::NotFound("no prepared statement '" + stmt.name + "'");
  }
  if (stmt.args.size() != handle.param_count) {
    return Status::InvalidArgument(
        "prepared statement '" + stmt.name + "' takes " +
        std::to_string(handle.param_count) + " parameter" +
        (handle.param_count == 1 ? "" : "s") + ", got " +
        std::to_string(stmt.args.size()));
  }
  // Fetch by key on every execution: DDL clears the cache, and the handle
  // stores only text — never a plan pointer that could dangle — so a
  // post-invalidation EXECUTE transparently re-parses and re-plans.
  std::shared_ptr<CachedPlan> plan;
  GRTDB_RETURN_IF_ERROR(GetCachedPlan(handle.sql, &plan));
  plan->executions.fetch_add(1, std::memory_order_relaxed);
  // Save/restore around the nested dispatch: EXECUTE runs inside EXPLAIN
  // PROFILE, and the outer frame's bindings must survive the inner one.
  const std::vector<sql::Literal>* saved_params = session->bound_params();
  CachedPlan* saved_plan = session->active_plan();
  session->set_bound_params(&stmt.args);
  session->set_active_plan(plan.get());
  Status status = ExecuteStatement(session, plan->ast, out);
  session->set_bound_params(saved_params);
  session->set_active_plan(saved_plan);
  return status;
}

Status Server::ExecDeallocate(ServerSession* session,
                              const sql::DeallocateStmt& stmt,
                              ResultSet* out) {
  if (!session->ErasePrepared(stmt.name)) {
    return Status::NotFound("no prepared statement '" + stmt.name + "'");
  }
  out->messages.push_back("deallocated '" + stmt.name + "'");
  return Status::OK();
}

Status Server::Prepare(ServerSession* session, const std::string& name,
                       const std::string& sql, ResultSet* out) {
  sql::PrepareStmt prepare;
  prepare.name = name;
  prepare.inner_sql = sql;
  sql::Statement stmt = std::move(prepare);
  out->Clear();
  SessionStatementScope stmt_scope(session, "PREPARE " + name);
  session->memory().BeginDuration(MiDuration::kPerFunction);
  session->memory().BeginDuration(MiDuration::kPerStatement);
  Status status = ExecuteStatement(session, stmt, out);
  session->memory().EndDuration(MiDuration::kPerFunction);
  session->memory().EndDuration(MiDuration::kPerStatement);
  return status;
}

Status Server::ExecutePrepared(ServerSession* session,
                               const std::string& name,
                               const std::vector<sql::Literal>& params,
                               ResultSet* out) {
  for (const sql::Literal& param : params) {
    if (param.kind == sql::Literal::Kind::kParam) {
      return Status::InvalidArgument(
          "EXECUTE arguments must be literal values, not '?'");
    }
  }
  sql::ExecuteStmt execute;
  execute.name = name;
  execute.args = params;
  sql::Statement stmt = std::move(execute);
  out->Clear();
  // Same trace-rooting rule as Execute: the net front end usually owns the
  // root; the embedded path samples here.
  const obs::TraceHandle ambient = obs::CurrentTraceHandle();
  obs::TraceScope root_scope(
      ambient.active() ? obs::TraceHandle{} : span_tracer_.StartTrace(),
      obs::SpanName::kRequest);
  SessionStatementScope stmt_scope(session, "EXECUTE " + name);
  const uint64_t start_ticks = obs::Ticks();
  session->memory().BeginDuration(MiDuration::kPerFunction);
  session->memory().BeginDuration(MiDuration::kPerStatement);
  Status status = ExecuteStatement(session, stmt, out);
  slow_query_log_.MaybeRecord("EXECUTE " + name,
                              obs::TicksToNs(obs::Ticks() - start_ticks),
                              session->profile(), session->id(),
                              obs::CurrentTraceHandle().trace_id);
  session->memory().EndDuration(MiDuration::kPerFunction);
  session->memory().EndDuration(MiDuration::kPerStatement);
  return status;
}

Status Server::ExecDumpFlight(ResultSet* out) {
  out->columns = {"thread", "ns", "event", "a", "b"};
  const obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  // Same clock origin as sys_spans' start_ns (the span tracer's base), so
  // flight events line up with span windows without unit juggling. Events
  // recorded before this server existed clamp to 0 rather than wrapping.
  const uint64_t base = span_tracer_.base_ticks();
  for (const obs::FlightEventRecord& record : recorder.Dump()) {
    const uint64_t ns =
        record.ticks > base ? obs::TicksToNs(record.ticks - base) : 0;
    out->rows.push_back({std::to_string(record.thread), std::to_string(ns),
                         obs::FlightEventName(record.event),
                         std::to_string(record.a), std::to_string(record.b)});
  }
  out->messages.push_back(
      "flight recorder: " + std::to_string(out->rows.size()) + " events" +
      (recorder.lost() != 0
           ? ", " + std::to_string(recorder.lost()) + " lost to thread overflow"
           : ""));
  return Status::OK();
}

Status Server::ExecExportMetrics(ResultSet* out) {
  out->columns = {"line"};
  const std::string text = metrics_.ExportText();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out->rows.push_back({text.substr(start, end - start)});
    start = end + 1;
  }
  return Status::OK();
}

// ------------------------------------------------------------------- DDL ---

Status Server::ExecCreateTable(const sql::CreateTableStmt& stmt) {
  // System-view names are reserved: a table named 'systables' would be
  // shadowed by the built-in view on SELECT but hit by INSERT/DROP, and
  // that split resolution is exactly the inconsistency we refuse to host.
  // Names that merely start with "sys" (syslog, system_config) are fine —
  // the catalog is consulted before the views everywhere.
  if (IsSystemViewName(stmt.table)) {
    return Status::InvalidArgument(
        "'" + ToLower(stmt.table) +
        "' is a reserved system view name; choose another table name");
  }
  std::vector<ColumnDef> columns;
  columns.reserve(stmt.columns.size());
  for (const sql::ColumnSpec& spec : stmt.columns) {
    ColumnDef column;
    column.name = spec.name;
    GRTDB_RETURN_IF_ERROR(types_.Resolve(spec.type_name, &column.type));
    columns.push_back(std::move(column));
  }
  return catalog_.AddTable(
      std::make_unique<Table>(stmt.table, std::move(columns)));
}

Status Server::ExecDropTable(const sql::DropTableStmt& stmt) {
  // Catalog first, views second — the same resolution order SELECT uses.
  // No real table can carry a system-view name (CREATE rejects them), so
  // reaching this branch means the user asked to drop the view itself.
  if (catalog_.FindTable(stmt.table) == nullptr &&
      IsSystemViewName(stmt.table)) {
    return Status::InvalidArgument("'" + ToLower(stmt.table) +
                                   "' is a system view; it cannot be dropped");
  }
  // Indexes on the table must be dropped first (Informix drops them
  // implicitly; we keep it explicit and strict).
  if (!catalog_.IndexesOnTable(stmt.table).empty()) {
    return Status::InvalidArgument("table '" + stmt.table +
                                   "' still has indexes; drop them first");
  }
  return catalog_.DropTable(stmt.table);
}

Status Server::ExecCreateFunction(const sql::CreateFunctionStmt& stmt) {
  UdrDef def;
  def.name = stmt.name;
  for (const std::string& type_name : stmt.arg_types) {
    TypeDesc type;
    GRTDB_RETURN_IF_ERROR(types_.Resolve(type_name, &type));
    def.arg_types.push_back(type);
  }
  GRTDB_RETURN_IF_ERROR(types_.Resolve(stmt.return_type, &def.return_type));
  def.external_name = stmt.external_name;
  def.negator = stmt.negator;
  def.commutator = stmt.commutator;
  GRTDB_RETURN_IF_ERROR(
      blade_libraries_.Resolve(stmt.external_name, &def.symbol));
  return udrs_.Register(std::move(def));
}

Status Server::ExecCreateAccessMethod(
    const sql::CreateAccessMethodStmt& stmt) {
  AccessMethodDef am;
  am.name = stmt.name;
  for (const auto& [key_raw, value] : stmt.properties) {
    const std::string key = ToLower(key_raw);
    if (key == "am_sptype") {
      if (value.empty()) {
        return Status::InvalidArgument("empty am_sptype");
      }
      am.sptype = value[0];
      continue;
    }
    const UdrDef* udr = udrs_.FindAny(value);
    if (udr == nullptr) {
      return Status::NotFound("purpose function '" + value +
                              "' is not a registered function");
    }
    am.purpose_names[key] = udr->name;
    auto cast_error = [&]() {
      return Status::InvalidArgument(
          "function '" + value + "' does not have the signature required by " +
          key);
    };
    if (key == "am_create" || key == "am_drop" || key == "am_open" ||
        key == "am_close" || key == "am_stats" || key == "am_check") {
      const auto* fn = std::any_cast<AmSimpleFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      if (key == "am_create") am.hooks.am_create = *fn;
      if (key == "am_drop") am.hooks.am_drop = *fn;
      if (key == "am_open") am.hooks.am_open = *fn;
      if (key == "am_close") am.hooks.am_close = *fn;
      if (key == "am_stats") am.hooks.am_stats = *fn;
      if (key == "am_check") am.hooks.am_check = *fn;
    } else if (key == "am_beginscan" || key == "am_endscan" ||
               key == "am_rescan") {
      const auto* fn = std::any_cast<AmScanFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      if (key == "am_beginscan") am.hooks.am_beginscan = *fn;
      if (key == "am_endscan") am.hooks.am_endscan = *fn;
      if (key == "am_rescan") am.hooks.am_rescan = *fn;
    } else if (key == "am_getnext") {
      const auto* fn = std::any_cast<AmGetNextFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      am.hooks.am_getnext = *fn;
    } else if (key == "am_insert" || key == "am_delete") {
      const auto* fn = std::any_cast<AmModifyFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      if (key == "am_insert") am.hooks.am_insert = *fn;
      if (key == "am_delete") am.hooks.am_delete = *fn;
    } else if (key == "am_update") {
      const auto* fn = std::any_cast<AmUpdateFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      am.hooks.am_update = *fn;
    } else if (key == "am_scancost") {
      const auto* fn = std::any_cast<AmScanCostFn>(&udr->symbol);
      if (fn == nullptr) return cast_error();
      am.hooks.am_scancost = *fn;
    } else {
      return Status::InvalidArgument("unknown access-method property '" +
                                     key_raw + "'");
    }
  }
  if (!am.hooks.am_getnext) {
    return Status::InvalidArgument(
        "am_getnext is mandatory for a secondary access method");
  }
  return catalog_.AddAccessMethod(std::move(am));
}

Status Server::ExecCreateOpclass(const sql::CreateOpclassStmt& stmt) {
  AccessMethodDef* am = catalog_.FindAccessMethod(stmt.access_method);
  if (am == nullptr) {
    return Status::NotFound("access method '" + stmt.access_method + "'");
  }
  // Strategy and support functions must be registered UDRs so the
  // optimizer can recognize them in WHERE clauses (paper §4 Step 4).
  for (const std::string& name : stmt.strategies) {
    if (udrs_.FindAny(name) == nullptr) {
      return Status::NotFound("strategy function '" + name +
                              "' is not registered");
    }
  }
  for (const std::string& name : stmt.supports) {
    if (udrs_.FindAny(name) == nullptr) {
      return Status::NotFound("support function '" + name +
                              "' is not registered");
    }
  }
  OpClassDef opclass;
  opclass.name = stmt.name;
  opclass.access_method = stmt.access_method;
  opclass.strategies = stmt.strategies;
  opclass.supports = stmt.supports;
  GRTDB_RETURN_IF_ERROR(catalog_.AddOpClass(std::move(opclass)));
  if (stmt.is_default || am->default_opclass.empty()) {
    am->default_opclass = stmt.name;
  }
  return Status::OK();
}

Status Server::ExecDropIndex(ServerSession* session,
                             const sql::DropIndexStmt& stmt) {
  IndexDef* index = catalog_.FindIndex(stmt.index);
  if (index == nullptr) {
    return Status::NotFound("index '" + stmt.index + "'");
  }
  AccessMethodDef* am = catalog_.FindAccessMethod(index->access_method);
  if (am == nullptr) {
    return Status::Corruption("index references unknown access method");
  }
  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  MiCallContext ctx{this, session, current_time_};
  MiAmTableDesc desc;
  desc.index = index;
  desc.table = catalog_.FindTable(index->table);
  desc.key_columns = index->key_columns;
  desc.key_types = index->key_types;
  Status status = Status::OK();
  if (am->hooks.am_drop) {
    PurposeCallScope call(this, session, am, obs::PurposeFn::kAmDrop);
    status = am->hooks.am_drop(ctx, &desc);
  }
  if (status.ok()) status = catalog_.DropIndex(stmt.index);
  if (status.ok()) {
    // A retained stats report must not outlive its index.
    std::lock_guard<std::mutex> lock(index_stats_mu_);
    index_stats_.erase(ToLower(stmt.index));
  }
  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

Status Server::ExecDropFunction(const sql::DropFunctionStmt& stmt) {
  return udrs_.Unregister(stmt.name);
}

Status Server::ExecDropAccessMethod(const sql::DropAccessMethodStmt& stmt) {
  if (catalog_.FindAccessMethod(stmt.name) == nullptr) {
    return Status::NotFound("access method '" + stmt.name + "'");
  }
  for (const IndexDef* index : catalog_.AllIndexes()) {
    if (EqualsIgnoreCase(index->access_method, stmt.name)) {
      return Status::InvalidArgument("access method '" + stmt.name +
                                     "' is used by index '" + index->name +
                                     "'; drop the index first");
    }
  }
  // Operator classes belong to the access method and go with it.
  for (const OpClassDef* opclass :
       catalog_.OpClassesOfAccessMethod(stmt.name)) {
    GRTDB_RETURN_IF_ERROR(catalog_.DropOpClass(opclass->name));
  }
  return catalog_.DropAccessMethod(stmt.name);
}

Status Server::ExecDropOpclass(const sql::DropOpclassStmt& stmt) {
  if (catalog_.FindOpClass(stmt.name) == nullptr) {
    return Status::NotFound("operator class '" + stmt.name + "'");
  }
  for (const IndexDef* index : catalog_.AllIndexes()) {
    for (const std::string& opclass : index->opclasses) {
      if (EqualsIgnoreCase(opclass, stmt.name)) {
        return Status::InvalidArgument("operator class '" + stmt.name +
                                       "' is used by index '" + index->name +
                                       "'; drop the index first");
      }
    }
  }
  return catalog_.DropOpClass(stmt.name);
}

Status Server::ExecSet(ServerSession* session, const sql::SetStmt& stmt,
                       ResultSet* out) {
  switch (stmt.what) {
    case sql::SetStmt::What::kIsolation: {
      IsolationLevel level;
      if (stmt.argument == "DIRTY") {
        level = IsolationLevel::kDirtyRead;
      } else if (stmt.argument == "COMMITTED") {
        level = IsolationLevel::kCommittedRead;
      } else if (stmt.argument == "REPEATABLE") {
        level = IsolationLevel::kRepeatableRead;
      } else {
        return Status::InvalidArgument("unknown isolation level '" +
                                       stmt.argument + "'");
      }
      session->txn_session().set_isolation(level);
      return Status::OK();
    }
    case sql::SetStmt::What::kExplain:
      if (stmt.argument == "ON") {
        session->set_explain(true);
      } else if (stmt.argument == "OFF") {
        session->set_explain(false);
      } else {
        return Status::InvalidArgument("SET EXPLAIN expects ON or OFF");
      }
      return Status::OK();
    case sql::SetStmt::What::kCurrentTime: {
      if (stmt.value.kind == sql::Literal::Kind::kInteger) {
        current_time_ = stmt.value.integer;
      } else if (stmt.value.kind == sql::Literal::Kind::kString) {
        int64_t day = 0;
        GRTDB_RETURN_IF_ERROR(ParseDate(stmt.value.text, &day));
        current_time_ = day;
      } else {
        return Status::InvalidArgument(
            "SET CURRENT_TIME expects an integer or a date string");
      }
      out->messages.push_back("current time set to " +
                              FormatDate(current_time_));
      return Status::OK();
    }
    case sql::SetStmt::What::kTimeMode:
      if (stmt.argument == "STATEMENT") {
        session->set_time_mode(CurrentTimeMode::kPerStatement);
      } else if (stmt.argument == "TRANSACTION") {
        session->set_time_mode(CurrentTimeMode::kPerTransaction);
      } else {
        return Status::InvalidArgument(
            "SET TIME MODE expects STATEMENT or TRANSACTION");
      }
      return Status::OK();
    case sql::SetStmt::What::kTrace:
      if (stmt.value.kind != sql::Literal::Kind::kInteger) {
        return Status::InvalidArgument("SET TRACE expects an integer level");
      }
      trace_.SetClass(stmt.argument,
                      static_cast<int>(stmt.value.integer));
      return Status::OK();
    case sql::SetStmt::What::kSlowQueryNs:
      if (stmt.value.kind != sql::Literal::Kind::kInteger ||
          stmt.value.integer < 0) {
        return Status::InvalidArgument(
            "SET SLOW_QUERY_NS expects a non-negative integer (0 disables)");
      }
      slow_query_log_.set_threshold_ns(
          static_cast<uint64_t>(stmt.value.integer));
      out->messages.push_back(
          stmt.value.integer == 0
              ? "slow-query log disabled"
              : "slow-query threshold set to " +
                    std::to_string(stmt.value.integer) + " ns");
      return Status::OK();
    case sql::SetStmt::What::kTraceSample:
      if (stmt.value.kind != sql::Literal::Kind::kInteger ||
          stmt.value.integer < 0) {
        return Status::InvalidArgument(
            "SET TRACE_SAMPLE expects a non-negative integer (0 disables)");
      }
      span_tracer_.set_sample_every(
          static_cast<uint32_t>(stmt.value.integer));
      out->messages.push_back(
          stmt.value.integer == 0
              ? "request tracing disabled"
              : "tracing 1 in " + std::to_string(stmt.value.integer) +
                    " requests");
      return Status::OK();
    case sql::SetStmt::What::kHeatTrack:
      if (stmt.value.kind != sql::Literal::Kind::kInteger ||
          (stmt.value.integer != 0 && stmt.value.integer != 1)) {
        return Status::InvalidArgument("SET HEAT_TRACK expects 0 or 1");
      }
      heat_tracker_.set_enabled(stmt.value.integer != 0);
      out->messages.push_back(stmt.value.integer != 0
                                  ? "heat tracking enabled"
                                  : "heat tracking disabled");
      return Status::OK();
  }
  return Status::Internal("bad SET statement");
}

Status Server::ExecCheckIndex(ServerSession* session,
                              const sql::CheckIndexStmt& stmt,
                              ResultSet* out) {
  IndexDef* index = catalog_.FindIndex(stmt.index);
  if (index == nullptr) {
    return Status::NotFound("index '" + stmt.index + "'");
  }
  AccessMethodDef* am = catalog_.FindAccessMethod(index->access_method);
  if (am == nullptr || !am->hooks.am_check) {
    return Status::NotSupported("access method provides no am_check");
  }
  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  MiCallContext ctx{this, session, current_time_};
  std::unique_ptr<OpenIndex> open;
  Status status = OpenIndexDesc(session, index, false, ctx, &open);
  if (status.ok()) {
    {
      PurposeCallScope call(this, session, am, obs::PurposeFn::kAmCheck);
      status = am->hooks.am_check(ctx, &open->desc);
    }
    Status close = CloseIndexDesc(ctx, open.get());
    if (status.ok()) status = close;
  }
  if (status.ok()) {
    out->messages.push_back("index '" + stmt.index + "' is consistent");
  }
  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

Status Server::RunIndexStats(ServerSession* session, IndexDef* index,
                             ResultSet* out) {
  AccessMethodDef* am = catalog_.FindAccessMethod(index->access_method);
  if (am == nullptr || !am->hooks.am_stats) {
    return Status::NotSupported("access method provides no am_stats");
  }
  MiCallContext ctx{this, session, current_time_};
  std::unique_ptr<OpenIndex> open;
  Status status = OpenIndexDesc(session, index, false, ctx, &open);
  if (status.ok()) {
    {
      PurposeCallScope call(this, session, am, obs::PurposeFn::kAmStats);
      status = am->hooks.am_stats(ctx, &open->desc);
    }
    Status close = CloseIndexDesc(ctx, open.get());
    if (status.ok()) status = close;
  }
  if (status.ok()) {
    out->messages.push_back("statistics updated for index '" + index->name +
                            "'");
  }
  return status;
}

Status Server::ExecUpdateStatistics(ServerSession* session,
                                    const sql::UpdateStatisticsStmt& stmt,
                                    ResultSet* out) {
  std::vector<IndexDef*> targets;
  if (stmt.index.empty()) {
    // Bare UPDATE STATISTICS: every index whose access method implements
    // am_stats (the others are skipped, not errors).
    for (const IndexDef* index : catalog_.AllIndexes()) {
      const AccessMethodDef* am =
          catalog_.FindAccessMethod(index->access_method);
      if (am != nullptr && am->hooks.am_stats) {
        targets.push_back(catalog_.FindIndex(index->name));
      }
    }
  } else {
    IndexDef* index = catalog_.FindIndex(stmt.index);
    if (index == nullptr) {
      return Status::NotFound("index '" + stmt.index + "'");
    }
    targets.push_back(index);
  }
  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  Status status = Status::OK();
  for (IndexDef* index : targets) {
    status = RunIndexStats(session, index, out);
    if (!status.ok()) break;
  }
  if (status.ok() && stmt.index.empty()) {
    out->messages.push_back("statistics updated for " +
                            std::to_string(targets.size()) + " index(es)");
  }
  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

// ------------------------------------------------- purpose-fn plumbing ---

Status Server::OpenIndexDesc(ServerSession* session, IndexDef* index,
                             bool just_created, MiCallContext& ctx,
                             std::unique_ptr<OpenIndex>* out) {
  AccessMethodDef* am = catalog_.FindAccessMethod(index->access_method);
  if (am == nullptr) {
    return Status::Corruption("index '" + index->name +
                              "' references unknown access method");
  }
  auto open = std::make_unique<OpenIndex>();
  open->index = index;
  open->am = am;
  open->desc.index = index;
  open->desc.table = catalog_.FindTable(index->table);
  open->desc.key_columns = index->key_columns;
  open->desc.key_types = index->key_types;
  open->desc.just_created = just_created;
  if (am->hooks.am_open) {
    PurposeCallScope call(this, session, am, obs::PurposeFn::kAmOpen);
    GRTDB_RETURN_IF_ERROR(am->hooks.am_open(ctx, &open->desc));
  }
  *out = std::move(open);
  return Status::OK();
}

Status Server::CloseIndexDesc(MiCallContext& ctx, OpenIndex* open) {
  if (open->am->hooks.am_close) {
    PurposeCallScope call(this, ctx.session, open->am,
                          obs::PurposeFn::kAmClose);
    return open->am->hooks.am_close(ctx, &open->desc);
  }
  return Status::OK();
}

Row Server::KeyRowFor(const MiAmTableDesc& desc, const Row& base_row) const {
  Row key_row;
  key_row.reserve(desc.key_columns.size());
  for (int column : desc.key_columns) {
    key_row.push_back(base_row[static_cast<size_t>(column)]);
  }
  return key_row;
}

Status Server::ExecCreateIndex(ServerSession* session,
                               const sql::CreateIndexStmt& stmt,
                               ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "'");
  }
  AccessMethodDef* am = catalog_.FindAccessMethod(stmt.access_method);
  if (am == nullptr) {
    return Status::NotFound("access method '" + stmt.access_method + "'");
  }
  if (stmt.columns.size() != 1) {
    // §5.1: qualification descriptors accommodate only single-column
    // predicates, so virtual indexes are single-column here.
    return Status::NotSupported(
        "virtual indexes support exactly one key column");
  }

  IndexDef index;
  index.name = stmt.name;
  index.table = stmt.table;
  index.access_method = stmt.access_method;
  index.space = stmt.space.empty() ? "default" : stmt.space;
  if (FindSbspace(index.space) == nullptr) {
    return Status::NotFound("sbspace '" + index.space +
                            "' (create it with onspaces/CreateSbspace)");
  }
  for (const auto& [column, opclass_name] : stmt.columns) {
    const int column_index = table->ColumnIndex(column);
    if (column_index < 0) {
      return Status::NotFound("column '" + column + "' in table '" +
                              stmt.table + "'");
    }
    std::string opclass = opclass_name;
    if (opclass.empty()) opclass = am->default_opclass;
    if (opclass.empty()) {
      return Status::InvalidArgument(
          "no operator class given and access method has no default");
    }
    const OpClassDef* opclass_def = catalog_.FindOpClass(opclass);
    if (opclass_def == nullptr) {
      return Status::NotFound("operator class '" + opclass + "'");
    }
    if (!EqualsIgnoreCase(opclass_def->access_method, stmt.access_method)) {
      return Status::InvalidArgument("operator class '" + opclass +
                                     "' belongs to access method '" +
                                     opclass_def->access_method + "'");
    }
    index.columns.push_back(column);
    index.opclasses.push_back(opclass);
    index.key_columns.push_back(column_index);
    index.key_types.push_back(table->columns()[column_index].type);
  }

  GRTDB_RETURN_IF_ERROR(catalog_.AddIndex(index));
  IndexDef* stored = catalog_.FindIndex(stmt.name);

  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  MiCallContext ctx{this, session, current_time_};

  auto fail = [&](Status status) {
    // Cleanup failures never mask the build error, but they must not
    // vanish either: a half-registered index poisons every retry of the
    // same CREATE INDEX, so the caller hears about it in the same status.
    Status dropped = catalog_.DropIndex(stmt.name);
    if (!dropped.ok()) {
      status = status.WithNote("cleanup failed: " + dropped.message());
    }
    if (implicit) {
      Status rolled = txn_manager_.Rollback(&session->txn_session());
      if (!rolled.ok()) {
        status = status.WithNote("rollback failed: " + rolled.message());
      }
      session->memory().EndDuration(MiDuration::kPerTransaction);
    }
    return status;
  };

  // am_create, then am_open (which sees just_created, Table 5 step 1),
  // then a build pass inserting the existing rows, then am_close.
  MiAmTableDesc create_desc;
  create_desc.index = stored;
  create_desc.table = table;
  create_desc.key_columns = stored->key_columns;
  create_desc.key_types = stored->key_types;
  if (am->hooks.am_create) {
    Status status;
    {
      PurposeCallScope call(this, session, am, obs::PurposeFn::kAmCreate);
      status = am->hooks.am_create(ctx, &create_desc);
    }
    if (!status.ok()) return fail(status);
  }
  std::unique_ptr<OpenIndex> open;
  Status status = OpenIndexDesc(session, stored, /*just_created=*/true, ctx,
                                &open);
  if (!status.ok()) return fail(status);
  // The descriptor created by am_create carries the blade's Tree object;
  // keep it (Informix passes the same descriptor to the following calls).
  open->desc.user_data = create_desc.user_data;
  if (am->hooks.am_insert) {
    // The callback stops the scan on an insert error and parks it in
    // `status`; Scan's own (traversal) error must not overwrite it.
    Status scan = table->Scan([&](RecordId id, const Row& row) {
      Row key_row = KeyRowFor(open->desc, row);
      PurposeCallScope call(this, session, am, obs::PurposeFn::kAmInsert);
      Status insert_status =
          am->hooks.am_insert(ctx, &open->desc, key_row, id.Pack());
      if (!insert_status.ok()) {
        status = insert_status;
        return false;
      }
      return true;
    });
    if (status.ok()) status = scan;
  }
  if (status.ok()) {
    Status close = CloseIndexDesc(ctx, open.get());
    if (!close.ok()) status = close;
  } else {
    Status close = CloseIndexDesc(ctx, open.get());
    if (!close.ok()) {
      status = status.WithNote("am_close failed: " + close.message());
    }
  }
  if (!status.ok()) return fail(status);

  if (implicit) {
    Status end = txn_manager_.Commit(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (!end.ok()) return end;
  }
  out->messages.push_back("index '" + stmt.name + "' created using " +
                          stmt.access_method);
  return Status::OK();
}

}  // namespace grtdb
