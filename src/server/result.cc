#include "server/result.h"

#include <algorithm>

namespace grtdb {

std::string ResultSet::ToString() const {
  std::string out;
  for (const std::string& message : messages) {
    out += "-- " + message + "\n";
  }
  if (columns.empty()) {
    if (affected != 0 || rows.empty()) {
      out += std::to_string(affected) + " row(s) affected\n";
    }
    return out;
  }
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto pad = [](const std::string& s, size_t width) {
    std::string padded = s;
    padded.resize(width, ' ');
    return padded;
  };
  for (size_t i = 0; i < columns.size(); ++i) {
    out += pad(columns[i], widths[i]);
    out += (i + 1 < columns.size()) ? "  " : "\n";
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    out += std::string(widths[i], '-');
    out += (i + 1 < columns.size()) ? "  " : "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += pad(row[i], i < widths.size() ? widths[i] : row[i].size());
      out += (i + 1 < row.size()) ? "  " : "\n";
    }
  }
  out += std::to_string(rows.size()) + " row(s) returned\n";
  return out;
}

}  // namespace grtdb
