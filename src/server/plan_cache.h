#ifndef GRTDB_SERVER_PLAN_CACHE_H_
#define GRTDB_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace grtdb {

struct IndexDef;
struct UdrDef;

// One strategy-function term of a memoized plan. The literal expression is
// a pointer into the cached statement's AST (kept alive by the CachedPlan
// shared_ptr the executing statement holds); the constant itself is
// re-coerced per execution so `?` parameters bind fresh values into the
// same resolved strategy/opclass decision.
struct PlanTermMemo {
  const UdrDef* func = nullptr;
  const sql::Expr* literal_expr = nullptr;  // null for unary terms
  bool column_first = true;
  bool unary = false;
};

// The parameter-independent outcome of query planning: the chosen index,
// the opclass strategy/support bindings (as resolved UDRs), the residual
// conjuncts, and the costs that picked the winner. Everything a repeat
// execution would otherwise recompute through the catalog.
struct PlanMemo {
  bool use_index = false;
  IndexDef* index = nullptr;
  std::vector<PlanTermMemo> terms;
  std::vector<const sql::Expr*> residual;  // into the cached AST
  double index_cost = 0.0;
  double seq_cost = 0.0;
};

// One cache entry: the parsed statement plus its lazily-filled plan memo.
// The AST is immutable after construction and shared by every session
// executing the statement; `?` parameters live in the AST as kParam
// literals and are resolved against per-session bindings at execution.
struct CachedPlan {
  std::string sql;         // inner statement text as prepared
  sql::Statement ast;
  size_t param_count = 0;
  std::atomic<uint64_t> executions{0};

  // The memo fills on first execution (planning needs a transaction and
  // bound parameters for am_scancost). Racing first executions compute
  // independently and the first store wins — the computation is
  // deterministic for a fixed catalog, which the statement gate holds
  // still for the duration.
  std::mutex memo_mu;
  bool planned = false;
  PlanMemo memo;
};

// Server-wide cache of parsed + planned statements, keyed on normalized
// SQL text. DDL invalidates the whole map (under the exclusive statement
// gate, so no statement is mid-execution); sessions re-fetch by key on
// every EXECUTE, so a dropped entry is transparently re-parsed and
// re-planned rather than ever dereferenced stale.
class PlanCache {
 public:
  // Lowercases outside quoted strings, collapses whitespace runs, trims,
  // and strips a trailing ';' — so spelling variants share one entry.
  static std::string Normalize(const std::string& sql);

  // Fetches the entry for `sql` (normalizing internally), parsing and
  // inserting on miss. `hit` reports whether the entry already existed.
  Status Get(const std::string& sql, std::shared_ptr<CachedPlan>* out,
             bool* hit);

  // Read-only lookup for sys_prepared: no insert, no counter effects.
  std::shared_ptr<CachedPlan> Peek(const std::string& sql) const;

  // Drops every entry. Called on DDL with the statement gate exclusive.
  void InvalidateAll();

  size_t size() const;
  // Bumps on every InvalidateAll; lets tests prove invalidation happened.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<CachedPlan>> entries_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_PLAN_CACHE_H_
