#ifndef GRTDB_SERVER_SERVER_H_
#define GRTDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "blade/library.h"
#include "blade/mi_memory.h"
#include "blade/trace.h"
#include "common/status.h"
#include "common/strings.h"
#include "obs/heat_tracker.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/slow_query_log.h"
#include "obs/span_tracer.h"
#include "server/catalog.h"
#include "server/plan_cache.h"
#include "server/index_stats.h"
#include "server/result.h"
#include "server/types.h"
#include "server/udr.h"
#include "server/vii.h"
#include "sql/ast.h"
#include "storage/sbspace.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace grtdb {

// Whether a DataBlade should resolve UC/NOW with a per-statement or a
// per-transaction current time (paper §5.4).
enum class CurrentTimeMode { kPerStatement, kPerTransaction };

// A client session: transaction state plus server-side session settings,
// the session's duration-scoped allocator, and the purpose-function call
// log tests and bench T2 read.
class ServerSession {
 public:
  explicit ServerSession(SessionId id) : session_(id) {}

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  Session& txn_session() { return session_; }
  SessionId id() const { return session_.id(); }

  // The session's duration-scoped allocator (§6.2). Durations are a
  // *session-lifetime* concept: PER_STATEMENT memory dies with this
  // session's statement, not with whichever statement finishes first
  // server-wide. Two sessions executing concurrently therefore must not
  // share an arena — each ends its own durations on its own allocator.
  MiMemory& memory() { return memory_; }

  bool explain() const { return explain_; }
  void set_explain(bool on) { explain_ = on; }

  CurrentTimeMode time_mode() const { return time_mode_; }
  void set_time_mode(CurrentTimeMode mode) { time_mode_ = mode; }

  // Recent purpose-function invocations, in order ("grt_open",
  // "grt_insert", ...). Bounded: a long-lived connection must not grow
  // session state on every call, so once the log reaches
  // kPurposeLogCapacity entries the oldest half is dropped (counted in
  // purpose_log_dropped). Sequence consumers (the Fig. 6 tests, EXPLAIN-
  // style tooling) clear per statement and never get near the cap;
  // aggregate consumers read purpose_counts(), which stays exact.
  static constexpr size_t kPurposeLogCapacity = 4096;
  const std::vector<std::string>& purpose_log() const { return purpose_log_; }
  // Exact per-function call totals since the last ClearPurposeLog,
  // unaffected by log truncation (bounded by the purpose-fn vocabulary).
  const std::map<std::string, uint64_t>& purpose_counts() const {
    return purpose_counts_;
  }
  uint64_t purpose_log_dropped() const { return purpose_log_dropped_; }
  void ClearPurposeLog() {
    purpose_log_.clear();
    purpose_counts_.clear();
    purpose_log_dropped_ = 0;
  }
  void LogPurposeCall(const std::string& name) {
    ++purpose_counts_[name];
    if (purpose_log_.size() >= kPurposeLogCapacity) {
      // Drop the oldest half in one move: amortized O(1) per call.
      purpose_log_.erase(purpose_log_.begin(),
                         purpose_log_.begin() + kPurposeLogCapacity / 2);
      purpose_log_dropped_ += kPurposeLogCapacity / 2;
    }
    purpose_log_.push_back(name);
  }

  // The most recent statement's execution profile (reset per statement).
  obs::QueryProfile& profile() { return profile_; }

  // ---- prepared statements ---------------------------------------------
  // A session-local handle onto the server-wide plan cache. Only text keys
  // are stored — never plan pointers — so DDL invalidating the cache can
  // never leave a handle dangling; the next EXECUTE simply re-parses.
  struct PreparedHandle {
    std::string name;       // as PREPAREd (original case)
    std::string sql;        // inner statement text
    size_t param_count = 0;
  };
  // The handle map is guarded because sys_prepared reads every session's
  // handles from whichever session materializes the view.
  void PutPrepared(PreparedHandle handle) {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    prepared_[ToLower(handle.name)] = std::move(handle);
  }
  bool GetPrepared(const std::string& name, PreparedHandle* out) const {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto it = prepared_.find(ToLower(name));
    if (it == prepared_.end()) return false;
    *out = it->second;
    return true;
  }
  bool ErasePrepared(const std::string& name) {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    return prepared_.erase(ToLower(name)) != 0;
  }
  std::vector<PreparedHandle> AllPrepared() const {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    std::vector<PreparedHandle> out;
    out.reserve(prepared_.size());
    for (const auto& [key, handle] : prepared_) out.push_back(handle);
    return out;
  }

  // Parameter bindings and the active cached plan for the statement this
  // session is currently executing. Only the session's own thread touches
  // them (a session is single-threaded by contract), so no lock.
  const std::vector<sql::Literal>* bound_params() const {
    return bound_params_;
  }
  void set_bound_params(const std::vector<sql::Literal>* params) {
    bound_params_ = params;
  }
  CachedPlan* active_plan() const { return active_plan_; }
  void set_active_plan(CachedPlan* plan) { active_plan_ = plan; }

  // ---- live-session view (sys_sessions) --------------------------------
  // A mirror of "what is this session doing right now", written by the
  // owning thread at statement boundaries (and by the net front end at
  // connect time) and read cross-thread by whichever session materializes
  // sys_sessions — hence the mutex. The transaction id is mirrored here
  // because txn_session() may only be touched from the owning thread.
  struct SessionInfo {
    std::string peer;       // "host:port", empty for embedded sessions
    bool active = false;    // currently inside a statement
    std::string statement;  // current (active) or last finished SQL
    uint64_t trace_id = 0;  // that statement's trace id (0 = unsampled)
    TxnId txn = 0;          // open transaction at the last boundary
    bool explicit_txn = false;
    uint64_t statements = 0;  // statements started on this session
  };
  void set_peer(const std::string& peer) {
    std::lock_guard<std::mutex> lock(info_mu_);
    info_.peer = peer;
  }
  // Statement boundaries nest: EXPLAIN PROFILE / EXECUTE re-enter the
  // execution path for their inner statement, and the view should keep
  // showing the outermost text until the whole request finishes.
  void BeginStatement(const std::string& sql, uint64_t trace_id) {
    std::lock_guard<std::mutex> lock(info_mu_);
    if (++stmt_depth_ == 1) {
      info_.statement = sql;
      info_.trace_id = trace_id;
      ++info_.statements;
    }
    info_.active = true;
    MirrorTxnLocked();
  }
  void EndStatement() {
    std::lock_guard<std::mutex> lock(info_mu_);
    if (stmt_depth_ > 0 && --stmt_depth_ == 0) info_.active = false;
    MirrorTxnLocked();
  }
  SessionInfo info() const {
    std::lock_guard<std::mutex> lock(info_mu_);
    return info_;
  }

 private:
  // Requires info_mu_; called from the owning thread only (statement
  // boundaries), which makes the current_txn() read safe.
  void MirrorTxnLocked() {
    const Transaction* txn = session_.current_txn();
    info_.txn = txn != nullptr ? txn->id() : 0;
    info_.explicit_txn = session_.in_explicit_txn();
  }

  Session session_;
  MiMemory memory_;
  bool explain_ = false;
  CurrentTimeMode time_mode_ = CurrentTimeMode::kPerStatement;
  std::vector<std::string> purpose_log_;
  std::map<std::string, uint64_t> purpose_counts_;
  uint64_t purpose_log_dropped_ = 0;
  obs::QueryProfile profile_;
  mutable std::mutex prepared_mu_;
  std::map<std::string, PreparedHandle> prepared_;  // lower-cased name
  const std::vector<sql::Literal>* bound_params_ = nullptr;
  CachedPlan* active_plan_ = nullptr;
  mutable std::mutex info_mu_;
  SessionInfo info_;
  uint32_t stmt_depth_ = 0;  // statement-boundary nesting (info_mu_)
};

struct ServerOptions {
  // Buffer-pool frames per sbspace created with CreateSbspace.
  size_t sbspace_pool_pages = 512;
  std::chrono::milliseconds lock_timeout{500};
  // Simulation clock start (chronons = days since 1970-01-01).
  int64_t initial_time = 10000;
  // Wires subsystem counters into the metrics registry and times purpose
  // functions. Off leaves only the per-statement call counts (needed by
  // EXPLAIN PROFILE cross-checks) — the configuration bench_obs_overhead
  // compares against.
  bool observability = true;
  // Trace ring capacity (records kept before the oldest is dropped).
  size_t trace_capacity = TraceFacility::kDefaultCapacity;
  // Span-tracer ring capacity (finished request spans kept for sys_spans /
  // DUMP TRACE; the driver's tail-attribution phase sizes this up).
  size_t span_capacity = obs::SpanTracer::kDefaultCapacity;
};

// The extensible database server: catalog, SQL execution, the Virtual
// Index Interface, and the DataBlade services (duration memory, named
// memory, trace, blade libraries, sbspaces). The substitute for the
// Informix Dynamic Server with Universal Data Option (see DESIGN.md).
class Server {
 public:
  explicit Server(const ServerOptions& options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // ---- infrastructure the DataBlade API exposes -------------------------
  TypeRegistry& types() { return types_; }
  UdrRegistry& udrs() { return udrs_; }
  BladeLibraryRegistry& blade_libraries() { return blade_libraries_; }
  // The server-lifetime allocator. Statement/transaction/session durations
  // belong to a *session* (ServerSession::memory()) — this arena is only
  // for allocations that genuinely outlive every session, and no duration
  // is ever ended on it by the execution path.
  MiMemory& memory() { return memory_; }
  MiNamedMemory& named_memory() { return named_memory_; }
  TraceFacility& trace() { return trace_; }
  LockManager& lock_manager() { return lock_manager_; }
  TransactionManager& txn_manager() { return txn_manager_; }
  Catalog& catalog() { return catalog_; }

  // ---- observability ----------------------------------------------------
  obs::MetricsRegistry& metrics() { return metrics_; }
  bool observability_enabled() const { return options_.observability; }
  // Cached per-purpose-function registry handles (vii.<fn>.calls /
  // vii.<fn>.us), used by PurposeCallScope.
  obs::Counter* vii_call_counter(obs::PurposeFn fn) {
    return vii_calls_[static_cast<size_t>(fn)];
  }
  obs::Histogram* vii_time_histogram(obs::PurposeFn fn) {
    return vii_us_[static_cast<size_t>(fn)];
  }
  // Statements slower than SET SLOW_QUERY_NS land here with their profile.
  obs::SlowQueryLog& slow_query_log() { return slow_query_log_; }
  // The request-span tracer (SET TRACE_SAMPLE, sys_spans, DUMP TRACE).
  obs::SpanTracer& span_tracer() { return span_tracer_; }
  // Per-node access heat (SET HEAT_TRACK, sys_hot_nodes, DUMP HEAT). The
  // blades wire each index's node cache into this tracker at open time;
  // with the gate off — the default — every touch is one relaxed load.
  obs::HeatTracker& heat_tracker() { return heat_tracker_; }

  // ---- index-health telemetry (am_stats side channel) -------------------
  // Blades report their walker's numbers here from inside am_stats; the
  // latest report per index feeds sys_index_stats and am_scancost.
  void ReportIndexStats(IndexStatsReport report);
  bool GetIndexStats(const std::string& index, IndexStatsReport* out) const;
  std::vector<IndexStatsReport> AllIndexStats() const;

  // ---- simulation clock (granularity: days, §5.1) -----------------------
  // Atomic: sessions executing concurrently all read it, and SET
  // CURRENT_TIME runs under the shared statement gate.
  int64_t current_time() const {
    return current_time_.load(std::memory_order_relaxed);
  }
  void set_current_time(int64_t ct) {
    current_time_.store(ct, std::memory_order_relaxed);
  }
  void AdvanceTime(int64_t days) {
    current_time_.fetch_add(days, std::memory_order_relaxed);
  }

  // ---- storage spaces ("onspaces", §4 Step 5) ---------------------------
  Status CreateSbspace(const std::string& name);
  Sbspace* FindSbspace(const std::string& name);

  // ---- the access method's associated catalog table (Table 5: records of
  // index id, fragment id, and BLOB handle) ------------------------------
  Status AmCatalogPut(const std::string& am, const std::string& index,
                      std::vector<uint8_t> record);
  Status AmCatalogGet(const std::string& am, const std::string& index,
                      std::vector<uint8_t>* record);
  Status AmCatalogDelete(const std::string& am, const std::string& index);

  // ---- sessions and execution ------------------------------------------
  // Sessions may execute concurrently, one thread per session (the net
  // front end drives exactly that shape). A single session is not
  // thread-safe: its statements must be issued from one thread at a time.
  ServerSession* CreateSession();
  // Rolls back any open transaction, ends the session's remaining memory
  // durations (on that session's allocator only), and destroys it. Closing
  // a session this server does not own is NotFound and mutates nothing.
  Status CloseSession(ServerSession* session);

  // Executes one statement.
  Status Execute(ServerSession* session, const std::string& sql,
                 ResultSet* out);
  // Executes a ;-separated script, stopping at the first error; `out`
  // holds the last statement's result. Per-statement durations are ended
  // after every statement, including the one that failed.
  Status ExecuteScript(ServerSession* session, const std::string& script,
                       ResultSet* out);

  // ---- prepared statements (wire-level entry points) --------------------
  // Same contracts as Execute (statement gate, slow-query retention,
  // per-statement duration teardown); these are what the kPrepare /
  // kExecutePrepared opcodes call, and the SQL-level PREPARE / EXECUTE
  // statements go through the same Exec* internals.
  Status Prepare(ServerSession* session, const std::string& name,
                 const std::string& sql, ResultSet* out);
  Status ExecutePrepared(ServerSession* session, const std::string& name,
                         const std::vector<sql::Literal>& params,
                         ResultSet* out);

  // The shared statement/plan cache (exposed for tests and tools).
  PlanCache& plan_cache() { return plan_cache_; }

  // True when `name` is one of the system views BuildSystemTable answers
  // to — those names are reserved (CREATE TABLE rejects them).
  static bool IsSystemViewName(const std::string& name);

  // Renders a value using opaque output support functions.
  std::string RenderValue(const Value& value) const;

  // Materializes a system catalog table (systables, sysams, sysopclasses,
  // sysindices, sysprocedures) on demand — the catalogs the CREATE
  // statements populate (paper §4 Step 6 names SYSAMS, SYSINDICES,
  // SYSFRAGMENTS). Returns nullptr for unknown names.
  std::unique_ptr<Table> BuildSystemTable(const std::string& name);

  // Every name BuildSystemTable answers to, for the unknown-sys_ error.
  static std::vector<std::string> SystemTableNames();

 private:
  // The server-side state of one opened virtual index (between the am_open
  // and am_close of a statement).
  struct OpenIndex {
    IndexDef* index = nullptr;
    AccessMethodDef* am = nullptr;
    MiAmTableDesc desc;
  };

  Status ExecuteStatement(ServerSession* session, const sql::Statement& stmt,
                          ResultSet* out);

  // Plan-cache fetch with hit/miss accounting.
  Status GetCachedPlan(const std::string& sql,
                       std::shared_ptr<CachedPlan>* out);

  Status ExecCreateTable(const sql::CreateTableStmt& stmt);
  Status ExecDropTable(const sql::DropTableStmt& stmt);
  Status ExecCreateFunction(const sql::CreateFunctionStmt& stmt);
  Status ExecCreateAccessMethod(const sql::CreateAccessMethodStmt& stmt);
  Status ExecCreateOpclass(const sql::CreateOpclassStmt& stmt);
  Status ExecCreateIndex(ServerSession* session,
                         const sql::CreateIndexStmt& stmt, ResultSet* out);
  Status ExecDropIndex(ServerSession* session, const sql::DropIndexStmt& stmt);
  Status ExecDropFunction(const sql::DropFunctionStmt& stmt);
  Status ExecDropAccessMethod(const sql::DropAccessMethodStmt& stmt);
  Status ExecDropOpclass(const sql::DropOpclassStmt& stmt);
  Status ExecInsert(ServerSession* session, const sql::InsertStmt& stmt,
                    ResultSet* out);
  Status ExecSelect(ServerSession* session, const sql::SelectStmt& stmt,
                    ResultSet* out);
  Status ExecDelete(ServerSession* session, const sql::DeleteStmt& stmt,
                    ResultSet* out);
  Status ExecUpdate(ServerSession* session, const sql::UpdateStmt& stmt,
                    ResultSet* out);
  Status ExecSet(ServerSession* session, const sql::SetStmt& stmt,
                 ResultSet* out);
  Status ExecCheckIndex(ServerSession* session,
                        const sql::CheckIndexStmt& stmt, ResultSet* out);
  Status ExecUpdateStatistics(ServerSession* session,
                              const sql::UpdateStatisticsStmt& stmt,
                              ResultSet* out);
  // Runs one index's open -> am_stats -> close sequence.
  Status RunIndexStats(ServerSession* session, IndexDef* index,
                       ResultSet* out);
  Status ExecDumpFlight(ResultSet* out);
  Status ExecDumpTrace(const sql::DumpTraceStmt& stmt, ResultSet* out);
  Status ExecDumpHeat(const sql::DumpHeatStmt& stmt, ResultSet* out);
  Status ExecExportMetrics(ResultSet* out);
  Status ExecLoad(ServerSession* session, const sql::LoadStmt& stmt,
                  ResultSet* out);
  Status ExecExplainProfile(ServerSession* session,
                            const sql::ExplainProfileStmt& stmt,
                            ResultSet* out);
  Status ExecExplainTrace(ServerSession* session,
                          const sql::ExplainTraceStmt& stmt, ResultSet* out);
  Status ExecPrepare(ServerSession* session, const sql::PrepareStmt& stmt,
                     ResultSet* out);
  Status ExecExecute(ServerSession* session, const sql::ExecuteStmt& stmt,
                     ResultSet* out);
  Status ExecDeallocate(ServerSession* session,
                        const sql::DeallocateStmt& stmt, ResultSet* out);
  // Shared insert path (heap insert + Fig. 6(a) index maintenance) used by
  // INSERT and LOAD.
  Status InsertRow(ServerSession* session, Table* table,
                   const std::string& table_name, Row row, ResultSet* out);
  Status ExecUnload(ServerSession* session, const sql::UnloadStmt& stmt,
                    ResultSet* out);

  // Literal -> Value coercion against a column/argument type.
  Status CoerceLiteral(const sql::Literal& literal, const TypeDesc& type,
                       Value* out) const;

  // Resolves a kParam literal against the session's current bindings;
  // passes every other literal through. `*out` points either at `literal`
  // or into the session's binding vector.
  Status ResolveParam(const ServerSession* session,
                      const sql::Literal& literal,
                      const sql::Literal** out) const;

  // WHERE evaluation on a row (UDF calls go through the UDR registry).
  Status EvaluateExpr(MiCallContext& ctx, const sql::Expr& expr,
                      const Table& table, const Row& row, Value* out);

  // Query planning: find an index whose opclass strategy functions cover
  // top-level AND conjuncts of `where` on the indexed column.
  struct Plan {
    bool use_index = false;
    IndexDef* index = nullptr;
    MiAmQualDesc qual;
    // Conjuncts not handled by the index (evaluated on fetched rows);
    // pointers into the WHERE tree.
    std::vector<const sql::Expr*> residual;
    double index_cost = 0.0;
    double seq_cost = 0.0;
  };
  // PlanQuery = ComputePlanMemo + BindPlanMemo. The memo carries the
  // parameter-independent decision (index, resolved strategy UDRs,
  // residual pointers, costs); binding re-coerces the constants, which is
  // where `?` parameters pick up their per-execution values. A session
  // executing a cached plan (active_plan() set) skips the compute step
  // after the first execution.
  Status PlanQuery(ServerSession* session, Table* table,
                   const sql::Expr* where, Plan* plan);
  Status ComputePlanMemo(ServerSession* session, Table* table,
                         const sql::Expr* where, PlanMemo* memo);
  Status BindPlanMemo(ServerSession* session, const PlanMemo& memo,
                      Plan* plan);

  // Purpose-function plumbing (Fig. 6 call sequences).
  Status OpenIndexDesc(ServerSession* session, IndexDef* index,
                       bool just_created, MiCallContext& ctx,
                       std::unique_ptr<OpenIndex>* out);
  Status CloseIndexDesc(MiCallContext& ctx, OpenIndex* open);
  Row KeyRowFor(const MiAmTableDesc& desc, const Row& base_row) const;

  ServerOptions options_;
  TypeRegistry types_;
  UdrRegistry udrs_;
  BladeLibraryRegistry blade_libraries_;
  MiMemory memory_;
  MiNamedMemory named_memory_;
  TraceFacility trace_;
  obs::MetricsRegistry metrics_;
  obs::Counter* vii_calls_[obs::kPurposeFnCount] = {};
  obs::Histogram* vii_us_[obs::kPurposeFnCount] = {};
  LockManager lock_manager_;
  TransactionManager txn_manager_;
  Catalog catalog_;
  std::atomic<int64_t> current_time_;
  std::map<std::string, std::unique_ptr<MemorySpace>> space_backends_;
  std::map<std::string, std::unique_ptr<Sbspace>> sbspaces_;
  mutable std::mutex am_catalog_mu_;
  std::map<std::string, std::vector<uint8_t>> am_catalog_;
  obs::SlowQueryLog slow_query_log_;
  obs::SpanTracer span_tracer_;
  obs::HeatTracker heat_tracker_;
  PlanCache plan_cache_;
  // Null when observability is off; bumped through MaybeAdd below.
  obs::Counter* plan_cache_hits_ = nullptr;
  obs::Counter* plan_cache_misses_ = nullptr;
  obs::Counter* plan_cache_invalidations_ = nullptr;
  mutable std::mutex index_stats_mu_;
  std::map<std::string, IndexStatsReport> index_stats_;  // lower-cased name
  std::vector<std::unique_ptr<ServerSession>> sessions_;
  std::mutex sessions_mu_;
  uint64_t next_session_id_ = 1;
  // Statement gate for concurrent sessions: DDL (and anything else that
  // mutates the catalog/type/UDR registries) runs exclusive; DML and
  // queries run shared, so read-only sessions execute genuinely in
  // parallel. Row/table/LO conflicts between concurrent DML statements
  // are the lock manager's job, not the gate's.
  mutable std::shared_mutex statement_gate_;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_SERVER_H_
