#include "server/catalog.h"

#include "common/strings.h"

namespace grtdb {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string key = ToLower(table->name());
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + table->name() + "'");
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

Table* Catalog::FindTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table '" + name + "'");
  }
  return Status::OK();
}

std::vector<const Table*> Catalog::AllTables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table.get());
  return out;
}

std::vector<const AccessMethodDef*> Catalog::AllAccessMethods() const {
  std::vector<const AccessMethodDef*> out;
  out.reserve(access_methods_.size());
  for (const auto& [key, am] : access_methods_) out.push_back(&am);
  return out;
}

std::vector<const OpClassDef*> Catalog::AllOpClasses() const {
  std::vector<const OpClassDef*> out;
  out.reserve(opclasses_.size());
  for (const auto& [key, opclass] : opclasses_) out.push_back(&opclass);
  return out;
}

Status Catalog::AddAccessMethod(AccessMethodDef am) {
  const std::string key = ToLower(am.name);
  if (access_methods_.count(key) != 0) {
    return Status::AlreadyExists("access method '" + am.name + "'");
  }
  access_methods_[key] = std::move(am);
  return Status::OK();
}

AccessMethodDef* Catalog::FindAccessMethod(const std::string& name) {
  auto it = access_methods_.find(ToLower(name));
  return it == access_methods_.end() ? nullptr : &it->second;
}

Status Catalog::DropAccessMethod(const std::string& name) {
  if (access_methods_.erase(ToLower(name)) == 0) {
    return Status::NotFound("access method '" + name + "'");
  }
  return Status::OK();
}

Status Catalog::DropOpClass(const std::string& name) {
  if (opclasses_.erase(ToLower(name)) == 0) {
    return Status::NotFound("operator class '" + name + "'");
  }
  return Status::OK();
}

std::vector<const OpClassDef*> Catalog::OpClassesOfAccessMethod(
    const std::string& am) const {
  std::vector<const OpClassDef*> out;
  for (const auto& [key, opclass] : opclasses_) {
    if (EqualsIgnoreCase(opclass.access_method, am)) out.push_back(&opclass);
  }
  return out;
}

Status Catalog::AddOpClass(OpClassDef opclass) {
  const std::string key = ToLower(opclass.name);
  if (opclasses_.count(key) != 0) {
    return Status::AlreadyExists("operator class '" + opclass.name + "'");
  }
  opclasses_[key] = std::move(opclass);
  return Status::OK();
}

const OpClassDef* Catalog::FindOpClass(const std::string& name) const {
  auto it = opclasses_.find(ToLower(name));
  return it == opclasses_.end() ? nullptr : &it->second;
}

Status Catalog::AddIndex(IndexDef index) {
  const std::string key = ToLower(index.name);
  if (indices_.count(key) != 0) {
    return Status::AlreadyExists("index '" + index.name + "'");
  }
  indices_[key] = std::move(index);
  return Status::OK();
}

IndexDef* Catalog::FindIndex(const std::string& name) {
  auto it = indices_.find(ToLower(name));
  return it == indices_.end() ? nullptr : &it->second;
}

Status Catalog::DropIndex(const std::string& name) {
  if (indices_.erase(ToLower(name)) == 0) {
    return Status::NotFound("index '" + name + "'");
  }
  return Status::OK();
}

std::vector<const IndexDef*> Catalog::AllIndexes() const {
  std::vector<const IndexDef*> out;
  out.reserve(indices_.size());
  for (const auto& [key, index] : indices_) out.push_back(&index);
  return out;
}

std::vector<IndexDef*> Catalog::IndexesOnTable(const std::string& table) {
  std::vector<IndexDef*> out;
  for (auto& [key, index] : indices_) {
    if (EqualsIgnoreCase(index.table, table)) out.push_back(&index);
  }
  return out;
}

}  // namespace grtdb
