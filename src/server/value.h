#ifndef GRTDB_SERVER_VALUE_H_
#define GRTDB_SERVER_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace grtdb {

// SQL type descriptor. Built-in base types plus opaque (user-defined)
// types, which carry the id assigned by the TypeRegistry.
struct TypeDesc {
  enum class Base {
    kInteger,
    kFloat,
    kText,
    kDate,
    kBoolean,
    kPointer,  // purpose-function registration only ("pointer" args)
    kOpaque,
  };

  Base base = Base::kInteger;
  uint32_t opaque_id = 0;

  static TypeDesc Integer() { return {Base::kInteger, 0}; }
  static TypeDesc Float() { return {Base::kFloat, 0}; }
  static TypeDesc Text() { return {Base::kText, 0}; }
  static TypeDesc Date() { return {Base::kDate, 0}; }
  static TypeDesc Boolean() { return {Base::kBoolean, 0}; }
  static TypeDesc Pointer() { return {Base::kPointer, 0}; }
  static TypeDesc Opaque(uint32_t id) { return {Base::kOpaque, id}; }

  friend bool operator==(const TypeDesc& a, const TypeDesc& b) {
    return a.base == b.base && a.opaque_id == b.opaque_id;
  }
};

// A SQL value: NULL or one of the base types. Opaque values hold the
// type's internal binary structure, interpreted only by the opaque type's
// support functions and the DataBlade code that owns it.
class Value {
 public:
  Value() : null_(true) {}

  static Value Null() { return Value(); }
  static Value Integer(int64_t v);
  static Value Float(double v);
  static Value Text(std::string v);
  static Value Date(int64_t day_number);
  static Value Boolean(bool v);
  static Value Opaque(uint32_t type_id, std::vector<uint8_t> bytes);

  bool is_null() const { return null_; }
  TypeDesc::Base base() const { return type_.base; }
  const TypeDesc& type() const { return type_; }

  int64_t integer() const { return integer_; }
  double real() const { return real_; }
  const std::string& text() const { return text_; }
  int64_t date() const { return integer_; }
  bool boolean() const { return integer_ != 0; }
  const std::vector<uint8_t>& opaque() const { return bytes_; }

  // Deep equality (same type, same contents). NULL equals nothing.
  bool Equals(const Value& other) const;

  // Three-way comparison for orderable types (integer/float/date/text).
  Status Compare(const Value& other, int* cmp) const;

  // Rendering of built-in types; opaque values render via the type's
  // output support function in the server (this fallback shows hex).
  std::string ToString() const;

 private:
  bool null_ = true;
  TypeDesc type_;
  int64_t integer_ = 0;  // integer / date / boolean
  double real_ = 0.0;
  std::string text_;
  std::vector<uint8_t> bytes_;
};

using Row = std::vector<Value>;

}  // namespace grtdb

#endif  // GRTDB_SERVER_VALUE_H_
