#ifndef GRTDB_SERVER_VII_H_
#define GRTDB_SERVER_VII_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/context.h"
#include "server/table.h"
#include "server/udr.h"
#include "server/value.h"

namespace grtdb {

struct IndexDef;

// ---------------------------------------------------------------------------
// The Virtual Index Interface: the descriptors and purpose-function
// signatures through which the server drives a developer-defined secondary
// access method (paper §4, Table 2, Table 5, Fig. 6).
// ---------------------------------------------------------------------------

// One single-column predicate of the qualification: f(column, constant),
// f(constant, column), or f(column) — the only shapes a qualification
// descriptor accommodates (paper §5.1).
struct QualTerm {
  const UdrDef* func = nullptr;  // the registered strategy function
  Value constant;                // absent for unary predicates
  bool unary = false;
  bool column_first = true;  // f(column, constant) vs f(constant, column)
};

// The qualification descriptor passed to am_beginscan: a boolean tree of
// strategy-function terms over the indexed column.
struct MiAmQualDesc {
  enum class Op { kTerm, kAnd, kOr };
  Op op = Op::kTerm;
  QualTerm term;                          // kTerm
  std::vector<MiAmQualDesc> children;     // kAnd / kOr

  // Renders e.g. "Overlaps(<col>, '...') AND Contains(...)". `render`
  // formats constants (the server passes its opaque-aware renderer).
  std::string ToString(
      const std::string& column_name,
      const std::function<std::string(const Value&)>& render = {}) const;
};

// Evaluates the qualification on one key value by invoking the registered
// strategy UDRs — what the server does when no index is used, and what a
// generic (non-hard-coded) access method does inside am_getnext.
Status EvaluateQualOnValue(MiCallContext& ctx, const MiAmQualDesc& qual,
                           const Value& key, bool* matches);

// The index descriptor (MI_AM_TABLE_DESC): everything a purpose function
// needs to know about the index instance it manipulates. The server fills
// everything except `user_data`, which belongs to the access method (the
// paper's purpose functions stash the Tree object pointer there).
struct MiAmTableDesc {
  const IndexDef* index = nullptr;
  Table* table = nullptr;
  std::vector<int> key_columns;      // base-table column numbers
  std::vector<TypeDesc> key_types;   // the row descriptor (MI_AM_ROW_DESC)
  bool just_created = false;  // true when am_open follows am_create directly
  void* user_data = nullptr;
};

// The scan descriptor (MI_AM_SCAN_DESC) passed to the scan purpose
// functions; carries the qualification and the am's scan state.
struct MiAmScanDesc {
  MiAmTableDesc* table_desc = nullptr;
  const MiAmQualDesc* qual = nullptr;
  void* user_data = nullptr;
};

// Purpose-function signatures (Table 2). All receive the call context; scan
// functions receive the scan descriptor, the rest the index descriptor.
using AmSimpleFn = std::function<Status(MiCallContext&, MiAmTableDesc*)>;
using AmScanFn = std::function<Status(MiCallContext&, MiAmScanDesc*)>;
// am_getnext returns one qualifying row per call: *has = false ends the
// scan; retrowid is the packed RecordId; retrow holds the indexed fields.
using AmGetNextFn = std::function<Status(MiCallContext&, MiAmScanDesc*,
                                         bool* has, uint64_t* retrowid,
                                         Row* retrow)>;
using AmModifyFn = std::function<Status(MiCallContext&, MiAmTableDesc*,
                                        const Row& keyrow, uint64_t rowid)>;
using AmUpdateFn = std::function<Status(
    MiCallContext&, MiAmTableDesc*, const Row& oldrow, uint64_t oldrowid,
    const Row& newrow, uint64_t newrowid)>;
using AmScanCostFn = std::function<Status(
    MiCallContext&, MiAmTableDesc*, const MiAmQualDesc*, double* cost)>;

// The resolved hook table of a secondary access method. Only am_getnext is
// mandatory (paper §4 Step 2); the server checks the others before calling.
struct PurposeFunctions {
  AmSimpleFn am_create;
  AmSimpleFn am_drop;
  AmSimpleFn am_open;
  AmSimpleFn am_close;
  AmScanFn am_beginscan;
  AmScanFn am_endscan;
  AmScanFn am_rescan;
  AmGetNextFn am_getnext;
  AmModifyFn am_insert;
  AmModifyFn am_delete;
  AmUpdateFn am_update;
  AmScanCostFn am_scancost;
  AmSimpleFn am_stats;
  AmSimpleFn am_check;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_VII_H_
