#ifndef GRTDB_SERVER_UDR_H_
#define GRTDB_SERVER_UDR_H_

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/context.h"
#include "server/value.h"

namespace grtdb {

// A user-defined routine body. UDRs receive the call context and the
// argument values; strategy/support functions of operator classes have this
// shape (e.g. Overlaps(GRT_TimeExtent_t*, GRT_TimeExtent_t*) -> boolean).
using UdrFunction =
    std::function<StatusOr<Value>(MiCallContext&, std::span<const Value>)>;

// A routine registered with CREATE FUNCTION. `symbol` is the std::any the
// blade library exported under the EXTERNAL NAME: a UdrFunction for
// SQL-callable routines, or one of the vii.h purpose-function types for
// access-method purpose functions (those are not SQL-callable).
struct UdrDef {
  std::string name;  // SQL name, original case
  std::vector<TypeDesc> arg_types;
  TypeDesc return_type;
  std::string external_name;
  // §5.2 associations the optimizer may use; empty when undeclared.
  std::string negator;
  std::string commutator;
  std::any symbol;
  // Cached cast of `symbol` when it is a plain UdrFunction (empty else).
  UdrFunction fn;
};

// The routine catalog (SYSPROCEDURES). Overload resolution is by name and
// arity with exact argument types preferred.
class UdrRegistry {
 public:
  UdrRegistry() = default;

  UdrRegistry(const UdrRegistry&) = delete;
  UdrRegistry& operator=(const UdrRegistry&) = delete;

  Status Register(UdrDef def);
  Status Unregister(const std::string& name);

  // Exact-name lookup with argument types; falls back to the unique
  // same-arity overload.
  const UdrDef* Find(const std::string& name,
                     std::span<const TypeDesc> arg_types) const;

  // Any overload with this name (registration checks, purpose lookup).
  const UdrDef* FindAny(const std::string& name) const;

  std::vector<std::string> Names() const;

  // Every registered overload (system catalog enumeration).
  std::vector<const UdrDef*> AllDefs() const;

 private:
  // lower-cased name -> overloads
  std::map<std::string, std::vector<UdrDef>> routines_;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_UDR_H_
