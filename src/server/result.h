#ifndef GRTDB_SERVER_RESULT_H_
#define GRTDB_SERVER_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grtdb {

// Result of one SQL statement. Rows are rendered to text with the types'
// output functions (opaque values via their type support functions).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  // Informational messages (e.g. the SET EXPLAIN plan text).
  std::vector<std::string> messages;
  uint64_t affected = 0;

  void Clear() {
    columns.clear();
    rows.clear();
    messages.clear();
    affected = 0;
  }

  // Simple fixed-width rendering for examples and debugging.
  std::string ToString() const;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_RESULT_H_
