#ifndef GRTDB_SERVER_INDEX_STATS_H_
#define GRTDB_SERVER_INDEX_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grtdb {

// Per-level structure numbers produced by an am_stats walker. Level 0 is
// the leaf level.
struct IndexLevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;
  double occupancy = 0.0;  // entries / (nodes * max_entries); 0 if unknown
  double total_area = 0.0;    // spatial blades only
  double overlap_area = 0.0;  // pairwise within-node overlap
};

// What one am_stats purpose call reports back through
// Server::ReportIndexStats. am_stats is an AmSimpleFn (no out-param in the
// paper's Fig. 6 signature), so this side channel — keyed by index name,
// refreshed by UPDATE STATISTICS, surfaced by sys_index_stats, and consulted
// by am_scancost for measured (not guessed) sizes — is how the walker's
// numbers reach SQL.
struct IndexStatsReport {
  std::string index;
  std::string access_method;
  uint64_t size = 0;     // logical entries per the tree's own counter
  uint32_t height = 0;
  uint64_t nodes = 0;
  uint64_t entries = 0;  // leaf entries counted by the walker
  double occupancy = 0.0;     // whole-tree entries / capacity
  uint64_t free_list = 0;     // recycled node slots in the store
  uint64_t dead_entries = 0;  // logically deleted but physically present
  // GR-tree only: now-relative leaf regions (TT-end = UC) and their total
  // area at the walk's current time (paper §3, §6).
  uint64_t growing_regions = 0;
  double growing_area = 0.0;
  int64_t computed_at = 0;  // simulation clock at walk time
  std::vector<IndexLevelStats> levels;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_INDEX_STATS_H_
