#ifndef GRTDB_SERVER_PURPOSE_CALL_H_
#define GRTDB_SERVER_PURPOSE_CALL_H_

#include <string>

#include "obs/fast_clock.h"
#include "obs/flight_recorder.h"
#include "obs/query_profile.h"
#include "obs/span_tracer.h"
#include "server/catalog.h"
#include "server/server.h"

namespace grtdb {

// RAII wrapper around one VII purpose-function invocation: logs the
// resolved name to the session's purpose log (the paper's Fig. 6 call
// record), counts the call in the per-statement QueryProfile, and — when
// server observability is on — times it into the vii.<fn>.us histogram and
// vii.<fn>.calls counter. Construct immediately before invoking the hook;
// the enclosed call is timed until the scope dies.
class PurposeCallScope {
 public:
  PurposeCallScope(Server* server, ServerSession* session,
                   const AccessMethodDef* am, obs::PurposeFn fn)
      : server_(server),
        session_(session),
        fn_(fn),
        span_(obs::SpanName::kPurpose, static_cast<uint64_t>(fn)) {
    const char* generic = obs::PurposeFnName(fn);
    auto it = am->purpose_names.find(generic);
    session_->LogPurposeCall(it != am->purpose_names.end() ? it->second
                                                           : generic);
    session_->profile().CountCall(fn);
    obs_timed_ = server_->observability_enabled();
    // The always-on flight recorder flags outliers even with observability
    // off, so the call is also timed whenever its slow threshold is armed.
    slow_ns_ = obs::FlightRecorder::Global().enabled()
                   ? obs::FlightRecorder::Global().slow_purpose_ns()
                   : 0;
    timed_ = obs_timed_ || slow_ns_ != 0;
    if (timed_) start_ticks_ = obs::Ticks();
  }

  ~PurposeCallScope() {
    if (!timed_) return;
    const uint64_t ns = obs::TicksToNs(obs::Ticks() - start_ticks_);
    if (slow_ns_ != 0 && ns >= slow_ns_) {
      obs::FlightRecorder::Global().RecordEvent(
          obs::FlightEvent::kSlowPurposeCall, static_cast<uint64_t>(fn_), ns);
    }
    if (!obs_timed_) return;
    session_->profile().AddCallTime(fn_, ns);
    if (obs::Counter* calls = server_->vii_call_counter(fn_)) calls->Add();
    if (obs::Histogram* us = server_->vii_time_histogram(fn_)) {
      us->Record(ns / 1000);
    }
  }

  PurposeCallScope(const PurposeCallScope&) = delete;
  PurposeCallScope& operator=(const PurposeCallScope&) = delete;

 private:
  Server* server_;
  ServerSession* session_;
  obs::PurposeFn fn_;
  bool timed_ = false;
  bool obs_timed_ = false;
  uint64_t slow_ns_ = 0;
  uint64_t start_ticks_ = 0;
  // Span per purpose call when the statement's request is sampled; a
  // thread-local read and a branch otherwise. Declared last so the span
  // closes (destructors run in reverse) after the accounting above.
  obs::SpanScope span_;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_PURPOSE_CALL_H_
