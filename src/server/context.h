#ifndef GRTDB_SERVER_CONTEXT_H_
#define GRTDB_SERVER_CONTEXT_H_

#include <cstdint>

namespace grtdb {

class Server;
class ServerSession;

// Execution context handed to every UDR and purpose-function invocation —
// the stand-in for the implicit MI_CONNECTION of the DataBlade API. Through
// `server` the blade reaches the DataBlade services it is allowed to use
// (duration memory, named memory, trace, sbspaces, the AM catalog table,
// transaction-end callbacks).
struct MiCallContext {
  Server* server = nullptr;
  ServerSession* session = nullptr;
  // The server clock value when the current statement started. Whether a
  // DataBlade uses this per-statement value or a per-transaction value it
  // stashed in named memory is the §5.4 design decision.
  int64_t statement_time = 0;
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_CONTEXT_H_
