#include "server/value.h"

#include <cstdio>

#include "common/date.h"

namespace grtdb {

Value Value::Integer(int64_t v) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Integer();
  value.integer_ = v;
  return value;
}

Value Value::Float(double v) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Float();
  value.real_ = v;
  return value;
}

Value Value::Text(std::string v) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Text();
  value.text_ = std::move(v);
  return value;
}

Value Value::Date(int64_t day_number) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Date();
  value.integer_ = day_number;
  return value;
}

Value Value::Boolean(bool v) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Boolean();
  value.integer_ = v ? 1 : 0;
  return value;
}

Value Value::Opaque(uint32_t type_id, std::vector<uint8_t> bytes) {
  Value value;
  value.null_ = false;
  value.type_ = TypeDesc::Opaque(type_id);
  value.bytes_ = std::move(bytes);
  return value;
}

bool Value::Equals(const Value& other) const {
  if (null_ || other.null_) return false;
  if (!(type_ == other.type_)) return false;
  switch (type_.base) {
    case TypeDesc::Base::kInteger:
    case TypeDesc::Base::kDate:
    case TypeDesc::Base::kBoolean:
      return integer_ == other.integer_;
    case TypeDesc::Base::kFloat:
      return real_ == other.real_;
    case TypeDesc::Base::kText:
      return text_ == other.text_;
    case TypeDesc::Base::kOpaque:
      return bytes_ == other.bytes_;
    case TypeDesc::Base::kPointer:
      return false;
  }
  return false;
}

Status Value::Compare(const Value& other, int* cmp) const {
  if (null_ || other.null_) {
    return Status::InvalidArgument("cannot compare NULL values");
  }
  auto three_way = [cmp](auto a, auto b) {
    *cmp = (a < b) ? -1 : (a > b ? 1 : 0);
    return Status::OK();
  };
  // Numeric cross-comparisons (integer vs float) are allowed.
  const bool numeric_a = type_.base == TypeDesc::Base::kInteger ||
                         type_.base == TypeDesc::Base::kFloat;
  const bool numeric_b = other.type_.base == TypeDesc::Base::kInteger ||
                         other.type_.base == TypeDesc::Base::kFloat;
  if (numeric_a && numeric_b) {
    const double a =
        type_.base == TypeDesc::Base::kFloat ? real_ : static_cast<double>(integer_);
    const double b = other.type_.base == TypeDesc::Base::kFloat
                         ? other.real_
                         : static_cast<double>(other.integer_);
    return three_way(a, b);
  }
  if (!(type_ == other.type_)) {
    return Status::InvalidArgument("cannot compare values of different types");
  }
  switch (type_.base) {
    case TypeDesc::Base::kDate:
    case TypeDesc::Base::kBoolean:
      return three_way(integer_, other.integer_);
    case TypeDesc::Base::kText:
      return three_way(text_, other.text_);
    default:
      return Status::InvalidArgument("type is not orderable");
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_.base) {
    case TypeDesc::Base::kInteger:
      return std::to_string(integer_);
    case TypeDesc::Base::kFloat: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    }
    case TypeDesc::Base::kText:
      return text_;
    case TypeDesc::Base::kDate:
      return FormatDate(integer_);
    case TypeDesc::Base::kBoolean:
      return integer_ != 0 ? "t" : "f";
    case TypeDesc::Base::kPointer:
      return "<pointer>";
    case TypeDesc::Base::kOpaque: {
      std::string out = "0x";
      for (uint8_t b : bytes_) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        out += buf;
      }
      return out;
    }
  }
  return "?";
}

}  // namespace grtdb
