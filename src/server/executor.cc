#include <algorithm>

#include "common/date.h"
#include "common/strings.h"
#include "server/purpose_call.h"
#include "server/server.h"

namespace grtdb {

namespace {

ResourceId TableResource(const std::string& name) {
  return ResourceId{ResourceKind::kTable,
                    std::hash<std::string>{}(ToLower(name))};
}

// Collects the top-level AND conjuncts of a WHERE tree.
void FlattenConjuncts(const sql::Expr* expr,
                      std::vector<const sql::Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == sql::Expr::Kind::kAnd) {
    for (const auto& child : expr->children) {
      FlattenConjuncts(child.get(), out);
    }
    return;
  }
  out->push_back(expr);
}

}  // namespace

Status Server::CoerceLiteral(const sql::Literal& literal,
                             const TypeDesc& type, Value* out) const {
  if (literal.kind == sql::Literal::Kind::kParam) {
    // Callers resolve parameters (ResolveParam) before coercing; a kParam
    // arriving here means a '?' outside a prepared execution.
    return Status::InvalidArgument(
        "'?' parameters are only valid in a prepared statement executed "
        "with EXECUTE");
  }
  switch (type.base) {
    case TypeDesc::Base::kInteger:
      if (literal.kind == sql::Literal::Kind::kInteger) {
        *out = Value::Integer(literal.integer);
        return Status::OK();
      }
      break;
    case TypeDesc::Base::kFloat:
      if (literal.kind == sql::Literal::Kind::kFloat) {
        *out = Value::Float(literal.real);
        return Status::OK();
      }
      if (literal.kind == sql::Literal::Kind::kInteger) {
        *out = Value::Float(static_cast<double>(literal.integer));
        return Status::OK();
      }
      break;
    case TypeDesc::Base::kText:
      if (literal.kind == sql::Literal::Kind::kString) {
        *out = Value::Text(literal.text);
        return Status::OK();
      }
      break;
    case TypeDesc::Base::kDate:
      if (literal.kind == sql::Literal::Kind::kString) {
        int64_t day = 0;
        GRTDB_RETURN_IF_ERROR(ParseDate(literal.text, &day));
        *out = Value::Date(day);
        return Status::OK();
      }
      if (literal.kind == sql::Literal::Kind::kInteger) {
        *out = Value::Date(literal.integer);
        return Status::OK();
      }
      break;
    case TypeDesc::Base::kBoolean:
      if (literal.kind == sql::Literal::Kind::kString) {
        if (EqualsIgnoreCase(literal.text, "t") ||
            EqualsIgnoreCase(literal.text, "true")) {
          *out = Value::Boolean(true);
          return Status::OK();
        }
        if (EqualsIgnoreCase(literal.text, "f") ||
            EqualsIgnoreCase(literal.text, "false")) {
          *out = Value::Boolean(false);
          return Status::OK();
        }
      }
      break;
    case TypeDesc::Base::kPointer:
      break;
    case TypeDesc::Base::kOpaque: {
      // Opaque values enter SQL as quoted text; the type's input support
      // function parses them (paper §6.3).
      if (literal.kind == sql::Literal::Kind::kString) {
        const OpaqueType* opaque = types_.FindOpaque(type.opaque_id);
        if (opaque == nullptr) {
          return Status::Corruption("unregistered opaque type id");
        }
        std::vector<uint8_t> bytes;
        GRTDB_RETURN_IF_ERROR(opaque->input(literal.text, &bytes));
        *out = Value::Opaque(type.opaque_id, std::move(bytes));
        return Status::OK();
      }
      break;
    }
  }
  if (literal.kind == sql::Literal::Kind::kNull) {
    *out = Value::Null();
    return Status::OK();
  }
  return Status::InvalidArgument("cannot coerce literal to " +
                                 types_.NameOf(type));
}

Status Server::ResolveParam(const ServerSession* session,
                            const sql::Literal& literal,
                            const sql::Literal** out) const {
  if (literal.kind != sql::Literal::Kind::kParam) {
    *out = &literal;
    return Status::OK();
  }
  const std::vector<sql::Literal>* params =
      session == nullptr ? nullptr : session->bound_params();
  if (params == nullptr || literal.param_index >= params->size()) {
    return Status::InvalidArgument(
        "parameter ?" + std::to_string(literal.param_index + 1) +
        " is not bound; '?' placeholders only execute through EXECUTE");
  }
  *out = &(*params)[literal.param_index];
  return Status::OK();
}

Status Server::EvaluateExpr(MiCallContext& ctx, const sql::Expr& expr,
                            const Table& table, const Row& row, Value* out) {
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral: {
      // A '?' in a residual conjunct (or any expression an index did not
      // absorb) resolves against the executing session's bindings.
      const sql::Literal* literal = &expr.literal;
      GRTDB_RETURN_IF_ERROR(ResolveParam(ctx.session, *literal, &literal));
      switch (literal->kind) {
        case sql::Literal::Kind::kNull:
          *out = Value::Null();
          return Status::OK();
        case sql::Literal::Kind::kInteger:
          *out = Value::Integer(literal->integer);
          return Status::OK();
        case sql::Literal::Kind::kFloat:
          *out = Value::Float(literal->real);
          return Status::OK();
        case sql::Literal::Kind::kString:
          *out = Value::Text(literal->text);
          return Status::OK();
        case sql::Literal::Kind::kParam:
          break;  // a binding is never itself a parameter
      }
      return Status::Internal("bad literal");
    }
    case sql::Expr::Kind::kColumn: {
      const int index = table.ColumnIndex(expr.column);
      if (index < 0) {
        return Status::NotFound("column '" + expr.column + "'");
      }
      *out = row[static_cast<size_t>(index)];
      return Status::OK();
    }
    case sql::Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        Value value;
        GRTDB_RETURN_IF_ERROR(EvaluateExpr(ctx, *child, table, row, &value));
        args.push_back(std::move(value));
      }
      // Coerce text literals toward the type of a non-text sibling (dates
      // and opaque values are written as strings in SQL).
      TypeDesc target;
      bool has_target = false;
      for (const Value& value : args) {
        if (!value.is_null() && value.base() != TypeDesc::Base::kText) {
          target = value.type();
          has_target = true;
          break;
        }
      }
      if (has_target) {
        for (Value& value : args) {
          if (!value.is_null() && value.base() == TypeDesc::Base::kText &&
              !(target == value.type())) {
            sql::Literal literal;
            literal.kind = sql::Literal::Kind::kString;
            literal.text = value.text();
            Value coerced;
            if (CoerceLiteral(literal, target, &coerced).ok()) {
              value = std::move(coerced);
            }
          }
        }
      }
      std::vector<TypeDesc> arg_types;
      arg_types.reserve(args.size());
      for (const Value& value : args) arg_types.push_back(value.type());
      const UdrDef* udr = udrs_.Find(expr.func, arg_types);
      if (udr == nullptr || !udr->fn) {
        return Status::NotFound("no function '" + expr.func +
                                "' matching the argument types");
      }
      StatusOr<Value> result = udr->fn(ctx, args);
      if (!result.ok()) return result.status();
      *out = std::move(result).value();
      return Status::OK();
    }
    case sql::Expr::Kind::kNot: {
      Value value;
      GRTDB_RETURN_IF_ERROR(
          EvaluateExpr(ctx, *expr.children[0], table, row, &value));
      if (value.base() != TypeDesc::Base::kBoolean) {
        return Status::InvalidArgument("NOT requires a boolean");
      }
      *out = Value::Boolean(!value.boolean());
      return Status::OK();
    }
    case sql::Expr::Kind::kAnd:
    case sql::Expr::Kind::kOr: {
      const bool is_and = expr.kind == sql::Expr::Kind::kAnd;
      for (const auto& child : expr.children) {
        Value value;
        GRTDB_RETURN_IF_ERROR(
            EvaluateExpr(ctx, *child, table, row, &value));
        if (value.base() != TypeDesc::Base::kBoolean) {
          return Status::InvalidArgument("AND/OR requires booleans");
        }
        if (is_and && !value.boolean()) {
          *out = Value::Boolean(false);
          return Status::OK();
        }
        if (!is_and && value.boolean()) {
          *out = Value::Boolean(true);
          return Status::OK();
        }
      }
      *out = Value::Boolean(is_and);
      return Status::OK();
    }
    case sql::Expr::Kind::kCompare: {
      Value left;
      Value right;
      GRTDB_RETURN_IF_ERROR(
          EvaluateExpr(ctx, *expr.children[0], table, row, &left));
      GRTDB_RETURN_IF_ERROR(
          EvaluateExpr(ctx, *expr.children[1], table, row, &right));
      // Text vs typed-value coercion (dates written as strings).
      auto coerce_side = [&](Value& text_side, const Value& typed_side) {
        if (!text_side.is_null() && !typed_side.is_null() &&
            text_side.base() == TypeDesc::Base::kText &&
            typed_side.base() != TypeDesc::Base::kText) {
          sql::Literal literal;
          literal.kind = sql::Literal::Kind::kString;
          literal.text = text_side.text();
          Value coerced;
          if (CoerceLiteral(literal, typed_side.type(), &coerced).ok()) {
            text_side = std::move(coerced);
          }
        }
      };
      coerce_side(left, right);
      coerce_side(right, left);
      if (left.is_null() || right.is_null()) {
        *out = Value::Boolean(false);
        return Status::OK();
      }
      if (expr.cmp == sql::Expr::CmpOp::kEq ||
          expr.cmp == sql::Expr::CmpOp::kNe) {
        // Equality falls back to deep equality for non-orderable types.
        int cmp = 0;
        bool equal;
        if (left.Compare(right, &cmp).ok()) {
          equal = cmp == 0;
        } else {
          equal = left.Equals(right);
        }
        *out = Value::Boolean(expr.cmp == sql::Expr::CmpOp::kEq ? equal
                                                                : !equal);
        return Status::OK();
      }
      int cmp = 0;
      GRTDB_RETURN_IF_ERROR(left.Compare(right, &cmp));
      bool result = false;
      switch (expr.cmp) {
        case sql::Expr::CmpOp::kLt:
          result = cmp < 0;
          break;
        case sql::Expr::CmpOp::kLe:
          result = cmp <= 0;
          break;
        case sql::Expr::CmpOp::kGt:
          result = cmp > 0;
          break;
        case sql::Expr::CmpOp::kGe:
          result = cmp >= 0;
          break;
        default:
          break;
      }
      *out = Value::Boolean(result);
      return Status::OK();
    }
  }
  return Status::Internal("bad expression");
}

Status Server::ComputePlanMemo(ServerSession* session, Table* table,
                               const sql::Expr* where, PlanMemo* memo) {
  memo->use_index = false;
  memo->index = nullptr;
  memo->terms.clear();
  memo->residual.clear();
  memo->index_cost = 0.0;
  memo->seq_cost = static_cast<double>(table->row_count());
  if (where == nullptr) return Status::OK();

  std::vector<const sql::Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  double best_cost = 0.0;
  for (IndexDef* index : catalog_.IndexesOnTable(table->name())) {
    const OpClassDef* opclass = catalog_.FindOpClass(index->opclasses[0]);
    if (opclass == nullptr) continue;
    const std::string& key_column = index->columns[0];
    const TypeDesc& key_type = index->key_types[0];

    auto is_strategy = [&](const std::string& name) {
      for (const std::string& strategy : opclass->strategies) {
        if (EqualsIgnoreCase(strategy, name)) return true;
      }
      return false;
    };

    MiAmQualDesc qual;
    std::vector<MiAmQualDesc> terms;
    std::vector<PlanTermMemo> term_memos;
    std::vector<const sql::Expr*> residual;
    for (const sql::Expr* conjunct : conjuncts) {
      bool matched = false;
      // NOT f(...) qualifies when f declares a NEGATOR that is itself a
      // strategy function (§5.2: that and COMMUTATOR are the only
      // associations Informix lets a function declare).
      const sql::Expr* call = conjunct;
      bool negated = false;
      if (call->kind == sql::Expr::Kind::kNot &&
          call->children.size() == 1 &&
          call->children[0]->kind == sql::Expr::Kind::kCall) {
        call = call->children[0].get();
        negated = true;
      }
      if (call->kind == sql::Expr::Kind::kCall) {
        // Qualification shapes (§5.1): f(col, const), f(const, col), f(col).
        QualTerm term;
        const sql::Expr* literal_expr = nullptr;
        bool shape_ok = false;
        if (call->children.size() == 2) {
          const sql::Expr* first = call->children[0].get();
          const sql::Expr* second = call->children[1].get();
          const sql::Expr* column_expr = nullptr;
          if (first->kind == sql::Expr::Kind::kColumn &&
              second->kind == sql::Expr::Kind::kLiteral) {
            column_expr = first;
            literal_expr = second;
            term.column_first = true;
          } else if (first->kind == sql::Expr::Kind::kLiteral &&
                     second->kind == sql::Expr::Kind::kColumn) {
            column_expr = second;
            literal_expr = first;
            term.column_first = false;
          }
          if (column_expr != nullptr &&
              EqualsIgnoreCase(column_expr->column, key_column)) {
            // A '?' constant resolves against the session's bindings here;
            // an unbound or uncoercible one sends the conjunct to the
            // residual, same as any other non-indexable constant.
            const sql::Literal* literal = nullptr;
            Value constant;
            if (ResolveParam(session, literal_expr->literal, &literal).ok() &&
                CoerceLiteral(*literal, key_type, &constant).ok()) {
              term.constant = std::move(constant);
              shape_ok = true;
            }
          }
        } else if (call->children.size() == 1 &&
                   call->children[0]->kind == sql::Expr::Kind::kColumn &&
                   EqualsIgnoreCase(call->children[0]->column, key_column)) {
          term.unary = true;
          shape_ok = true;
        }
        if (shape_ok) {
          const TypeDesc pair_types[2] = {key_type, key_type};
          const TypeDesc single_type[1] = {key_type};
          auto find_udr = [&](const std::string& name) {
            return term.unary
                       ? udrs_.Find(name,
                                    std::span<const TypeDesc>(single_type, 1))
                       : udrs_.Find(name,
                                    std::span<const TypeDesc>(pair_types, 2));
          };
          const UdrDef* udr = find_udr(call->func);
          const UdrDef* effective = nullptr;
          bool column_first = term.column_first;
          if (udr != nullptr) {
            if (negated) {
              if (!udr->negator.empty() && is_strategy(udr->negator)) {
                effective = find_udr(udr->negator);
              }
            } else if (is_strategy(udr->name)) {
              effective = udr;
            } else if (!term.unary && !term.column_first &&
                       !udr->commutator.empty() &&
                       is_strategy(udr->commutator)) {
              // f(const, col) with a commutator that is a strategy:
              // rewrite to commutator(col, const).
              effective = find_udr(udr->commutator);
              column_first = true;
            }
          }
          if (effective != nullptr) {
            term.func = effective;
            term.column_first = column_first;
            PlanTermMemo term_memo;
            term_memo.func = effective;
            term_memo.literal_expr = term.unary ? nullptr : literal_expr;
            term_memo.column_first = column_first;
            term_memo.unary = term.unary;
            term_memos.push_back(term_memo);
            MiAmQualDesc term_desc;
            term_desc.op = MiAmQualDesc::Op::kTerm;
            term_desc.term = std::move(term);
            terms.push_back(std::move(term_desc));
            matched = true;
          }
        }
      }
      if (!matched) residual.push_back(conjunct);
    }
    if (terms.empty()) continue;
    if (terms.size() == 1) {
      qual = std::move(terms[0]);
    } else {
      qual.op = MiAmQualDesc::Op::kAnd;
      qual.children = std::move(terms);
    }

    // Cost the candidate with am_scancost when the AM provides it.
    double cost = memo->seq_cost * 0.5;
    AccessMethodDef* am = catalog_.FindAccessMethod(index->access_method);
    if (am != nullptr && am->hooks.am_scancost) {
      MiCallContext ctx{this, session, current_time_};
      std::unique_ptr<OpenIndex> open;
      Status status = OpenIndexDesc(session, index, false, ctx, &open);
      if (status.ok()) {
        {
          PurposeCallScope call(this, session, am,
                                obs::PurposeFn::kAmScanCost);
          status = am->hooks.am_scancost(ctx, &open->desc, &qual, &cost);
        }
        Status close = CloseIndexDesc(ctx, open.get());
        if (status.ok()) status = close;
      }
      if (!status.ok()) return status;
    }
    if (!memo->use_index || cost < best_cost) {
      memo->use_index = true;
      memo->index = index;
      memo->terms = std::move(term_memos);
      memo->residual = std::move(residual);
      memo->index_cost = cost;
      best_cost = cost;
    }
  }
  if (memo->use_index && memo->index_cost >= memo->seq_cost &&
      memo->seq_cost > 0) {
    // The optimizer prefers the sequential scan when it is cheaper.
    memo->use_index = false;
  }
  if (!memo->use_index) {
    memo->index = nullptr;
    memo->terms.clear();
    memo->residual.clear();
  }
  return Status::OK();
}

Status Server::BindPlanMemo(ServerSession* session, const PlanMemo& memo,
                            Plan* plan) {
  plan->use_index = memo.use_index;
  plan->index = memo.index;
  plan->qual = MiAmQualDesc{};
  plan->residual = memo.residual;
  plan->index_cost = memo.index_cost;
  plan->seq_cost = memo.seq_cost;
  if (!memo.use_index) return Status::OK();
  // Rebuild the qualification descriptor from the memoized strategy
  // bindings, re-coercing each constant: this is where a '?' parameter
  // picks up this execution's value without re-running the planner.
  const TypeDesc& key_type = memo.index->key_types[0];
  std::vector<MiAmQualDesc> terms;
  terms.reserve(memo.terms.size());
  for (const PlanTermMemo& term_memo : memo.terms) {
    QualTerm term;
    term.func = term_memo.func;
    term.column_first = term_memo.column_first;
    term.unary = term_memo.unary;
    if (!term_memo.unary) {
      const sql::Literal* literal = nullptr;
      GRTDB_RETURN_IF_ERROR(
          ResolveParam(session, term_memo.literal_expr->literal, &literal));
      GRTDB_RETURN_IF_ERROR(CoerceLiteral(*literal, key_type, &term.constant));
    }
    MiAmQualDesc term_desc;
    term_desc.op = MiAmQualDesc::Op::kTerm;
    term_desc.term = std::move(term);
    terms.push_back(std::move(term_desc));
  }
  if (terms.size() == 1) {
    plan->qual = std::move(terms[0]);
  } else {
    plan->qual.op = MiAmQualDesc::Op::kAnd;
    plan->qual.children = std::move(terms);
  }
  return Status::OK();
}

Status Server::PlanQuery(ServerSession* session, Table* table,
                         const sql::Expr* where, Plan* plan) {
  // a = 1 when a cached memo was reused, 0 when this call planned afresh.
  obs::SpanScope plan_span(obs::SpanName::kPlan);
  CachedPlan* cached = session == nullptr ? nullptr : session->active_plan();
  if (cached != nullptr) {
    PlanMemo memo;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(cached->memo_mu);
      if (cached->planned) {
        memo = cached->memo;
        have = true;
      }
    }
    if (!have) {
      // Compute WITHOUT holding memo_mu: planning calls am_scancost, which
      // opens the index and may take locks — nothing to hold a mutex
      // across. Racing first executions compute independently; the first
      // store wins and the computation is deterministic for the catalog
      // the shared statement gate holds still.
      GRTDB_RETURN_IF_ERROR(ComputePlanMemo(session, table, where, &memo));
      std::lock_guard<std::mutex> lock(cached->memo_mu);
      if (!cached->planned) {
        cached->memo = memo;
        cached->planned = true;
      } else {
        memo = cached->memo;
      }
    }
    plan_span.set_operands(have ? 1 : 0, 0);
    if (BindPlanMemo(session, memo, plan).ok()) return Status::OK();
    // This execution's parameter would not coerce to the memoized key
    // type; fall through to a fresh plan (not stored), which routes the
    // conjunct to the residual exactly like the text path would.
  }
  PlanMemo memo;
  GRTDB_RETURN_IF_ERROR(ComputePlanMemo(session, table, where, &memo));
  return BindPlanMemo(session, memo, plan);
}

Status Server::ExecInsert(ServerSession* session, const sql::InsertStmt& stmt,
                          ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  if (table == nullptr) {
    if (IsSystemViewName(stmt.table)) {
      return Status::InvalidArgument("system view '" + ToLower(stmt.table) +
                                     "' is read-only");
    }
    return Status::NotFound("table '" + stmt.table + "'");
  }
  if (stmt.values.size() != table->columns().size()) {
    return Status::InvalidArgument("INSERT arity mismatch");
  }
  Row row;
  row.reserve(stmt.values.size());
  for (size_t i = 0; i < stmt.values.size(); ++i) {
    const sql::Literal* literal = nullptr;
    GRTDB_RETURN_IF_ERROR(ResolveParam(session, stmt.values[i], &literal));
    Value value;
    GRTDB_RETURN_IF_ERROR(
        CoerceLiteral(*literal, table->columns()[i].type, &value));
    row.push_back(std::move(value));
  }
  return InsertRow(session, table, stmt.table, std::move(row), out);
}

Status Server::InsertRow(ServerSession* session, Table* table,
                         const std::string& table_name, Row row,
                         ResultSet* out) {
  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  const TxnId txn = session->txn_session().current_txn()->id();
  MiCallContext ctx{this, session, current_time_};

  Status status =
      lock_manager_.Acquire(txn, TableResource(table_name),
                            LockMode::kExclusive);
  RecordId id;
  if (status.ok()) status = table->Insert(std::move(row), &id);
  if (status.ok()) {
    // Fig. 6(a): am_open -> am_insert -> am_close for each virtual index.
    for (IndexDef* index : catalog_.IndexesOnTable(table_name)) {
      std::unique_ptr<OpenIndex> open;
      status = OpenIndexDesc(session, index, false, ctx, &open);
      if (!status.ok()) break;
      if (open->am->hooks.am_insert) {
        Row base_row;
        status = table->Get(id, &base_row);
        if (status.ok()) {
          Row key_row = KeyRowFor(open->desc, base_row);
          PurposeCallScope call(this, session, open->am,
                                obs::PurposeFn::kAmInsert);
          status =
              open->am->hooks.am_insert(ctx, &open->desc, key_row, id.Pack());
        }
      }
      Status close = CloseIndexDesc(ctx, open.get());
      if (status.ok()) status = close;
      if (!status.ok()) break;
    }
  }
  if (status.ok()) out->affected += 1;

  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

Status Server::ExecSelect(ServerSession* session, const sql::SelectStmt& stmt,
                          ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  std::unique_ptr<Table> system_table;
  if (table == nullptr) {
    // System catalog tables materialize on demand and are read-only.
    system_table = BuildSystemTable(stmt.table);
    table = system_table.get();
  }
  if (table == nullptr) {
    // A sys-prefixed name that BuildSystemTable doesn't answer to is almost
    // certainly a typo'd system view; list what exists instead of the
    // generic no-such-table error.
    if (EqualsIgnoreCase(stmt.table.substr(0, 3), "sys")) {
      return Status::NotFound("no system view '" + stmt.table +
                              "'; available system views: " +
                              Join(SystemTableNames(), ", "));
    }
    return Status::NotFound("table '" + stmt.table + "'");
  }
  // Resolve the projection.
  std::vector<int> projection;
  if (stmt.star) {
    for (size_t i = 0; i < table->columns().size(); ++i) {
      projection.push_back(static_cast<int>(i));
      out->columns.push_back(table->columns()[i].name);
    }
  } else if (!stmt.count_star) {
    for (const std::string& column : stmt.columns) {
      const int index = table->ColumnIndex(column);
      if (index < 0) {
        return Status::NotFound("column '" + column + "'");
      }
      projection.push_back(index);
      out->columns.push_back(table->columns()[static_cast<size_t>(index)].name);
    }
  } else {
    out->columns.push_back("count");
  }

  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  const TxnId txn = session->txn_session().current_txn()->id();
  MiCallContext ctx{this, session, current_time_};

  Status status = lock_manager_.Acquire(txn, TableResource(stmt.table),
                                        LockMode::kShared);
  uint64_t count = 0;
  auto emit = [&](const Row& row) -> Status {
    ++count;
    ++session->profile().rows_returned;
    if (stmt.count_star) return Status::OK();
    std::vector<std::string> rendered;
    rendered.reserve(projection.size());
    for (int column : projection) {
      rendered.push_back(RenderValue(row[static_cast<size_t>(column)]));
    }
    out->rows.push_back(std::move(rendered));
    return Status::OK();
  };

  Plan plan;
  if (status.ok()) status = PlanQuery(session, table, stmt.where.get(), &plan);
  if (status.ok() && session->explain()) {
    if (plan.use_index) {
      out->messages.push_back(
          "PLAN: index scan on " + plan.index->name + " using " +
          plan.index->access_method + ", qual: " +
          plan.qual.ToString(plan.index->columns[0],
                             [this](const Value& v) {
                               return RenderValue(v);
                             }) +
          ", cost " + std::to_string(plan.index_cost) + " (seq " +
          std::to_string(plan.seq_cost) + ")");
    } else {
      out->messages.push_back("PLAN: sequential scan");
    }
  }

  if (status.ok() && plan.use_index) {
    // Fig. 6(b): am_open -> am_beginscan -> am_getnext* -> am_endscan ->
    // am_close.
    std::unique_ptr<OpenIndex> open;
    status = OpenIndexDesc(session, plan.index, false, ctx, &open);
    if (status.ok()) {
      MiAmScanDesc scan;
      scan.table_desc = &open->desc;
      scan.qual = &plan.qual;
      if (open->am->hooks.am_beginscan) {
        PurposeCallScope call(this, session, open->am,
                              obs::PurposeFn::kAmBeginScan);
        status = open->am->hooks.am_beginscan(ctx, &scan);
      }
      while (status.ok()) {
        bool has = false;
        uint64_t retrowid = 0;
        Row retrow;
        {
          PurposeCallScope call(this, session, open->am,
                                obs::PurposeFn::kAmGetNext);
          status = open->am->hooks.am_getnext(ctx, &scan, &has, &retrowid,
                                              &retrow);
        }
        if (!status.ok() || !has) break;
        Row base_row;
        status = table->Get(RecordId::Unpack(retrowid), &base_row);
        if (!status.ok()) break;
        ++session->profile().rows_scanned;
        bool matches = true;
        for (const sql::Expr* residual : plan.residual) {
          Value value;
          status = EvaluateExpr(ctx, *residual, *table, base_row, &value);
          if (!status.ok()) break;
          if (value.base() != TypeDesc::Base::kBoolean || !value.boolean()) {
            matches = false;
            break;
          }
        }
        if (!status.ok()) break;
        if (matches) {
          status = emit(base_row);
          if (!status.ok()) break;
        }
      }
      if (open->am->hooks.am_endscan) {
        PurposeCallScope call(this, session, open->am,
                              obs::PurposeFn::kAmEndScan);
        Status end = open->am->hooks.am_endscan(ctx, &scan);
        if (status.ok()) status = end;
      }
      Status close = CloseIndexDesc(ctx, open.get());
      if (status.ok()) status = close;
    }
  } else if (status.ok()) {
    Status scan_status = table->Scan([&](RecordId, const Row& row) {
      ++session->profile().rows_scanned;
      if (stmt.where != nullptr) {
        Value value;
        Status eval = EvaluateExpr(ctx, *stmt.where, *table, row, &value);
        if (!eval.ok()) {
          status = eval;
          return false;
        }
        if (value.base() != TypeDesc::Base::kBoolean || !value.boolean()) {
          return true;
        }
      }
      Status emit_status = emit(row);
      if (!emit_status.ok()) {
        status = emit_status;
        return false;
      }
      return true;
    });
    if (status.ok()) status = scan_status;
  }

  if (status.ok() && stmt.count_star) {
    out->rows.push_back({std::to_string(count)});
  }
  if (status.ok()) out->affected = count;

  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

Status Server::ExecDelete(ServerSession* session, const sql::DeleteStmt& stmt,
                          ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  if (table == nullptr) {
    if (IsSystemViewName(stmt.table)) {
      return Status::InvalidArgument("system view '" + ToLower(stmt.table) +
                                     "' is read-only");
    }
    return Status::NotFound("table '" + stmt.table + "'");
  }
  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  const TxnId txn = session->txn_session().current_txn()->id();
  MiCallContext ctx{this, session, current_time_};

  Status status = lock_manager_.Acquire(txn, TableResource(stmt.table),
                                        LockMode::kExclusive);

  // Open every index on the table once for the statement.
  std::vector<std::unique_ptr<OpenIndex>> opens;
  if (status.ok()) {
    for (IndexDef* index : catalog_.IndexesOnTable(stmt.table)) {
      std::unique_ptr<OpenIndex> open;
      status = OpenIndexDesc(session, index, false, ctx, &open);
      if (!status.ok()) break;
      opens.push_back(std::move(open));
    }
  }

  auto delete_row = [&](RecordId id, const Row& row) -> Status {
    GRTDB_RETURN_IF_ERROR(table->Delete(id));
    for (auto& open : opens) {
      if (!open->am->hooks.am_delete) continue;
      Row key_row = KeyRowFor(open->desc, row);
      PurposeCallScope call(this, session, open->am,
                            obs::PurposeFn::kAmDelete);
      GRTDB_RETURN_IF_ERROR(
          open->am->hooks.am_delete(ctx, &open->desc, key_row, id.Pack()));
    }
    ++out->affected;
    return Status::OK();
  };

  Plan plan;
  if (status.ok()) status = PlanQuery(session, table, stmt.where.get(), &plan);
  if (status.ok() && session->explain()) {
    out->messages.push_back(plan.use_index
                                ? "PLAN: index scan on " + plan.index->name
                                : "PLAN: sequential scan");
  }

  if (status.ok() && plan.use_index) {
    // §5.5: retrieve qualifying entries with am_getnext, delete one by one.
    OpenIndex* scan_open = nullptr;
    for (auto& open : opens) {
      if (open->index == plan.index) scan_open = open.get();
    }
    if (scan_open == nullptr) {
      status = Status::Internal("scan index not opened");
    } else {
      MiAmScanDesc scan;
      scan.table_desc = &scan_open->desc;
      scan.qual = &plan.qual;
      if (scan_open->am->hooks.am_beginscan) {
        PurposeCallScope call(this, session, scan_open->am,
                              obs::PurposeFn::kAmBeginScan);
        status = scan_open->am->hooks.am_beginscan(ctx, &scan);
      }
      while (status.ok()) {
        bool has = false;
        uint64_t retrowid = 0;
        Row retrow;
        {
          PurposeCallScope call(this, session, scan_open->am,
                                obs::PurposeFn::kAmGetNext);
          status = scan_open->am->hooks.am_getnext(ctx, &scan, &has,
                                                   &retrowid, &retrow);
        }
        if (!status.ok() || !has) break;
        const RecordId id = RecordId::Unpack(retrowid);
        Row base_row;
        status = table->Get(id, &base_row);
        if (!status.ok()) break;
        ++session->profile().rows_scanned;
        bool matches = true;
        for (const sql::Expr* residual : plan.residual) {
          Value value;
          status = EvaluateExpr(ctx, *residual, *table, base_row, &value);
          if (!status.ok()) break;
          if (value.base() != TypeDesc::Base::kBoolean || !value.boolean()) {
            matches = false;
            break;
          }
        }
        if (!status.ok()) break;
        if (matches) {
          status = delete_row(id, base_row);
          if (!status.ok()) break;
        }
      }
      if (scan_open->am->hooks.am_endscan) {
        PurposeCallScope call(this, session, scan_open->am,
                              obs::PurposeFn::kAmEndScan);
        Status end = scan_open->am->hooks.am_endscan(ctx, &scan);
        if (status.ok()) status = end;
      }
    }
  } else if (status.ok()) {
    // Sequential scan: collect matches first, then delete.
    std::vector<std::pair<RecordId, Row>> matches;
    Status scan_status = table->Scan([&](RecordId id, const Row& row) {
      ++session->profile().rows_scanned;
      if (stmt.where != nullptr) {
        Value value;
        Status eval = EvaluateExpr(ctx, *stmt.where, *table, row, &value);
        if (!eval.ok()) {
          status = eval;
          return false;
        }
        if (value.base() != TypeDesc::Base::kBoolean || !value.boolean()) {
          return true;
        }
      }
      matches.emplace_back(id, row);
      return true;
    });
    if (status.ok()) status = scan_status;
    if (status.ok()) {
      for (auto& [id, row] : matches) {
        status = delete_row(id, row);
        if (!status.ok()) break;
      }
    }
  }

  for (auto& open : opens) {
    Status close = CloseIndexDesc(ctx, open.get());
    if (status.ok()) status = close;
  }

  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

Status Server::ExecUpdate(ServerSession* session, const sql::UpdateStmt& stmt,
                          ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  if (table == nullptr) {
    if (IsSystemViewName(stmt.table)) {
      return Status::InvalidArgument("system view '" + ToLower(stmt.table) +
                                     "' is read-only");
    }
    return Status::NotFound("table '" + stmt.table + "'");
  }
  // Resolve the assignments.
  std::vector<std::pair<int, Value>> assignments;
  for (const auto& [column, literal] : stmt.assignments) {
    const int index = table->ColumnIndex(column);
    if (index < 0) {
      return Status::NotFound("column '" + column + "'");
    }
    const sql::Literal* resolved = nullptr;
    GRTDB_RETURN_IF_ERROR(ResolveParam(session, literal, &resolved));
    Value value;
    GRTDB_RETURN_IF_ERROR(CoerceLiteral(
        *resolved, table->columns()[static_cast<size_t>(index)].type,
        &value));
    assignments.emplace_back(index, std::move(value));
  }

  bool implicit = false;
  GRTDB_RETURN_IF_ERROR(
      txn_manager_.EnsureTxn(&session->txn_session(), &implicit));
  const TxnId txn = session->txn_session().current_txn()->id();
  MiCallContext ctx{this, session, current_time_};

  Status status = lock_manager_.Acquire(txn, TableResource(stmt.table),
                                        LockMode::kExclusive);

  // Collect matching rows with a sequential scan (updates via index scans
  // would self-invalidate when the new key re-qualifies; Informix also
  // collects first for "Halloween" protection).
  std::vector<std::pair<RecordId, Row>> matches;
  if (status.ok()) {
    Status scan_status = table->Scan([&](RecordId id, const Row& row) {
      if (stmt.where != nullptr) {
        Value value;
        Status eval = EvaluateExpr(ctx, *stmt.where, *table, row, &value);
        if (!eval.ok()) {
          status = eval;
          return false;
        }
        if (value.base() != TypeDesc::Base::kBoolean || !value.boolean()) {
          return true;
        }
      }
      matches.emplace_back(id, row);
      return true;
    });
    if (status.ok()) status = scan_status;
  }

  std::vector<std::unique_ptr<OpenIndex>> opens;
  if (status.ok()) {
    for (IndexDef* index : catalog_.IndexesOnTable(stmt.table)) {
      std::unique_ptr<OpenIndex> open;
      status = OpenIndexDesc(session, index, false, ctx, &open);
      if (!status.ok()) break;
      opens.push_back(std::move(open));
    }
  }

  if (status.ok()) {
    for (auto& [id, old_row] : matches) {
      Row new_row = old_row;
      for (auto& [column, value] : assignments) {
        new_row[static_cast<size_t>(column)] = value;
      }
      status = table->Update(id, new_row);
      if (!status.ok()) break;
      for (auto& open : opens) {
        Row old_key = KeyRowFor(open->desc, old_row);
        Row new_key = KeyRowFor(open->desc, new_row);
        bool key_changed = old_key.size() != new_key.size();
        for (size_t i = 0; !key_changed && i < old_key.size(); ++i) {
          if (!old_key[i].Equals(new_key[i])) key_changed = true;
        }
        if (!key_changed || !open->am->hooks.am_update) continue;
        {
          PurposeCallScope call(this, session, open->am,
                                obs::PurposeFn::kAmUpdate);
          status = open->am->hooks.am_update(ctx, &open->desc, old_key,
                                             id.Pack(), new_key, id.Pack());
        }
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      ++out->affected;
    }
  }

  for (auto& open : opens) {
    Status close = CloseIndexDesc(ctx, open.get());
    if (status.ok()) status = close;
  }

  if (implicit) {
    Status end = status.ok() ? txn_manager_.Commit(&session->txn_session())
                             : txn_manager_.Rollback(&session->txn_session());
    session->memory().EndDuration(MiDuration::kPerTransaction);
    if (status.ok()) status = end;
  }
  return status;
}

}  // namespace grtdb
