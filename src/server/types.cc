#include "server/types.h"

#include "common/strings.h"

namespace grtdb {

Status TypeRegistry::RegisterOpaque(OpaqueType type, uint32_t* id) {
  if (!type.input || !type.output) {
    return Status::InvalidArgument(
        "opaque types require text input/output support functions");
  }
  const std::string key = ToLower(type.name);
  if (by_name_.count(key) != 0) {
    return Status::AlreadyExists("type '" + type.name + "'");
  }
  if (!type.send) {
    type.send = [](const std::vector<uint8_t>& in, std::vector<uint8_t>* out) {
      *out = in;
      return Status::OK();
    };
  }
  if (!type.receive) {
    type.receive = [](const std::vector<uint8_t>& in,
                      std::vector<uint8_t>* out) {
      *out = in;
      return Status::OK();
    };
  }
  if (!type.import) type.import = type.input;
  if (!type.do_export) type.do_export = type.output;
  type.id = next_id_++;
  *id = type.id;
  by_name_[key] = type.id;
  by_id_[type.id] = std::move(type);
  return Status::OK();
}

Status TypeRegistry::Unregister(const std::string& name) {
  const std::string key = ToLower(name);
  auto it = by_name_.find(key);
  if (it == by_name_.end()) {
    return Status::NotFound("type '" + name + "'");
  }
  by_id_.erase(it->second);
  by_name_.erase(it);
  return Status::OK();
}

Status TypeRegistry::Resolve(const std::string& name, TypeDesc* out) const {
  const std::string key = ToLower(name);
  if (key == "integer" || key == "int" || key == "smallint") {
    *out = TypeDesc::Integer();
    return Status::OK();
  }
  if (key == "float" || key == "double" || key == "real") {
    *out = TypeDesc::Float();
    return Status::OK();
  }
  if (key == "text" || key == "varchar" || key == "char" ||
      key == "lvarchar") {
    *out = TypeDesc::Text();
    return Status::OK();
  }
  if (key == "date") {
    *out = TypeDesc::Date();
    return Status::OK();
  }
  if (key == "boolean") {
    *out = TypeDesc::Boolean();
    return Status::OK();
  }
  if (key == "pointer") {
    *out = TypeDesc::Pointer();
    return Status::OK();
  }
  auto it = by_name_.find(key);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown type '" + name + "'");
  }
  *out = TypeDesc::Opaque(it->second);
  return Status::OK();
}

const OpaqueType* TypeRegistry::FindOpaque(uint32_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

const OpaqueType* TypeRegistry::FindOpaqueByName(
    const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? nullptr : FindOpaque(it->second);
}

std::string TypeRegistry::NameOf(const TypeDesc& type) const {
  switch (type.base) {
    case TypeDesc::Base::kInteger:
      return "integer";
    case TypeDesc::Base::kFloat:
      return "float";
    case TypeDesc::Base::kText:
      return "text";
    case TypeDesc::Base::kDate:
      return "date";
    case TypeDesc::Base::kBoolean:
      return "boolean";
    case TypeDesc::Base::kPointer:
      return "pointer";
    case TypeDesc::Base::kOpaque: {
      const OpaqueType* opaque = FindOpaque(type.opaque_id);
      return opaque != nullptr ? opaque->name
                               : "opaque#" + std::to_string(type.opaque_id);
    }
  }
  return "?";
}

}  // namespace grtdb
