#include <fstream>

#include "common/strings.h"
#include "server/server.h"

namespace grtdb {

// LOAD/UNLOAD (paper §6.3, type-support task 3): bulk text transfer using
// the opaque types' import/export support functions. The file format is
// Informix's: one row per line, fields separated by '|'.

Status Server::ExecLoad(ServerSession* session, const sql::LoadStmt& stmt,
                        ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "'");
  }
  std::ifstream in(stmt.path);
  if (!in) {
    return Status::IOError("cannot open '" + stmt.path + "' for LOAD");
  }
  std::string line;
  uint64_t line_number = 0;
  uint64_t loaded = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = SplitAndTrim(line, '|');
    if (fields.size() != table->columns().size()) {
      return Status::InvalidArgument(
          stmt.path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(table->columns().size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    // Coerce each field: opaque columns go through the type's *import*
    // support function; the rest through the usual literal coercion.
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const TypeDesc& type = table->columns()[i].type;
      if (type.base == TypeDesc::Base::kOpaque) {
        const OpaqueType* opaque = types_.FindOpaque(type.opaque_id);
        if (opaque == nullptr) {
          return Status::Corruption("unregistered opaque type id");
        }
        std::vector<uint8_t> bytes;
        Status status = opaque->import(fields[i], &bytes);
        if (!status.ok()) {
          return Status::InvalidArgument(
              stmt.path + ":" + std::to_string(line_number) + ": " +
              status.message());
        }
        row.push_back(Value::Opaque(type.opaque_id, std::move(bytes)));
        continue;
      }
      sql::Literal literal;
      if (EqualsIgnoreCase(fields[i], "NULL")) {
        literal.kind = sql::Literal::Kind::kNull;
      } else if (type.base == TypeDesc::Base::kInteger) {
        literal.kind = sql::Literal::Kind::kInteger;
        literal.integer = std::strtoll(fields[i].c_str(), nullptr, 10);
      } else if (type.base == TypeDesc::Base::kFloat) {
        literal.kind = sql::Literal::Kind::kFloat;
        literal.real = std::strtod(fields[i].c_str(), nullptr);
      } else {
        literal.kind = sql::Literal::Kind::kString;
        literal.text = fields[i];
      }
      Value value;
      Status coerce = CoerceLiteral(literal, type, &value);
      if (!coerce.ok()) {
        return Status::InvalidArgument(stmt.path + ":" +
                                       std::to_string(line_number) + ": " +
                                       coerce.message());
      }
      row.push_back(std::move(value));
    }
    ResultSet row_result;
    GRTDB_RETURN_IF_ERROR(
        InsertRow(session, table, stmt.table, std::move(row), &row_result));
    ++loaded;
  }
  out->affected = loaded;
  out->messages.push_back(std::to_string(loaded) + " row(s) loaded from " +
                          stmt.path);
  return Status::OK();
}

Status Server::ExecUnload(ServerSession* session, const sql::UnloadStmt& stmt,
                          ResultSet* out) {
  Table* table = catalog_.FindTable(stmt.table);
  std::unique_ptr<Table> system_table;
  if (table == nullptr) {
    system_table = BuildSystemTable(stmt.table);
    table = system_table.get();
  }
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "'");
  }
  std::ofstream file(stmt.path);
  if (!file) {
    return Status::IOError("cannot open '" + stmt.path + "' for UNLOAD");
  }
  MiCallContext ctx{this, session, current_time_};
  uint64_t unloaded = 0;
  Status status;
  Status scan_status = table->Scan([&](RecordId, const Row& row) {
    if (stmt.where != nullptr) {
      Value matches;
      Status eval = EvaluateExpr(ctx, *stmt.where, *table, row, &matches);
      if (!eval.ok()) {
        status = eval;
        return false;
      }
      if (matches.base() != TypeDesc::Base::kBoolean || !matches.boolean()) {
        return true;
      }
    }
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const Value& value : row) {
      if (!value.is_null() && value.base() == TypeDesc::Base::kOpaque) {
        const OpaqueType* opaque = types_.FindOpaque(value.type().opaque_id);
        std::string text;
        if (opaque != nullptr &&
            opaque->do_export(value.opaque(), &text).ok()) {
          fields.push_back(std::move(text));
          continue;
        }
      }
      fields.push_back(value.ToString());
    }
    file << Join(fields, "|") << "\n";
    ++unloaded;
    return true;
  });
  if (status.ok()) status = scan_status;
  GRTDB_RETURN_IF_ERROR(status);
  out->affected = unloaded;
  out->messages.push_back(std::to_string(unloaded) + " row(s) unloaded to " +
                          stmt.path);
  return Status::OK();
}

}  // namespace grtdb
