#ifndef GRTDB_SERVER_TYPES_H_
#define GRTDB_SERVER_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/value.h"

namespace grtdb {

// An opaque (user-defined) data type with its type support functions
// (paper §6.3): text input/output (SQL literals and results), binary
// send/receive (client-server wire format), and text-file import/export
// (LOAD). Defaults copy bytes / delegate to input/output.
struct OpaqueType {
  uint32_t id = 0;
  std::string name;
  // Text representation -> internal structure.
  std::function<Status(const std::string&, std::vector<uint8_t>*)> input;
  // Internal structure -> text representation.
  std::function<Status(const std::vector<uint8_t>&, std::string*)> output;
  // Wire representation; defaults to the identity on the internal bytes.
  std::function<Status(const std::vector<uint8_t>&, std::vector<uint8_t>*)>
      send;
  std::function<Status(const std::vector<uint8_t>&, std::vector<uint8_t>*)>
      receive;
  // LOAD file format; defaults to input/output.
  std::function<Status(const std::string&, std::vector<uint8_t>*)> import;
  std::function<Status(const std::vector<uint8_t>&, std::string*)> do_export;
};

// Name -> TypeDesc resolution for built-ins and registered opaque types.
class TypeRegistry {
 public:
  TypeRegistry() = default;

  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // Registers an opaque type; fills in defaulted support functions and
  // assigns the id. `type.input` and `type.output` are required.
  Status RegisterOpaque(OpaqueType type, uint32_t* id);

  Status Unregister(const std::string& name);

  // Resolves a type name ("integer", "date", "grt_timeextent", ...).
  Status Resolve(const std::string& name, TypeDesc* out) const;

  const OpaqueType* FindOpaque(uint32_t id) const;
  const OpaqueType* FindOpaqueByName(const std::string& name) const;

  // Name of `type` for error messages and catalogs.
  std::string NameOf(const TypeDesc& type) const;

 private:
  uint32_t next_id_ = 1;
  std::map<uint32_t, OpaqueType> by_id_;
  std::map<std::string, uint32_t> by_name_;  // lower-cased
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_TYPES_H_
