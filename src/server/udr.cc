#include "server/udr.h"

#include "common/strings.h"

namespace grtdb {

Status UdrRegistry::Register(UdrDef def) {
  const std::string key = ToLower(def.name);
  // Cache the plain-UDR cast when the exported symbol is one.
  if (const auto* fn = std::any_cast<UdrFunction>(&def.symbol)) {
    def.fn = *fn;
  }
  auto& overloads = routines_[key];
  for (const UdrDef& existing : overloads) {
    if (existing.arg_types == def.arg_types) {
      return Status::AlreadyExists("function '" + def.name +
                                   "' with identical signature");
    }
  }
  overloads.push_back(std::move(def));
  return Status::OK();
}

Status UdrRegistry::Unregister(const std::string& name) {
  if (routines_.erase(ToLower(name)) == 0) {
    return Status::NotFound("function '" + name + "'");
  }
  return Status::OK();
}

const UdrDef* UdrRegistry::Find(const std::string& name,
                                std::span<const TypeDesc> arg_types) const {
  auto it = routines_.find(ToLower(name));
  if (it == routines_.end()) return nullptr;
  const UdrDef* arity_match = nullptr;
  int arity_matches = 0;
  for (const UdrDef& def : it->second) {
    if (def.arg_types.size() != arg_types.size()) continue;
    bool exact = true;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (!(def.arg_types[i] == arg_types[i])) {
        exact = false;
        break;
      }
    }
    if (exact) return &def;
    arity_match = &def;
    ++arity_matches;
  }
  return arity_matches == 1 ? arity_match : nullptr;
}

const UdrDef* UdrRegistry::FindAny(const std::string& name) const {
  auto it = routines_.find(ToLower(name));
  if (it == routines_.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

std::vector<const UdrDef*> UdrRegistry::AllDefs() const {
  std::vector<const UdrDef*> out;
  for (const auto& [name, overloads] : routines_) {
    for (const UdrDef& def : overloads) out.push_back(&def);
  }
  return out;
}

std::vector<std::string> UdrRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(routines_.size());
  for (const auto& [name, overloads] : routines_) names.push_back(name);
  return names;
}

}  // namespace grtdb
