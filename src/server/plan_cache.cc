#include "server/plan_cache.h"

#include <cctype>

#include "sql/parser.h"

namespace grtdb {

std::string PlanCache::Normalize(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  char quote = '\0';
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (quote != '\0') {
      out.push_back(c);
      if (c == quote) {
        // A doubled quote is an escape, not a close.
        if (i + 1 < sql.size() && sql[i + 1] == quote) {
          out.push_back(sql[++i]);
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      quote = c;
      out.push_back(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

Status PlanCache::Get(const std::string& sql,
                      std::shared_ptr<CachedPlan>* out, bool* hit) {
  const std::string key = Normalize(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      *out = it->second;
      *hit = true;
      return Status::OK();
    }
  }
  // Parse outside the cache lock: a slow parse must not stall every other
  // session's lookup.
  auto plan = std::make_shared<CachedPlan>();
  plan->sql = sql;
  GRTDB_RETURN_IF_ERROR(
      sql::Parser::Parse(sql, &plan->ast, &plan->param_count));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(plan));
  // A racing inserter may have beaten us; its entry is equivalent.
  *out = it->second;
  *hit = false;
  return Status::OK();
}

std::shared_ptr<CachedPlan> PlanCache::Peek(const std::string& sql) const {
  const std::string key = Normalize(sql);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

void PlanCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace grtdb
