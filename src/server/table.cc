#include "server/table.h"

#include "common/strings.h"

namespace grtdb {

int Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Table::Insert(Row row, RecordId* id) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(columns_.size()) + " columns");
  }
  if (fragments_.empty() || fragments_.back().size() >= fragment_capacity_) {
    fragments_.emplace_back();
    fragments_.back().reserve(fragment_capacity_);
  }
  Fragment& fragment = fragments_.back();
  fragment.push_back(std::move(row));
  ++live_rows_;
  id->fragment = static_cast<uint32_t>(fragments_.size() - 1);
  id->slot = static_cast<uint32_t>(fragment.size() - 1);
  return Status::OK();
}

Status Table::Get(RecordId id, Row* row) const {
  if (id.fragment >= fragments_.size() ||
      id.slot >= fragments_[id.fragment].size() ||
      !fragments_[id.fragment][id.slot].has_value()) {
    return Status::NotFound("no row at fragment " +
                            std::to_string(id.fragment) + " slot " +
                            std::to_string(id.slot));
  }
  *row = *fragments_[id.fragment][id.slot];
  return Status::OK();
}

Status Table::Update(RecordId id, Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch on update");
  }
  if (id.fragment >= fragments_.size() ||
      id.slot >= fragments_[id.fragment].size() ||
      !fragments_[id.fragment][id.slot].has_value()) {
    return Status::NotFound("no row to update");
  }
  fragments_[id.fragment][id.slot] = std::move(row);
  return Status::OK();
}

Status Table::Delete(RecordId id) {
  if (id.fragment >= fragments_.size() ||
      id.slot >= fragments_[id.fragment].size() ||
      !fragments_[id.fragment][id.slot].has_value()) {
    return Status::NotFound("no row to delete");
  }
  fragments_[id.fragment][id.slot].reset();
  --live_rows_;
  return Status::OK();
}

Status Table::Scan(
    const std::function<bool(RecordId, const Row&)>& fn) const {
  for (uint32_t f = 0; f < fragments_.size(); ++f) {
    const Fragment& fragment = fragments_[f];
    for (uint32_t s = 0; s < fragment.size(); ++s) {
      if (!fragment[s].has_value()) continue;
      if (!fn(RecordId{f, s}, *fragment[s])) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace grtdb
