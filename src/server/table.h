#ifndef GRTDB_SERVER_TABLE_H_
#define GRTDB_SERVER_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/value.h"

namespace grtdb {

// Identifies a row: (fragment id, slot within fragment). grt_getnext forms
// its retrowid from exactly these two pieces (paper Table 5).
struct RecordId {
  uint32_t fragment = 0;
  uint32_t slot = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(fragment) << 32) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{static_cast<uint32_t>(packed >> 32),
                    static_cast<uint32_t>(packed & 0xFFFFFFFFu)};
  }
  friend bool operator==(RecordId a, RecordId b) {
    return a.fragment == b.fragment && a.slot == b.slot;
  }
};

struct ColumnDef {
  std::string name;
  TypeDesc type;
};

// A fragmented heap table. Fragments fill up in order; row slots are never
// reused, so RecordIds stay stable for the lifetime of the table.
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns,
        uint32_t fragment_capacity = 4096)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        fragment_capacity_(fragment_capacity) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of `column` or -1.
  int ColumnIndex(const std::string& column) const;

  Status Insert(Row row, RecordId* id);
  Status Get(RecordId id, Row* row) const;
  Status Update(RecordId id, Row row);
  Status Delete(RecordId id);

  // Live rows (excludes deleted slots). Atomic so the sys-view path can
  // read a count while another session's locked DML is mid-mutation.
  uint64_t row_count() const {
    return live_rows_.load(std::memory_order_relaxed);
  }

  // Calls fn(id, row) for each live row; return false to stop.
  Status Scan(const std::function<bool(RecordId, const Row&)>& fn) const;

 private:
  using Fragment = std::vector<std::optional<Row>>;

  std::string name_;
  std::vector<ColumnDef> columns_;
  uint32_t fragment_capacity_;
  std::vector<Fragment> fragments_;
  std::atomic<uint64_t> live_rows_{0};
};

}  // namespace grtdb

#endif  // GRTDB_SERVER_TABLE_H_
