# Test-time clang-tidy driver: invoked by ctest as
#   cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P run_clang_tidy.cmake
# The binary is located at *test* time, not configure time, so a container
# without clang-tidy skips the test (SKIP_REGULAR_EXPRESSION matches the
# message below) instead of failing configure or silently passing.

find_program(CLANG_TIDY_BIN NAMES clang-tidy clang-tidy-17 clang-tidy-16
             clang-tidy-15 clang-tidy-14)
if(NOT CLANG_TIDY_BIN)
  message(STATUS "clang-tidy not found; skipping")
  return()
endif()

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR
          "no compile_commands.json in ${BUILD_DIR} "
          "(CMAKE_EXPORT_COMPILE_COMMANDS should have produced one)")
endif()

file(GLOB_RECURSE TIDY_SOURCES
     "${SOURCE_DIR}/src/*.cc"
     "${SOURCE_DIR}/tools/*.cc")

set(FAILED 0)
foreach(source IN LISTS TIDY_SOURCES)
  execute_process(
    COMMAND "${CLANG_TIDY_BIN}" -p "${BUILD_DIR}" --quiet "${source}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "clang-tidy: ${source}")
    message(STATUS "${out}")
    set(FAILED 1)
  endif()
endforeach()

if(FAILED)
  message(FATAL_ERROR "clang-tidy reported errors")
endif()
message(STATUS "clang-tidy clean over src/ and tools/")
