// Observability overhead: the same overlap-query workload runs on two
// servers — observability on (metrics wired, purpose functions timed) and
// off — with interleaved timing rounds, comparing the min-of-rounds query
// time. Self-checking twice over:
//   (a) metrics-on costs < 5% (plus a 1 ms absolute slack for timer noise)
//       over metrics-off on the query phase;
//   (b) the vii.am_getnext.calls delta read back through SELECT on
//       sys_metrics equals the EXPLAIN PROFILE call count equals the rows
//       fetched + 1 (the terminating "no more" call).
// `--smoke` shrinks the workload for the ctest smoke label.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "obs/query_profile.h"
#include "server/server.h"

namespace grtdb {
namespace {

int g_rows = 2000;
int g_queries_per_round = 60;
int g_rounds = 5;

struct Instance {
  std::unique_ptr<Server> server;
  ServerSession* session = nullptr;
};

Instance MakeInstance(bool observability) {
  ServerOptions server_options;
  server_options.observability = observability;
  Instance instance;
  instance.server = std::make_unique<Server>(server_options);
  bench::Check(RegisterGRTreeBlade(instance.server.get()),
               "RegisterGRTreeBlade");
  instance.session = instance.server->CreateSession();
  bench::Exec(*instance.server, instance.session,
              "CREATE TABLE t (id int, e grt_timeextent)");
  bench::Exec(*instance.server, instance.session,
              "CREATE INDEX t_idx ON t(e grt_opclass) USING grtree_am");
  bench::Exec(*instance.server, instance.session,
              "SET CURRENT_TIME TO 20000");
  // Ground extents spread over a [18000, 20000] valid-time range, so the
  // overlap queries below are selective (~7% of rows each) rather than a
  // return-everything scan.
  for (int i = 0; i < g_rows; ++i) {
    const int64_t vt1 = 18000 + (i * 7) % 2000;
    bench::Exec(*instance.server, instance.session,
                "INSERT INTO t VALUES (" + std::to_string(i) +
                    ", '20000, 20001, " + std::to_string(vt1) + ", " +
                    std::to_string(vt1 + 40) + "')");
  }
  return instance;
}

std::string QueryFor(int q) {
  const int64_t vt = 18000 + (q * 131) % 1900;
  return "SELECT COUNT(*) FROM t WHERE Overlaps(e, '20000, 20001, " +
         std::to_string(vt) + ", " + std::to_string(vt + 100) + "')";
}

// One timed round of the overlap-query workload.
double QueryRoundMs(Instance& instance) {
  bench::Timer timer;
  for (int q = 0; q < g_queries_per_round; ++q) {
    bench::Exec(*instance.server, instance.session, QueryFor(q));
  }
  return timer.ElapsedMs();
}

uint64_t MetricValue(Instance& instance, const std::string& name) {
  ResultSet result =
      bench::Exec(*instance.server, instance.session,
                  "SELECT value FROM sys_metrics WHERE name = '" + name + "'");
  if (result.rows.size() != 1) {
    std::fprintf(stderr, "FATAL: metric %s not found in sys_metrics\n",
                 name.c_str());
    std::exit(1);
  }
  return std::stoull(result.rows[0][0]);
}

int Run(bool smoke) {
  if (smoke) {
    g_rows = 300;
    g_queries_per_round = 15;
    g_rounds = 2;
  }
  std::printf("bench_obs_overhead: %d rows, %d rounds x %d overlap queries "
              "(min-of-rounds)%s\n\n",
              g_rows, g_rounds, g_queries_per_round, smoke ? " [smoke]" : "");

  Instance on = MakeInstance(/*observability=*/true);
  Instance off = MakeInstance(/*observability=*/false);

  // Warm both caches, then interleave the timed rounds so drift hits both
  // configurations equally.
  QueryRoundMs(on);
  QueryRoundMs(off);
  double min_on = 0, min_off = 0;
  for (int round = 0; round < g_rounds; ++round) {
    const double t_on = QueryRoundMs(on);
    const double t_off = QueryRoundMs(off);
    if (round == 0 || t_on < min_on) min_on = t_on;
    if (round == 0 || t_off < min_off) min_off = t_off;
  }
  const double overhead_pct = (min_on - min_off) / min_off * 100.0;
  const double overhead_ms = min_on - min_off;

  bench::TablePrinter table({"config", "round min (ms)", "per query (us)"});
  table.AddRow({"observability off", bench::Fmt(min_off, 3),
                bench::Fmt(min_off * 1000.0 / g_queries_per_round, 1)});
  table.AddRow({"observability on", bench::Fmt(min_on, 3),
                bench::Fmt(min_on * 1000.0 / g_queries_per_round, 1)});
  table.Print();
  std::printf("\noverhead: %s%% (%s ms absolute)\n",
              bench::Fmt(overhead_pct, 2).c_str(),
              bench::Fmt(overhead_ms, 3).c_str());

  bool ok = true;
  // (a) the overhead target; the absolute slack keeps sub-millisecond
  // rounds from failing on timer noise alone. Sanitizer instrumentation
  // multiplies every memory access unevenly across the two configs, so the
  // percentage is only meaningful on plain builds — the (b) accounting
  // cross-check still runs everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kSanitized = true;
#elif defined(__has_feature)
  constexpr bool kSanitized = __has_feature(address_sanitizer) ||
                              __has_feature(thread_sanitizer) ||
                              __has_feature(undefined_behavior_sanitizer);
#else
  constexpr bool kSanitized = false;
#endif
  if (!kSanitized && overhead_pct >= 5.0 && overhead_ms >= 1.0) {
    std::fprintf(stderr, "FATAL: observability overhead %.2f%% exceeds the "
                 "5%% target\n", overhead_pct);
    ok = false;
  }

  // (b) counter == profile == rows fetched, through the SQL surface.
  const uint64_t calls_before = MetricValue(on, "vii.am_getnext.calls");
  ResultSet rows = bench::Exec(*on.server, on.session,
                               "SELECT id FROM t WHERE "
                               "Overlaps(e, '20000, UC, 18000, NOW')");
  const uint64_t profile_calls =
      on.session->profile().calls(obs::PurposeFn::kAmGetNext);
  const uint64_t rows_fetched = rows.rows.size();
  const uint64_t calls_after = MetricValue(on, "vii.am_getnext.calls");
  std::printf("cross-check: counter delta %llu, profile %llu, rows %llu\n",
              static_cast<unsigned long long>(calls_after - calls_before),
              static_cast<unsigned long long>(profile_calls),
              static_cast<unsigned long long>(rows_fetched));
  if (calls_after - calls_before != profile_calls ||
      profile_calls != rows_fetched + 1) {
    std::fprintf(stderr, "FATAL: am_getnext accounting disagrees "
                 "(counter %llu, profile %llu, rows %llu)\n",
                 static_cast<unsigned long long>(calls_after - calls_before),
                 static_cast<unsigned long long>(profile_calls),
                 static_cast<unsigned long long>(rows_fetched));
    ok = false;
  }

  if (ok) std::printf("bench_obs_overhead: all checks passed\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace grtdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return grtdb::Run(smoke);
}
