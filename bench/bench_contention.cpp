// bench_contention: self-checking gate for the contention observatory.
// Three checks, each a hard pass/fail:
//   (a) heat ranking — a seeded skewed workload (one index hammered, one
//       touched once) must put the hammered index's node at the top of
//       sys_hot_nodes;
//   (b) lock-wait attribution — a seeded holder pins a table's X lock
//       while workers block on it; >= 90% of all lock-wait nanoseconds in
//       sys_contention must land on the seeded resource, and the seeded
//       row must count every blocked worker;
//   (c) dormant overhead — NodeCache reads with the heat tracker wired
//       but disabled vs never wired at all, interleaved min-of-rounds
//       (the bench_obs_overhead pattern): the disarmed gate must cost
//       < 5% (plus 1 ms absolute slack). Sanitizer builds skip the
//       percentage gate — instrumentation skews the two loops unevenly —
//       but still run the loops.
// `--smoke` shrinks the workload for the ctest smoke label; `--out FILE`
// writes the measured numbers as JSON next to the BENCH_net.json family.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "obs/heat_tracker.h"
#include "server/server.h"
#include "storage/node_cache.h"
#include "storage/pager.h"
#include "storage/space.h"

namespace grtdb {
namespace {

int g_rows = 96;
int g_hot_scans = 240;
int g_workers = 4;
int g_hold_ms = 80;
int g_cache_nodes = 64;
int g_cache_reads_per_round = 128000;
int g_cache_rounds = 5;

struct Results {
  std::string top_store;
  double top_heat = 0.0;
  uint64_t wait_total_ns = 0;
  uint64_t wait_seeded_ns = 0;
  uint64_t seeded_waits = 0;
  double seeded_pct = 0.0;
  double plain_ms = 0.0;
  double wired_ms = 0.0;
  double overhead_pct = 0.0;
  bool ok = true;
};

// ---- (a) heat ranking -----------------------------------------------------

void CheckHeatRanking(Server& server, ServerSession* session, Results* r) {
  // Two identical indexed tables; the tracker is armed only after the
  // load, so ranked heat is pure query traffic.
  for (const char* name : {"hot", "cold"}) {
    bench::Exec(server, session,
                std::string("CREATE TABLE ") + name +
                    " (id int, e grt_timeextent)");
    bench::Exec(server, session,
                std::string("CREATE INDEX ") + name + "_idx ON " + name +
                    "(e grt_opclass) USING grtree_am");
  }
  bench::Exec(server, session, "SET CURRENT_TIME TO 20000");
  for (int i = 0; i < g_rows; ++i) {
    const int64_t vt1 = 18000 + (i * 7) % 2000;
    for (const char* name : {"hot", "cold"}) {
      bench::Exec(server, session,
                  std::string("INSERT INTO ") + name + " VALUES (" +
                      std::to_string(i) + ", '20000, 20001, " +
                      std::to_string(vt1) + ", " + std::to_string(vt1 + 40) +
                      "')");
    }
  }
  bench::Exec(server, session, "SET HEAT_TRACK = 1");

  // The skew: the hot index serves g_hot_scans overlap queries, the cold
  // one exactly one.
  for (int q = 0; q < g_hot_scans; ++q) {
    const int64_t vt = 18000 + (q * 131) % 1900;
    bench::Exec(server, session,
                "SELECT COUNT(*) FROM hot WHERE Overlaps(e, '20000, 20001, " +
                    std::to_string(vt) + ", " + std::to_string(vt + 100) +
                    "')");
  }
  bench::Exec(server, session,
              "SELECT COUNT(*) FROM cold WHERE Overlaps(e, "
              "'20000, 20001, 18500, 18600')");

  ResultSet heat = bench::Exec(server, session,
                               "SELECT * FROM sys_hot_nodes");
  if (heat.rows.empty()) {
    std::fprintf(stderr, "FATAL: sys_hot_nodes is empty after the skewed "
                 "workload\n");
    r->ok = false;
    return;
  }
  r->top_store = heat.rows[0][0];
  r->top_heat = std::atof(heat.rows[0][2].c_str());
  std::printf("heat ranking: top node is %s:%s (heat %s, %zu nodes "
              "tracked)\n",
              heat.rows[0][0].c_str(), heat.rows[0][1].c_str(),
              heat.rows[0][2].c_str(), heat.rows.size());
  if (r->top_store != "hot_idx") {
    std::fprintf(stderr, "FATAL: seeded hot node not top-1 in "
                 "sys_hot_nodes (top store is '%s', want 'hot_idx')\n",
                 r->top_store.c_str());
    r->ok = false;
  }
}

// ---- (b) lock-wait attribution --------------------------------------------

void CheckWaitAttribution(Server& server, ServerSession* holder, Results* r) {
  bench::Exec(server, holder, "CREATE TABLE contended (id int)");

  // Seed: the holder pins contended's X lock in an explicit transaction
  // while every worker blocks on its own INSERT.
  bench::Exec(server, holder, "BEGIN WORK");
  bench::Exec(server, holder, "INSERT INTO contended VALUES (0)");
  const TxnId holder_txn = holder->txn_session().current_txn()->id();

  std::vector<ServerSession*> workers;
  for (int w = 0; w < g_workers; ++w) workers.push_back(server.CreateSession());
  std::vector<std::thread> threads;
  for (int w = 0; w < g_workers; ++w) {
    threads.emplace_back([&server, &workers, w] {
      ResultSet result;
      // Granted once the holder commits; a timeout would still feed
      // sys_contention, which is what the gate reads.
      Status status = server.Execute(
          workers[w],
          "INSERT INTO contended VALUES (" + std::to_string(1 + w) + ")",
          &result);
      (void)status;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(g_hold_ms));
  bench::Exec(server, holder, "COMMIT WORK");
  for (std::thread& t : threads) t.join();
  for (ServerSession* w : workers) bench::Check(server.CloseSession(w), "close");

  ResultSet contention =
      bench::Exec(server, holder, "SELECT * FROM sys_contention");
  for (const auto& row : contention.rows) {
    const uint64_t wait_ns = std::stoull(row[3]);
    r->wait_total_ns += wait_ns;
    if (row[0] == "table" && row[7] == std::to_string(holder_txn)) {
      r->wait_seeded_ns += wait_ns;
      r->seeded_waits += std::stoull(row[2]);
    }
  }
  r->seeded_pct = r->wait_total_ns == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(r->wait_seeded_ns) /
                            static_cast<double>(r->wait_total_ns);
  std::printf("lock waits: %llu ns total, %llu ns (%s%%) on the seeded "
              "table across %llu waits\n",
              static_cast<unsigned long long>(r->wait_total_ns),
              static_cast<unsigned long long>(r->wait_seeded_ns),
              bench::Fmt(r->seeded_pct, 1).c_str(),
              static_cast<unsigned long long>(r->seeded_waits));
  if (r->wait_seeded_ns == 0 || r->seeded_pct < 90.0) {
    std::fprintf(stderr, "FATAL: seeded resource carries %.1f%% of the "
                 "lock-wait ns, want >= 90%%\n", r->seeded_pct);
    r->ok = false;
  }
  if (r->seeded_waits < static_cast<uint64_t>(g_workers)) {
    std::fprintf(stderr, "FATAL: seeded row counts %llu waits, want >= %d "
                 "(one per blocked worker)\n",
                 static_cast<unsigned long long>(r->seeded_waits), g_workers);
    r->ok = false;
  }
}

// ---- (c) dormant overhead -------------------------------------------------

// One cache stack over its own in-memory store, optionally with the heat
// tracker wired (and left disabled — the dormant configuration).
struct CacheStack {
  MemorySpace space;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<PagerNodeStore> inner;
  std::unique_ptr<NodeCache> cache;
  std::vector<NodeId> ids;

  explicit CacheStack(obs::HeatTracker* heat) {
    pager = std::make_unique<Pager>(&space, /*capacity=*/256);
    inner = std::make_unique<PagerNodeStore>(pager.get());
    cache = std::make_unique<NodeCache>(inner.get(),
                                        /*capacity=*/g_cache_nodes * 2);
    if (heat != nullptr) cache->set_heat(heat, "bench_contention");
    uint8_t page[kPageSize] = {0x5a};
    for (int i = 0; i < g_cache_nodes; ++i) {
      NodeId id;
      bench::Check(cache->AllocateNode(&id), "AllocateNode");
      bench::Check(cache->WriteNode(id, page), "WriteNode");
      ids.push_back(id);
    }
  }

  double ReadRoundMs() {
    uint8_t page[kPageSize];
    bench::Timer timer;
    for (int i = 0; i < g_cache_reads_per_round; ++i) {
      bench::Check(cache->ReadNode(ids[i % ids.size()], page), "ReadNode");
    }
    return timer.ElapsedMs();
  }
};

void CheckDormantOverhead(Results* r) {
  obs::HeatTracker tracker;  // constructed disabled: the dormant gate
  CacheStack plain(nullptr);
  CacheStack wired(&tracker);

  // Warm, then interleave so clock drift hits both stacks equally.
  plain.ReadRoundMs();
  wired.ReadRoundMs();
  for (int round = 0; round < g_cache_rounds; ++round) {
    const double t_wired = wired.ReadRoundMs();
    const double t_plain = plain.ReadRoundMs();
    if (round == 0 || t_wired < r->wired_ms) r->wired_ms = t_wired;
    if (round == 0 || t_plain < r->plain_ms) r->plain_ms = t_plain;
  }
  r->overhead_pct = (r->wired_ms - r->plain_ms) / r->plain_ms * 100.0;
  const double overhead_ms = r->wired_ms - r->plain_ms;

  bench::TablePrinter table({"config", "round min (ms)", "per read (ns)"});
  table.AddRow({"heat unwired", bench::Fmt(r->plain_ms, 3),
                bench::Fmt(r->plain_ms * 1e6 / g_cache_reads_per_round, 1)});
  table.AddRow({"heat wired, off", bench::Fmt(r->wired_ms, 3),
                bench::Fmt(r->wired_ms * 1e6 / g_cache_reads_per_round, 1)});
  table.Print();
  std::printf("dormant overhead: %s%% (%s ms absolute)\n",
              bench::Fmt(r->overhead_pct, 2).c_str(),
              bench::Fmt(overhead_ms, 3).c_str());

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kSanitized = true;
#elif defined(__has_feature)
  constexpr bool kSanitized = __has_feature(address_sanitizer) ||
                              __has_feature(thread_sanitizer) ||
                              __has_feature(undefined_behavior_sanitizer);
#else
  constexpr bool kSanitized = false;
#endif
  if (!kSanitized && r->overhead_pct >= 5.0 && overhead_ms >= 1.0) {
    std::fprintf(stderr, "FATAL: dormant heat tracking costs %.2f%%, "
                 "exceeds the 5%% target\n", r->overhead_pct);
    r->ok = false;
  }
  // The dormant configuration must also record nothing.
  if (!tracker.Snapshot().empty() || tracker.dropped() != 0) {
    std::fprintf(stderr, "FATAL: disabled heat tracker recorded traffic\n");
    r->ok = false;
  }
}

// ---- driver ---------------------------------------------------------------

void WriteJson(const std::string& path, const Results& r, bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"contention\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"top_store\": \"" << r.top_store << "\",\n"
      << "  \"top_heat\": " << r.top_heat << ",\n"
      << "  \"wait_total_ns\": " << r.wait_total_ns << ",\n"
      << "  \"wait_seeded_ns\": " << r.wait_seeded_ns << ",\n"
      << "  \"seeded_pct\": " << r.seeded_pct << ",\n"
      << "  \"seeded_waits\": " << r.seeded_waits << ",\n"
      << "  \"dormant_plain_ms\": " << r.plain_ms << ",\n"
      << "  \"dormant_wired_ms\": " << r.wired_ms << ",\n"
      << "  \"dormant_overhead_pct\": " << r.overhead_pct << ",\n"
      << "  \"checks_passed\": " << (r.ok ? "true" : "false") << "\n"
      << "}\n";
  if (!out) {
    std::fprintf(stderr, "bench_contention: cannot write %s\n", path.c_str());
  }
}

int Run(bool smoke, const std::string& out_path) {
  if (smoke) {
    g_rows = 48;
    g_hot_scans = 60;
    g_hold_ms = 25;
    g_cache_reads_per_round = 16000;
    g_cache_rounds = 2;
  }
  std::printf("bench_contention: %d rows, %d hot scans, %d blocked workers, "
              "%d ms hold, %d cache reads/round%s\n\n",
              g_rows, g_hot_scans, g_workers, g_hold_ms,
              g_cache_reads_per_round, smoke ? " [smoke]" : "");

  Server server;
  bench::Check(RegisterGRTreeBlade(&server), "RegisterGRTreeBlade");
  ServerSession* session = server.CreateSession();

  Results results;
  CheckHeatRanking(server, session, &results);
  CheckWaitAttribution(server, session, &results);
  CheckDormantOverhead(&results);

  if (!out_path.empty()) WriteJson(out_path, results, smoke);
  if (results.ok) std::printf("\nbench_contention: all checks passed\n");
  return results.ok ? 0 : 1;
}

}  // namespace
}  // namespace grtdb

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_contention [--smoke] [--out FILE]\n");
      return 2;
    }
  }
  return grtdb::Run(smoke, out_path);
}
