// Flight-recorder overhead: the same explicit-transaction query workload
// (every BEGIN/COMMIT pair emits txn_begin/txn_commit into the recorder,
// and the scans ride the cache-eviction and slow-purpose-call probes) runs
// with the process-global recorder enabled and disabled, in interleaved
// min-of-rounds fashion. Read-only transactions keep the WAL out of the
// timed loop — an fsync-bound insert phase swings tens of percent run to
// run, drowning a nanosecond-scale effect. The recorder is always-on in
// production, so its record path must be effectively free. Self-checking
// twice over:
//   (a) recorder-on costs < 5% (plus a 1 ms absolute slack for timer
//       noise) over recorder-off on the query phase;
//   (b) ring accounting is exact: a counted event burst retains precisely
//       the newest kSlotsPerThread events with nothing lost, and a
//       committed transaction shows up as txn_commit through DUMP FLIGHT.
// `--smoke` shrinks the workload for the ctest smoke label.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "obs/flight_recorder.h"
#include "server/server.h"

namespace grtdb {
namespace {

int g_rows = 2000;
int g_txns_per_round = 60;
int g_rounds = 5;

struct Instance {
  std::unique_ptr<Server> server;
  ServerSession* session = nullptr;
};

Instance MakeInstance() {
  Instance instance;
  instance.server = std::make_unique<Server>();
  bench::Check(RegisterGRTreeBlade(instance.server.get()),
               "RegisterGRTreeBlade");
  instance.session = instance.server->CreateSession();
  bench::Exec(*instance.server, instance.session,
              "CREATE TABLE t (id int, e grt_timeextent)");
  bench::Exec(*instance.server, instance.session,
              "CREATE INDEX t_idx ON t(e grt_opclass) USING grtree_am");
  bench::Exec(*instance.server, instance.session,
              "SET CURRENT_TIME TO 20000");
  // Ground extents spread over a [18000, 20000] valid-time range so the
  // overlap queries below are selective rather than return-everything.
  for (int i = 0; i < g_rows; ++i) {
    const int64_t vt1 = 18000 + (i * 7) % 2000;
    bench::Exec(*instance.server, instance.session,
                "INSERT INTO t VALUES (" + std::to_string(i) +
                    ", '20000, 20001, " + std::to_string(vt1) + ", " +
                    std::to_string(vt1 + 40) + "')");
  }
  return instance;
}

// One timed round: `g_txns_per_round` explicit transactions, each a
// selective overlap scan between BEGIN WORK and COMMIT WORK. One server
// instance hosts every round — only the recorder's enabled flag differs.
double TxnRoundMs(Instance& instance) {
  bench::Timer timer;
  for (int q = 0; q < g_txns_per_round; ++q) {
    const int64_t vt = 18000 + (q * 131) % 1900;
    bench::Exec(*instance.server, instance.session, "BEGIN WORK");
    bench::Exec(*instance.server, instance.session,
                "SELECT COUNT(*) FROM t WHERE Overlaps(e, '20000, 20001, " +
                    std::to_string(vt) + ", " + std::to_string(vt + 100) +
                    "')");
    bench::Exec(*instance.server, instance.session, "COMMIT WORK");
  }
  return timer.ElapsedMs();
}

int Run(bool smoke) {
  if (smoke) {
    g_rows = 300;
    g_txns_per_round = 15;
    g_rounds = 2;
  }
  std::printf("bench_flight_overhead: %d rows, %d rounds x %d explicit-txn "
              "overlap scans (min-of-rounds)%s\n\n",
              g_rows, g_rounds, g_txns_per_round, smoke ? " [smoke]" : "");

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  Instance instance = MakeInstance();

  // Warm-up round per configuration, then interleave the timed rounds in
  // ABBA order (on/off, off/on, ...) so periodic machine costs land on
  // both configurations evenly; min-of-rounds discards the outliers.
  recorder.set_enabled(true);
  TxnRoundMs(instance);
  recorder.set_enabled(false);
  TxnRoundMs(instance);
  double min_on = 0, min_off = 0;
  for (int round = 0; round < g_rounds; ++round) {
    const bool on_first = (round % 2 == 0);
    recorder.set_enabled(on_first);
    const double t_first = TxnRoundMs(instance);
    recorder.set_enabled(!on_first);
    const double t_second = TxnRoundMs(instance);
    const double t_on = on_first ? t_first : t_second;
    const double t_off = on_first ? t_second : t_first;
    if (round == 0 || t_on < min_on) min_on = t_on;
    if (round == 0 || t_off < min_off) min_off = t_off;
  }
  recorder.set_enabled(true);
  const double overhead_pct = (min_on - min_off) / min_off * 100.0;
  const double overhead_ms = min_on - min_off;

  bench::TablePrinter table({"config", "round min (ms)", "per txn (us)"});
  table.AddRow({"recorder off", bench::Fmt(min_off, 3),
                bench::Fmt(min_off * 1000.0 / g_txns_per_round, 1)});
  table.AddRow({"recorder on", bench::Fmt(min_on, 3),
                bench::Fmt(min_on * 1000.0 / g_txns_per_round, 1)});
  table.Print();
  std::printf("\noverhead: %s%% (%s ms absolute)\n",
              bench::Fmt(overhead_pct, 2).c_str(),
              bench::Fmt(overhead_ms, 3).c_str());

  bool ok = true;
  // (a) the overhead target. Sanitizer instrumentation multiplies every
  // memory access unevenly across the two configs, so the percentage is
  // only meaningful on plain builds — the (b) accounting cross-checks
  // still run everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kSanitized = true;
#elif defined(__has_feature)
  constexpr bool kSanitized = __has_feature(address_sanitizer) ||
                              __has_feature(thread_sanitizer) ||
                              __has_feature(undefined_behavior_sanitizer);
#else
  constexpr bool kSanitized = false;
#endif
  if (!kSanitized && overhead_pct >= 5.0 && overhead_ms >= 1.0) {
    std::fprintf(stderr, "FATAL: flight-recorder overhead %.2f%% exceeds "
                 "the 5%% target\n", overhead_pct);
    ok = false;
  }

  // (b1) ring accounting: a counted burst on a fresh thread retains
  // exactly the newest kSlotsPerThread events and loses nothing.
  const uint64_t lost_before = recorder.lost();
  constexpr uint64_t kMarker = 0xF119E7000000ull;
  constexpr uint64_t kBurst = obs::FlightRecorder::kSlotsPerThread + 100;
  std::thread burster([&recorder] {
    for (uint64_t i = 0; i < kBurst; ++i) {
      recorder.RecordEvent(obs::FlightEvent::kCacheEviction, kMarker + i);
    }
  });
  burster.join();
  uint64_t retained = 0, newest = 0;
  for (const obs::FlightEventRecord& record : recorder.Dump()) {
    if (record.a >= kMarker && record.a < kMarker + kBurst) {
      ++retained;
      if (record.a > newest) newest = record.a;
    }
  }
  std::printf("cross-check: burst of %llu retained %llu (ring %zu), "
              "lost %llu\n",
              static_cast<unsigned long long>(kBurst),
              static_cast<unsigned long long>(retained),
              obs::FlightRecorder::kSlotsPerThread,
              static_cast<unsigned long long>(recorder.lost() - lost_before));
  if (retained != obs::FlightRecorder::kSlotsPerThread ||
      newest != kMarker + kBurst - 1 || recorder.lost() != lost_before) {
    std::fprintf(stderr, "FATAL: ring retention accounting disagrees\n");
    ok = false;
  }

  // (b2) the SQL surface: an explicit transaction's commit is visible
  // through DUMP FLIGHT.
  bench::Exec(*instance.server, instance.session, "BEGIN WORK");
  bench::Exec(*instance.server, instance.session,
              "INSERT INTO t VALUES (999999, '20000, 20001, 18000, 18040')");
  bench::Exec(*instance.server, instance.session, "COMMIT WORK");
  ResultSet dump =
      bench::Exec(*instance.server, instance.session, "DUMP FLIGHT");
  bool saw_commit = false;
  for (const auto& row : dump.rows) {
    if (row[2] == "txn_commit") saw_commit = true;
  }
  if (!saw_commit) {
    std::fprintf(stderr, "FATAL: DUMP FLIGHT shows no txn_commit\n");
    ok = false;
  }

  if (ok) std::printf("bench_flight_overhead: all checks passed\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace grtdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return grtdb::Run(smoke);
}
