// T3 — Fig. 3: R*-tree structure "goodness". Builds R*-trees over
// workloads, reports per-level dead space and overlap, and measures the
// phenomenon the figure illustrates: queries that descend into several
// subtrees yet find no qualifying data (I/O caused by overlap/dead space).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "rstar/rstar_tree.h"
#include "storage/pager.h"
#include "storage/space.h"

namespace grtdb {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct Built {
  MemorySpace space;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<PagerNodeStore> store;
  std::unique_ptr<RStarTree> tree;
  std::vector<RStarTree::Entry> data;
};

void Build(Built& built, uint64_t seed, size_t count, int64_t universe,
           int64_t max_side, bool clustered) {
  built.pager = std::make_unique<Pager>(&built.space, 4096);
  built.store = std::make_unique<PagerNodeStore>(built.pager.get());
  RStarTree::Options options;
  NodeId anchor;
  auto tree_or = RStarTree::Create(built.store.get(), options, &anchor);
  bench::Check(tree_or.status(), "create");
  built.tree = std::move(tree_or).value();
  Random rng(seed);
  for (uint64_t i = 1; i <= count; ++i) {
    int64_t x, y;
    if (clustered && rng.Bernoulli(0.8)) {
      // 80% of rectangles inside 10 hot clusters.
      const int64_t cx = (rng.Next() % 10) * (universe / 10);
      x = cx + rng.UniformRange(0, universe / 20);
      y = cx / 2 + rng.UniformRange(0, universe / 20);
    } else {
      x = rng.UniformRange(0, universe);
      y = rng.UniformRange(0, universe);
    }
    const Rect rect = Rect::Of(x, x + rng.UniformRange(1, max_side), y,
                               y + rng.UniformRange(1, max_side));
    built.data.push_back({rect, i});
    bench::Check(built.tree->Insert(rect, i), "insert");
  }
}

void Report(const char* label, Built& built, uint64_t seed,
            int64_t universe) {
  std::printf("\n%s: %zu rectangles, height %u\n", label, built.data.size(),
              built.tree->height());
  std::vector<RStarLevelStats> levels;
  bench::Check(built.tree->LevelStats(&levels), "stats");
  TablePrinter table({"level", "nodes", "entries", "avg fill",
                      "entry area (sum)", "within-node overlap"});
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    table.AddRow({std::to_string(it->level), std::to_string(it->nodes),
                  std::to_string(it->entries),
                  Fmt(static_cast<double>(it->entries) /
                          static_cast<double>(it->nodes),
                      1),
                  Fmt(it->total_area, 0), Fmt(it->overlap_area, 0)});
  }
  table.Print();

  // The Fig. 3 phenomenon: a query overlapping several root entries can
  // read subtrees that contribute no answers.
  Random rng(seed ^ 0x5A5A);
  uint64_t queries = 0;
  uint64_t empty_with_io = 0;
  uint64_t total_reads = 0;
  for (int q = 0; q < 500; ++q) {
    const int64_t x = rng.UniformRange(0, universe);
    const int64_t y = rng.UniformRange(0, universe);
    const Rect query = Rect::Of(x, x + 5, y, y + 5);
    const NodeStoreStats before = built.store->stats();
    std::vector<RStarTree::Entry> results;
    bench::Check(built.tree->SearchAll(query, &results), "search");
    const uint64_t reads = built.store->stats().node_reads -
                           before.node_reads;
    total_reads += reads;
    ++queries;
    if (results.empty() && reads > 1) ++empty_with_io;
  }
  std::printf("point-ish queries: %llu, avg node reads %s, "
              "empty-result queries that still read internal nodes: %llu "
              "(dead-space/overlap I/O of Fig. 3)\n",
              static_cast<unsigned long long>(queries),
              Fmt(static_cast<double>(total_reads) /
                      static_cast<double>(queries),
                  2)
                  .c_str(),
              static_cast<unsigned long long>(empty_with_io));
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T3: R*-tree dead space and overlap (Fig. 3)\n");
  {
    Built uniform;
    Build(uniform, 7, 20000, 100000, 500, /*clustered=*/false);
    Report("uniform workload", uniform, 7, 100000);
  }
  {
    Built clustered;
    Build(clustered, 11, 20000, 100000, 500, /*clustered=*/true);
    Report("clustered workload", clustered, 11, 100000);
  }
  return 0;
}
