// T11 — §5.4 current time and transactions: per-statement vs
// per-transaction current time. Shows (a) the semantic difference — a
// transaction in TRANSACTION mode sees one frozen current time even while
// the clock moves, (b) the named-memory lifecycle across concurrent
// sessions (allocated on first blade use, freed by the transaction-end
// callback), and (c) the cost of each mode.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"

namespace grtdb {
namespace {

using bench::Exec;
using bench::Fmt;

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T11: current time and transactions (§5.4)\n\n");

  Server server;
  bench::Check(RegisterGRTreeBlade(&server), "register");
  ServerSession* session = server.CreateSession();
  Exec(server, session, "CREATE TABLE t (e grt_timeextent)");
  Exec(server, session,
       "CREATE INDEX t_idx ON t(e grt_opclass) USING grtree_am");
  Exec(server, session, "SET CURRENT_TIME TO 10000");
  Exec(server, session, "INSERT INTO t VALUES ('10000, UC, 10000, NOW')");

  auto count_at_point = [&](int64_t point) {
    ResultSet result = Exec(
        server, session,
        "SELECT COUNT(*) FROM t WHERE Overlaps(e, '" +
            std::to_string(point) + ", " + std::to_string(point) + ", " +
            std::to_string(point) + ", " + std::to_string(point) + "')");
    return result.rows[0][0];
  };

  std::printf("Semantics (a growing stair inserted at ct=10000; the probe "
              "point (ct', ct') is covered only once the effective current "
              "time reaches ct'):\n\n");
  std::printf("  mode=STATEMENT:   clock 10050, probe(10050,10050) -> %s "
              "row(s)\n",
              (Exec(server, session, "SET CURRENT_TIME TO 10050"),
               count_at_point(10050))
                  .c_str());
  Exec(server, session, "SET TIME MODE TRANSACTION");
  Exec(server, session, "BEGIN WORK");
  std::printf("  mode=TRANSACTION: BEGIN at clock 10050 pins the time; "
              "probe(10050,10050) -> %s row(s)\n",
              count_at_point(10050).c_str());
  Exec(server, session, "SET CURRENT_TIME TO 10100");
  std::printf("    clock moved to 10100 inside the transaction; "
              "probe(10100,10100) -> %s row(s)  (still sees 10050)\n",
              count_at_point(10100).c_str());
  std::printf("    named-memory blocks holding pinned times: %zu\n",
              server.named_memory().count());
  Exec(server, session, "COMMIT WORK");
  std::printf("    after COMMIT (end-of-transaction callback freed the "
              "block): %zu\n",
              server.named_memory().count());
  Exec(server, session, "BEGIN WORK");
  std::printf("  new transaction at clock 10100: probe(10100,10100) -> %s "
              "row(s)\n",
              count_at_point(10100).c_str());
  Exec(server, session, "COMMIT WORK");
  Exec(server, session, "SET TIME MODE STATEMENT");

  std::printf("\nConcurrent sessions each pin their own per-transaction "
              "time (named memory is keyed by session id):\n");
  {
    std::vector<std::thread> threads;
    std::atomic<size_t> peak{0};
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&server, &peak] {
        ServerSession* s = server.CreateSession();
        ResultSet r;
        bench::Check(server.Execute(s, "SET TIME MODE TRANSACTION", &r),
                     "mode");
        bench::Check(server.Execute(s, "BEGIN WORK", &r), "begin");
        bench::Check(
            server.Execute(
                s, "SELECT COUNT(*) FROM t WHERE Overlaps(e, '10000, UC, "
                   "10000, NOW')",
                &r),
            "probe");
        size_t current = server.named_memory().count();
        size_t expected = peak.load();
        while (current > expected &&
               !peak.compare_exchange_weak(expected, current)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        bench::Check(server.Execute(s, "COMMIT WORK", &r), "commit");
        bench::Check(server.CloseSession(s), "close");
      });
    }
    for (auto& thread : threads) thread.join();
    std::printf("  peak concurrent pinned-time blocks: %zu, after all "
                "commits: %zu\n",
                peak.load(), server.named_memory().count());
  }

  std::printf("\nCost of resolving the current time per strategy-function "
              "call:\n");
  for (const char* mode : {"STATEMENT", "TRANSACTION"}) {
    Exec(server, session, std::string("SET TIME MODE ") + mode);
    Exec(server, session, "BEGIN WORK");
    const int kCalls = 2000;
    bench::Timer timer;
    for (int i = 0; i < kCalls; ++i) {
      Exec(server, session,
           "SELECT COUNT(*) FROM t WHERE Overlaps(e, '10000, 10000, 10000, "
           "10000')");
    }
    const double ms = timer.ElapsedMs();
    Exec(server, session, "COMMIT WORK");
    std::printf("  mode=%-11s %d indexed statements in %s ms (%s us/stmt; "
                "TRANSACTION adds a named-memory lookup per call)\n",
                mode, kCalls, Fmt(ms, 1).c_str(),
                Fmt(1000.0 * ms / kCalls, 1).c_str());
  }
  server.CloseSession(session);
  return 0;
}
