// T5 — the headline claim (§3, [BJSS98]): the GR-tree outperforms
// R*-tree-based alternatives on now-relative bitemporal data because its
// bounding regions produce less overlap and dead space. Both trees run on
// identical page-based node stores; the baseline indexes UC/NOW through
// the maximum-timestamp transform and must verify candidates against the
// exact geometry (extra false positives = extra I/O).

#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "blades/rstar_blade.h"
#include "core/grtree.h"
#include "rstar/rstar_tree.h"
#include "storage/pager.h"
#include "storage/space.h"
#include "temporal/predicates.h"
#include "workload/workload.h"

namespace grtdb {
namespace {

using bench::Fmt;
using bench::TablePrinter;

constexpr int64_t kMaxTimestamp = 200000;

struct Pair {
  MemorySpace grt_space;
  MemorySpace rst_space;
  std::unique_ptr<Pager> grt_pager;
  std::unique_ptr<Pager> rst_pager;
  std::unique_ptr<PagerNodeStore> grt_store;
  std::unique_ptr<PagerNodeStore> rst_store;
  std::unique_ptr<GRTree> grt;
  std::unique_ptr<RStarTree> rst;
  std::vector<std::pair<TimeExtent, uint64_t>> live;
  std::unordered_map<uint64_t, TimeExtent> live_by_payload;
  uint64_t grt_insert_reads = 0;
  uint64_t grt_insert_writes = 0;
  uint64_t rst_insert_reads = 0;
  uint64_t rst_insert_writes = 0;
  uint64_t ops = 0;
};

void BuildPair(Pair& pair, double now_fraction, uint64_t seed, int actions,
               int64_t* out_ct) {
  pair.grt_pager = std::make_unique<Pager>(&pair.grt_space, 8192);
  pair.rst_pager = std::make_unique<Pager>(&pair.rst_space, 8192);
  pair.grt_store = std::make_unique<PagerNodeStore>(pair.grt_pager.get());
  pair.rst_store = std::make_unique<PagerNodeStore>(pair.rst_pager.get());
  NodeId anchor;
  auto grt_or = GRTree::Create(pair.grt_store.get(), GRTree::Options{},
                               &anchor);
  bench::Check(grt_or.status(), "grt create");
  pair.grt = std::move(grt_or).value();
  auto rst_or = RStarTree::Create(pair.rst_store.get(), RStarTree::Options{},
                                  &anchor);
  bench::Check(rst_or.status(), "rst create");
  pair.rst = std::move(rst_or).value();

  WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.now_relative_fraction = now_fraction;
  BitemporalWorkload workload(wopts);
  for (int action = 0; action < actions; ++action) {
    for (const IndexOp& op : workload.NextAction()) {
      ++pair.ops;
      if (op.kind == IndexOp::Kind::kInsert) {
        bench::Check(pair.grt->Insert(op.extent, op.payload, op.ct),
                     "grt insert");
        bench::Check(pair.rst->Insert(
                         TransformExtent(op.extent, kMaxTimestamp),
                         op.payload),
                     "rst insert");
      } else {
        bool found = false;
        bench::Check(pair.grt->Delete(op.extent, op.payload, op.ct, &found),
                     "grt delete");
        bench::Check(pair.rst->Delete(
                         TransformExtent(op.extent, kMaxTimestamp),
                         op.payload, &found),
                     "rst delete");
      }
    }
  }
  pair.grt_insert_reads = pair.grt_store->stats().node_reads;
  pair.grt_insert_writes = pair.grt_store->stats().node_writes;
  pair.rst_insert_reads = pair.rst_store->stats().node_reads;
  pair.rst_insert_writes = pair.rst_store->stats().node_writes;
  for (const auto& [payload, extent] : workload.live()) {
    pair.live.emplace_back(extent, payload);
    pair.live_by_payload.emplace(payload, extent);
  }
  *out_ct = workload.current_time();
}

struct QueryResult {
  double grt_reads = 0.0;
  double rst_reads = 0.0;
  double rst_false_positives = 0.0;
  uint64_t mismatches = 0;
};

QueryResult RunQueries(Pair& pair, int64_t ct, uint64_t seed, int count,
                       int64_t span, bool stair_queries) {
  WorkloadOptions wopts;
  wopts.seed = seed;
  BitemporalWorkload probe(wopts);
  QueryResult out;
  for (int q = 0; q < count; ++q) {
    // Stair queries ask for "current and valid around vt1" — the
    // characteristic now-relative query; rect queries are bitemporal
    // range probes.
    TimeExtent query = probe.GroundRectQuery(span);
    if (stair_queries) {
      const int64_t vt1 = query.vt_begin.chronon();
      query = TimeExtent(Timestamp::FromChronon(ct), Timestamp::UC(),
                         Timestamp::FromChronon(std::min(vt1, ct)),
                         Timestamp::NOW());
    }
    // GR-tree.
    pair.grt_store->ResetStats();
    std::vector<GRTree::Entry> grt_results;
    bench::Check(pair.grt->SearchAll(PredicateOp::kOverlaps, query, ct,
                                     &grt_results),
                 "grt search");
    out.grt_reads += static_cast<double>(pair.grt_store->stats().node_reads);

    // R*-tree + exact verification.
    pair.rst_store->ResetStats();
    std::vector<RStarTree::Entry> candidates;
    bench::Check(
        pair.rst->SearchAll(TransformExtent(query, kMaxTimestamp),
                            &candidates),
        "rst search");
    out.rst_reads += static_cast<double>(pair.rst_store->stats().node_reads);
    uint64_t verified = 0;
    const Region query_region = ResolveExtent(query, ct);
    for (const auto& candidate : candidates) {
      // Exact-geometry check against the data tuple (the §3 final step);
      // in the DataBlade this is a base-table read per candidate.
      auto it = pair.live_by_payload.find(candidate.payload);
      if (it != pair.live_by_payload.end() &&
          ResolveExtent(it->second, ct).Overlaps(query_region)) {
        ++verified;
      }
    }
    out.rst_false_positives +=
        static_cast<double>(candidates.size() - verified);
    if (verified != grt_results.size()) ++out.mismatches;
  }
  out.grt_reads /= count;
  out.rst_reads /= count;
  out.rst_false_positives /= count;
  return out;
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T5: GR-tree vs R*-tree(max-timestamp transform) on "
              "now-relative bitemporal data\n");
  std::printf("(identical page stores; reads = tree node accesses per "
              "query; the baseline additionally pays one base-table read "
              "per false positive)\n");

  std::printf("\nSweep over the now-relative fraction "
              "(12000 actions, 400 overlap queries):\n\n");
  bench::TablePrinter sweep(
      {"now-rel fraction", "live tuples", "GR reads/q", "R* reads/q",
       "R* false pos/q", "effective R*/GR", "GR writes/op", "R* writes/op",
       "answers agree"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Pair pair;
    int64_t ct;
    BuildPair(pair, fraction, 77, 12000, &ct);
    QueryResult result = RunQueries(pair, ct, 1234, 400, 60, false);
    const double rst_effective = result.rst_reads + result.rst_false_positives;
    sweep.AddRow(
        {Fmt(fraction, 2), std::to_string(pair.live.size()),
         Fmt(result.grt_reads, 1), Fmt(result.rst_reads, 1),
         Fmt(result.rst_false_positives, 1),
         Fmt(rst_effective / result.grt_reads, 2),
         Fmt(static_cast<double>(pair.grt_insert_writes) /
                 static_cast<double>(pair.ops),
             2),
         Fmt(static_cast<double>(pair.rst_insert_writes) /
                 static_cast<double>(pair.ops),
             2),
         result.mismatches == 0 ? "yes" : "NO"});
  }
  sweep.Print();

  std::printf("\nSweep over query extent (now-rel fraction 0.75):\n\n");
  bench::TablePrinter spans({"query span (days)", "GR reads/q", "R* reads/q",
                             "R* false pos/q", "effective R*/GR"});
  {
    Pair pair;
    int64_t ct;
    BuildPair(pair, 0.75, 78, 12000, &ct);
    for (int64_t span : {5, 30, 120, 365}) {
      QueryResult result = RunQueries(pair, ct, 4321 + span, 300, span, false);
      spans.AddRow(
          {std::to_string(span), Fmt(result.grt_reads, 1),
           Fmt(result.rst_reads, 1), Fmt(result.rst_false_positives, 1),
           Fmt((result.rst_reads + result.rst_false_positives) /
                   result.grt_reads,
               2)});
    }
  }
  spans.Print();

  std::printf("\nNow-relative (stair-shaped) queries — \"current and valid "
              "since vt1\" (now-rel fraction 0.75):\n\n");
  bench::TablePrinter stairs({"now-rel fraction", "GR reads/q", "R* reads/q",
                              "R* false pos/q", "effective R*/GR"});
  for (double fraction : {0.25, 0.75}) {
    Pair pair;
    int64_t ct;
    BuildPair(pair, fraction, 80, 12000, &ct);
    QueryResult result = RunQueries(pair, ct, 555, 300, 30, true);
    stairs.AddRow(
        {Fmt(fraction, 2), Fmt(result.grt_reads, 1),
         Fmt(result.rst_reads, 1), Fmt(result.rst_false_positives, 1),
         Fmt((result.rst_reads + result.rst_false_positives) /
                 result.grt_reads,
             2)});
  }
  stairs.Print();

  std::printf("\nAging: the same index queried at later current times "
              "(no maintenance in either tree):\n\n");
  bench::TablePrinter aging({"current time", "GR reads/q", "R* reads/q",
                             "R* false pos/q"});
  {
    Pair pair;
    int64_t ct;
    BuildPair(pair, 0.75, 79, 12000, &ct);
    for (int64_t delta : {0, 365, 1825, 7300}) {
      QueryResult result = RunQueries(pair, ct + delta, 777, 300, 60, false);
      aging.AddRow({"ct+" + std::to_string(delta), Fmt(result.grt_reads, 1),
                    Fmt(result.rst_reads, 1),
                    Fmt(result.rst_false_positives, 1)});
    }
  }
  aging.Print();
  return 0;
}
