// Group-commit throughput: N writer threads committing single-page WAL
// transactions as fast as they can. The interesting column is
// fsyncs/commit — without group commit it is pinned at 1.0; with the
// commit queue coalescing concurrent committers it drops well below 1.0
// as soon as there is any concurrency (ISSUE acceptance: < 1.0 at 16
// threads).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "storage/pager.h"
#include "storage/space.h"
#include "storage/wal_store.h"

namespace grtdb {
namespace {

// --smoke shrinks the run for the ctest smoke label; the self-check holds
// either way.
int g_txns_per_thread = 400;

struct RunResult {
  double commits_per_sec = 0;
  double fsyncs_per_commit = 0;
  uint64_t group_commits = 0;
  uint64_t batched_commits = 0;
  uint64_t fsyncs_saved = 0;
};

RunResult RunThreads(int threads) {
  const std::string log_path =
      (std::filesystem::temp_directory_path() / "bench_wal_commit.log")
          .string();
  std::remove(log_path.c_str());

  MemorySpace space;
  Pager pager(&space, 256);
  PagerNodeStore inner(&pager);

  WalOptions options;
  options.max_batch = 64;
  options.max_wait_us = 100;  // tiny linger to help batches form
  auto wal_or = WalNodeStore::Open(&inner, log_path, options);
  bench::Check(wal_or.status(), "WalNodeStore::Open");
  auto wal = std::move(wal_or).value();
  bench::Check(wal->Recover(), "Recover");

  std::vector<NodeId> ids(threads);
  for (int t = 0; t < threads; ++t) {
    bench::Check(wal->AllocateNode(&ids[t]), "AllocateNode");
  }

  std::atomic<int> failures{0};
  bench::Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint8_t page[kPageSize];
      for (int i = 0; i < g_txns_per_thread; ++i) {
        auto txn = wal->BeginConcurrent();
        std::memset(page, static_cast<uint8_t>(i), sizeof(page));
        if (!txn->WriteNode(ids[t], page).ok() || !txn->Commit().ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_ms = timer.ElapsedMs();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %d worker(s) failed\n", failures.load());
    std::exit(1);
  }

  const WalStats stats = wal->wal_stats();
  RunResult result;
  result.commits_per_sec =
      static_cast<double>(stats.transactions_committed) / elapsed_ms * 1000.0;
  result.fsyncs_per_commit =
      static_cast<double>(stats.syncs) /
      static_cast<double>(stats.transactions_committed);
  result.group_commits = stats.group_commits;
  result.batched_commits = stats.batched_commits;
  result.fsyncs_saved = stats.fsyncs_saved;

  wal.reset();
  std::remove(log_path.c_str());
  return result;
}

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

int Run() {
  std::printf("WAL group commit: %d txns/thread, 1-page txns, max_batch=64, "
              "max_wait_us=100\n\n",
              g_txns_per_thread);
  bench::TablePrinter table({"threads", "commits/s", "fsyncs/commit",
                             "group commits", "batched", "fsyncs saved"});
  bool ok = true;
  for (int threads : {1, 4, 16}) {
    const RunResult r = RunThreads(threads);
    table.AddRow({std::to_string(threads), Fmt("%.0f", r.commits_per_sec),
                  Fmt("%.3f", r.fsyncs_per_commit),
                  std::to_string(r.group_commits),
                  std::to_string(r.batched_commits),
                  std::to_string(r.fsyncs_saved)});
    if (threads == 16 && r.fsyncs_per_commit >= 1.0) ok = false;
  }
  table.Print();
  std::printf("\nfsyncs/commit at 16 threads %s the < 1.0 target\n",
              ok ? "meets" : "MISSES");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace grtdb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) grtdb::g_txns_per_thread = 50;
  }
  return grtdb::Run();
}
