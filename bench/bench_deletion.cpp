// T9 — §5.5 deletions: (a) retrieve-and-delete scans under the three
// cursor policies (restart after every delete / restart only on
// condensation — the prototype's compromise / postponed re-insertion), and
// (b) vacuuming: bulk deletion of old entries one-by-one vs dropping the
// index and rebuilding it with the bulk-loading algorithm.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/grtree.h"
#include "storage/pager.h"
#include "storage/space.h"
#include "workload/workload.h"

namespace grtdb {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct Built {
  MemorySpace space;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<PagerNodeStore> store;
  std::unique_ptr<GRTree> tree;
  int64_t ct = 0;
  std::vector<GRTree::Entry> live;
};

void Build(Built& built, DeletionPolicy policy, uint64_t seed, int actions) {
  built.pager = std::make_unique<Pager>(&built.space, 8192);
  built.store = std::make_unique<PagerNodeStore>(built.pager.get());
  GRTree::Options options;
  options.deletion_policy = policy;
  NodeId anchor;
  auto tree_or = GRTree::Create(built.store.get(), options, &anchor);
  bench::Check(tree_or.status(), "create");
  built.tree = std::move(tree_or).value();
  WorkloadOptions wopts;
  wopts.seed = seed;
  BitemporalWorkload workload(wopts);
  for (int action = 0; action < actions; ++action) {
    for (const IndexOp& op : workload.NextAction()) {
      if (op.kind == IndexOp::Kind::kInsert) {
        bench::Check(built.tree->Insert(op.extent, op.payload, op.ct),
                     "insert");
      } else {
        bool found = false;
        bench::Check(built.tree->Delete(op.extent, op.payload, op.ct, &found),
                     "delete");
      }
    }
  }
  built.ct = workload.current_time();
  for (const auto& [payload, extent] : workload.live()) {
    built.live.push_back(GRTree::Entry{extent, payload});
  }
}

const char* PolicyName(DeletionPolicy policy) {
  switch (policy) {
    case DeletionPolicy::kRestartAlways:
      return "restart after every delete";
    case DeletionPolicy::kRestartOnCondense:
      return "restart on condense (prototype)";
    case DeletionPolicy::kPostponeReinsert:
      return "postponed re-insertion";
  }
  return "?";
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T9: deletion strategies (§5.5)\n");

  std::printf("\nRetrieve-and-delete of ~35%% of a 10000-action index "
              "(cursor-driven, as a DELETE statement runs):\n\n");
  bench::TablePrinter policies({"policy", "deleted", "cursor restarts",
                                "node reads", "node writes", "ms",
                                "consistent after"});
  for (DeletionPolicy policy :
       {DeletionPolicy::kRestartAlways, DeletionPolicy::kRestartOnCondense,
        DeletionPolicy::kPostponeReinsert}) {
    Built built;
    Build(built, policy, 31, 10000);
    // Delete everything overlapping the older half of transaction time.
    const TimeExtent target =
        TimeExtent::Ground(0, 10000 + (built.ct - 10000) / 2, 0, 100000);
    built.store->ResetStats();
    bench::Timer timer;
    auto cursor_or =
        built.tree->Search(PredicateOp::kOverlaps, target, built.ct);
    bench::Check(cursor_or.status(), "search");
    auto cursor = std::move(cursor_or).value();
    uint64_t deleted = 0;
    while (true) {
      bool has = false;
      GRTree::Entry entry;
      bench::Check(cursor->Next(&has, &entry), "next");
      if (!has) break;
      bool found = false;
      bench::Check(
          built.tree->Delete(entry.extent, entry.payload, built.ct, &found),
          "delete");
      if (found) ++deleted;
      if (policy == DeletionPolicy::kRestartAlways) cursor->Reset();
    }
    bench::Check(built.tree->FlushPending(built.ct), "flush");
    const double ms = timer.ElapsedMs();
    const Status check = built.tree->CheckConsistency(built.ct);
    policies.AddRow({PolicyName(policy), std::to_string(deleted),
                     std::to_string(cursor->restarts()),
                     std::to_string(built.store->stats().node_reads),
                     std::to_string(built.store->stats().node_writes),
                     Fmt(ms, 1), check.ok() ? "yes" : "NO"});
  }
  policies.Print();

  std::printf("\nVacuuming (delete all data older than a cutoff, ~2/3 of "
              "the index):\n\n");
  bench::TablePrinter vacuum({"approach", "remaining", "node reads",
                              "node writes", "ms", "consistent"});
  for (int approach = 0; approach < 2; ++approach) {
    Built built;
    Build(built, DeletionPolicy::kRestartOnCondense, 32, 10000);
    const int64_t cutoff = 10000 + 2 * (built.ct - 10000) / 3;
    built.store->ResetStats();
    bench::Timer timer;
    if (approach == 0) {
      // One-by-one deletion through the index.
      auto cursor_or = built.tree->Search(
          PredicateOp::kOverlaps, TimeExtent::Ground(0, cutoff, 0, 1000000),
          built.ct);
      bench::Check(cursor_or.status(), "search");
      auto cursor = std::move(cursor_or).value();
      while (true) {
        bool has = false;
        GRTree::Entry entry;
        bench::Check(cursor->Next(&has, &entry), "next");
        if (!has) break;
        // Vacuum only frozen history: keep current (UC) tuples.
        if (entry.extent.IsCurrent()) continue;
        bool found = false;
        bench::Check(built.tree->Delete(entry.extent, entry.payload,
                                        built.ct, &found),
                     "delete");
      }
    } else {
      // Drop and rebuild via bulk loading (the paper's "straightforward
      // solution").
      std::vector<GRTree::Entry> keep;
      for (const GRTree::Entry& entry : built.live) {
        const bool old = !entry.extent.IsCurrent() &&
                         entry.extent.tt_end.chronon() <= cutoff;
        if (!old) keep.push_back(entry);
      }
      bench::Check(built.tree->Drop(), "drop");
      GRTree::Options options;
      NodeId anchor;
      auto tree_or = GRTree::Create(built.store.get(), options, &anchor);
      bench::Check(tree_or.status(), "create");
      built.tree = std::move(tree_or).value();
      bench::Check(built.tree->BulkLoad(std::move(keep), built.ct), "bulk");
    }
    const double ms = timer.ElapsedMs();
    const Status check = built.tree->CheckConsistency(built.ct);
    vacuum.AddRow({approach == 0 ? "index deletion, one-by-one"
                                 : "drop + bulk-load rebuild",
                   std::to_string(built.tree->size()),
                   std::to_string(built.store->stats().node_reads),
                   std::to_string(built.store->stats().node_writes),
                   Fmt(ms, 1), check.ok() ? "yes" : "NO"});
  }
  vacuum.Print();
  std::printf("\n(The two vacuum approaches retain slightly different sets "
              "on purpose: one-by-one keeps every tuple not matched by the "
              "cutoff predicate through the index, the rebuild filters the "
              "live set directly; both keep all current tuples.)\n");
  return 0;
}
