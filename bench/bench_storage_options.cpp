// T8 — §5.3 storage options, concurrency, and recovery. Runs the same
// multi-session workload against each index-storage layout available to a
// DataBlade: one large object for the whole index (the prototype's
// choice), one LO per node, one LO per subtree, and a regular OS file.
// Reports throughput, LO-lock waits/timeouts, and LO opens — quantifying
// the paper's point that automatic LO-granularity two-phase locking makes
// "industrial strength" concurrency impossible (a single-LO index
// serializes writers entirely), while the OS-file option has no locking
// (or recovery) at all unless the developer builds it.

#include <atomic>
#include <cstdio>
#include <thread>

#include <set>

#include "bench/bench_util.h"
#include "core/grtree.h"
#include "storage/wal_store.h"
#include "blades/grtree_blade.h"
#include "workload/workload.h"

namespace grtdb {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct RunResult {
  double wall_ms = 0.0;
  uint64_t statements = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_timeouts = 0;
  uint64_t lo_opens = 0;
  uint64_t failed = 0;
};

RunResult RunLayout(GRTreeBladeOptions::Storage storage,
                    uint64_t nodes_per_lo, int sessions, int per_session) {
  Server server;
  GRTreeBladeOptions options;
  options.storage = storage;
  options.nodes_per_lo = nodes_per_lo;
  options.external_dir = "/tmp";
  bench::Check(RegisterGRTreeBlade(&server, options), "register");
  ServerSession* admin = server.CreateSession();
  bench::Exec(server, admin, "CREATE TABLE t (id int, e grt_timeextent)");
  bench::Exec(server, admin,
              "CREATE INDEX t_idx ON t(e grt_opclass) USING grtree_am");
  bench::Exec(server, admin, "SET CURRENT_TIME TO 20000");
  // Preload so scans traverse a real tree.
  for (int i = 0; i < 600; ++i) {
    bench::Exec(server, admin,
                "INSERT INTO t VALUES (" + std::to_string(i) +
                    ", '20000, UC, " + std::to_string(19000 + (i % 900)) +
                    ", NOW')");
  }
  server.lock_manager().ResetStats();

  std::atomic<uint64_t> statements{0};
  std::atomic<uint64_t> failed{0};
  bench::Timer timer;
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      ServerSession* session = server.CreateSession();
      ResultSet result;
      Random rng(1000 + s);
      for (int i = 0; i < per_session; ++i) {
        std::string sql;
        if (rng.Bernoulli(0.5)) {
          // Reader.
          const int64_t vt = 19000 + rng.UniformRange(0, 900);
          sql = "SELECT COUNT(*) FROM t WHERE Overlaps(e, '20000, 20000, " +
                std::to_string(vt) + ", " + std::to_string(vt + 20) + "')";
        } else {
          // Writer.
          sql = "INSERT INTO t VALUES (" +
                std::to_string(100000 + s * per_session + i) +
                ", '20000, UC, " +
                std::to_string(19000 + rng.UniformRange(0, 900)) + ", NOW')";
        }
        Status status = server.Execute(session, sql, &result);
        ++statements;
        if (!status.ok()) ++failed;  // lock timeouts under contention
      }
      server.CloseSession(session);
    });
  }
  for (auto& thread : threads) thread.join();

  RunResult out;
  out.wall_ms = timer.ElapsedMs();
  out.statements = statements;
  out.failed = failed;
  out.lock_waits = server.lock_manager().stats().waits;
  out.lock_timeouts = server.lock_manager().stats().timeouts;
  // LO opens are tracked by the clustered layouts only (per-access opens).
  server.CloseSession(admin);
  return out;
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T8: index storage options under concurrency (§5.3)\n");
  std::printf("(4 sessions x 250 statements, 50%% readers / 50%% writers; "
              "LO locks are two-phase: X locks live to transaction end)\n\n");

  struct Layout {
    const char* name;
    GRTreeBladeOptions::Storage storage;
    uint64_t nodes_per_lo;
  };
  const Layout layouts[] = {
      {"single LO (paper's choice)", GRTreeBladeOptions::Storage::kSingleLo,
       0},
      {"one LO per node", GRTreeBladeOptions::Storage::kLoPerNode, 1},
      {"one LO per subtree (16 nodes)",
       GRTreeBladeOptions::Storage::kLoPerSubtree, 16},
      {"OS file (no locking at all)",
       GRTreeBladeOptions::Storage::kExternalFile, 0},
  };

  bench::TablePrinter table({"layout", "stmts/s", "lock waits",
                             "lock timeouts", "failed stmts",
                             "handle bytes/entry"});
  for (const Layout& layout : layouts) {
    RunResult result = RunLayout(layout.storage, layout.nodes_per_lo,
                                 /*sessions=*/4, /*per_session=*/250);
    const char* handle_cost =
        layout.storage == GRTreeBladeOptions::Storage::kLoPerNode
            ? "64 (LO handle per child pointer)"
            : "8";
    table.AddRow({layout.name,
                  bench::Fmt(1000.0 * static_cast<double>(result.statements) /
                                 result.wall_ms,
                             0),
                  std::to_string(result.lock_waits),
                  std::to_string(result.lock_timeouts),
                  std::to_string(result.failed), handle_cost});
  }
  table.Print();

  // Lock-footprint analysis: which resources would a scan/insert lock
  // under each layout? This is the §5.3 concurrency argument in numbers:
  // a single-LO index locks ONE resource covering everything, so any
  // reader conflicts with any writer; per-node LOs shrink the footprint
  // but the DataBlade still cannot release internal-node locks early
  // (no link-protocol is possible on top of LO two-phase locking).
  std::printf("\nLock footprint per operation (single-threaded analysis; "
              "smaller footprint / more resources = more potential "
              "concurrency):\n\n");
  {
    struct FootprintStore final : NodeStore {
      NodeStore* inner;
      std::set<uint64_t> touched;
      explicit FootprintStore(NodeStore* inner) : inner(inner) {}
      Status AllocateNode(NodeId* id) override {
        return inner->AllocateNode(id);
      }
      Status FreeNode(NodeId id) override { return inner->FreeNode(id); }
      Status ReadNode(NodeId id, uint8_t* out) override {
        touched.insert(inner->LoOfNode(id));
        return inner->ReadNode(id, out);
      }
      Status WriteNode(NodeId id, const uint8_t* data) override {
        touched.insert(inner->LoOfNode(id));
        return inner->WriteNode(id, data);
      }
      uint64_t LoOfNode(NodeId id) const override {
        return inner->LoOfNode(id);
      }
      Status Flush() override { return inner->Flush(); }
    };

    bench::TablePrinter footprint(
        {"layout", "lockable LOs", "avg LOs locked/query",
         "avg LOs locked/insert", "reader-writer conflict odds"});
    struct Shape {
      const char* name;
      uint64_t nodes_per_lo;  // 0 = single LO
    };
    for (const Shape& shape :
         {Shape{"single LO", 0}, Shape{"one LO per node", 1},
          Shape{"one LO per subtree (16)", 16}}) {
      MemorySpace backing;
      auto sbspace_or = Sbspace::Open(&backing, 2048);
      bench::Check(sbspace_or.status(), "sbspace");
      auto sbspace = std::move(sbspace_or).value();
      std::unique_ptr<NodeStore> base;
      if (shape.nodes_per_lo == 0) {
        auto store_or = SingleLoNodeStore::Open(sbspace.get(), LoHandle{});
        bench::Check(store_or.status(), "store");
        base = std::move(store_or).value();
      } else {
        base = std::make_unique<ClusteredLoNodeStore>(sbspace.get(),
                                                      shape.nodes_per_lo);
      }
      FootprintStore store(base.get());
      GRTree::Options tree_options;
      NodeId anchor;
      auto tree_or = GRTree::Create(&store, tree_options, &anchor);
      bench::Check(tree_or.status(), "tree");
      auto tree = std::move(tree_or).value();
      Random rng(5);
      const int64_t ct = 20000;
      for (uint64_t i = 1; i <= 4000; ++i) {
        TimeExtent extent(
            Timestamp::FromChronon(ct), Timestamp::UC(),
            Timestamp::FromChronon(ct - rng.UniformRange(0, 900)),
            Timestamp::NOW());
        bench::Check(tree->Insert(extent, i, ct), "insert");
      }
      // Count distinct LOs (resources) in the layout.
      uint64_t resources = 1;
      if (auto* clustered =
              dynamic_cast<ClusteredLoNodeStore*>(base.get())) {
        resources = clustered->cluster_handles().size();
      }
      double query_footprint = 0.0;
      const int kQueries = 200;
      for (int q = 0; q < kQueries; ++q) {
        store.touched.clear();
        const int64_t vt = ct - rng.UniformRange(0, 900);
        std::vector<GRTree::Entry> results;
        bench::Check(
            tree->SearchAll(PredicateOp::kOverlaps,
                            TimeExtent::Ground(ct, ct, vt, vt + 5), ct,
                            &results),
            "search");
        query_footprint += static_cast<double>(store.touched.size());
      }
      query_footprint /= kQueries;
      double insert_footprint = 0.0;
      const int kInserts = 200;
      for (int i = 0; i < kInserts; ++i) {
        store.touched.clear();
        TimeExtent extent(
            Timestamp::FromChronon(ct), Timestamp::UC(),
            Timestamp::FromChronon(ct - rng.UniformRange(0, 900)),
            Timestamp::NOW());
        bench::Check(tree->Insert(extent, 100000 + i, ct), "insert");
        insert_footprint += static_cast<double>(store.touched.size());
      }
      insert_footprint /= kInserts;
      const double odds =
          std::min(1.0, (query_footprint + insert_footprint) /
                            static_cast<double>(resources));
      footprint.AddRow({shape.name, std::to_string(resources),
                        bench::Fmt(query_footprint, 1),
                        bench::Fmt(insert_footprint, 1),
                        bench::Fmt(100.0 * odds, 1) + "%"});
    }
    footprint.Print();
  }

  // The recovery half of §5.3: what the OS-file option costs once the
  // developer builds the write-ahead logging the server will not provide.
  std::printf("\nOS-file recovery: the same insert workload bare vs. "
              "behind the write-ahead log (one transaction per insert):\n\n");
  {
    bench::TablePrinter recovery({"variant", "inserts", "ms", "fsyncs",
                                  "log bytes", "survives crash"});
    for (int variant = 0; variant < 2; ++variant) {
      MemorySpace backing;
      Pager pager(&backing, 4096);
      PagerNodeStore inner(&pager);
      std::unique_ptr<WalNodeStore> wal;
      NodeStore* store = &inner;
      const std::string log_path = "/tmp/grtdb_t8_wal.log";
      if (variant == 1) {
        std::remove(log_path.c_str());
        auto wal_or = WalNodeStore::Open(&inner, log_path);
        bench::Check(wal_or.status(), "wal");
        wal = std::move(wal_or).value();
        bench::Check(wal->Recover(), "recover");
        store = wal.get();
      }
      GRTree::Options tree_options;
      NodeId anchor;
      auto tree_or = GRTree::Create(store, tree_options, &anchor);
      bench::Check(tree_or.status(), "tree");
      auto tree = std::move(tree_or).value();
      Random rng(12);
      const int64_t ct = 20000;
      const int kInserts = 2000;
      bench::Timer timer;
      for (int i = 0; i < kInserts; ++i) {
        if (wal != nullptr) bench::Check(wal->Begin(), "begin");
        TimeExtent extent(
            Timestamp::FromChronon(ct), Timestamp::UC(),
            Timestamp::FromChronon(ct - rng.UniformRange(0, 900)),
            Timestamp::NOW());
        bench::Check(tree->Insert(extent, i + 1, ct), "insert");
        if (wal != nullptr) bench::Check(wal->Commit(), "commit");
      }
      const double ms = timer.ElapsedMs();
      recovery.AddRow(
          {variant == 0 ? "OS file, no logging (§5.3 default)"
                        : "OS file + developer-built WAL",
           std::to_string(kInserts), bench::Fmt(ms, 1),
           variant == 0 ? "0"
                        : std::to_string(wal->wal_stats().syncs),
           variant == 0 ? "0"
                        : std::to_string(wal->wal_stats().log_bytes),
           variant == 0 ? "NO (torn updates possible)" : "yes (redo log)"});
      if (variant == 1) std::remove(log_path.c_str());
    }
    recovery.Print();
  }

  std::printf(
      "\nReading the table with §5.3:\n"
      " * single LO: every reader/writer locks the whole index — waits and\n"
      "   timeouts concentrate here; simplest recovery story (one object).\n"
      " * LO per node: finest locking the sbspace offers, but each parent\n"
      "   entry must store a large LO handle and every node access is an\n"
      "   open/close of a large object.\n"
      " * LO per subtree: the in-between design the paper suggests\n"
      "   investigating.\n"
      " * OS file: no contention because there is NO locking (and no\n"
      "   recovery) — the developer would have to build both, which the\n"
      "   APIs give no help with.\n");
  return 0;
}
