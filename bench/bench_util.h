#ifndef GRTDB_BENCH_BENCH_UTIL_H_
#define GRTDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/server.h"

namespace grtdb {
namespace bench {

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

inline ResultSet Exec(Server& server, ServerSession* session,
                      const std::string& sql) {
  ResultSet result;
  Status status = server.Execute(session, sql, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL sql '%s': %s\n", sql.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  return result;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Minimal fixed-width table printer for the bench reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        std::printf("%-*s%s", static_cast<int>(widths[i]), cells[i].c_str(),
                    i + 1 < cells.size() ? "  " : "\n");
      }
    };
    line(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    line(rule);
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 1) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace bench
}  // namespace grtdb

#endif  // GRTDB_BENCH_BENCH_UTIL_H_
