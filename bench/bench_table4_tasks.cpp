// T10 — Table 4: the paper's implementation-task inventory with its
// complexity/LOC estimates, side by side with this reproduction's modules
// and their measured line counts. (The paper measures only the DataBlade
// layer — the access-method core existed beforehand; we report both.)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

#ifndef GRTDB_SOURCE_DIR
#define GRTDB_SOURCE_DIR "."
#endif

namespace grtdb {
namespace {

uint64_t CountLines(const std::filesystem::path& root,
                    const std::vector<std::string>& relative_paths) {
  uint64_t lines = 0;
  for (const std::string& relative : relative_paths) {
    const std::filesystem::path path = root / relative;
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cc" && ext != ".h" && ext != ".cpp") continue;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) ++lines;
      }
    } else {
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) ++lines;
    }
  }
  return lines;
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  const std::filesystem::path root = GRTDB_SOURCE_DIR;
  std::printf("T10: implementation tasks (paper Table 4 vs this repo)\n\n");

  struct TaskRow {
    const char* task;
    const char* paper_complexity;
    const char* paper_loc;
    std::vector<std::string> our_paths;
  };
  const std::vector<TaskRow> tasks = {
      {"Adapting existing code to DataBlade coding guidelines", "low", "-",
       {"src/blade"}},
      {"Defining the structure of the opaque type", "average", "-",
       {"src/temporal/extent.h", "src/temporal/extent.cc"}},
      {"UC and NOW handling in opaque-type support functions", "low", "30",
       {"src/blades/timeextent.h", "src/blades/timeextent.cc"}},
      {"Writing operations on the opaque type", "low", "30",
       {"src/temporal/predicates.h"}},
      {"Designing the operator class framework", "high", "-",
       {"src/server/udr.h", "src/server/udr.cc", "src/server/vii.h",
        "src/server/vii.cc"}},
      {"Writing access method purpose functions", "high", "1020",
       {"src/blades/grtree_blade.h", "src/blades/grtree_blade.cc"}},
      {"Writing BLOB manipulation functions", "average", "280",
       {"src/storage/sbspace.h", "src/storage/sbspace.cc",
        "src/storage/node_store.h", "src/storage/node_store.cc"}},
      {"Writing functions manipulating the qualification descriptor",
       "average", "120",
       {"src/server/vii.cc"}},
  };

  bench::TablePrinter table({"task (paper Table 4)", "paper complexity",
                             "paper LOC", "this repo (LOC)"});
  for (const TaskRow& task : tasks) {
    table.AddRow({task.task, task.paper_complexity, task.paper_loc,
                  std::to_string(CountLines(root, task.our_paths))});
  }
  table.Print();

  std::printf("\nFull system inventory (the paper reused Informix and a "
              "pre-existing GR-tree core; this reproduction builds both):\n\n");
  bench::TablePrinter inventory({"module", "role", "LOC"});
  const std::vector<std::tuple<const char*, const char*, const char*>>
      modules = {
          {"src/common", "status/date/string/random utilities", "common"},
          {"src/temporal", "bitemporal model + region algebra", "temporal"},
          {"src/storage", "pages, buffer pool, sbspace LOs", "storage"},
          {"src/txn", "locks, transactions, sessions", "txn"},
          {"src/blade", "DataBlade API (memory/trace/libraries)", "blade"},
          {"src/rstar", "R*-tree substrate + baseline", "rstar"},
          {"src/core", "the GR-tree", "core"},
          {"src/server", "extensible server + VII", "server"},
          {"src/sql", "SQL front end", "sql"},
          {"src/blades", "GR-tree + R*-tree DataBlades", "blades"},
          {"src/workload", "bitemporal workload generator", "workload"},
          {"src/btree", "B+-tree substrate (custom compare())", "btree"},
          {"src/gist", "generalized search tree (§7)", "gist"},
          {"src/dbdk", "BladeSmith/BladeManager (§6.1)", "dbdk"},
      };
  uint64_t total = 0;
  for (const auto& [path, role, name] : modules) {
    const uint64_t lines = CountLines(root, {path});
    total += lines;
    inventory.AddRow({path, role, std::to_string(lines)});
  }
  inventory.AddRow({"(total src/)", "", std::to_string(total)});
  inventory.AddRow({"tests/", "unit/integration/property tests",
                    std::to_string(CountLines(root, {"tests"}))});
  inventory.AddRow({"bench/", "experiment harnesses",
                    std::to_string(CountLines(root, {"bench"}))});
  inventory.AddRow({"examples/", "runnable examples",
                    std::to_string(CountLines(root, {"examples"}))});
  inventory.Print();

  std::printf("\nPaper total effort: ~4.5 person-months for the DataBlade "
              "layer, with Informix and the GR-tree core taken as given.\n");
  return 0;
}
