// T12 (extension, paper §7): the generic access method. Measures what full
// genericity costs — every tree decision is an extension-function call
// resolved from the operator class — and shows the same purpose functions
// serving two data types. Complements T7, which measured the same
// trade-off inside the GR-tree's leaf predicates.

#include <cstdio>

#include "bench/bench_util.h"
#include "blades/gist_blade.h"
#include "common/random.h"
#include "gist/gist.h"
#include "storage/layout.h"
#include "storage/pager.h"
#include "storage/space.h"

namespace grtdb {
namespace {

using bench::Fmt;
using bench::TablePrinter;

GistKey Range(int64_t lo, int64_t hi) {
  GistKey key(16);
  StoreI64(key.data(), lo);
  StoreI64(key.data() + 8, hi);
  return key;
}

// Wraps an extension, counting invocations of each primitive.
struct CountingExtension {
  GistExtension inner;
  uint64_t consistent = 0;
  uint64_t unions = 0;
  uint64_t penalties = 0;
  uint64_t splits = 0;

  GistExtension Wrap() {
    GistExtension out;
    out.consistent = [this](const GistKey& key, const GistKey& query,
                            int strategy, bool leaf) {
      ++consistent;
      return inner.consistent(key, query, strategy, leaf);
    };
    out.unite = [this](std::span<const GistKey> keys) {
      ++unions;
      return inner.unite(keys);
    };
    out.penalty = [this](const GistKey& existing, const GistKey& key) {
      ++penalties;
      return inner.penalty(existing, key);
    };
    out.pick_split = [this](std::span<const GistKey> keys) {
      ++splits;
      return inner.pick_split(keys);
    };
    return out;
  }
};

GistExtension MakeRangeExtension() {
  GistExtension ext;
  auto lo = [](const GistKey& k) { return LoadI64(k.data()); };
  auto hi = [](const GistKey& k) { return LoadI64(k.data() + 8); };
  ext.consistent = [lo, hi](const GistKey& key, const GistKey& query,
                            int strategy, bool) {
    if (strategy == 0) {
      return lo(key) <= lo(query) && hi(query) <= hi(key);
    }
    return lo(key) <= hi(query) && lo(query) <= hi(key);
  };
  ext.unite = [lo, hi](std::span<const GistKey> keys) {
    int64_t l = lo(keys[0]);
    int64_t h = hi(keys[0]);
    for (const GistKey& key : keys.subspan(1)) {
      l = std::min(l, lo(key));
      h = std::max(h, hi(key));
    }
    return Range(l, h);
  };
  ext.penalty = [lo, hi](const GistKey& existing, const GistKey& key) {
    const int64_t l = std::min(lo(existing), lo(key));
    const int64_t h = std::max(hi(existing), hi(key));
    return static_cast<double>((h - l) - (hi(existing) - lo(existing)));
  };
  ext.pick_split = [lo](std::span<const GistKey> keys) {
    std::vector<size_t> order(keys.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return lo(keys[a]) < lo(keys[b]); });
    return std::vector<size_t>(order.begin() + order.size() / 2, order.end());
  };
  return ext;
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T12 (extension): the generic access method of §7\n");

  // (a) extension-call accounting: what the generic interface costs per
  // operation.
  std::printf("\nExtension-primitive invocations (10000 interval inserts, "
              "500 overlap searches):\n\n");
  {
    MemorySpace space;
    Pager pager(&space, 4096);
    PagerNodeStore store(&pager);
    CountingExtension counting;
    counting.inner = MakeRangeExtension();
    GistExtension ext = counting.Wrap();
    NodeId anchor;
    auto tree_or = GistTree::Create(&store, &anchor);
    bench::Check(tree_or.status(), "create");
    auto tree = std::move(tree_or).value();
    Random rng(21);
    bench::Timer insert_timer;
    for (uint64_t i = 1; i <= 10000; ++i) {
      const int64_t lo = rng.UniformRange(0, 100000);
      bench::Check(tree->Insert(Range(lo, lo + rng.UniformRange(0, 100)), i,
                                ext),
                   "insert");
    }
    const double insert_ms = insert_timer.ElapsedMs();
    const uint64_t insert_consistent = counting.consistent;
    const uint64_t insert_penalties = counting.penalties;
    const uint64_t insert_unions = counting.unions;
    const uint64_t insert_splits = counting.splits;
    bench::Timer search_timer;
    uint64_t results = 0;
    for (int q = 0; q < 500; ++q) {
      const int64_t lo = rng.UniformRange(0, 100000);
      std::vector<GistTree::Entry> out;
      bench::Check(
          tree->SearchAll(Range(lo, lo + 200), 1, ext, &out), "search");
      results += out.size();
    }
    const double search_ms = search_timer.ElapsedMs();
    bench::TablePrinter table({"operation", "count", "consistent calls/op",
                               "penalty calls/op", "union calls/op", "ms"});
    table.AddRow({"insert", "10000",
                  Fmt(static_cast<double>(insert_consistent) / 10000, 1),
                  Fmt(static_cast<double>(insert_penalties) / 10000, 1),
                  Fmt(static_cast<double>(insert_unions) / 10000, 1),
                  Fmt(insert_ms, 1)});
    table.AddRow(
        {"overlap search", "500",
         Fmt(static_cast<double>(counting.consistent - insert_consistent) /
                 500,
             1),
         "0.0", "0.0", Fmt(search_ms, 1)});
    table.Print();
    std::printf("pick_split calls during the build: %llu; avg results per "
                "search: %s; height %u; am_check: %s\n",
                static_cast<unsigned long long>(insert_splits),
                Fmt(static_cast<double>(results) / 500, 1).c_str(),
                tree->height(),
                tree->CheckConsistency(ext).ok() ? "consistent"
                                                 : "VIOLATION");
  }

  // (b) two data types through one purpose-function set, via SQL.
  std::printf("\nOne access method, two operator classes, through SQL:\n\n");
  {
    Server server;
    bench::Check(RegisterGistBlade(&server), "blade");
    bench::Check(RegisterIntRangeOpclass(&server), "ir opclass");
    bench::Check(RegisterPrefixOpclass(&server), "px opclass");
    ServerSession* session = server.CreateSession();
    bench::Exec(server, session,
                "CREATE TABLE spans (id int, r intrange)");
    bench::Exec(server, session,
                "CREATE INDEX spans_idx ON spans(r ir_opclass) "
                "USING gist_am");
    bench::Exec(server, session, "CREATE TABLE words (w text)");
    bench::Exec(server, session,
                "CREATE INDEX words_idx ON words(w px_opclass) "
                "USING gist_am");
    Random rng(22);
    bench::Timer timer;
    for (int i = 0; i < 2000; ++i) {
      const int64_t lo = rng.UniformRange(0, 50000);
      bench::Exec(server, session,
                  "INSERT INTO spans VALUES (" + std::to_string(i) + ", '[" +
                      std::to_string(lo) + "," +
                      std::to_string(lo + rng.UniformRange(0, 40)) + "]')");
      bench::Exec(server, session,
                  "INSERT INTO words VALUES ('w" +
                      std::to_string(rng.UniformRange(0, 100)) + "x" +
                      std::to_string(i) + "')");
    }
    ResultSet r1 = bench::Exec(
        server, session,
        "SELECT COUNT(*) FROM spans WHERE RangeOverlaps(r, '[20000,20500]')");
    ResultSet r2 = bench::Exec(
        server, session,
        "SELECT COUNT(*) FROM words WHERE PrefixMatch(w, 'w42x')");
    std::printf("  intrange index answered %s rows; prefix index answered "
                "%s rows; 4000 inserts + 2 queries in %s ms\n",
                r1.rows[0][0].c_str(), r2.rows[0][0].c_str(),
                Fmt(timer.ElapsedMs(), 1).c_str());
    bench::Exec(server, session, "CHECK INDEX spans_idx");
    bench::Exec(server, session, "CHECK INDEX words_idx");
    std::printf("  both indexes pass am_check — zero purpose-function "
                "changes between the two data types (the §7 pitch)\n");
    server.CloseSession(session);
  }
  return 0;
}
