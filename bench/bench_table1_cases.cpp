// T1 — Table 1 (EmpDep) + Fig. 1 + Fig. 2: loads the paper's example
// relation through SQL, classifies every tuple's bitemporal region into the
// six cases, and shows the resolved geometry at several current times
// (growing regions grow; frozen ones do not).

#include <cstdio>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "blades/timeextent.h"
#include "common/date.h"
#include "temporal/region.h"

namespace grtdb {
namespace {

using bench::Exec;
using bench::Fmt;
using bench::TablePrinter;

struct EmpRow {
  const char* employee;
  const char* department;
  const char* insert_date;
  const char* extent;
};

// Table 1 of the paper (month granularity rendered as mm/01/1997 dates),
// after the history has played out: tuple (2) logically deleted at 7/97,
// tuple (4) frozen at 7/97 and superseded by tuple (5) at 8/97.
constexpr EmpRow kEmpDep[] = {
    {"John", "Advertising", "04/01/1997",
     "04/01/1997, UC, 03/01/1997, 05/01/1997"},
    {"Tom", "Management", "03/01/1997",
     "03/01/1997, 07/01/1997, 06/01/1997, 08/01/1997"},
    {"Jane", "Sales", "05/01/1997", "05/01/1997, UC, 05/01/1997, NOW"},
    {"Julie", "Sales", "03/01/1997",
     "03/01/1997, 07/01/1997, 03/01/1997, NOW"},
    {"Julie", "Sales", "08/01/1997",
     "08/01/1997, UC, 03/01/1997, 07/01/1997"},
    {"Michelle", "Management", "05/01/1997",
     "05/01/1997, UC, 03/01/1997, NOW"},
};

const char* CaseName(ExtentCase c) {
  switch (c) {
    case ExtentCase::kCase1:
      return "Case 1 (growing rectangle)";
    case ExtentCase::kCase2:
      return "Case 2 (static rectangle)";
    case ExtentCase::kCase3:
      return "Case 3 (growing stair)";
    case ExtentCase::kCase4:
      return "Case 4 (frozen stair)";
    case ExtentCase::kCase5:
      return "Case 5 (growing stair, high step)";
    case ExtentCase::kCase6:
      return "Case 6 (frozen stair, high step)";
  }
  return "?";
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf(
      "T1: Table 1 (EmpDep) with Fig. 1/Fig. 2 region classification\n\n");

  Server server;
  bench::Check(RegisterGRTreeBlade(&server), "register blade");
  ServerSession* session = server.CreateSession();
  Exec(server, session,
       "CREATE TABLE EmpDep (Employee text, Department text, "
       "TimeExtent grt_timeextent)");
  Exec(server, session,
       "CREATE INDEX empdep_idx ON EmpDep(TimeExtent grt_opclass) "
       "USING grtree_am");
  for (const auto& row : kEmpDep) {
    Exec(server, session,
         std::string("SET CURRENT_TIME TO '") + row.insert_date + "'");
    Exec(server, session, std::string("INSERT INTO EmpDep VALUES ('") +
                              row.employee + "', '" + row.department +
                              "', '" + row.extent + "')");
  }
  Exec(server, session, "SET CURRENT_TIME TO '09/01/1997'");

  bench::TablePrinter relation(
      {"#", "Employee", "Department", "TTbegin", "TTend", "VTbegin", "VTend",
       "Fig. 2 case"});
  int index = 0;
  for (const auto& row : kEmpDep) {
    TimeExtent extent;
    bench::Check(TimeExtent::Parse(row.extent, &extent), "parse");
    relation.AddRow({std::to_string(++index), row.employee, row.department,
                     extent.tt_begin.ToString(), extent.tt_end.ToString(),
                     extent.vt_begin.ToString(), extent.vt_end.ToString(),
                     CaseName(extent.Classify())});
  }
  relation.Print();

  std::printf("\nResolved region geometry as current time advances "
              "(areas in chronon^2; growing regions keep growing):\n\n");
  TablePrinter geometry({"#", "Employee", "kind @9/97", "area @9/97",
                         "area @12/97", "area @9/98", "grows"});
  int64_t ct_997, ct_1297, ct_998;
  bench::Check(ParseDate("09/01/1997", &ct_997), "date");
  bench::Check(ParseDate("12/01/1997", &ct_1297), "date");
  bench::Check(ParseDate("09/01/1998", &ct_998), "date");
  index = 0;
  for (const auto& row : kEmpDep) {
    TimeExtent extent;
    bench::Check(TimeExtent::Parse(row.extent, &extent), "parse");
    const Region now = ResolveExtent(extent, ct_997);
    const Region later = ResolveExtent(extent, ct_1297);
    const Region year = ResolveExtent(extent, ct_998);
    geometry.AddRow(
        {std::to_string(++index), row.employee,
         now.IsStair() ? "stair" : "rectangle", Fmt(now.Area(), 0),
         Fmt(later.Area(), 0), Fmt(year.Area(), 0),
         extent.IsCurrent() ? "yes (TTend = UC)" : "no"});
  }
  geometry.Print();

  std::printf("\nCurrent employees per the sample query (ct = 9/97):\n");
  ResultSet result =
      Exec(server, session,
           "SELECT Employee, Department FROM EmpDep WHERE "
           "Overlaps(TimeExtent, '09/01/1997, UC, 09/01/1997, NOW')");
  std::printf("%s\n", result.ToString().c_str());
  server.CloseSession(session);
  return 0;
}
