// Node-cache effectiveness across the four §5.3 storage layouts: the same
// GR-tree repeated-query workload runs with the cache off and on, and the
// table reports the *physical* node I/O the base store saw (node_reads +
// lo_opens) plus the cache hit rate. Self-checking: exits non-zero unless
// the cache strictly reduces physical node I/O for every layout.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/grtree.h"
#include "storage/node_cache.h"
#include "storage/node_store.h"
#include "storage/pager.h"
#include "storage/sbspace.h"
#include "storage/space.h"
#include "temporal/predicates.h"

namespace grtdb {
namespace {

enum class Layout { kPager, kSingleLo, kClusteredLo, kExternalFile };

const char* Name(Layout layout) {
  switch (layout) {
    case Layout::kPager: return "pager";
    case Layout::kSingleLo: return "single_lo";
    case Layout::kClusteredLo: return "clustered_lo";
    case Layout::kExternalFile: return "external_file";
  }
  return "?";
}

constexpr size_t kCachePages = 48;
// --smoke shrinks the run for the ctest smoke label; the self-check holds
// either way.
int g_extents = 2000;
int g_query_rounds = 8;
constexpr int kQueriesPerRound = 25;

struct Backing {
  MemorySpace space;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<Sbspace> sbspace;
  std::string path;
  std::unique_ptr<NodeStore> base;
  std::unique_ptr<NodeCache> cache;
  NodeStore* store = nullptr;  // what the tree runs on

  ~Backing() {
    cache.reset();
    base.reset();
    if (!path.empty()) std::remove(path.c_str());
  }
};

std::unique_ptr<Backing> MakeBacking(Layout layout, bool cached) {
  auto backing = std::make_unique<Backing>();
  switch (layout) {
    case Layout::kPager: {
      backing->pager = std::make_unique<Pager>(&backing->space, 1024);
      backing->base = std::make_unique<PagerNodeStore>(backing->pager.get());
      break;
    }
    case Layout::kSingleLo:
    case Layout::kClusteredLo: {
      auto sbspace_or = Sbspace::Open(&backing->space, 1024);
      bench::Check(sbspace_or.ok() ? Status::OK() : sbspace_or.status(),
                   "sbspace open");
      backing->sbspace = std::move(sbspace_or).value();
      if (layout == Layout::kSingleLo) {
        auto store_or =
            SingleLoNodeStore::Open(backing->sbspace.get(), LoHandle{});
        bench::Check(store_or.ok() ? Status::OK() : store_or.status(),
                     "single-lo open");
        backing->base = std::move(store_or).value();
      } else {
        backing->base = std::make_unique<ClusteredLoNodeStore>(
            backing->sbspace.get(), /*nodes_per_lo=*/8);
      }
      break;
    }
    case Layout::kExternalFile: {
      backing->path = (std::filesystem::temp_directory_path() /
                       "bench_node_cache.dat")
                          .string();
      std::remove(backing->path.c_str());
      auto store_or = ExternalFileNodeStore::Open(backing->path);
      bench::Check(store_or.ok() ? Status::OK() : store_or.status(),
                   "external-file open");
      backing->base = std::move(store_or).value();
      break;
    }
  }
  if (cached) {
    backing->cache =
        std::make_unique<NodeCache>(backing->base.get(), kCachePages);
    backing->store = backing->cache.get();
  } else {
    backing->store = backing->base.get();
  }
  return backing;
}

TimeExtent ExtentFor(int i) {
  const int64_t tt = 10 + (i % 499) * 2;
  return TimeExtent::Ground(tt, tt + 4, tt - 5, tt + 25);
}

TimeExtent QueryFor(int i) {
  const int64_t tt = 10 + (i % kQueriesPerRound) * 37;
  return TimeExtent::Ground(tt, tt + 60, tt - 20, tt + 80);
}

struct RunResult {
  uint64_t node_reads = 0;
  uint64_t lo_opens = 0;
  double hit_rate = 0.0;
  double ms = 0.0;
  size_t results = 0;
};

RunResult RunWorkload(Layout layout, bool cached) {
  auto backing = MakeBacking(layout, cached);
  GRTree::Options options;
  options.max_entries = 32;  // deep enough that traversal re-reads pay off
  NodeId anchor = kInvalidNodeId;
  auto tree_or = GRTree::Create(backing->store, options, &anchor);
  bench::Check(tree_or.ok() ? Status::OK() : tree_or.status(), "create");
  auto tree = std::move(tree_or).value();
  for (int i = 0; i < g_extents; ++i) {
    bench::Check(tree->Insert(ExtentFor(i), i + 1, 10000), "insert");
  }
  // Only the query phase is measured.
  backing->base->ResetStats();
  if (backing->cache != nullptr) backing->cache->ResetStats();

  RunResult run;
  bench::Timer timer;
  for (int round = 0; round < g_query_rounds; ++round) {
    for (int q = 0; q < kQueriesPerRound; ++q) {
      std::vector<GRTree::Entry> results;
      bench::Check(tree->SearchAll(PredicateOp::kOverlaps, QueryFor(q),
                                   10000, &results),
                   "search");
      run.results += results.size();
    }
  }
  run.ms = timer.ElapsedMs();
  run.node_reads = backing->base->stats().node_reads;
  run.lo_opens = backing->base->stats().lo_opens;
  if (backing->cache != nullptr) {
    run.hit_rate = backing->cache->stats().cache_hit_rate();
  }
  return run;
}

int Run() {
  std::printf(
      "bench_node_cache: %d extents, %d rounds x %d overlap queries, "
      "cache %zu frames\n\n",
      g_extents, g_query_rounds, kQueriesPerRound, kCachePages);
  bench::TablePrinter table({"layout", "cache", "node_reads", "lo_opens",
                             "physical_io", "hit_rate", "ms"});
  bool ok = true;
  for (Layout layout : {Layout::kPager, Layout::kSingleLo,
                        Layout::kClusteredLo, Layout::kExternalFile}) {
    const RunResult off = RunWorkload(layout, /*cached=*/false);
    const RunResult on = RunWorkload(layout, /*cached=*/true);
    if (off.results != on.results) {
      std::fprintf(stderr, "FATAL %s: result mismatch (%zu vs %zu)\n",
                   Name(layout), off.results, on.results);
      return 1;
    }
    const uint64_t io_off = off.node_reads + off.lo_opens;
    const uint64_t io_on = on.node_reads + on.lo_opens;
    table.AddRow({Name(layout), "off", std::to_string(off.node_reads),
                  std::to_string(off.lo_opens), std::to_string(io_off), "-",
                  bench::Fmt(off.ms)});
    table.AddRow({Name(layout), "on", std::to_string(on.node_reads),
                  std::to_string(on.lo_opens), std::to_string(io_on),
                  bench::Fmt(100.0 * on.hit_rate) + "%",
                  bench::Fmt(on.ms)});
    if (io_on >= io_off) {
      std::fprintf(stderr,
                   "FATAL %s: cache did not reduce physical node I/O "
                   "(%llu -> %llu)\n",
                   Name(layout), static_cast<unsigned long long>(io_off),
                   static_cast<unsigned long long>(io_on));
      ok = false;
    }
  }
  table.Print();
  if (!ok) return 1;
  std::printf("\nbench_node_cache: cache reduced physical node I/O on all "
              "four layouts\n");
  return 0;
}

}  // namespace
}  // namespace grtdb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      grtdb::g_extents = 500;
      grtdb::g_query_rounds = 2;
    }
  }
  return grtdb::Run();
}
