// T2 — Table 2 / Table 5 / Fig. 6: reproduces the purpose-function call
// sequences the server issues for INSERT and SELECT (and the DELETE/UPDATE
// flows of §5.5 / Table 5), and reports per-purpose-function call counts
// and mean latencies over a workload.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "workload/workload.h"

namespace grtdb {
namespace {

using bench::Exec;
using bench::Fmt;
using bench::TablePrinter;

void PrintSequence(const char* label, ServerSession* session) {
  std::printf("%s\n  ", label);
  const auto& log = session->purpose_log();
  for (size_t i = 0; i < log.size(); ++i) {
    std::printf("%s%s", log[i].c_str(), i + 1 < log.size() ? " -> " : "\n");
  }
  if (log.empty()) std::printf("(no purpose calls)\n");
}

}  // namespace
}  // namespace grtdb

int main() {
  using namespace grtdb;
  std::printf("T2: purpose-function call sequences (Fig. 6, Table 5)\n\n");

  Server server;
  bench::Check(RegisterGRTreeBlade(&server), "register blade");
  ServerSession* session = server.CreateSession();
  Exec(server, session, "CREATE TABLE t (id int, e grt_timeextent)");
  Exec(server, session,
       "CREATE INDEX t_idx ON t(e grt_opclass) USING grtree_am");
  Exec(server, session, "SET CURRENT_TIME TO 10000");
  for (int i = 0; i < 12; ++i) {
    Exec(server, session,
         "INSERT INTO t VALUES (" + std::to_string(i) + ", '10000, UC, " +
             std::to_string(9990 - i) + ", NOW')");
  }

  session->ClearPurposeLog();
  Exec(server, session,
       "INSERT INTO t VALUES (999, '10000, UC, 9000, NOW')");
  PrintSequence("\nINSERT INTO ... VALUES (...)   [Fig. 6(a)]:", session);

  session->ClearPurposeLog();
  Exec(server, session,
       "SELECT id FROM t WHERE Overlaps(e, '10000, 10000, 9985, 9990')");
  PrintSequence("\nSELECT ... WHERE Overlaps(...)   [Fig. 6(b); the extra "
                "open/scancost/close pair is the optimizer's cost probe]:",
                session);

  session->ClearPurposeLog();
  Exec(server, session,
       "UPDATE t SET e = '10000, 10000, 9000, 9500' WHERE id = 999");
  PrintSequence("\nUPDATE ... SET e = ...   [am_update = delete + insert, "
                "Table 5]:",
                session);

  session->ClearPurposeLog();
  Exec(server, session,
       "DELETE FROM t WHERE Overlaps(e, '10000, 10000, 9988, 9990')");
  PrintSequence("\nDELETE ... WHERE Overlaps(...)   [retrieve-and-delete, "
                "§5.5]:",
                session);

  // Call counts + latency over a workload.
  std::printf("\nPer-purpose-function call counts over a 2000-action "
              "workload:\n\n");
  WorkloadOptions wopts;
  BitemporalWorkload workload(wopts);
  session->ClearPurposeLog();
  std::map<std::string, uint64_t> statement_counts;
  bench::Timer timer;
  int64_t last_ct = -1;
  for (int action = 0; action < 2000; ++action) {
    for (const IndexOp& op : workload.NextAction()) {
      if (op.ct != last_ct) {
        Exec(server, session, "SET CURRENT_TIME TO " + std::to_string(op.ct));
        last_ct = op.ct;
      }
      if (op.kind == IndexOp::Kind::kInsert) {
        Exec(server, session,
             "INSERT INTO t VALUES (" + std::to_string(op.payload) + ", '" +
                 op.extent.ToString() + "')");
        ++statement_counts["INSERT"];
      } else {
        Exec(server, session,
             "DELETE FROM t WHERE Equal(e, '" + op.extent.ToString() +
                 "') AND id = " + std::to_string(op.payload));
        ++statement_counts["DELETE"];
      }
    }
    if (action % 100 == 99) {
      Exec(server, session,
           "SELECT COUNT(*) FROM t WHERE Overlaps(e, '" +
               workload.GroundRectQuery(100).ToString() + "')");
      ++statement_counts["SELECT"];
    }
  }
  const double total_ms = timer.ElapsedMs();

  // purpose_counts() keeps exact totals even after the bounded call log
  // starts dropping its oldest entries under a workload this size.
  const std::map<std::string, uint64_t>& call_counts =
      session->purpose_counts();
  TablePrinter calls({"purpose function", "calls", "calls/statement"});
  uint64_t statements = 0;
  for (const auto& [kind, count] : statement_counts) statements += count;
  for (const auto& [name, count] : call_counts) {
    calls.AddRow({name, std::to_string(count),
                  Fmt(static_cast<double>(count) /
                          static_cast<double>(statements),
                      2)});
  }
  calls.Print();
  std::printf("\nstatements: %llu (",
              static_cast<unsigned long long>(statements));
  bool first = true;
  for (const auto& [kind, count] : statement_counts) {
    std::printf("%s%s %llu", first ? "" : ", ", kind.c_str(),
                static_cast<unsigned long long>(count));
    first = false;
  }
  std::printf("), wall time %s ms, %s ms/statement\n", bench::Fmt(total_ms, 1).c_str(),
              bench::Fmt(total_ms / static_cast<double>(statements), 3).c_str());
  server.CloseSession(session);
  return 0;
}
