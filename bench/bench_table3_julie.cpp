// T6 — Table 3 / Fig. 8: the "Julie" query of §5.1, demonstrating why a
// bitemporal function f(timeextent1, timeextent2) cannot be replaced by
// two per-dimension interval functions — and hence why the time extent
// must be one single opaque column (the qualification descriptor only
// accommodates single-column predicates).

#include <cstdio>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "temporal/predicates.h"

int main() {
  using namespace grtdb;
  std::printf("T6: the Julie query (Table 3 / Fig. 8, §5.1)\n\n");

  Server server;
  bench::Check(RegisterGRTreeBlade(&server), "register blade");
  ServerSession* session = server.CreateSession();
  bench::Exec(server, session,
              "CREATE TABLE EmpDep (Name text, Department text, "
              "TimeExtent grt_timeextent)");
  bench::Exec(server, session,
              "CREATE INDEX empdep_idx ON EmpDep(TimeExtent grt_opclass) "
              "USING grtree_am");
  // Julie's record (Table 3): recorded 3/97, logically deleted 7/97,
  // valid [3/97, NOW].
  bench::Exec(server, session, "SET CURRENT_TIME TO '03/01/1997'");
  bench::Exec(server, session,
              "INSERT INTO EmpDep VALUES ('Julie', 'Sales', "
              "'03/01/1997, UC, 03/01/1997, NOW')");
  bench::Exec(server, session, "SET CURRENT_TIME TO '07/01/1997'");
  bench::Exec(server, session,
              "UPDATE EmpDep SET TimeExtent = "
              "'03/01/1997, 07/01/1997, 03/01/1997, NOW' "
              "WHERE Name = 'Julie'");
  bench::Exec(server, session, "SET CURRENT_TIME TO '09/01/1997'");

  std::printf("Query: \"Who worked in Sales during 7/97 according to the "
              "knowledge we had during 5/97?\" (asked at ct = 9/97)\n\n");

  // Correct: one bitemporal predicate over the single opaque column.
  ResultSet correct = bench::Exec(
      server, session,
      "SELECT Name FROM EmpDep WHERE Overlaps(TimeExtent, "
      "'05/01/1997, 05/01/1997, 07/01/1997, 07/01/1997')");
  std::printf("bitemporal Overlaps(TimeExtent, tt=5/97, vt=7/97): %zu row(s)"
              "  -> %s\n",
              correct.rows.size(),
              correct.rows.empty() ? "correct: Julie's stair-shape does NOT "
                                     "cover (5/97, 7/97)"
                                   : "WRONG");

  // Incorrect: the per-dimension decomposition, computed explicitly.
  TimeExtent julie;
  bench::Check(TimeExtent::Parse("03/01/1997, 07/01/1997, 03/01/1997, NOW",
                                 &julie),
               "parse");
  TimeExtent query;
  bench::Check(TimeExtent::Parse(
                   "05/01/1997, 05/01/1997, 07/01/1997, 07/01/1997", &query),
               "parse");
  const int64_t ct = server.current_time();
  const bool tt_overlaps =
      julie.tt_begin.chronon() <= query.tt_end.ResolveAt(ct) &&
      query.tt_begin.chronon() <= julie.tt_end.ResolveAt(ct);
  const bool vt_overlaps =
      julie.vt_begin.chronon() <= query.vt_end.ResolveAt(ct) &&
      query.vt_begin.chronon() <= julie.vt_end.ResolveAt(ct);
  std::printf("decomposed  f1(valid intervals) = %s, f2(transaction "
              "intervals) = %s  -> answer would be %s  (WRONG: includes "
              "Julie)\n",
              vt_overlaps ? "true" : "false",
              tt_overlaps ? "true" : "false",
              (tt_overlaps && vt_overlaps) ? "Julie" : "empty");
  std::printf("exact bitemporal evaluation: Overlaps = %s\n\n",
              ExtentsOverlap(julie, query, ct) ? "true" : "false");

  // Geometry of Fig. 8: the query point sits above Julie's stair.
  const Region stair = ResolveExtent(julie, ct);
  const Region point = ResolveExtent(query, ct);
  std::printf("Julie's region: %s\nquery point:   %s\noverlap: %s\n",
              stair.ToString().c_str(), point.ToString().c_str(),
              stair.Overlaps(point) ? "yes" : "no");

  std::printf("\nConclusion (reproduces §5.1): the two-column or four-column"
              " representations would force per-dimension predicates and "
              "return Julie; the single-column grt_timeextent answers "
              "correctly — and is the only shape a qualification descriptor "
              "accepts.\n");
  server.CloseSession(session);
  return correct.rows.empty() ? 0 : 1;
}
