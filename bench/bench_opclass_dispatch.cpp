// T7 — §5.2: "The cost of this extensibility is the overhead of dynamic
// resolution and execution of strategy and support functions." Compares
// index scans whose leaf predicates are hard-coded inside am_getnext (the
// paper's choice) against scans that dynamically resolve and invoke the
// registered strategy UDRs on every candidate entry.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "blades/grtree_blade.h"
#include "blades/timeextent.h"
#include "server/server.h"

namespace grtdb {
namespace {

struct Deployment {
  std::unique_ptr<Server> server;
  ServerSession* session = nullptr;
  std::string query;
};

// One server with two GR-tree AM variants over the same data: grtree_am
// (hard-coded, the prototype's design) and grtree_dyn_am (dynamic UDR
// dispatch in am_getnext).
Deployment* BuildDeployment() {
  auto* deployment = new Deployment();
  deployment->server = std::make_unique<Server>();
  Server& server = *deployment->server;
  bench::Check(RegisterGRTreeBlade(&server), "register hard-coded");
  GRTreeBladeOptions dynamic_options;
  dynamic_options.am_name = "grtree_dyn_am";
  dynamic_options.prefix = "grtdyn";
  dynamic_options.dynamic_dispatch = true;
  bench::Check(RegisterGRTreeBlade(&server, dynamic_options),
               "register dynamic");
  deployment->session = server.CreateSession();
  ServerSession* session = deployment->session;
  bench::Exec(server, session,
              "CREATE TABLE hard (id int, e grt_timeextent)");
  bench::Exec(server, session,
              "CREATE TABLE dyn (id int, e grt_timeextent)");
  bench::Exec(server, session,
              "CREATE INDEX hard_idx ON hard(e grt_opclass) USING grtree_am");
  bench::Exec(server, session,
              "CREATE INDEX dyn_idx ON dyn(e grtdyn_opclass) "
              "USING grtree_dyn_am");
  bench::Exec(server, session, "SET CURRENT_TIME TO 20000");
  for (int i = 0; i < 4000; ++i) {
    const std::string extent =
        "'20000, UC, " + std::to_string(19000 + (i % 1000)) + ", NOW'";
    bench::Exec(server, session, "INSERT INTO hard VALUES (" +
                                     std::to_string(i) + ", " + extent + ")");
    bench::Exec(server, session, "INSERT INTO dyn VALUES (" +
                                     std::to_string(i) + ", " + extent + ")");
  }
  deployment->query =
      "WHERE Overlaps(e, '20000, 20000, 19200, 19400') "
      "AND ContainedIn(e, '18000, UC, 18000, NOW')";
  return deployment;
}

Deployment* GetDeployment() {
  static Deployment* deployment = BuildDeployment();
  return deployment;
}

void BM_HardCodedDispatch(benchmark::State& state) {
  Deployment* deployment = GetDeployment();
  for (auto _ : state) {
    ResultSet result = bench::Exec(*deployment->server, deployment->session,
                                   "SELECT COUNT(*) FROM hard " +
                                       deployment->query);
    benchmark::DoNotOptimize(result.rows);
  }
  state.SetLabel("strategy functions hard-coded in am_getnext (§5.2 choice)");
}
BENCHMARK(BM_HardCodedDispatch)->Unit(benchmark::kMicrosecond);

void BM_DynamicDispatch(benchmark::State& state) {
  Deployment* deployment = GetDeployment();
  for (auto _ : state) {
    ResultSet result = bench::Exec(*deployment->server, deployment->session,
                                   "SELECT COUNT(*) FROM dyn " +
                                       deployment->query);
    benchmark::DoNotOptimize(result.rows);
  }
  state.SetLabel(
      "am_getnext dynamically resolves registered strategy UDRs");
}
BENCHMARK(BM_DynamicDispatch)->Unit(benchmark::kMicrosecond);

// The raw predicate cost difference, isolated from scan machinery.
void BM_PredicateHardCoded(benchmark::State& state) {
  TimeExtent a;
  TimeExtent b;
  bench::Check(TimeExtent::Parse("20000, UC, 19100, NOW", &a), "parse");
  bench::Check(TimeExtent::Parse("20000, 20050, 19000, 19150", &b), "parse");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ResolveExtent(a, 20100).Overlaps(ResolveExtent(b, 20100)));
  }
}
BENCHMARK(BM_PredicateHardCoded);

void BM_PredicateViaUdr(benchmark::State& state) {
  Deployment* deployment = GetDeployment();
  Server& server = *deployment->server;
  const UdrDef* overlaps = nullptr;
  const TypeDesc type = TypeDesc::Opaque(TimeExtentTypeId(&server));
  const TypeDesc types[2] = {type, type};
  overlaps = server.udrs().Find("Overlaps", types);
  bench::Check(overlaps != nullptr ? Status::OK()
                                   : Status::NotFound("Overlaps UDR"),
               "find");
  TimeExtent a;
  TimeExtent b;
  bench::Check(TimeExtent::Parse("20000, UC, 19100, NOW", &a), "parse");
  bench::Check(TimeExtent::Parse("20000, 20050, 19000, 19150", &b), "parse");
  const Value va = ValueFromExtent(&server, a);
  const Value vb = ValueFromExtent(&server, b);
  MiCallContext ctx{&server, deployment->session, 20100};
  const Value args[2] = {va, vb};
  for (auto _ : state) {
    auto result = overlaps->fn(ctx, args);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PredicateViaUdr);

}  // namespace
}  // namespace grtdb

BENCHMARK_MAIN();
